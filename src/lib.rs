//! Umbrella crate re-exporting the full `hpcbd` study stack.
//!
//! `hpcbd` is a from-scratch Rust reproduction of the CLUSTER 2016 paper
//! "A Comparative Survey of the HPC and Big Data Paradigms: Analysis and
//! Experiments". See `DESIGN.md` at the repository root for the system
//! inventory and the per-experiment index.

pub use hpcbd_check as check;
pub use hpcbd_cluster as cluster;
pub use hpcbd_core as core;
pub use hpcbd_metrics as metrics;
pub use hpcbd_minhdfs as minhdfs;
pub use hpcbd_minimpi as minimpi;
pub use hpcbd_minmapreduce as minmapreduce;
pub use hpcbd_minomp as minomp;
pub use hpcbd_minshmem as minshmem;
pub use hpcbd_minspark as minspark;
pub use hpcbd_obs as obs;
pub use hpcbd_simnet as simnet;
pub use hpcbd_workloads as workloads;
