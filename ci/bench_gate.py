#!/usr/bin/env python3
"""Wall-clock trajectory regression gate.

Compares two BENCH_simnet.json files (previous successful run vs this
run) row by row, keyed on (artifact, scale, mode). Macro rows — the
`paper`-scale ones, which run long enough for wall_min_s to be stable —
gate the build: a >15% regression in any of them fails. `quick` rows
are single-digit-millisecond and dominated by process noise, so they
are reported but never fail the gate. New rows (fresh artifact or mode)
and rows that disappeared are reported as informational.

`speculative:N` rows additionally carry the engine's optimistic
commit/rollback counters (spec_commits / spec_rollbacks); the gate
echoes them for attribution and fails a speculative macro row whose
runs recorded *no* speculative commits at all — that means the Time
Warp engine silently degenerated to the conservative path and the row's
wall clock no longer measures what its mode claims.

Multi-tenant rows (`"multi_tenant": true`, emitted by the `datacenter`
artifact) carry the contended section's per-queue scheduler counters.
The gate echoes every queue's latency quantiles, queueing delay,
preemption activity and SLO attainment for the trajectory log, and
fails any multi-tenant row whose contended queues are missing the
`p99_latency_ns` or `slo_attainment_ppm` fields — a row without them
no longer measures what the busy-datacenter-day artifact claims.

Usage: bench_gate.py <previous.json> <current.json>
Exit:  0 clean, 1 regression, 2 usage/parse error.
"""

import json
import sys

THRESHOLD = 0.15  # fractional wall_min_s increase that fails a macro row
GATED_SCALES = {"paper"}


def rows(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for r in doc.get("results", []):
        out[(r["artifact"], r["scale"], r["mode"])] = {
            "wall_min_s": float(r["wall_min_s"]),
            "spec_commits": int(r.get("spec_commits", 0)),
            "spec_rollbacks": int(r.get("spec_rollbacks", 0)),
            "multi_tenant": bool(r.get("multi_tenant", False)),
            "contended": r.get("contended"),
        }
    return out


REQUIRED_QUEUE_FIELDS = ("p99_latency_ns", "slo_attainment_ppm")


def check_multi_tenant(label, row):
    """Echo a multi-tenant row's per-queue counters; return the list of
    missing required fields (empty when the row is well-formed)."""
    contended = row.get("contended")
    if not isinstance(contended, dict) or not contended.get("queues"):
        return [f"{label}: multi-tenant row has no contended queue counters"]
    print(
        f"  mt     {label}: contended offered={contended.get('offered')}"
        f" makespan={contended.get('makespan_ns')}ns"
    )
    missing = []
    for q in contended["queues"]:
        name = q.get("queue", "?")
        for field in REQUIRED_QUEUE_FIELDS:
            if field not in q:
                missing.append(f"{label}: queue {name} missing {field}")
        print(
            f"         queue {name}: jobs={q.get('completed')}"
            f" p50={q.get('p50_latency_ns')}ns p99={q.get('p99_latency_ns')}ns"
            f" wait_p99={q.get('wait_p99_ns')}ns"
            f" slo_ppm={q.get('slo_attainment_ppm')}"
            f" preempt={q.get('preemptions')} kills={q.get('kills_sent')}"
            f" local/rack/any={q.get('local')}/{q.get('rack')}/{q.get('any')}"
        )
    return missing


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        prev, curr = rows(argv[1]), rows(argv[2])
    except (OSError, ValueError, KeyError) as e:
        print(f"bench_gate: cannot read trajectory files: {e}", file=sys.stderr)
        return 2

    regressions = []
    degenerate = []
    malformed = []
    for key in sorted(curr):
        artifact, scale, mode = key
        row = curr[key]
        new = row["wall_min_s"]
        label = f"{artifact}/{scale}/{mode}"
        spec = ""
        if mode.startswith("speculative"):
            spec = (
                f" [spec_commits={row['spec_commits']}"
                f" spec_rollbacks={row['spec_rollbacks']}]"
            )
            if scale in GATED_SCALES and row["spec_commits"] == 0:
                degenerate.append(label)
                print(f"  FAIL   {label}: zero speculative commits{spec}")
                continue
        # Multi-tenant rows are checked and echoed even when NEW — the
        # first run of a fresh artifact must already be well-formed.
        if row["multi_tenant"]:
            problems = check_multi_tenant(label, row)
            for p in problems:
                print(f"  FAIL   {p}")
            malformed.extend(problems)
        old_row = prev.get(key)
        if old_row is None:
            print(f"  NEW    {label}: {new:.6f}s (no previous row){spec}")
            continue
        old = old_row["wall_min_s"]
        delta = (new - old) / old if old > 0 else 0.0
        gated = scale in GATED_SCALES
        if gated and delta > THRESHOLD:
            regressions.append((label, old, new, delta))
            print(f"  FAIL   {label}: {old:.6f}s -> {new:.6f}s ({delta:+.1%}){spec}")
        else:
            tag = "ok" if gated else "info"
            print(f"  {tag:<6} {label}: {old:.6f}s -> {new:.6f}s ({delta:+.1%}){spec}")
    for key in sorted(set(prev) - set(curr)):
        print(f"  GONE   {'/'.join(key)}: row no longer produced")

    failed = False
    if regressions:
        print(
            f"bench_gate: {len(regressions)} macro row(s) regressed "
            f">{THRESHOLD:.0%} in wall_min_s",
            file=sys.stderr,
        )
        failed = True
    if degenerate:
        print(
            f"bench_gate: {len(degenerate)} speculative macro row(s) "
            "recorded zero speculative commits",
            file=sys.stderr,
        )
        failed = True
    if malformed:
        print(
            f"bench_gate: {len(malformed)} multi-tenant row problem(s) — "
            "contended rows must carry p99_latency_ns and slo_attainment_ppm",
            file=sys.stderr,
        )
        failed = True
    if failed:
        return 1
    print("bench_gate: no macro-row regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
