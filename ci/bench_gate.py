#!/usr/bin/env python3
"""Wall-clock trajectory regression gate.

Compares two BENCH_simnet.json files (previous successful run vs this
run) row by row, keyed on (artifact, scale, mode). Macro rows — the
`paper`-scale ones, which run long enough for wall_min_s to be stable —
gate the build: a >15% regression in any of them fails. `quick` rows
are single-digit-millisecond and dominated by process noise, so they
are reported but never fail the gate. New rows (fresh artifact or mode)
and rows that disappeared are reported as informational.

Usage: bench_gate.py <previous.json> <current.json>
Exit:  0 clean, 1 regression, 2 usage/parse error.
"""

import json
import sys

THRESHOLD = 0.15  # fractional wall_min_s increase that fails a macro row
GATED_SCALES = {"paper"}


def rows(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for r in doc.get("results", []):
        out[(r["artifact"], r["scale"], r["mode"])] = float(r["wall_min_s"])
    return out


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        prev, curr = rows(argv[1]), rows(argv[2])
    except (OSError, ValueError, KeyError) as e:
        print(f"bench_gate: cannot read trajectory files: {e}", file=sys.stderr)
        return 2

    regressions = []
    for key in sorted(curr):
        artifact, scale, mode = key
        new = curr[key]
        old = prev.get(key)
        label = f"{artifact}/{scale}/{mode}"
        if old is None:
            print(f"  NEW    {label}: {new:.6f}s (no previous row)")
            continue
        delta = (new - old) / old if old > 0 else 0.0
        gated = scale in GATED_SCALES
        if gated and delta > THRESHOLD:
            regressions.append((label, old, new, delta))
            print(f"  FAIL   {label}: {old:.6f}s -> {new:.6f}s ({delta:+.1%})")
        else:
            tag = "ok" if gated else "info"
            print(f"  {tag:<6} {label}: {old:.6f}s -> {new:.6f}s ({delta:+.1%})")
    for key in sorted(set(prev) - set(curr)):
        print(f"  GONE   {'/'.join(key)}: row no longer produced")

    if regressions:
        print(
            f"bench_gate: {len(regressions)} macro row(s) regressed "
            f">{THRESHOLD:.0%} in wall_min_s",
            file=sys.stderr,
        )
        return 1
    print("bench_gate: no macro-row regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
