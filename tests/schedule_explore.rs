//! Property test: schedule exploration of a mixed MPI + Spark workload
//! is digest-equal to the sequential oracle for *arbitrary* explorer
//! seeds — the perturbation seed space contains no magic values that
//! break (or mask) determinism.
//!
//! Each proptest case runs a full exploration (sequential oracle +
//! sequential replay + perturbed parallel schedules) under a different
//! seed and additionally pins the oracle digest across cases: every
//! exploration of the same workload must see the same oracle, whatever
//! seed drives the perturbations.

use std::sync::OnceLock;

use hpcbd::check::Explorer;
use hpcbd::cluster::Placement;
use hpcbd::minimpi::{mpirun, ReduceOp};
use hpcbd::minspark::{SparkCluster, SparkConfig};
use proptest::prelude::*;

/// An MPI collective job followed by a Spark shuffle job — the two
/// paradigms the paper compares, back to back in one capture window.
fn mixed_workload() {
    let mpi = mpirun(Placement::new(2, 2), |rank| {
        let v = vec![rank.rank() as f64; 4];
        rank.allreduce(ReduceOp::Sum, &v)
    });
    assert!(mpi.results.iter().all(|r| r == &vec![6.0; 4]));

    let spark = SparkCluster::new(2, SparkConfig::default()).run(|sc| {
        let nums = sc.parallelize((1..=64u64).collect(), 4);
        let odds = nums.filter(|x| x % 2 == 1);
        sc.reduce(&odds, |a, b| a + b)
    });
    assert_eq!(spark.value, Some(32 * 32)); // sum of odd 1..=63
}

/// Oracle digest pinned by the first case; all later cases must agree.
static ORACLE: OnceLock<String> = OnceLock::new();

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn perturbed_schedules_reproduce_the_oracle_for_any_seed(seed in 0u64..u64::MAX) {
        let report = Explorer::new(seed).schedules(4).threads(4).explore(mixed_workload);
        if let Some(d) = &report.divergence {
            prop_assert!(false, "divergence under seed {seed:#x}:\n{}", d.render());
        }
        prop_assert_eq!(report.schedules_run, 4);
        let pinned = ORACLE.get_or_init(|| report.oracle_digest.clone());
        prop_assert_eq!(
            &report.oracle_digest, pinned,
            "oracle digest changed between explorations"
        );
    }
}
