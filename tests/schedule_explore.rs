//! Property test: schedule exploration of a mixed MPI + Spark workload
//! is digest-equal to the sequential oracle for *arbitrary* explorer
//! seeds — the perturbation seed space contains no magic values that
//! break (or mask) determinism.
//!
//! Each proptest case runs a full exploration (sequential oracle +
//! sequential replay + perturbed parallel or speculative schedules)
//! under a different seed and additionally pins the oracle digest
//! across cases: every exploration of the same workload must see the
//! same oracle, whatever seed drives the perturbations and whichever
//! engine runs the perturbed schedules.
//!
//! The speculative (Time Warp) engine additionally gets a planted-bug
//! self-test, mirroring the fault-campaign harness's `RecoveryBug`
//! check: with [`SpecBug::TrustStalePrediction`] installed — commit
//! trusts the speculated device reservation without validating or
//! publishing it — the explorer must *find* the divergence and classify
//! it as schedule-dependent. A safety net that cannot catch a known
//! unsound engine proves nothing about a sound one.

use std::sync::{Mutex, OnceLock};

use hpcbd::check::{Classification, Explorer};
use hpcbd::cluster::Placement;
use hpcbd::minimpi::{mpirun, ReduceOp};
use hpcbd::minspark::{SparkCluster, SparkConfig};
use hpcbd::simnet::{set_spec_bug, SpecBug};
use proptest::prelude::*;

/// Serializes every test that runs speculative-mode explorations: the
/// planted [`SpecBug`] is process-global, and only speculative runs
/// resolve it, so speculative explorations must not overlap the bug
/// test.
static SPEC_GUARD: Mutex<()> = Mutex::new(());

/// An MPI collective job followed by a Spark shuffle job — the two
/// paradigms the paper compares, back to back in one capture window.
fn mixed_workload() {
    let mpi = mpirun(Placement::new(2, 2), |rank| {
        let v = vec![rank.rank() as f64; 4];
        rank.allreduce(ReduceOp::Sum, &v)
    });
    assert!(mpi.results.iter().all(|r| r == &vec![6.0; 4]));

    let spark = SparkCluster::new(2, SparkConfig::default()).run(|sc| {
        let nums = sc.parallelize((1..=64u64).collect(), 4);
        let odds = nums.filter(|x| x % 2 == 1);
        sc.reduce(&odds, |a, b| a + b)
    });
    assert_eq!(spark.value, Some(32 * 32)); // sum of odd 1..=63
}

/// Oracle digest pinned by the first case; all later cases must agree.
static ORACLE: OnceLock<String> = OnceLock::new();

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn perturbed_schedules_reproduce_the_oracle_for_any_seed(seed in 0u64..u64::MAX) {
        let report = Explorer::new(seed).schedules(4).threads(4).explore(mixed_workload);
        if let Some(d) = &report.divergence {
            prop_assert!(false, "divergence under seed {seed:#x}:\n{}", d.render());
        }
        prop_assert_eq!(report.schedules_run, 4);
        let pinned = ORACLE.get_or_init(|| report.oracle_digest.clone());
        prop_assert_eq!(
            &report.oracle_digest, pinned,
            "oracle digest changed between explorations"
        );
    }

    #[test]
    fn speculative_schedules_reproduce_the_oracle_for_any_seed(
        seed in 0u64..u64::MAX,
        t_idx in 0usize..2,
    ) {
        let threads = [2usize, 4][t_idx];
        let _g = SPEC_GUARD.lock().unwrap_or_else(|e| e.into_inner());
        let report = Explorer::new(seed)
            .schedules(4)
            .threads(threads)
            .speculative(true)
            .explore(mixed_workload);
        if let Some(d) = &report.divergence {
            prop_assert!(
                false,
                "speculative divergence under seed {seed:#x} threads={threads}:\n{}",
                d.render()
            );
        }
        prop_assert_eq!(report.schedules_run, 4);
        // Same workload, same sequential oracle — whichever engine ran
        // the perturbed schedules.
        let pinned = ORACLE.get_or_init(|| report.oracle_digest.clone());
        prop_assert_eq!(
            &report.oracle_digest, pinned,
            "oracle digest changed between explorations"
        );
    }
}

/// Device-reuse workload for the planted-bug self-test: one process
/// queues bursts of *background* disk writes, then a foreground write
/// that must serialize behind them. A single process keeps the engine's
/// speculation decisions a pure function of the perturbation seed (no
/// cross-thread races over the commit token). Background writes are the
/// ops whose outcome hangs on the device cell: they never advance the
/// caller's clock, so the queue position of each next write — and the
/// foreground write's finish time — comes entirely from the cell's
/// next-free value. One trusted-but-unpublished reservation collapses
/// the queue and the captures diverge from the oracle deterministically.
/// (A purely *blocking* writer would mask the bug: its clock always
/// trails its own reservation, so a stale cell never wins the
/// `max(op time, next-free)` race.)
fn disk_reuse_workload() {
    use hpcbd::simnet::{NodeId, Sim, Topology, Work};
    let mut sim = Sim::new(Topology::comet(1));
    sim.spawn(NodeId(0), "d0", |ctx| {
        for _ in 0..4 {
            ctx.compute(Work::flops(1.0e5), 1.0);
            for _ in 0..4 {
                ctx.disk_write_background(256 << 10);
            }
            ctx.disk_write(1 << 10);
        }
    });
    sim.run();
}

#[test]
fn explorer_catches_a_planted_misvalidation_bug() {
    let _g = SPEC_GUARD.lock().unwrap_or_else(|e| e.into_inner());

    // Sanity: without the bug the same exploration is clean, so the
    // divergence below is attributable to the planted bug alone.
    Explorer::new(0xBAD)
        .schedules(4)
        .threads(4)
        .speculative(true)
        .explore(disk_reuse_workload)
        .assert_deterministic();

    set_spec_bug(Some(SpecBug::TrustStalePrediction));
    let report = Explorer::new(0xBAD)
        .schedules(4)
        .threads(4)
        .speculative(true)
        .explore(disk_reuse_workload);
    set_spec_bug(None);

    let d = report
        .divergence
        .expect("explorer failed to catch TrustStalePrediction — the safety net is dead");
    assert_eq!(
        d.classification,
        Some(Classification::ScheduleDependent),
        "a mis-validation reproduces under its own seed, so it must \
         classify as schedule-dependent: {}",
        d.render()
    );
}
