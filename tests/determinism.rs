//! Cross-mode bit-determinism regression tests.
//!
//! The engine's contract (DESIGN.md §"Parallel engine") is that
//! [`Execution::Parallel`] produces **bit-identical** virtual-time
//! results to [`Execution::Sequential`] — same makespans, same
//! per-process finish times and statistics, same benchmark tables. These
//! tests run whole paper pipelines (Fig. 3, Fig. 6) and an adversarial
//! engine-level workload twice under each mode and compare everything.
//!
//! The execution mode is process-global state
//! ([`hpcbd::simnet::set_default_execution`]), so every test in this
//! binary serializes on one mutex and restores Sequential before
//! releasing it.

use std::sync::Mutex;

use hpcbd::cluster::Placement;
use hpcbd::core::{bench_pagerank, bench_reduce};
use hpcbd::simnet::{
    set_default_execution, Execution, MatchSpec, Payload, Sim, SimTime, Topology, Transport, Work,
};

/// Serializes tests that flip the process-global execution default.
static EXEC_GUARD: Mutex<()> = Mutex::new(());

/// Run `f` twice under each mode (Sequential, Parallel, Speculative),
/// returning the six outputs in order [seq, seq, par, par, spec, spec].
fn six_runs<T>(mut f: impl FnMut() -> T) -> Vec<T> {
    let _g = EXEC_GUARD.lock().unwrap();
    let mut out = Vec::with_capacity(6);
    for exec in [
        Execution::Sequential,
        Execution::Sequential,
        Execution::Parallel { threads: 4 },
        Execution::Parallel { threads: 4 },
        Execution::Speculative { threads: 4 },
        Execution::Speculative { threads: 4 },
    ] {
        set_default_execution(exec);
        out.push(f());
    }
    set_default_execution(Execution::Sequential);
    out
}

#[test]
fn fig3_pipeline_is_bit_identical_across_modes() {
    let tables =
        six_runs(|| bench_reduce::figure3(Placement::new(2, 4), &[1usize, 4096], 3).to_csv());
    assert_eq!(tables[0], tables[1], "sequential runs differ");
    assert_eq!(tables[0], tables[2], "parallel differs from sequential");
    assert_eq!(tables[2], tables[3], "parallel runs differ");
    assert_eq!(tables[0], tables[4], "speculative differs from sequential");
    assert_eq!(tables[4], tables[5], "speculative runs differ");
}

#[test]
fn fig6_pipeline_is_bit_identical_across_modes() {
    let input = bench_pagerank::PagerankInput::small();
    let tables = six_runs(|| bench_pagerank::figure6(&input, &[1u32, 2], 4).to_csv());
    assert_eq!(tables[0], tables[1], "sequential runs differ");
    assert_eq!(tables[0], tables[2], "parallel differs from sequential");
    assert_eq!(tables[2], tables[3], "parallel runs differ");
    assert_eq!(tables[0], tables[4], "speculative differs from sequential");
    assert_eq!(tables[4], tables[5], "speculative runs differ");
}

/// An adversarial mixed workload exercising every visible-operation
/// class: point-to-point messaging with equal-time ties, timeouts,
/// try_recv polling, disk and NFS contention, one-sided transfers, and
/// uneven compute. Compares full per-process reports, not just the
/// makespan.
#[test]
fn engine_reports_are_bit_identical_across_modes() {
    #[derive(Debug, PartialEq)]
    struct RunDigest {
        finishes: Vec<(String, u64)>,
        stats: Vec<hpcbd::simnet::ProcStats>,
        makespan: SimTime,
        dropped: u64,
        results: Vec<u64>,
    }

    fn run_once() -> RunDigest {
        let mut sim = Sim::new(Topology::comet(3));
        let n = 6u32;
        let pids: Vec<_> = (0..n)
            .map(|i| {
                let node = hpcbd::simnet::NodeId(i % 3);
                sim.spawn(node, format!("w{i}"), move |ctx| {
                    let tr = Transport::ipoib_socket();
                    let me = ctx.pid();
                    let right = hpcbd::simnet::Pid((me.0 + 1) % n);
                    let mut acc = 0u64;
                    for round in 0..5u64 {
                        // Uneven compute: different per-process cost so
                        // clocks interleave; ring exchange creates ties.
                        ctx.compute(Work::new(1.0 + me.0 as f64 + round as f64, 64.0), 1.0);
                        ctx.send(right, 7, 128 + 64 * round, Payload::value(round), &tr);
                        let m = ctx.recv(MatchSpec::tag(7));
                        if let Payload::Value(v) = &m.payload {
                            acc += v.downcast_ref::<u64>().unwrap() + m.bytes;
                        }
                        if me.0 % 2 == 0 {
                            ctx.disk_write(1 << 16);
                        } else {
                            ctx.nfs_read(1 << 14);
                        }
                        if ctx.try_recv(MatchSpec::tag(99)).is_some() {
                            acc += 1_000_000;
                        }
                        ctx.one_sided_transfer(
                            hpcbd::simnet::NodeId((me.0 + 1) % 3),
                            256,
                            &Transport::rdma_verbs(),
                            1,
                        );
                    }
                    // A timeout that always fires (nobody sends tag 55).
                    assert!(ctx
                        .recv_timeout(
                            MatchSpec::tag(55),
                            hpcbd::simnet::SimDuration::from_micros(50)
                        )
                        .is_err());
                    acc
                })
            })
            .collect();
        let mut report = sim.run();
        RunDigest {
            finishes: report
                .procs
                .iter()
                .map(|p| (p.name.clone(), p.finish.nanos()))
                .collect(),
            stats: report.procs.iter().map(|p| p.stats.clone()).collect(),
            makespan: report.makespan(),
            dropped: report.dropped_msgs,
            results: pids.iter().map(|&p| report.result::<u64>(p)).collect(),
        }
    }

    let runs = six_runs(run_once);
    assert_eq!(runs[0], runs[1], "sequential runs differ");
    assert_eq!(runs[0], runs[2], "parallel differs from sequential");
    assert_eq!(runs[2], runs[3], "parallel runs differ");
    assert_eq!(runs[0], runs[4], "speculative differs from sequential");
    assert_eq!(runs[4], runs[5], "speculative runs differ");
}

/// Faulty runs must be exactly as deterministic as clean ones: the same
/// [`hpcbd::simnet::FaultPlan`] — a node crash, a straggler interval, a
/// degraded link, and heavy message drops all at once — replayed under
/// both execution modes must yield byte-identical traces (including the
/// injected `Fault` events) and identical per-process statistics.
#[test]
fn faulty_runs_are_bit_identical_across_modes() {
    use hpcbd::simnet::{FaultPlan, NodeId, Pid, SimDuration};

    #[derive(Debug, PartialEq)]
    struct RunDigest {
        trace_json: String,
        stats: Vec<hpcbd::simnet::ProcStats>,
        makespan: SimTime,
        dropped: u64,
        results: Vec<u64>,
    }

    fn run_once() -> RunDigest {
        let mut sim = Sim::new(Topology::comet(3));
        let trace = sim.enable_tracing();
        sim.set_fault_plan(
            FaultPlan::new(99)
                .crash_node(NodeId(1), SimTime(40_000_000))
                .slow_node(NodeId(2), SimTime(0), SimTime(u64::MAX), 3.0)
                .degrade_link(NodeId(0), NodeId(2), SimTime(0), SimTime(u64::MAX), 2.5)
                .drop_messages(100_000),
        );
        // A sink on node 1 that dies when its node's crash hits; workers
        // fire-and-forget to it (messages to the dead sink are dropped by
        // the engine, never blocking the senders).
        let sink = sim.spawn(NodeId(1), "sink".to_string(), move |ctx| {
            let crash = ctx.node_crash_time();
            let mut seen = 0u64;
            while let Ok(m) = ctx.recv_deadline(MatchSpec::tag(9), crash) {
                seen += m.bytes;
            }
            seen
        });
        let n = 4u32;
        let workers: Vec<_> = (0..n)
            .map(|i| {
                let node = hpcbd::simnet::NodeId(i % 3);
                sim.spawn(node, format!("w{i}"), move |ctx| {
                    let tr = Transport::ipoib_socket();
                    let me = ctx.pid();
                    let right = Pid(1 + (me.0 % n));
                    let mut acc = 0u64;
                    for round in 0..6u64 {
                        ctx.compute(Work::new(2.0e6 * (1.0 + me.0 as f64), 64.0), 1.0);
                        ctx.send(sink, 9, 256, Payload::Empty, &tr);
                        ctx.send(right, 7, 128 + 64 * round, Payload::value(round), &tr);
                        let m = ctx.recv(MatchSpec::tag(7));
                        if let Payload::Value(v) = &m.payload {
                            acc += v.downcast_ref::<u64>().unwrap() + m.bytes;
                        }
                        if ctx
                            .recv_timeout(MatchSpec::tag(55), SimDuration::from_micros(40))
                            .is_err()
                        {
                            acc += 1;
                        }
                    }
                    acc
                })
            })
            .collect();
        let mut report = sim.run();
        let names: Vec<String> = report.procs.iter().map(|p| p.name.clone()).collect();
        let fault_spans = trace
            .sorted_events()
            .iter()
            .filter(|e| matches!(e.kind, hpcbd::simnet::EventKind::Fault(_)))
            .count();
        assert!(
            fault_spans > 0,
            "the plan must actually inject faults into the trace"
        );
        RunDigest {
            trace_json: trace.to_chrome_json(&names),
            stats: report.procs.iter().map(|p| p.stats.clone()).collect(),
            makespan: report.makespan(),
            dropped: report.dropped_msgs,
            results: workers.iter().map(|&p| report.result::<u64>(p)).collect(),
        }
    }

    let runs = six_runs(run_once);
    assert!(
        runs[0].stats.iter().any(|s| s.fault_events > 0),
        "fault statistics must be populated"
    );
    assert_eq!(runs[0], runs[1], "sequential runs differ");
    assert_eq!(runs[0], runs[2], "parallel differs from sequential");
    assert_eq!(runs[2], runs[3], "parallel runs differ");
    assert_eq!(runs[0], runs[4], "speculative differs from sequential");
    assert_eq!(runs[4], runs[5], "speculative runs differ");
}

/// The observability layer must not disturb determinism, and its own
/// output must be deterministic: capturing a Fig. 6 quick run and
/// rendering the full [`hpcbd::obs::RunReport`] (phase attribution,
/// causal critical path, category breakdowns) must produce byte-identical
/// JSON under both execution modes.
#[test]
fn run_reports_are_byte_identical_across_modes() {
    fn run_once() -> String {
        hpcbd::simnet::begin_capture();
        let input = bench_pagerank::PagerankInput::small();
        let _ = bench_pagerank::figure6(&input, &[2u32], 4);
        let captures = hpcbd::simnet::end_capture();
        assert!(
            !captures.is_empty(),
            "figure6 must produce at least one captured run"
        );
        hpcbd::obs::RunReport::from_captures("fig6", true, &captures).to_json()
    }

    let reports = six_runs(run_once);
    assert_eq!(reports[0], reports[1], "sequential reports differ");
    assert_eq!(
        reports[0], reports[2],
        "parallel report differs from sequential"
    );
    assert_eq!(reports[2], reports[3], "parallel reports differ");
    assert_eq!(
        reports[0], reports[4],
        "speculative report differs from sequential"
    );
    assert_eq!(reports[4], reports[5], "speculative reports differ");
    // The report must actually contain phase attribution, not an empty
    // shell: PageRank iterations and runtime collectives are annotated.
    assert!(
        reports[0].contains("pagerank/iter/*"),
        "per-iteration spans missing from report"
    );
}
