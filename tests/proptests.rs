//! Property-based tests over the stack's core invariants (proptest).
//!
//! Each property spawns full simulations, so case counts are kept small;
//! shrinking still gives minimal counterexamples on failure.

use proptest::prelude::*;

use hpcbd::cluster::Placement;
use hpcbd::minimpi::{mpirun, ReduceOp};
use hpcbd::minomp::{OmpPool, Schedule};
use hpcbd::minspark::{SparkCluster, SparkConfig};
use hpcbd::simnet::{partition_of, InputFormat};
use hpcbd::workloads::{PowerLawGraph, StackExchangeDataset};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// MPI allreduce equals the sequential fold for arbitrary
    /// communicator shapes and payloads.
    #[test]
    fn mpi_allreduce_matches_fold(
        nodes in 1u32..4,
        ppn in 1u32..4,
        len in 1usize..40,
        seed in 0u64..1000,
    ) {
        let placement = Placement::new(nodes, ppn);
        let p = placement.total();
        let out = mpirun(placement, move |rank| {
            let data: Vec<f64> = (0..len)
                .map(|i| ((seed + rank.rank() as u64 * 31 + i as u64) % 97) as f64)
                .collect();
            rank.allreduce(ReduceOp::Sum, &data)
        });
        let mut oracle = vec![0.0f64; len];
        for r in 0..p {
            for (i, o) in oracle.iter_mut().enumerate() {
                *o += ((seed + r as u64 * 31 + i as u64) % 97) as f64;
            }
        }
        for got in out.results {
            prop_assert_eq!(&got, &oracle);
        }
    }

    /// MPI alltoall is an exact transpose for any communicator size.
    #[test]
    fn mpi_alltoall_transposes(nodes in 1u32..3, ppn in 1u32..4) {
        let placement = Placement::new(nodes, ppn);
        let p = placement.total();
        let out = mpirun(placement, move |rank| {
            let me = rank.rank();
            let chunks: Vec<Vec<u64>> =
                (0..p).map(|dst| vec![(me as u64) << 16 | dst as u64]).collect();
            rank.alltoall(chunks)
        });
        for (me, rows) in out.results.iter().enumerate() {
            for (src, chunk) in rows.iter().enumerate() {
                prop_assert_eq!(chunk[0], (src as u64) << 16 | me as u64);
            }
        }
        // (indexing above is by construction, not a lint victim)
    }

    /// Every OpenMP schedule visits each index exactly once and reduces
    /// to the sequential fold.
    #[test]
    fn omp_schedules_partition_iterations(
        n in 0u64..3000,
        threads in 1usize..9,
        chunk in 1usize..64,
    ) {
        for sched in [
            Schedule::Static { chunk: None },
            Schedule::Static { chunk: Some(chunk) },
            Schedule::Dynamic { chunk },
            Schedule::Guided { min_chunk: chunk },
        ] {
            let pool = OmpPool::new(threads);
            let sum = pool.parallel_reduce(0..n, sched, 0u64, |i| i, |a, b| a + b);
            prop_assert_eq!(sum, (0..n).sum::<u64>());
        }
    }

    /// Spark reduceByKey agrees with a HashMap oracle for arbitrary pair
    /// multisets, partition counts, and slice counts.
    #[test]
    fn spark_reduce_by_key_matches_oracle(
        pairs in proptest::collection::vec((0u32..50, 0u64..1000), 0..200),
        parts in 1u32..6,
        slices in 1u32..6,
    ) {
        let pairs2 = pairs.clone();
        let r = SparkCluster::new(2, SparkConfig::default()).run(move |sc| {
            let rdd = sc.parallelize(pairs2, slices);
            let red = rdd.reduce_by_key(parts, |a, b| a + b);
            let mut out = sc.collect(&red);
            out.sort();
            out
        });
        let mut oracle = std::collections::HashMap::new();
        for (k, v) in &pairs {
            *oracle.entry(*k).or_insert(0u64) += v;
        }
        let mut oracle: Vec<(u32, u64)> = oracle.into_iter().collect();
        oracle.sort();
        prop_assert_eq!(r.value, oracle);
    }

    /// Hash partitioning stays in range and is deterministic.
    #[test]
    fn partitioning_in_range(key in any::<u64>(), parts in 1u32..100) {
        let p = partition_of(&key, parts);
        prop_assert!(p < parts);
        prop_assert_eq!(p, partition_of(&key, parts));
    }

    /// StackExchange sampling is chunking-invariant: any partition of
    /// the byte range yields the same sample multiset.
    #[test]
    fn dataset_chunking_invariance(
        size_mb in 1u64..64,
        scale in 1u64..50,
        cuts in proptest::collection::vec(1u64..1000, 0..6),
    ) {
        let size = size_mb << 20;
        let ds = StackExchangeDataset::new(42, size, scale);
        let whole: Vec<u64> =
            ds.sample_records(0, size).iter().map(|p| p.id).collect();
        // Cut points anywhere in the file.
        let mut offsets: Vec<u64> = cuts.iter().map(|c| c * size / 1000).collect();
        offsets.push(0);
        offsets.push(size);
        offsets.sort();
        offsets.dedup();
        let mut parts: Vec<u64> = Vec::new();
        for w in offsets.windows(2) {
            parts.extend(ds.sample_records(w[0], w[1] - w[0]).iter().map(|p| p.id));
        }
        let mut a = whole;
        let mut b = parts;
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    /// Graph generation is deterministic, self-loop-free and in-bounds.
    #[test]
    fn graph_edges_well_formed(n in 2u32..500, seed in 0u64..50, base in 1u32..12) {
        let g = PowerLawGraph::new(n, seed, base);
        let edges = g.edges();
        prop_assert_eq!(edges.len() as u64, g.edge_count());
        for (v, u) in &edges {
            prop_assert!(*v < n && *u < n);
            prop_assert!(v != u);
        }
        prop_assert_eq!(g.edges(), edges);
    }

    /// The engine is deterministic under arbitrary small message storms:
    /// same seed, same virtual times — twice.
    #[test]
    fn engine_determinism_under_random_traffic(
        seed in 0u64..200,
        procs in 2u32..6,
        msgs in 1u32..8,
    ) {
        fn run(seed: u64, procs: u32, msgs: u32) -> Vec<u64> {
            use hpcbd::simnet::*;
            let mut sim = Sim::new(Topology::comet(2));
            for i in 0..procs {
                sim.spawn(NodeId(i % 2), format!("p{i}"), move |ctx| {
                    let tr = Transport::ipoib_socket();
                    for m in 0..msgs {
                        let h = hpcbd::workloads::splitmix64(seed, (i * 31 + m) as u64);
                        let dst = Pid((h % procs as u64) as u32);
                        if dst != ctx.pid() {
                            ctx.send(dst, 7, 1 + h % 4096, Payload::Empty, &tr);
                        }
                        ctx.advance(SimDuration::from_nanos(h % 10_000));
                    }
                    // Drain whatever arrived for us.
                    while ctx.try_recv(MatchSpec::tag(7)).is_some() {}
                    ctx.sleep(SimDuration::from_millis(1));
                    while ctx.try_recv(MatchSpec::tag(7)).is_some() {}
                });
            }
            let report = sim.run();
            report.procs.iter().map(|p| p.finish.nanos()).collect()
        }
        prop_assert_eq!(run(seed, procs, msgs), run(seed, procs, msgs));
    }

    /// MPI scan equals the sequential inclusive prefix for arbitrary
    /// shapes.
    #[test]
    fn mpi_scan_matches_prefix(nodes in 1u32..3, ppn in 1u32..5, seed in 0u64..100) {
        let placement = Placement::new(nodes, ppn);
        let out = mpirun(placement, move |rank| {
            let v = ((seed + rank.rank() as u64 * 13) % 50) as f64;
            rank.scan(ReduceOp::Sum, &[v])
        });
        let mut prefix = 0.0;
        for (r, got) in out.results.iter().enumerate() {
            prefix += ((seed + r as u64 * 13) % 50) as f64;
            prop_assert_eq!(got[0], prefix);
        }
    }

    /// MPI reduce_scatter_block: block `r` of the element-wise sum lands
    /// on rank `r`, for arbitrary communicator shapes and block sizes.
    #[test]
    fn mpi_reduce_scatter_matches_oracle(
        nodes in 1u32..3,
        ppn in 1u32..4,
        block in 1usize..6,
        seed in 0u64..100,
    ) {
        let placement = Placement::new(nodes, ppn);
        let p = placement.total();
        let out = mpirun(placement, move |rank| {
            let data: Vec<f64> = (0..p as usize * block)
                .map(|i| ((seed + rank.rank() as u64 * 31 + i as u64) % 97) as f64)
                .collect();
            rank.reduce_scatter_block(ReduceOp::Sum, &data)
        });
        for (me, got) in out.results.iter().enumerate() {
            for (j, g) in got.iter().enumerate() {
                let idx = me * block + j;
                let oracle: f64 = (0..p as u64)
                    .map(|r| ((seed + r * 31 + idx as u64) % 97) as f64)
                    .sum();
                prop_assert_eq!(*g, oracle);
            }
        }
    }

    /// OpenMP task graphs: for random DAG-ish dependence patterns over a
    /// small variable set, execution respects every in/out dependence
    /// (checked by replaying the observed order sequentially).
    #[test]
    fn omp_task_deps_respected(
        ops in proptest::collection::vec((0usize..6, any::<bool>()), 1..25),
        threads in 1usize..6,
    ) {
        use std::sync::Mutex as StdMutex;
        let pool = hpcbd::minomp::OmpPool::new(threads);
        let order: std::sync::Arc<StdMutex<Vec<usize>>> =
            std::sync::Arc::new(StdMutex::new(Vec::new()));
        pool.task_scope(|s| {
            for (tid, (var, is_write)) in ops.iter().enumerate() {
                let order = order.clone();
                let (ins, outs): (Vec<usize>, Vec<usize>) = if *is_write {
                    (vec![], vec![*var])
                } else {
                    (vec![*var], vec![])
                };
                s.task(&ins, &outs, move || order.lock().unwrap().push(tid));
            }
        });
        let observed = order.lock().unwrap().clone();
        prop_assert_eq!(observed.len(), ops.len());
        // Positions of each task in the observed order.
        let mut pos = vec![0usize; ops.len()];
        for (p, t) in observed.iter().enumerate() {
            pos[*t] = p;
        }
        // Every (reader after its writer) and (writer after prior
        // readers/writers) constraint must hold.
        for (i, (var_i, write_i)) in ops.iter().enumerate() {
            for (j, (var_j, write_j)) in ops.iter().enumerate().skip(i + 1) {
                if var_i == var_j && (*write_i || *write_j) {
                    prop_assert!(
                        pos[i] < pos[j],
                        "task {j} must follow task {i} on var {var_i}"
                    );
                }
            }
        }
    }

    /// Sampled datasets report logical record counts independent of the
    /// sampling rate (within rounding).
    #[test]
    fn logical_counts_invariant_to_scale(size_mb in 8u64..64, scale in 1u64..64) {
        let size = size_mb << 20;
        let ds = StackExchangeDataset::new(7, size, scale);
        let sample = ds.sample_records(0, size).len() as f64;
        let logical = sample * ds.logical_scale();
        let truth = ds.logical_records() as f64;
        prop_assert!((logical - truth).abs() / truth < 0.05,
            "logical {logical} vs truth {truth}");
    }
}
