//! Integration tests asserting the *shapes* of every reproduced result
//! (DESIGN.md §4's expected-shape list) on scaled-down configurations.
//! These are the cross-crate, end-to-end checks; per-module correctness
//! lives in each crate's unit tests.

use hpcbd::cluster::Placement;
use hpcbd::core::{bench_answers, bench_fileread, bench_pagerank, bench_reduce};
use hpcbd::minspark::ShuffleEngine;
use hpcbd::workloads::StackExchangeDataset;

fn placement() -> Placement {
    Placement::new(2, 4)
}

fn small_ds(size: u64) -> StackExchangeDataset {
    let records = size / hpcbd::workloads::stackexchange::RECORD_BYTES;
    StackExchangeDataset::new(0x517A, size, (records / 15_000).max(1))
}

#[test]
fn fig3_shape_mpi_wins_by_orders_of_magnitude_and_grows_with_size() {
    let mpi_small = bench_reduce::mpi_reduce_latency(placement(), 1, 5);
    let mpi_large = bench_reduce::mpi_reduce_latency(placement(), 262_144, 5);
    let spark = bench_reduce::spark_reduce_latency(placement(), 1, false);
    let spark_rdma = bench_reduce::spark_reduce_latency(placement(), 1, true);
    assert!(mpi_small.latency_us < mpi_large.latency_us);
    assert!(spark.latency_us > 100.0 * mpi_small.latency_us);
    // RDMA shuffle engine is irrelevant to a reduce action.
    let ratio = spark.latency_us / spark_rdma.latency_us;
    assert!((0.8..1.25).contains(&ratio), "ratio {ratio}");
}

#[test]
fn table2_shape_mpi_then_local_then_hdfs() {
    let size = 2u64 << 30;
    let (hdfs_t, hdfs_n) = bench_fileread::spark_hdfs_read(placement(), size, 2);
    let (local_t, local_n) = bench_fileread::spark_local_read(placement(), size);
    let (mpi_t, mpi_n) = bench_fileread::mpi_read(placement(), size).unwrap();
    assert!(mpi_t < local_t && local_t < hdfs_t);
    // The HDFS layer costs a moderate premium, not a blowup.
    let overhead = hdfs_t / local_t;
    assert!((1.02..2.0).contains(&overhead), "overhead {overhead}");
    // All three count the same logical records.
    assert!(((hdfs_n as f64 - mpi_n as f64).abs() / mpi_n as f64) < 0.01);
    assert!(((local_n as f64 - mpi_n as f64).abs() / mpi_n as f64) < 0.01);
}

#[test]
fn table2_shape_mpi_chunk_limit() {
    // 80 GB with 16 ranks: the int-typed MPI-IO count must overflow.
    let err = bench_fileread::mpi_read(placement(), 80 << 30).unwrap_err();
    assert!(err.contains("MAX_INT"));
}

#[test]
fn fig4_shape_spark_beats_hadoop_and_scales() {
    let ds = small_ds(2 << 30);
    let (spark_2, a1) = bench_answers::spark_answers(&ds, Placement::new(2, 4));
    let (spark_4, a2) = bench_answers::spark_answers(&ds, Placement::new(4, 4));
    let (hadoop_2, a3) = bench_answers::hadoop_answers(&ds, Placement::new(2, 4));
    assert!(spark_2 < hadoop_2, "spark {spark_2} vs hadoop {hadoop_2}");
    assert!(
        spark_4 < spark_2,
        "spark must scale: {spark_4} vs {spark_2}"
    );
    let (q, a) = ds.oracle_counts(0, ds.logical_size);
    let oracle = a as f64 / q as f64;
    for avg in [a1, a2, a3] {
        assert!((avg - oracle).abs() / oracle < 0.02);
    }
}

#[test]
fn fig6_shape_mpi_far_below_spark_and_rdma_marginal() {
    let input = bench_pagerank::PagerankInput::small();
    let (mpi_t, _) = bench_pagerank::mpi_pagerank(&input, placement());
    let (spark_t, _) = bench_pagerank::spark_pagerank(
        &input,
        placement(),
        bench_pagerank::SparkVariant::BigDataBenchTuned,
        ShuffleEngine::Socket,
    );
    let (rdma_t, _) = bench_pagerank::spark_pagerank(
        &input,
        placement(),
        bench_pagerank::SparkVariant::BigDataBenchTuned,
        ShuffleEngine::Rdma,
    );
    assert!(mpi_t * 5.0 < spark_t, "mpi {mpi_t} vs spark {spark_t}");
    // Tuned variant: RDMA does not significantly improve.
    assert!(rdma_t <= spark_t);
    assert!(spark_t / rdma_t < 1.4, "tuned RDMA gain should be marginal");
}

#[test]
fn fig7_shape_hibench_shuffles_more_than_tuned() {
    let input = bench_pagerank::PagerankInput::small();
    let (tuned_t, _) = bench_pagerank::spark_pagerank(
        &input,
        placement(),
        bench_pagerank::SparkVariant::BigDataBenchTuned,
        ShuffleEngine::Socket,
    );
    let (hibench_t, _) = bench_pagerank::spark_pagerank(
        &input,
        placement(),
        bench_pagerank::SparkVariant::HiBench,
        ShuffleEngine::Socket,
    );
    assert!(
        hibench_t > tuned_t,
        "HiBench {hibench_t} must exceed tuned {tuned_t}"
    );
}

#[test]
fn every_pagerank_flavor_is_deterministic_end_to_end() {
    let input = bench_pagerank::PagerankInput::small();
    let (t1, r1) = bench_pagerank::mpi_pagerank(&input, placement());
    let (t2, r2) = bench_pagerank::mpi_pagerank(&input, placement());
    assert_eq!(t1, t2);
    assert_eq!(r1, r2);
    let (s1, v1) = bench_pagerank::spark_pagerank(
        &input,
        placement(),
        bench_pagerank::SparkVariant::BigDataBenchTuned,
        ShuffleEngine::Socket,
    );
    let (s2, v2) = bench_pagerank::spark_pagerank(
        &input,
        placement(),
        bench_pagerank::SparkVariant::BigDataBenchTuned,
        ShuffleEngine::Socket,
    );
    assert_eq!(s1, s2);
    assert_eq!(v1, v2);
}

#[test]
fn openmp_cannot_leave_one_node_but_mpi_can() {
    // The structural difference Fig. 4 encodes: OpenMP results exist
    // only on one node; the MPI job runs the same computation across
    // nodes and gets the same answer.
    let ds = small_ds(1 << 30);
    let (_, omp_avg) = bench_answers::openmp_answers(&ds, 16);
    let (_, mpi_avg) = bench_answers::mpi_answers(&ds, Placement::new(4, 2)).unwrap();
    assert!((omp_avg - mpi_avg).abs() < 1e-9);
}
