//! Golden-schema and round-trip tests for the `hpcbd-obs` run report.
//!
//! The report JSON (`hpcbd.report.v1`) is the machine-readable artifact
//! every bench bin emits under `--report`; downstream tooling (the CI
//! `report-smoke` step, EXPERIMENTS.md tables) depends on its shape and
//! on its byte-stability. These tests pin both without pinning the
//! virtual-time numbers themselves: the schema keys, the canonical
//! serialization (parse → serialize is the identity on report output),
//! and the critical-path invariants (categories tile the makespan; the
//! path is never longer than the run).

use hpcbd::core::bench_pagerank;
use hpcbd::obs::{JsonValue, RunReport};

/// Capture one Fig. 6 quick pipeline and build its report.
///
/// Capture state is process-global; every test in this binary funnels
/// through this helper, which serializes on a local mutex.
fn fig6_report() -> RunReport {
    use std::sync::Mutex;
    static CAP_GUARD: Mutex<()> = Mutex::new(());
    let _g = CAP_GUARD.lock().unwrap();
    hpcbd::simnet::begin_capture();
    let input = bench_pagerank::PagerankInput::small();
    let _ = bench_pagerank::figure6(&input, &[2u32], 4);
    let captures = hpcbd::simnet::end_capture();
    assert!(
        !captures.is_empty(),
        "figure6 must capture at least one run"
    );
    RunReport::from_captures("fig6", true, &captures)
}

#[test]
fn report_json_has_stable_schema_and_round_trips() {
    let report = fig6_report();
    let json = report.to_json();

    // Canonical form: parsing and re-serializing is the identity.
    let parsed = JsonValue::parse(json.trim_end()).expect("report JSON must parse");
    assert_eq!(
        parsed.serialize(),
        json.trim_end(),
        "report serialization must be canonical (parse∘serialize = id)"
    );

    // Top-level schema.
    assert_eq!(
        parsed.get("schema").and_then(|v| match v {
            JsonValue::Str(s) => Some(s.as_str()),
            _ => None,
        }),
        Some("hpcbd.report.v1")
    );
    assert!(parsed.get("bench").is_some());
    assert!(parsed.get("quick").is_some());
    let runs = parsed
        .get("runs")
        .and_then(|r| r.as_arr())
        .expect("runs array");
    assert!(!runs.is_empty(), "fig6 quick must capture runs");

    // Per-run schema: every key downstream tooling reads must be present.
    for run in runs {
        for key in [
            "run",
            "procs",
            "cluster_nodes",
            "makespan_ns",
            "dropped_msgs",
            "totals",
            "critical_path",
            "phases",
            "histograms",
            "causal",
        ] {
            assert!(run.get(key).is_some(), "run section missing key {key:?}");
        }
        let crit = run.get("critical_path").unwrap();
        for key in [
            "length_ns",
            "makespan_ns",
            "by_category",
            "top_contributors",
        ] {
            assert!(crit.get(key).is_some(), "critical_path missing {key:?}");
        }
        for phase in run.get("phases").unwrap().as_arr().unwrap() {
            for key in ["phase", "spans", "span_ns"] {
                assert!(phase.get(key).is_some(), "phase row missing {key:?}");
            }
        }
    }
}

#[test]
fn critical_path_tiles_the_makespan() {
    let report = fig6_report();
    for s in &report.sections {
        let makespan = s.makespan.nanos();
        let by_cat_sum: u64 = s.crit.by_category.iter().sum();
        assert_eq!(
            by_cat_sum, makespan,
            "run {}: category breakdown must tile [0, makespan] exactly",
            s.index
        );
        assert!(
            s.crit.length.nanos() <= makespan,
            "run {}: critical path ({}) longer than makespan ({})",
            s.index,
            s.crit.length.nanos(),
            makespan
        );
        // Per-phase critical-path attribution must also tile the makespan:
        // every segment lands in exactly one (phase, category) cell.
        let phase_sum: u64 = s.phases.iter().map(|p| p.crit.iter().sum::<u64>()).sum();
        assert_eq!(
            phase_sum, makespan,
            "run {}: per-phase attribution must tile the makespan",
            s.index
        );
    }
}

#[test]
fn repeated_captures_are_byte_identical() {
    let a = fig6_report().to_json();
    let b = fig6_report().to_json();
    assert_eq!(a, b, "same pipeline, same bytes");
}

#[test]
fn report_sees_runtime_phase_annotations() {
    let report = fig6_report();
    let json = report.to_json();
    // Fig. 6 runs PageRank on MPI and Spark: both runtimes' span labels
    // must survive into the report (numeric path segments normalized).
    for label in ["pagerank/iter/*", "mpi/alltoall", "spark/stage/"] {
        assert!(json.contains(label), "report missing phase label {label:?}");
    }
}
