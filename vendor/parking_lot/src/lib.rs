//! Vendored, dependency-free subset of the `parking_lot` API, backed by
//! `std::sync`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the handful of synchronization types it actually uses:
//! [`Mutex`], [`RwLock`] and [`Condvar`], with the parking_lot calling
//! convention (no lock poisoning — a poisoned std lock is recovered by
//! taking the inner guard, matching parking_lot's behaviour of not
//! propagating panics through locks).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};

/// A mutual exclusion primitive (parking_lot-style: `lock()` returns the
/// guard directly, never a `Result`).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`]. Holds an `Option` internally so that
/// [`Condvar::wait`] can temporarily take the underlying std guard.
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(t: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(t))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A condition variable usable with [`MutexGuard`] (parking_lot-style:
/// `wait` takes `&mut guard`).
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    /// Block until notified, atomically releasing the guard's lock.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard already taken");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    /// Block until notified or until `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard already taken");
        let (inner, res) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Result of [`Condvar::wait_for`]; reports whether the wait timed out.
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A reader-writer lock (parking_lot-style: `read()`/`write()` return
/// guards directly).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// Exclusive-write RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(t: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(t))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_lock_and_into_inner() {
        let m = Mutex::new(5u32);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn condvar_wait_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
