//! Vendored, dependency-free subset of the `proptest` API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of proptest it actually uses: the [`proptest!`]
//! macro (with an optional `#![proptest_config(..)]` header), integer
//! range strategies, `any::<T>()`, `proptest::collection::vec`, tuple
//! strategies, and the `prop_assert*` macros.
//!
//! Generation is deterministic: each test function derives a seed from
//! its module path and name via FNV-1a, then draws values from a
//! SplitMix64 stream per case. There is no shrinking — on failure the
//! generated inputs are printed verbatim instead, which for the input
//! sizes used in this workspace is enough to reproduce by hand.

pub mod test_runner {
    /// Configuration for a `proptest!` block (subset: case count only).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` random cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 32 }
        }
    }

    /// FNV-1a hash of a string, used to give each property a stable seed.
    pub const fn fnv1a(s: &str) -> u64 {
        let bytes = s.as_bytes();
        let mut hash = 0xcbf29ce484222325u64;
        let mut i = 0;
        while i < bytes.len() {
            hash ^= bytes[i] as u64;
            hash = hash.wrapping_mul(0x100000001b3);
            i += 1;
        }
        hash
    }

    /// Deterministic SplitMix64 random stream.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed a new stream.
        pub fn new(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A value generator. Unlike real proptest this is generation-only
    /// (no value tree / shrinking).
    pub trait Strategy {
        /// The type of value produced.
        type Value;
        /// Draw one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    impl_signed_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // Uniform in [0, 1) from the top 53 bits, then scale.
                    let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                    self.start + (self.end - self.start) * unit as $t
                }
            }
        )*};
    }

    impl_float_range_strategy!(f64);

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            self.start + (self.end - self.start) * unit as f32
        }
    }

    /// Types that have a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy produced by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy drawing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for a `Vec` with element strategy `S` and a size range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Re-exports matching `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Property assertion; behaves like `assert!` in this vendored subset.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion; behaves like `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion; behaves like `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declare property tests. Each `fn name(arg in strategy, ...)` item
/// becomes a `#[test]` running `cases` deterministic random cases; on
/// failure the generated inputs are printed before the panic propagates.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;
     $($(#[$attr:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let base = $crate::test_runner::fnv1a(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..cfg.cases {
                    let mut rng = $crate::test_runner::TestRng::new(
                        base ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15),
                    );
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body),
                    );
                    if let Err(payload) = outcome {
                        eprintln!(
                            "proptest {}: case {}/{} failed with inputs:",
                            stringify!($name), case + 1, cfg.cases
                        );
                        $(eprintln!("  {} = {:?}", stringify!($arg), &$arg);)+
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -5i64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn vec_of_tuples_sized(v in collection::vec((0u32..50, any::<bool>()), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            for (a, _b) in &v {
                prop_assert!(*a < 50);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = (0u64..1000, any::<bool>());
        let a: Vec<_> = {
            let mut rng = TestRng::new(42);
            (0..8).map(|_| strat.generate(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = TestRng::new(42);
            (0..8).map(|_| strat.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
