//! Vendored, dependency-free subset of the `criterion` API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of criterion it actually uses: `Criterion`,
//! `benchmark_group` / `sample_size` / `bench_function` / `finish`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark runs `sample_size`
//! timed samples and reports min / mean / max wall-clock to stdout —
//! enough to guard against gross engine regressions, without the real
//! crate's statistics, plots, or baseline storage.

use std::hint;
use std::time::{Duration, Instant};

/// Prevent the compiler from optimising away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time one sample of `routine` (one call per sample; the real
    /// criterion batches calls, which this subset does not need).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run and report one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
        };
        // Warm-up sample, discarded.
        f(&mut b);
        b.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        let total: Duration = b.samples.iter().sum();
        let mean = total / b.samples.len() as u32;
        let min = b.samples.iter().min().copied().unwrap_or_default();
        let max = b.samples.iter().max().copied().unwrap_or_default();
        println!(
            "{}/{}: mean {:?} (min {:?}, max {:?}, {} samples)",
            self.name,
            id,
            mean,
            min,
            max,
            b.samples.len()
        );
        self
    }

    /// End the group (reporting happens per-benchmark; this is a no-op
    /// kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            _parent: self,
        }
    }

    /// Final-summary hook; a no-op in this subset.
    pub fn final_summary(&mut self) {}
}

/// Collect benchmark functions into a runner, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
            c.final_summary();
        }
    };
}

/// Emit a `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_requested_samples() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        {
            let mut g = c.benchmark_group("t");
            g.sample_size(3);
            g.bench_function("count", |b| b.iter(|| calls += 1));
            g.finish();
        }
        // 3 samples + 1 warm-up.
        assert_eq!(calls, 4);
    }
}
