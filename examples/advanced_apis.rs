//! The "modern features" tour: the API surface the paper's survey
//! sections describe beyond the headline benchmarks.
//!
//! * OpenMP 4.0 tasks with `depend` clauses (Sec. II-A)
//! * MPI-3 one-sided RMA windows (Sec. II-B)
//! * `MPI_Comm_split` sub-communicators
//! * Spark broadcast variables & accumulators (Sec. VI-B)
//! * OpenSHMEM alltoall + compare-and-swap (Sec. II-C)
//!
//! Run with: `cargo run --example advanced_apis`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hpcbd::cluster::Placement;
use hpcbd::minimpi::{mpirun, ReduceOp};
use hpcbd::minomp::OmpPool;
use hpcbd::minshmem::shmem_run;
use hpcbd::minspark::{Accumulator, SparkCluster, SparkConfig};

fn main() {
    println!("== Advanced paradigm features ==\n");

    // --- OpenMP tasks with dependences: a wavefront. --------------------
    const N: usize = 6;
    let pool = OmpPool::new(4);
    let grid: Arc<Vec<AtomicU64>> = Arc::new((0..N * N).map(|_| AtomicU64::new(0)).collect());
    pool.task_scope(|s| {
        for i in 0..N {
            for j in 0..N {
                let grid = grid.clone();
                let mut ins = Vec::new();
                if i > 0 {
                    ins.push((i - 1) * N + j);
                }
                if j > 0 {
                    ins.push(i * N + (j - 1));
                }
                s.task(&ins, &[i * N + j], move || {
                    let v = if i == 0 || j == 0 {
                        1
                    } else {
                        grid[(i - 1) * N + j].load(Ordering::SeqCst)
                            + grid[i * N + (j - 1)].load(Ordering::SeqCst)
                    };
                    grid[i * N + j].store(v, Ordering::SeqCst);
                });
            }
        }
    });
    println!(
        "OpenMP tasks : {N}x{N} wavefront, corner value C(10,5) = {}",
        grid[N * N - 1].load(Ordering::SeqCst)
    );

    // --- MPI: RMA window histogram + sub-communicator reductions. -------
    let out = mpirun(Placement::new(2, 4), |rank| {
        // One-sided histogram: every rank accumulates into rank 0's window.
        let win = rank.win_create(vec![0u64; 4]);
        rank.win_fence(&win);
        let bucket = (rank.rank() % 4) as usize;
        rank.win_accumulate(&win, 0, bucket, ReduceOp::Sum, &[1u64]);
        rank.win_fence(&win);
        let histogram = rank.win_local(&win);
        rank.win_free(win);
        // Split even/odd ranks and reduce within each group.
        let color = rank.rank() % 2;
        let mut sub = rank.comm_split(Some(color), rank.rank()).unwrap();
        let group_sum = sub.allreduce(rank, ReduceOp::Sum, &[rank.rank() as f64]);
        (histogram, color, group_sum[0])
    });
    println!(
        "MPI RMA      : histogram at rank 0 = {:?}",
        out.results[0].0
    );
    println!(
        "MPI split    : even-rank sum = {}, odd-rank sum = {}",
        out.results[0].2, out.results[1].2
    );

    // --- Spark: broadcast join + accumulator instrumentation. -----------
    let r = SparkCluster::new(2, SparkConfig::default()).run(|sc| {
        let dim_table: Vec<&str> = vec!["red", "green", "blue", "alpha"];
        let dim = sc.broadcast(dim_table, 64);
        let skipped = Accumulator::new();
        let skipped2 = skipped.clone();
        let facts = sc.parallelize((0..10_000u64).collect(), 8);
        let named = facts.filter(move |i| {
            if i % 7 == 0 {
                skipped2.add(1);
                false
            } else {
                true
            }
        });
        let labeled = named.map(move |i| (dim.value()[(i % 4) as usize], 1u64));
        let counts = labeled.reduce_by_key(4, |a, b| a + b);
        let mut out = sc.collect(&counts);
        out.sort();
        (out, skipped.value())
    });
    println!(
        "Spark        : broadcast-join counts = {:?}, accumulator skipped = {}",
        r.value.0, r.value.1
    );

    // --- OpenSHMEM: alltoall + CAS leader election. ----------------------
    let out = shmem_run(Placement::new(2, 2), |pe| {
        let n = pe.npes() as usize;
        let src = pe.malloc::<u64>("src", n, 0);
        let dst = pe.malloc::<u64>("dst", n, 0);
        let mine: Vec<u64> = (0..n as u64).map(|d| pe.pe() as u64 * 10 + d).collect();
        pe.local_write(&src, 0, &mine);
        pe.barrier_all();
        pe.alltoall(&src, &dst, 1);
        pe.barrier_all();
        let lock = pe.malloc::<u64>("leader", 1, u64::MAX);
        let won = pe.atomic_compare_swap(&lock, 0, u64::MAX, pe.pe() as u64, 0) == u64::MAX;
        pe.barrier_all();
        (pe.local_clone(&dst), won, pe.local_clone(&lock)[0])
    });
    println!(
        "OpenSHMEM    : PE0 alltoall row = {:?}, leader = PE{}",
        out.results[0].0,
        out.results.iter().position(|(_, won, _)| *won).unwrap()
    );

    println!("\nEvery construct above is the real runtime — check the crate");
    println!("docs (`cargo doc --open`) for the full API surfaces.");
}
