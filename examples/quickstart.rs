//! Quickstart: the whole stack in one file.
//!
//! Builds a 4-node simulated Comet cluster and runs the same word-count
//! style computation three ways — MPI, Spark, and raw simnet processes —
//! printing each paradigm's result and virtual execution time.
//!
//! Run with: `cargo run --example quickstart`

use hpcbd::cluster::Placement;
use hpcbd::minimpi::{mpirun, ReduceOp};
use hpcbd::minspark::{SparkCluster, SparkConfig};
use hpcbd::simnet::{MatchSpec, NodeId, Payload, Pid, Sim, Topology, Transport};

fn main() {
    println!("== hpcbd quickstart: one computation, three paradigms ==\n");
    let n: u64 = 100_000;
    let expected: u64 = (0..n).map(|i| i * i % 1000).sum();

    // --- 1. Raw simnet: two processes and a message. -------------------
    let mut sim = Sim::new(Topology::comet(2));
    let compute = sim.spawn(NodeId(0), "compute", move |ctx| {
        let sum: u64 = (0..n).map(|i| i * i % 1000).sum();
        ctx.compute(
            hpcbd::simnet::Work::new(n as f64 * 4.0, n as f64 * 8.0),
            1.0,
        );
        ctx.send(Pid(1), 1, 8, Payload::value(sum), &Transport::rdma_verbs());
        sum
    });
    sim.spawn(NodeId(1), "sink", |ctx| {
        let m = ctx.recv(MatchSpec::tag(1));
        *m.expect_value::<u64>()
    });
    let mut report = sim.run();
    let raw = report.result::<u64>(compute);
    println!(
        "simnet  : sum = {raw:>12}   virtual time = {}",
        report.makespan()
    );
    assert_eq!(raw, expected);

    // --- 2. MPI: 4 nodes x 4 ranks, local sums + allreduce. ------------
    let placement = Placement::new(4, 4);
    let out = mpirun(placement, move |rank| {
        let (me, p) = (rank.rank() as u64, rank.size() as u64);
        let local: u64 = (0..n).filter(|i| i % p == me).map(|i| i * i % 1000).sum();
        let per_rank = (n / p) as f64;
        rank.ctx().compute(
            hpcbd::simnet::Work::new(per_rank * 4.0, per_rank * 8.0),
            1.0,
        );
        rank.allreduce(ReduceOp::Sum, &[local])[0]
    });
    println!(
        "MPI     : sum = {:>12}   virtual time = {}",
        out.results[0],
        out.elapsed()
    );
    assert_eq!(out.results[0], expected);

    // --- 3. Spark: the same fold as a lazy RDD action. -----------------
    let result = SparkCluster::new(4, SparkConfig::default()).run(move |sc| {
        let xs = sc.parallelize((0..n).collect(), 16);
        let squares = xs.map(|i| i * i % 1000);
        sc.reduce(&squares, |a, b| a + b)
    });
    println!(
        "Spark   : sum = {:>12}   virtual time = {}",
        result.value.unwrap(),
        result.elapsed
    );
    assert_eq!(result.value.unwrap(), expected);

    println!("\nAll three agree. Note the virtual-time gap between the");
    println!("native runtimes and the JVM-modeled Spark stack — the core");
    println!("trade-off the reproduced paper quantifies.");
}
