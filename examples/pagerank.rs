//! PageRank, written the way Fig. 5 of the paper shows the BigDataBench
//! Spark code: co-partitioned `links`, per-iteration `persist`, and a
//! `reduceByKey` + `mapValues` rank update — plus the MPI and OpenSHMEM
//! equivalents, all validated against the sequential reference.
//!
//! Run with: `cargo run --example pagerank`

use hpcbd::cluster::Placement;
use hpcbd::core::bench_pagerank::{
    mpi_pagerank, shmem_pagerank, spark_pagerank, spark_semantics_oracle, PagerankInput,
    SparkVariant,
};
use hpcbd::minspark::ShuffleEngine;
use hpcbd::workloads::pagerank_reference;

fn main() {
    println!("== PageRank three ways (Fig. 5's dataflow) ==\n");
    let input = PagerankInput::small();
    let placement = Placement::new(2, 4);
    println!(
        "graph: {} sample vertices x{} scale, {} iterations\n",
        input.graph.vertices, input.scale, input.iters
    );

    // Sequential references.
    let reference = pagerank_reference(&input.graph, input.iters);
    let spark_oracle = spark_semantics_oracle(&input.graph, input.iters);

    let (t, ranks) = mpi_pagerank(&input, placement);
    let err: f64 = ranks
        .iter()
        .zip(&reference)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max);
    println!("MPI      : {t:.3}s  max |err| vs reference = {err:.2e}");

    let (t, ranks) = shmem_pagerank(&input, placement);
    let err: f64 = ranks
        .iter()
        .zip(&reference)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max);
    println!("OpenSHMEM: {t:.3}s  max |err| vs reference = {err:.2e}");

    let (t, ranks) = spark_pagerank(
        &input,
        placement,
        SparkVariant::BigDataBenchTuned,
        ShuffleEngine::Socket,
    );
    let err: f64 = ranks
        .iter()
        .map(|(v, r)| (r - spark_oracle[v]).abs())
        .fold(0.0, f64::max);
    println!("Spark    : {t:.3}s  max |err| vs dataflow oracle = {err:.2e}");

    let (t_hibench, _) = spark_pagerank(
        &input,
        placement,
        SparkVariant::HiBench,
        ShuffleEngine::Socket,
    );
    println!("Spark (HiBench, shuffle-heavy): {t_hibench:.3}s");

    println!("\nThe tuned variant is the paper's Fig. 5 one-line `persist`");
    println!("lesson; the full sweeps are `fig6` and `fig7` in hpcbd-bench.");
}
