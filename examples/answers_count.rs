//! The StackExchange AnswersCount benchmark (the paper's Sec. V-C) at
//! example scale: a 2 GB synthetic Q&A dump processed by all four
//! paradigms, with the oracle check.
//!
//! Run with: `cargo run --example answers_count`

use hpcbd::cluster::Placement;
use hpcbd::core::bench_answers;
use hpcbd::workloads::stackexchange::RECORD_BYTES;
use hpcbd::workloads::StackExchangeDataset;

fn main() {
    println!("== AnswersCount: average answers per question, 2 GB ==\n");
    let size = 2u64 << 30;
    let records = size / RECORD_BYTES;
    let ds = StackExchangeDataset::new(0xE7A, size, records / 25_000);
    let placement = Placement::new(2, 4);

    let (q, a) = ds.oracle_counts(0, ds.logical_size);
    let oracle = a as f64 / q as f64;
    println!("oracle            : {oracle:.4} answers/question\n");

    let (t, avg) = bench_answers::openmp_answers(&ds, 8);
    println!("OpenMP (8 threads): {avg:.4} in {t:.3}s (one node)");

    let (t, avg) = bench_answers::mpi_answers(&ds, placement).expect("chunks fit");
    println!("MPI (2x4 ranks)   : {avg:.4} in {t:.3}s");

    let (t, avg) = bench_answers::spark_answers(&ds, placement);
    println!("Spark (2x4 execs) : {avg:.4} in {t:.3}s");

    let (t, avg) = bench_answers::hadoop_answers(&ds, placement);
    println!("Hadoop (2x4 slots): {avg:.4} in {t:.3}s");

    println!("\nSame answer everywhere; very different cost profiles —");
    println!("run `cargo run -p hpcbd-bench --bin fig4` for the full sweep.");
}
