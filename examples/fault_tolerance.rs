//! Fault tolerance, both ways (the paper's Sec. VI-D): kill an HDFS
//! datanode under a reader and an executor under a Spark job, and watch
//! both runs finish with correct answers; then contrast with the MPI
//! checkpoint/restart protocol.
//!
//! Run with: `cargo run --example fault_tolerance`

use hpcbd::cluster::Placement;
use hpcbd::minhdfs::{Hdfs, HdfsConfig};
use hpcbd::minimpi::{mpirun, Checkpointer};
use hpcbd::minspark::{SparkCluster, SparkConfig, StorageLevel};
use hpcbd::simnet::{NodeId, Sim, SimDuration, SimTime, Topology};

fn main() {
    println!("== Failure injection across the stack ==\n");

    // --- HDFS: a datanode dies; the read fails over transparently. -----
    let mut sim = Sim::new(Topology::comet(3));
    let hdfs = Hdfs::deploy(
        &mut sim,
        HdfsConfig::with_replication(2),
        Some((NodeId(1), SimTime(5_000_000))),
    );
    hdfs.load_file_instant("/data", 512 << 20, None);
    let h = hdfs.clone();
    let reader = sim.spawn(NodeId(0), "reader", move |ctx| {
        ctx.sleep(SimDuration::from_millis(50)); // let the failure land
        let bytes = h.read_file(ctx, "/data");
        h.shutdown(ctx);
        bytes
    });
    let mut report = sim.run();
    let bytes = report.result::<u64>(reader);
    println!("HDFS : datanode@node1 killed at t=5ms; read still returned {bytes} bytes");

    // --- Spark: an executor dies mid-job; lineage recomputes. ----------
    let mut config = SparkConfig {
        executors_per_node: 2,
        task_timeout: SimDuration::from_secs(3),
        ..Default::default()
    };
    let _ = &mut config;
    // The app starts at ~0.9s (context startup); kill the executor right
    // between the first and second action so its cached and shuffle
    // state is genuinely lost and must be recomputed from lineage.
    config.fail_executor = Some((1, SimTime(1_300_000_000)));
    let r = SparkCluster::new(2, config).run(|sc| {
        let pairs: Vec<(u32, u64)> = (0..50_000).map(|i| (i % 97, 1)).collect();
        let rdd = sc.parallelize(pairs, 8);
        // A deliberately expensive map keeps the job running across the
        // injected failure.
        let heavy = rdd.map_with_cost(hpcbd::simnet::Work::new(3.0e4, 1.0e4), 16, |kv| *kv);
        let counts = heavy
            .reduce_by_key(4, |a, b| a + b)
            .persist(StorageLevel::MemoryAndDisk);
        let first: u64 = sc.collect(&counts).iter().map(|(_, c)| *c).sum();
        // Re-read the cached RDD after the failure: lost partitions
        // recompute transparently.
        let second: u64 = sc.collect(&counts).iter().map(|(_, c)| *c).sum();
        (first, second)
    });
    println!(
        "Spark: executor 1 killed at t=1.3s; both passes counted {}/{} records, done at {}",
        r.value.0, r.value.1, r.elapsed
    );
    assert_eq!(r.value.0, 50_000);
    assert_eq!(r.value.1, 50_000);

    // --- MPI: coordinated checkpoints + whole-job restart. -------------
    let out = mpirun(Placement::new(2, 2), |rank| {
        let mut ck = Checkpointer::new(2, 8 << 20);
        let mut iter = 0;
        let mut failed = false;
        while iter < 8 {
            rank.ctx()
                .compute(hpcbd::simnet::Work::new(1.0e8, 4.0e8), 1.0);
            ck.after_iteration(rank, iter);
            if iter == 5 && !failed {
                failed = true;
                iter = ck.restart(rank, SimDuration::from_secs(1));
                continue;
            }
            iter += 1;
        }
        rank.now()
    });
    println!(
        "MPI  : rank failure at iteration 5 replayed from the last checkpoint; finished at {}",
        out.elapsed()
    );

    println!("\nLineage recomputes exactly what was lost; checkpointing pays");
    println!("up front and replays whole iterations — the paper's Sec. VI-D.");
}
