//! Scheduler adapter: compile the OpenSHMEM PageRank benchmark into a
//! gang-scheduled multi-tenant [`hpcbd_sched::JobSpec`].
//!
//! Like MPI, SHMEM PEs are gang-scheduled and non-preemptable. Unlike
//! MPI's two-sided rings, the PGAS cost shape is one-sided: each PE
//! `put`s its contribution slices straight into its peers' symmetric
//! heaps (RDMA verbs, no receiver CPU), then synchronizes on a barrier
//! built from tiny control messages on the wave's private channel.

use std::sync::Arc;

use hpcbd_sched::{JobSpec, Segment, TaskSpec, Wave};
use hpcbd_simnet::{MatchSpec, Payload, Transport, Work};

/// Native per-logical-edge PageRank cost (mirrors the Fig. 6/7 driver).
fn edge_work() -> Work {
    Work::new(12.0, 48.0)
}

/// Notify-and-release barrier over the wave channel: everyone notifies
/// PE 0 on lane `2*round`, PE 0 releases everyone on lane `2*round + 1`.
fn barrier(ctx: &mut hpcbd_simnet::ProcCtx, env: &hpcbd_simnet::LaunchEnv, round: u32) {
    let p = env.gang_size();
    let tr = Transport::rdma_verbs();
    let notify = env.tag(2 * round);
    let release = env.tag(2 * round + 1);
    if env.index == 0 {
        for _ in 1..p {
            let _ = ctx.recv(MatchSpec::tag(notify));
        }
        for i in 1..p {
            ctx.send(env.peer(i), release, 8, Payload::Empty, &tr);
        }
    } else {
        ctx.send(env.peer(0), notify, 8, Payload::Empty, &tr);
        let _ = ctx.recv(MatchSpec::src_tag(env.peer(0), release));
    }
}

/// The SHMEM PageRank job: `pes` PEs, `iters` power iterations over
/// `edges` logical edges; per iteration each PE puts its contribution
/// slices into every peer's symmetric heap and barriers.
pub fn scheduled_pagerank(
    queue: &'static str,
    tenant: &'static str,
    vertices: u64,
    edges: u64,
    iters: u32,
    pes: u32,
) -> JobSpec {
    let body: Segment = Arc::new(move |ctx, env| {
        let p = env.gang_size() as u64;
        let local_edges = edges / p;
        // One [dest, share] f64 pair per local edge, spread over peers.
        let put_bytes = (local_edges * 16) / p.max(1);
        for iter in 0..iters {
            ctx.compute(edge_work().scaled(local_edges as f64), 1.0);
            let me = env.index as usize;
            for k in 1..p as usize {
                let peer = (me + k) % p as usize;
                ctx.one_sided_transfer(env.peer_node(peer), put_bytes, &Transport::rdma_verbs(), 1);
            }
            barrier(ctx, env, iter);
            // Apply the contributions that landed in the local heap.
            ctx.compute(Work::new(4.0, 24.0).scaled((vertices / p) as f64), 1.0);
        }
    });
    JobSpec {
        template: "shmem/pagerank",
        queue,
        tenant,
        waves: vec![Wave {
            tasks: vec![
                TaskSpec {
                    segments: vec![body],
                    preferred: None,
                    preemptable: false,
                };
                pes as usize
            ],
            gang: true,
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pagerank_is_a_pinned_gang() {
        let job = scheduled_pagerank("batch", "hpc", 1 << 20, 8 << 20, 3, 4);
        assert!(job.waves[0].gang);
        assert_eq!(job.waves[0].tasks.len(), 4);
        assert!(job.waves[0].tasks.iter().all(|t| !t.preemptable));
    }
}
