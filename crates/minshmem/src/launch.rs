//! SPMD launch of a PE team (`shmem_init` / `oshrun`).

use std::sync::Arc;

use hpcbd_cluster::{ClusterSpec, Placement, RankMap};
use hpcbd_simnet::{Execution, FaultPlan, Pid, ProcCtx, Sim, SimReport, SimTime};

use crate::heap::SymHeaps;
use crate::pe::PeCtx;

/// Results of a PE team run.
pub struct ShmemOutput<T> {
    /// Per-PE return values, indexed by PE number.
    pub results: Vec<T>,
    /// Engine report.
    pub report: SimReport,
}

impl<T> ShmemOutput<T> {
    /// Execution time (virtual time of the slowest PE).
    pub fn elapsed(&self) -> SimTime {
        self.report.makespan()
    }
}

/// Embeds a PE team into an existing simulation (mirrors
/// `hpcbd_minimpi::MpiJob`).
pub struct ShmemJob {
    pids: Vec<Pid>,
}

impl ShmemJob {
    /// Spawn one process per PE of `placement` into `sim`.
    pub fn spawn<T, F>(sim: &mut Sim, placement: Placement, f: F) -> ShmemJob
    where
        T: Send + 'static,
        F: Fn(&mut PeCtx) -> T + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let heaps = SymHeaps::new(placement.total() as usize);
        let shared_map: Arc<std::sync::OnceLock<Arc<RankMap>>> =
            Arc::new(std::sync::OnceLock::new());
        let mut pids = Vec::with_capacity(placement.total() as usize);
        for (pe, node) in placement.iter() {
            let f = f.clone();
            let heaps = heaps.clone();
            let shared_map = shared_map.clone();
            let pid = sim.spawn(node, format!("pe{pe}"), move |ctx: &mut ProcCtx| {
                let map = shared_map.get().expect("PE map published").clone();
                let mut pe_handle = PeCtx::new(ctx, pe, map, placement, heaps);
                f(&mut pe_handle)
            });
            pids.push(pid);
        }
        shared_map
            .set(Arc::new(RankMap::from_pids(pids.clone())))
            .expect("PE map set once");
        ShmemJob { pids }
    }

    /// Pids of the team, in PE order.
    pub fn pids(&self) -> &[Pid] {
        &self.pids
    }

    /// Collect per-PE results from a finished simulation.
    pub fn results<T: 'static>(&self, report: &mut SimReport) -> Vec<T> {
        self.pids.iter().map(|p| report.result::<T>(*p)).collect()
    }
}

/// Launch a PE team on a Comet allocation sized to the placement.
pub fn shmem_run<T, F>(placement: Placement, f: F) -> ShmemOutput<T>
where
    T: Send + 'static,
    F: Fn(&mut PeCtx) -> T + Send + Sync + 'static,
{
    shmem_run_on(&ClusterSpec::comet(placement.nodes), placement, f)
}

/// [`shmem_run`] with an explicit engine execution mode (virtual-time
/// results are bit-identical across modes; see
/// [`hpcbd_simnet::parallel`]).
pub fn shmem_run_with<T, F>(placement: Placement, exec: Execution, f: F) -> ShmemOutput<T>
where
    T: Send + 'static,
    F: Fn(&mut PeCtx) -> T + Send + Sync + 'static,
{
    shmem_run_impl(
        &ClusterSpec::comet(placement.nodes),
        placement,
        Some(exec),
        None,
        f,
    )
}

/// [`shmem_run`] on an explicit cluster.
pub fn shmem_run_on<T, F>(cluster: &ClusterSpec, placement: Placement, f: F) -> ShmemOutput<T>
where
    T: Send + 'static,
    F: Fn(&mut PeCtx) -> T + Send + Sync + 'static,
{
    shmem_run_impl(cluster, placement, None, None, f)
}

/// [`shmem_run`] under a deterministic [`FaultPlan`] (mirrors
/// `hpcbd_minimpi::mpirun_faulty` — the plan is installed before any PE
/// starts). Pair with [`crate::ShmemCheckpointer::poll_plan_failure`]
/// inside `f` for recovery.
pub fn shmem_run_faulty<T, F>(placement: Placement, plan: FaultPlan, f: F) -> ShmemOutput<T>
where
    T: Send + 'static,
    F: Fn(&mut PeCtx) -> T + Send + Sync + 'static,
{
    shmem_run_impl(
        &ClusterSpec::comet(placement.nodes),
        placement,
        None,
        Some(plan),
        f,
    )
}

fn shmem_run_impl<T, F>(
    cluster: &ClusterSpec,
    placement: Placement,
    exec: Option<Execution>,
    faults: Option<FaultPlan>,
    f: F,
) -> ShmemOutput<T>
where
    T: Send + 'static,
    F: Fn(&mut PeCtx) -> T + Send + Sync + 'static,
{
    let mut sim = Sim::new(cluster.topology());
    if let Some(exec) = exec {
        sim.set_execution(exec);
    }
    if let Some(plan) = faults {
        sim.set_fault_plan(plan);
    }
    let job = ShmemJob::spawn(&mut sim, placement, f);
    let mut report = sim.run();
    let results = job.results::<T>(&mut report);
    ShmemOutput { results, report }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pes_see_identity() {
        let out = shmem_run(Placement::new(2, 2), |pe| (pe.pe(), pe.npes()));
        for (i, (me, n)) in out.results.iter().enumerate() {
            assert_eq!(*me as usize, i);
            assert_eq!(*n, 4);
        }
    }

    #[test]
    fn deterministic_elapsed() {
        let t1 = shmem_run(Placement::new(2, 2), |pe| {
            let a = pe.malloc::<u64>("a", 8, 0);
            pe.put(&a, 0, &[pe.pe() as u64; 8], (pe.pe() + 1) % pe.npes());
            pe.barrier_all();
        })
        .elapsed();
        let t2 = shmem_run(Placement::new(2, 2), |pe| {
            let a = pe.malloc::<u64>("a", 8, 0);
            pe.put(&a, 0, &[pe.pe() as u64; 8], (pe.pe() + 1) % pe.npes());
            pe.barrier_all();
        })
        .elapsed();
        assert_eq!(t1, t2);
    }
}
