//! OpenSHMEM collectives built from one-sided puts and signals.
//!
//! Unlike the MPI collectives (two-sided messages), these use the PGAS
//! idiom: data lands directly in the peer's symmetric buffer via RDMA,
//! and a signal tells the peer its slot is valid.

use crate::heap::SymArray;
use crate::pe::PeCtx;

impl PeCtx<'_> {
    /// `shmem_barrier_all`: dissemination over signals.
    pub fn barrier_all(&mut self) {
        let sig = self.next_coll_seq();
        let n = self.npes();
        if n == 1 {
            return;
        }
        let me = self.pe();
        self.ctx.span_open("shmem/barrier_all");
        let mut step = 1u32;
        let mut round = 0u64;
        while step < n {
            let dst = (me + step) % n;
            self.signal(dst, sig + round);
            self.wait_signal(sig + round);
            step <<= 1;
            round += 1;
        }
        self.ctx.span_close();
    }

    /// `shmem_broadcast`: the root puts its local copy of `arr` into every
    /// other PE's symmetric buffer along a binomial tree, signalling each.
    pub fn broadcast<T: Copy + Send + Sync + 'static>(&mut self, arr: &SymArray<T>, root: u32) {
        let sig = self.next_coll_seq();
        let n = self.npes();
        let me = self.pe();
        if n == 1 {
            return;
        }
        let vrank = (me + n - root) % n;
        self.ctx.span_open("shmem/broadcast");
        if vrank != 0 {
            self.wait_signal(sig);
        }
        let local = self.local_clone(arr);
        let mut bit = 1u32;
        while bit < n && vrank & bit == 0 {
            let child_v = vrank | bit;
            if child_v < n {
                let child = (child_v + root) % n;
                self.put_signal(arr, 0, &local, child, sig);
            }
            bit <<= 1;
        }
        self.ctx.span_close();
    }

    /// `shmem_sum_to_all` over `f64` symmetric arrays: every PE ends with
    /// the element-wise sum of all PEs' local copies. Recursive-doubling
    /// exchange through a scratch symmetric buffer with one landing region
    /// per round, so a fast peer's round-`k+1` put can never clobber
    /// round-`k` data that is still unread.
    pub fn sum_to_all(&mut self, arr: &SymArray<f64>) {
        let n = self.npes();
        if n == 1 {
            return;
        }
        let me = self.pe();
        let len = arr.len();
        // Fold non-power-of-two stragglers in, as in the MPI runtime.
        let pof2 = if n.is_power_of_two() {
            n
        } else {
            1 << (31 - n.leading_zeros())
        };
        let rem = n - pof2;
        let rounds = 1 + pof2.trailing_zeros() as usize;
        let scratch = self.malloc::<f64>("sum_to_all.scratch", len * rounds, 0.0);
        let sig = self.next_coll_seq();
        self.ctx.span_open("shmem/sum_to_all");
        if me >= pof2 {
            let mine = self.local_clone(arr);
            self.put_signal(&scratch, 0, &mine, me - pof2, sig);
            // Wait for the final result, delivered straight into `arr`.
            self.wait_signal(sig + 63);
        } else {
            if me < rem {
                self.wait_signal(sig);
                self.accumulate_scratch(arr, &scratch, 0);
            }
            let mut mask = 1u32;
            let mut round = 1u64;
            while mask < pof2 {
                let peer = me ^ mask;
                let mine = self.local_clone(arr);
                self.put_signal(&scratch, round as usize * len, &mine, peer, sig + round);
                self.wait_signal(sig + round);
                self.accumulate_scratch(arr, &scratch, round as usize * len);
                mask <<= 1;
                round += 1;
            }
            if me < rem {
                let mine = self.local_clone(arr);
                self.put_signal(arr, 0, &mine, me + pof2, sig + 63);
            }
        }
        self.ctx.span_close();
        self.free(scratch);
    }

    /// `shmem_collect` (allgather): PE `p`'s `len`-element local slice of
    /// `src` lands at offset `p * len` of `dst` on every PE.
    pub fn collect<T: Copy + Send + Sync + 'static>(
        &mut self,
        src: &SymArray<T>,
        dst: &SymArray<T>,
    ) {
        let n = self.npes();
        let me = self.pe();
        assert_eq!(dst.len(), src.len() * n as usize, "collect buffer sizing");
        let sig = self.next_coll_seq();
        self.ctx.span_open("shmem/collect");
        let mine = self.local_clone(src);
        let off = me as usize * src.len();
        for peer in 0..n {
            if peer == me {
                self.local_write(dst, off, &mine);
            } else {
                self.put_signal(dst, off, &mine, peer, sig);
            }
        }
        // Wait for n-1 incoming slices.
        for _ in 0..n - 1 {
            self.wait_signal(sig);
        }
        self.ctx.span_close();
    }

    /// `shmem_alltoall`: PE `p`'s chunk `d` of `src` (length `len`,
    /// at offset `d * len`) lands at offset `p * len` of `dst` on PE `d`.
    /// Both arrays hold `npes * len` elements.
    pub fn alltoall<T: Copy + Send + Sync + 'static>(
        &mut self,
        src: &SymArray<T>,
        dst: &SymArray<T>,
        len: usize,
    ) {
        let n = self.npes();
        let me = self.pe();
        assert_eq!(src.len(), n as usize * len, "src sizing");
        assert_eq!(dst.len(), n as usize * len, "dst sizing");
        let sig = self.next_coll_seq();
        self.ctx.span_open("shmem/alltoall");
        let mine = self.local_clone(src);
        for peer in 0..n {
            let chunk = &mine[peer as usize * len..(peer as usize + 1) * len];
            if peer == me {
                self.local_write(dst, me as usize * len, chunk);
            } else {
                let c = chunk.to_vec();
                self.put_signal(dst, me as usize * len, &c, peer, sig);
            }
        }
        for _ in 0..n - 1 {
            self.wait_signal(sig);
        }
        self.ctx.span_close();
    }

    fn accumulate_scratch(&mut self, arr: &SymArray<f64>, scratch: &SymArray<f64>, offset: usize) {
        let me = self.pe();
        let len = arr.len();
        let incoming = self
            .heaps
            .with(me, scratch, |v| v[offset..offset + len].to_vec());
        let work = hpcbd_simnet::Work::new(len as f64, len as f64 * 16.0);
        self.ctx.compute(work, 1.0);
        self.heaps.with_mut(me, arr, |v| {
            for (a, b) in v.iter_mut().zip(&incoming) {
                *a += *b;
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use crate::launch::shmem_run;
    use hpcbd_cluster::Placement;

    #[test]
    fn barrier_all_completes_at_various_sizes() {
        for (nodes, ppn) in [(1, 1), (1, 3), (2, 2), (3, 3)] {
            let out = shmem_run(Placement::new(nodes, ppn), |pe| {
                pe.barrier_all();
                pe.barrier_all();
                pe.pe()
            });
            assert_eq!(out.results.len(), (nodes * ppn) as usize);
        }
    }

    #[test]
    fn broadcast_installs_root_data_everywhere() {
        for n in [2u32, 3, 4, 8] {
            let out = shmem_run(Placement::new(1, n), |pe| {
                let a = pe.malloc::<u64>("b", 3, 0);
                if pe.pe() == 1 % pe.npes() {
                    pe.local_write(&a, 0, &[5, 6, 7]);
                }
                pe.broadcast(&a, 1 % pe.npes());
                pe.barrier_all();
                pe.local_clone(&a)
            });
            for r in out.results {
                assert_eq!(r, vec![5, 6, 7], "npes={n}");
            }
        }
    }

    #[test]
    fn sum_to_all_matches_oracle() {
        for n in [1u32, 2, 3, 4, 6, 8] {
            let out = shmem_run(Placement::new(1, n), |pe| {
                let a = pe.malloc::<f64>("s", 4, 0.0);
                let me = pe.pe() as f64;
                pe.local_write(&a, 0, &[me, me * 2.0, 1.0, -me]);
                pe.sum_to_all(&a);
                pe.local_clone(&a)
            });
            let total: f64 = (0..n).map(|p| p as f64).sum();
            for r in &out.results {
                assert_eq!(r[0], total, "npes={n}");
                assert_eq!(r[1], total * 2.0);
                assert_eq!(r[2], n as f64);
                assert_eq!(r[3], -total);
            }
        }
    }

    #[test]
    fn alltoall_transposes_chunks() {
        for (nodes, ppn) in [(1u32, 2u32), (2, 2), (3, 2)] {
            let out = shmem_run(Placement::new(nodes, ppn), |pe| {
                let n = pe.npes() as usize;
                let len = 2usize;
                let src = pe.malloc::<u64>("src", n * len, 0);
                let dst = pe.malloc::<u64>("dst", n * len, 0);
                let me = pe.pe() as u64;
                // Chunk for destination d: [me*100+d, me*100+d+50].
                let mine: Vec<u64> = (0..n as u64)
                    .flat_map(|d| [me * 100 + d, me * 100 + d + 50])
                    .collect();
                pe.local_write(&src, 0, &mine);
                pe.barrier_all();
                pe.alltoall(&src, &dst, len);
                pe.barrier_all();
                pe.local_clone(&dst)
            });
            let n = (nodes * ppn) as u64;
            for (me, got) in out.results.iter().enumerate() {
                for src_pe in 0..n {
                    assert_eq!(
                        &got[src_pe as usize * 2..src_pe as usize * 2 + 2],
                        &[src_pe * 100 + me as u64, src_pe * 100 + me as u64 + 50],
                        "npes={n} me={me} from={src_pe}"
                    );
                }
            }
        }
    }

    #[test]
    fn compare_swap_elects_exactly_one_winner() {
        let out = shmem_run(Placement::new(2, 2), |pe| {
            let lock = pe.malloc::<u64>("lock", 1, 0);
            // Everyone tries to claim the lock on PE 0 with CAS(0 -> me+1).
            let old = pe.atomic_compare_swap(&lock, 0, 0, pe.pe() as u64 + 1, 0);
            pe.barrier_all();
            (old == 0, pe.local_clone(&lock)[0])
        });
        let winners = out.results.iter().filter(|(won, _)| *won).count();
        assert_eq!(winners, 1, "exactly one CAS must win");
        let final_val = out.results[0].1;
        assert!((1..=4).contains(&final_val));
    }

    #[test]
    fn collect_gathers_in_pe_order() {
        let out = shmem_run(Placement::new(2, 2), |pe| {
            let src = pe.malloc::<u32>("src", 2, 0);
            let dst = pe.malloc::<u32>("dst", 8, 0);
            pe.local_write(&src, 0, &[pe.pe() * 10, pe.pe() * 10 + 1]);
            pe.collect(&src, &dst);
            pe.barrier_all();
            pe.local_clone(&dst)
        });
        for r in out.results {
            assert_eq!(r, vec![0, 1, 10, 11, 20, 21, 30, 31]);
        }
    }
}
