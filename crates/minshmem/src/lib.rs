//! `hpcbd-minshmem` — an OpenSHMEM-like PGAS runtime on `simnet`.
//!
//! Reproduces the PGAS surface the paper surveys (Sec. II-C): SPMD launch
//! of a fixed set of processing elements (PEs), a **symmetric heap** — the
//! same objects exist at the same logical addresses on every PE — and
//! **one-sided** put/get/atomic operations that complete without any
//! involvement of the target PE's CPU, exploiting the RDMA offload of the
//! modeled FDR InfiniBand fabric. Synchronization uses put-with-signal
//! (the RDMA-native notification idiom) rather than two-sided matching.
//!
//! The paper singles OpenSHMEM out as "particularly advantageous for
//! applications with many small put/get operations and/or irregular
//! communication patterns ... graph traversal, sorting" — the
//! `ablation_shmem_pagerank` harness exercises exactly that claim.
//!
//! # Example
//!
//! ```
//! use hpcbd_minshmem::shmem_run;
//! use hpcbd_cluster::Placement;
//!
//! let out = shmem_run(Placement::new(2, 2), |pe| {
//!     let arr = pe.malloc::<u64>("ranks", 4, 0);
//!     // Every PE writes its id into slot `me` of PE 0's array.
//!     let me = pe.pe();
//!     pe.put(&arr, me as usize, &[me as u64], 0);
//!     pe.barrier_all();
//!     pe.local_clone(&arr)
//! });
//! assert_eq!(out.results[0], vec![0, 1, 2, 3]);
//! ```

#![warn(missing_docs)]

pub mod checkpoint;
pub mod collectives;
pub mod heap;
pub mod launch;
pub mod pe;
pub mod scheduled;

pub use checkpoint::ShmemCheckpointer;
pub use heap::{SymArray, SymHeaps};
pub use launch::{
    shmem_run, shmem_run_faulty, shmem_run_on, shmem_run_with, ShmemJob, ShmemOutput,
};
pub use pe::PeCtx;
pub use scheduled::scheduled_pagerank;
