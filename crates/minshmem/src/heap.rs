//! The symmetric heap: identical objects on every PE.

use std::any::Any;
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::Arc;

use parking_lot::RwLock;

/// A typed handle to a symmetric array: the same allocation id refers to
/// a distinct but identically-shaped buffer on every PE. Handles are
/// `Copy`-cheap and carry no data.
#[derive(Debug, Clone)]
pub struct SymArray<T> {
    pub(crate) id: u64,
    pub(crate) len: usize,
    pub(crate) _t: PhantomData<fn() -> T>,
}

impl<T> SymArray<T> {
    /// Elements per PE.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for zero-length allocations.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

type HeapCell = Box<dyn Any + Send + Sync>;

/// Storage for all PEs' symmetric heaps. Lives in an `Arc` shared by the
/// PE processes; one-sided operations access remote heaps directly,
/// modeling RDMA's CPU bypass (timing is charged separately through
/// `ProcCtx::one_sided_transfer`).
pub struct SymHeaps {
    heaps: Vec<RwLock<HashMap<u64, HeapCell>>>,
}

impl SymHeaps {
    /// Heaps for `npes` processing elements.
    pub fn new(npes: usize) -> Arc<SymHeaps> {
        Arc::new(SymHeaps {
            heaps: (0..npes).map(|_| RwLock::new(HashMap::new())).collect(),
        })
    }

    /// Number of PEs.
    pub fn npes(&self) -> usize {
        self.heaps.len()
    }

    /// Install PE `pe`'s local buffer for allocation `id`.
    pub(crate) fn install<T: Clone + Send + Sync + 'static>(
        &self,
        pe: u32,
        id: u64,
        len: usize,
        fill: T,
    ) {
        let buf: Vec<T> = vec![fill; len];
        self.heaps[pe as usize].write().insert(id, Box::new(buf));
    }

    /// Run `f` over PE `pe`'s buffer for `arr` (shared read lock).
    pub(crate) fn with<T: 'static, R>(
        &self,
        pe: u32,
        arr: &SymArray<T>,
        f: impl FnOnce(&Vec<T>) -> R,
    ) -> R {
        let g = self.heaps[pe as usize].read();
        let cell = g
            .get(&arr.id)
            .unwrap_or_else(|| panic!("symmetric allocation {} missing on PE {pe}", arr.id));
        f(cell
            .downcast_ref::<Vec<T>>()
            .expect("symmetric allocation type mismatch"))
    }

    /// Run `f` over PE `pe`'s buffer for `arr` (exclusive write lock).
    pub(crate) fn with_mut<T: 'static, R>(
        &self,
        pe: u32,
        arr: &SymArray<T>,
        f: impl FnOnce(&mut Vec<T>) -> R,
    ) -> R {
        let mut g = self.heaps[pe as usize].write();
        let cell = g
            .get_mut(&arr.id)
            .unwrap_or_else(|| panic!("symmetric allocation {} missing on PE {pe}", arr.id));
        f(cell
            .downcast_mut::<Vec<T>>()
            .expect("symmetric allocation type mismatch"))
    }

    /// Free allocation `id` on PE `pe`.
    pub(crate) fn free(&self, pe: u32, id: u64) -> bool {
        self.heaps[pe as usize].write().remove(&id).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr(id: u64, len: usize) -> SymArray<u64> {
        SymArray {
            id,
            len,
            _t: PhantomData,
        }
    }

    #[test]
    fn install_access_free() {
        let heaps = SymHeaps::new(2);
        heaps.install(0, 1, 4, 7u64);
        heaps.install(1, 1, 4, 9u64);
        let a = arr(1, 4);
        assert_eq!(heaps.with(0, &a, |v| v[2]), 7);
        heaps.with_mut(1, &a, |v| v[0] = 42);
        assert_eq!(heaps.with(1, &a, |v| v[0]), 42);
        assert_eq!(heaps.with(0, &a, |v| v[0]), 7, "heaps are per-PE");
        assert!(heaps.free(0, 1));
        assert!(!heaps.free(0, 1));
    }

    #[test]
    #[should_panic(expected = "missing on PE")]
    fn missing_allocation_panics() {
        let heaps = SymHeaps::new(1);
        heaps.with(0, &arr(99, 1), |v| v.len());
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_mismatch_panics() {
        let heaps = SymHeaps::new(1);
        heaps.install(0, 1, 2, 1.5f64);
        heaps.with(0, &arr(1, 2), |v| v.len());
    }
}
