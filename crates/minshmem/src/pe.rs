//! The per-PE handle: symmetric allocation and one-sided communication.

use std::marker::PhantomData;
use std::sync::Arc;

use hpcbd_cluster::{Placement, RankMap};
use hpcbd_simnet::{MatchSpec, Payload, ProcCtx, Tag, Transport};

use crate::heap::{SymArray, SymHeaps};

/// Tag space for signal delivery; allocation ids and user signals share
/// the space below.
const SIGNAL_TAG_BASE: Tag = 1 << 41;

/// The handle each PE's closure receives from [`crate::shmem_run`]:
/// `shmem_my_pe` / `shmem_n_pes` addressing, symmetric allocation, and
/// the one-sided operations.
pub struct PeCtx<'a> {
    pub(crate) ctx: &'a mut ProcCtx,
    pub(crate) pe: u32,
    pub(crate) npes: u32,
    pub(crate) map: Arc<RankMap>,
    pub(crate) placement: Placement,
    pub(crate) heaps: Arc<SymHeaps>,
    pub(crate) rdma: Transport,
    pub(crate) next_alloc: u64,
    pub(crate) coll_seq: u64,
    pub(crate) bytes_scale: f64,
}

impl<'a> PeCtx<'a> {
    /// Construct a PE handle (used by the launcher).
    pub(crate) fn new(
        ctx: &'a mut ProcCtx,
        pe: u32,
        map: Arc<RankMap>,
        placement: Placement,
        heaps: Arc<SymHeaps>,
    ) -> PeCtx<'a> {
        let npes = map.len() as u32;
        PeCtx {
            ctx,
            pe,
            npes,
            map,
            placement,
            heaps,
            rdma: Transport::rdma_verbs(),
            next_alloc: 0,
            coll_seq: 0,
            bytes_scale: 1.0,
        }
    }

    /// Set the logical-bytes multiplier applied to every one-sided
    /// transfer (sampled-dataset costing; see DESIGN.md §2).
    pub fn set_bytes_scale(&mut self, scale: f64) {
        assert!(scale >= 1.0, "bytes scale must be >= 1");
        self.bytes_scale = scale;
    }

    /// `shmem_my_pe`.
    #[inline]
    pub fn pe(&self) -> u32 {
        self.pe
    }

    /// `shmem_n_pes`.
    #[inline]
    pub fn npes(&self) -> u32 {
        self.npes
    }

    /// Access the simulation context (compute costing, clock).
    #[inline]
    pub fn ctx(&mut self) -> &mut ProcCtx {
        self.ctx
    }

    /// The PE-to-node placement of this team.
    #[inline]
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> hpcbd_simnet::SimTime {
        self.ctx.now()
    }

    /// Open a named phase span on this PE's trace (no-op when tracing is
    /// off; see [`ProcCtx::span_open`]).
    #[inline]
    pub fn span_open(&mut self, label: impl Into<std::sync::Arc<str>>) {
        self.ctx.span_open(label);
    }

    /// Open a phase span with a lazily formatted label (the closure runs
    /// only when tracing is on).
    #[inline]
    pub fn span_open_with(&mut self, label: impl FnOnce() -> String) {
        self.ctx.span_open_with(label);
    }

    /// Close the innermost open phase span.
    #[inline]
    pub fn span_close(&mut self) {
        self.ctx.span_close();
    }

    /// `shmem_malloc` + initialization: collectively allocate a symmetric
    /// array of `len` elements, filled with `fill`, on every PE. All PEs
    /// must call with identical arguments (symmetric execution), like the
    /// real API. The `name` is for diagnostics only.
    pub fn malloc<T: Clone + Send + Sync + 'static>(
        &mut self,
        name: &str,
        len: usize,
        fill: T,
    ) -> SymArray<T> {
        let _ = name;
        let id = self.next_alloc;
        self.next_alloc += 1;
        self.heaps.install(self.pe, id, len, fill);
        // Symmetric allocation synchronizes like a barrier.
        self.barrier_all();
        SymArray {
            id,
            len,
            _t: PhantomData,
        }
    }

    /// `shmem_free` (collective).
    pub fn free<T>(&mut self, arr: SymArray<T>) {
        self.heaps.free(self.pe, arr.id);
        self.barrier_all();
    }

    /// Read this PE's local slice of a symmetric array.
    pub fn local_clone<T: Clone + 'static>(&self, arr: &SymArray<T>) -> Vec<T> {
        self.heaps.with(self.pe, arr, |v| v.clone())
    }

    /// Read a sub-range of this PE's local copy of a symmetric array.
    pub fn local_range<T: Clone + 'static>(
        &self,
        arr: &SymArray<T>,
        offset: usize,
        len: usize,
    ) -> Vec<T> {
        self.heaps
            .with(self.pe, arr, |v| v[offset..offset + len].to_vec())
    }

    /// Overwrite part of this PE's local slice (plain local store).
    pub fn local_write<T: Copy + 'static>(&mut self, arr: &SymArray<T>, offset: usize, src: &[T]) {
        self.heaps.with_mut(self.pe, arr, |v| {
            v[offset..offset + src.len()].copy_from_slice(src);
        });
    }

    /// `shmem_put`: one-sided write of `src` into `target_pe`'s copy of
    /// `arr` at `offset`. Blocks until remote completion; the target PE's
    /// CPU is not involved.
    pub fn put<T: Copy + Send + Sync + 'static>(
        &mut self,
        arr: &SymArray<T>,
        offset: usize,
        src: &[T],
        target_pe: u32,
    ) {
        let bytes = (std::mem::size_of_val(src) as f64 * self.bytes_scale) as u64;
        let node = self.placement.node_of_rank(target_pe);
        // The heap store happens inside the transfer's commit window so
        // remote-memory effects land in virtual-time order even when
        // other PEs execute concurrently.
        let heaps = &self.heaps;
        self.ctx
            .one_sided_transfer_with(node, bytes, &self.rdma, 1, || {
                heaps.with_mut(target_pe, arr, |v| {
                    v[offset..offset + src.len()].copy_from_slice(src);
                });
            });
    }

    /// `shmem_get`: one-sided read of `len` elements at `offset` from
    /// `target_pe`'s copy of `arr`.
    pub fn get<T: Copy + Send + Sync + 'static>(
        &mut self,
        arr: &SymArray<T>,
        offset: usize,
        len: usize,
        target_pe: u32,
    ) -> Vec<T> {
        let bytes = ((len * std::mem::size_of::<T>()) as f64 * self.bytes_scale) as u64;
        let node = self.placement.node_of_rank(target_pe);
        let heaps = &self.heaps;
        self.ctx
            .one_sided_transfer_with(node, bytes, &self.rdma, 2, || {
                heaps.with(target_pe, arr, |v| v[offset..offset + len].to_vec())
            })
    }

    /// `shmem_atomic_fetch_add` on one `u64` slot of `target_pe`'s array.
    pub fn atomic_fetch_add(
        &mut self,
        arr: &SymArray<u64>,
        index: usize,
        value: u64,
        target_pe: u32,
    ) -> u64 {
        let node = self.placement.node_of_rank(target_pe);
        let heaps = &self.heaps;
        self.ctx
            .one_sided_transfer_with(node, 8, &self.rdma, 2, || {
                heaps.with_mut(target_pe, arr, |v| {
                    let old = v[index];
                    v[index] += value;
                    old
                })
            })
    }

    /// `shmem_atomic_compare_swap`: if slot `index` of `target_pe`'s
    /// array equals `expected`, store `desired`; returns the previous
    /// value either way. One network round trip, target CPU untouched.
    pub fn atomic_compare_swap(
        &mut self,
        arr: &SymArray<u64>,
        index: usize,
        expected: u64,
        desired: u64,
        target_pe: u32,
    ) -> u64 {
        let node = self.placement.node_of_rank(target_pe);
        let heaps = &self.heaps;
        self.ctx
            .one_sided_transfer_with(node, 16, &self.rdma, 2, || {
                heaps.with_mut(target_pe, arr, |v| {
                    let old = v[index];
                    if old == expected {
                        v[index] = desired;
                    }
                    old
                })
            })
    }

    /// `shmem_put_signal`: a put followed by a signal delivery the target
    /// can block on with [`PeCtx::wait_signal`]. This is the RDMA-native
    /// notification idiom the collectives build on.
    pub fn put_signal<T: Copy + Send + Sync + 'static>(
        &mut self,
        arr: &SymArray<T>,
        offset: usize,
        src: &[T],
        target_pe: u32,
        signal: u64,
    ) {
        self.put(arr, offset, src, target_pe);
        self.signal(target_pe, signal);
    }

    /// Deliver a bare signal (zero-byte put-with-signal).
    pub fn signal(&mut self, target_pe: u32, signal: u64) {
        let pid = self.map.pid(target_pe);
        self.ctx.send(
            pid,
            SIGNAL_TAG_BASE + signal,
            8,
            Payload::Empty,
            &self.rdma.clone(),
        );
    }

    /// `shmem_wait_until`-style blocking on a signal value, returning the
    /// signalling PE.
    pub fn wait_signal(&mut self, signal: u64) -> u32 {
        let msg = self.ctx.recv(MatchSpec::tag(SIGNAL_TAG_BASE + signal));
        self.map
            .rank_of(msg.src)
            .expect("signal from non-PE process")
    }

    /// Next collective sequence number (kept aligned by symmetric
    /// execution, like the MPI collective tags).
    pub(crate) fn next_coll_seq(&mut self) -> u64 {
        self.coll_seq += 1;
        // Collective signals live far above user signals.
        (1 << 20) + self.coll_seq * 64
    }
}

#[cfg(test)]
mod tests {
    use crate::launch::shmem_run;
    use hpcbd_cluster::Placement;

    #[test]
    fn put_writes_remote_heap_only() {
        let out = shmem_run(Placement::new(2, 1), |pe| {
            let a = pe.malloc::<u32>("a", 2, 0);
            if pe.pe() == 0 {
                pe.put(&a, 1, &[77], 1);
            }
            pe.barrier_all();
            pe.local_clone(&a)
        });
        assert_eq!(out.results[0], vec![0, 0], "initiator heap untouched");
        assert_eq!(out.results[1], vec![0, 77]);
    }

    #[test]
    fn get_reads_remote_heap() {
        let out = shmem_run(Placement::new(2, 2), |pe| {
            let a = pe.malloc::<u64>("a", 1, 0);
            pe.local_write(&a, 0, &[pe.pe() as u64 * 100]);
            pe.barrier_all();
            let left = (pe.pe() + pe.npes() - 1) % pe.npes();
            pe.get(&a, 0, 1, left)[0]
        });
        assert_eq!(out.results, vec![300, 0, 100, 200]);
    }

    #[test]
    fn atomics_serialize_correctly() {
        let out = shmem_run(Placement::new(2, 2), |pe| {
            let a = pe.malloc::<u64>("ctr", 1, 0);
            let old = pe.atomic_fetch_add(&a, 0, 1, 0);
            pe.barrier_all();
            (old, pe.local_clone(&a)[0])
        });
        let finals: Vec<u64> = out.results.iter().map(|(_, f)| *f).collect();
        assert_eq!(finals[0], 4, "PE0 sees all four increments");
        let mut olds: Vec<u64> = out.results.iter().map(|(o, _)| *o).collect();
        olds.sort();
        assert_eq!(olds, vec![0, 1, 2, 3], "fetch-add returns unique olds");
    }

    #[test]
    fn signals_synchronize_producer_consumer() {
        let out = shmem_run(Placement::new(2, 1), |pe| {
            let a = pe.malloc::<u64>("x", 1, 0);
            if pe.pe() == 0 {
                pe.put_signal(&a, 0, &[99], 1, 5);
                0
            } else {
                let from = pe.wait_signal(5);
                assert_eq!(from, 0);
                pe.local_clone(&a)[0]
            }
        });
        assert_eq!(out.results[1], 99);
    }

    #[test]
    fn one_sided_ops_do_not_charge_target_cpu() {
        let out = shmem_run(Placement::new(2, 1), |pe| {
            let a = pe.malloc::<u8>("buf", 1 << 20, 0);
            if pe.pe() == 0 {
                let src = vec![1u8; 1 << 20];
                for _ in 0..8 {
                    pe.put(&a, 0, &src, 1);
                }
            }
            // No barrier: PE1 exits immediately after allocation.
            pe.now().nanos()
        });
        // PE1's clock only advanced through malloc's barrier, staying far
        // below PE0's, which paid for 8 MiB of puts.
        assert!(out.results[1] < out.results[0] / 2);
        let _ = out;
    }
}
