//! Checkpoint/restart for PE teams — the PGAS fault-tolerance story.
//!
//! OpenSHMEM, like MPI, has no run-time fault tolerance (Sec. VI-D):
//! a node failure kills the job (`shmem_global_exit`) unless the
//! application checkpoints. [`ShmemCheckpointer`] mirrors
//! `hpcbd_minimpi::Checkpointer` over the one-sided surface, sharing
//! the protocol axis ([`CheckpointMode`]) and the drain ledger
//! ([`hpcbd_simnet::DrainSchedule`]) so the fault-campaign explorer
//! can sweep both runtimes identically:
//!
//! * [`CheckpointMode::Coordinated`] — barrier, synchronous state
//!   write, barrier, every interval.
//! * [`CheckpointMode::Async`] — double-buffer snapshot at the
//!   barrier, background drain overlapped with compute
//!   ([`hpcbd_simnet::ProcCtx::disk_write_background`]); restart falls
//!   back to the last **fully drained** checkpoint, agreed team-wide.
//!
//! SHMEM has no min-reduce collective, so team agreement (failure
//! counts up, restart watermarks down) goes through `shmem_collect`
//! (allgather) with the fold applied locally — the PGAS-native way to
//! reach consensus without two-sided matching.

use std::any::Any;
use std::sync::Arc;

use hpcbd_simnet::{
    CheckpointMode, DrainSchedule, FaultEvent, FaultPolicy, SimDuration, SimTime, StructuredAbort,
    Work,
};

use crate::pe::PeCtx;

/// Team-wide agreement on a per-PE `u64`: allgather via
/// `shmem_collect`, fold locally. Collective — every PE must call.
fn allgather_u64(pe: &mut PeCtx, value: u64) -> Vec<u64> {
    let npes = pe.npes() as usize;
    let src = pe.malloc::<u64>("ck_agree_src", 1, 0);
    let dst = pe.malloc::<u64>("ck_agree_dst", npes, 0);
    pe.local_write(&src, 0, &[value]);
    pe.collect(&src, &dst);
    let all = pe.local_clone(&dst);
    pe.free(dst);
    pe.free(src);
    all
}

/// Checkpointing driver for an iterative SHMEM application.
#[derive(Clone)]
pub struct ShmemCheckpointer {
    /// Take a checkpoint every this many iterations (0 = never).
    pub interval: u32,
    /// Bytes of application state each PE persists per checkpoint.
    pub state_bytes_per_pe: u64,
    mode: CheckpointMode,
    last_saved_iter: Option<u32>,
    checkpoints_taken: u32,
    failures_handled: u64,
    /// Virtual time of the most recent crash handled by
    /// [`ShmemCheckpointer::poll_plan_failure`] — identical on every PE
    /// (it comes from the agreed plan replay), and the cutoff against
    /// which drain durability is judged.
    last_crash_time: Option<SimTime>,
    drains: DrainSchedule,
    /// Snapshotted payloads by iteration (the simulated checkpoint file
    /// contents); restorable only when the matching drain was durable
    /// at the crash cutoff.
    payloads: Vec<(u32, Arc<dyn Any + Send + Sync>)>,
}

impl std::fmt::Debug for ShmemCheckpointer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShmemCheckpointer")
            .field("interval", &self.interval)
            .field("state_bytes_per_pe", &self.state_bytes_per_pe)
            .field("mode", &self.mode)
            .field("last_saved_iter", &self.last_saved_iter)
            .field("checkpoints_taken", &self.checkpoints_taken)
            .field("failures_handled", &self.failures_handled)
            .field("last_crash_time", &self.last_crash_time)
            .field("drains", &self.drains)
            .field("payloads", &self.payloads.len())
            .finish()
    }
}

impl ShmemCheckpointer {
    /// New coordinated-mode driver.
    pub fn new(interval: u32, state_bytes_per_pe: u64) -> ShmemCheckpointer {
        ShmemCheckpointer {
            interval,
            state_bytes_per_pe,
            mode: CheckpointMode::Coordinated,
            last_saved_iter: None,
            checkpoints_taken: 0,
            failures_handled: 0,
            last_crash_time: None,
            drains: DrainSchedule::new(),
            payloads: Vec::new(),
        }
    }

    /// Select the checkpoint protocol (builder style).
    pub fn with_mode(mut self, mode: CheckpointMode) -> ShmemCheckpointer {
        self.mode = mode;
        self
    }

    /// The active protocol.
    pub fn mode(&self) -> CheckpointMode {
        self.mode
    }

    /// SPMD failure detection against the installed
    /// [`hpcbd_simnet::FaultPlan`]: every PE counts the node crashes
    /// visible at its own clock, then the team agrees on the
    /// most-advanced view (max over an allgather — PE clocks differ;
    /// without consensus a fast PE would handle a failure its peers
    /// have not seen and the next collective would deadlock). Under
    /// [`FaultPolicy::Abort`] the call raises a [`StructuredAbort`]
    /// (`shmem_global_exit`); under [`FaultPolicy::Restart`] it returns
    /// `true` and the caller follows with
    /// [`ShmemCheckpointer::restart_semantic`].
    ///
    /// Call once per iteration, right after the iteration's collective.
    /// No fault plan installed (or no crashes in it) costs nothing.
    pub fn poll_plan_failure(&mut self, pe: &mut PeCtx, policy: FaultPolicy) -> bool {
        let nodes: u32 = {
            let placement = pe.placement();
            (0..pe.npes())
                .map(|p| placement.node_of_rank(p).0 + 1)
                .max()
                .unwrap_or(0)
        };
        let (visible, any_planned) = {
            let ctx = pe.ctx();
            match ctx.fault_plan() {
                Some(plan) if !plan.crashes().is_empty() => {
                    let now = ctx.now();
                    (plan.crashes_through(nodes, now).len() as u64, true)
                }
                _ => (0, false),
            }
        };
        if !any_planned {
            return false;
        }
        let agreed = *allgather_u64(pe, visible).iter().max().expect("npes >= 1");
        if agreed <= self.failures_handled {
            return false;
        }
        let all = {
            let ctx = pe.ctx();
            let plan = ctx.fault_plan().expect("plan checked above").clone();
            plan.crashes_through(nodes, SimTime(u64::MAX))
        };
        let newly = &all[self.failures_handled as usize..agreed as usize];
        for (node, at) in newly {
            // PE 0 back-dates the crash itself into the trace so the
            // recovery SLOs (time-to-detect) have the true fault time.
            if pe.pe() == 0 {
                pe.ctx()
                    .record_fault_at(*at, FaultEvent::NodeCrash { node: *node });
            }
            pe.ctx().record_fault(FaultEvent::Recovery {
                runtime: "shmem",
                action: "pe_failure_detected",
                detail: u64::from(node.0),
            });
        }
        self.failures_handled = agreed;
        // Every PE replays the same agreed prefix of the same plan, so
        // the cutoff is identical team-wide without further consensus.
        self.last_crash_time = newly.last().map(|&(_, t)| t);
        match policy {
            FaultPolicy::Abort => {
                let (node, at) = newly[0];
                StructuredAbort::raise(
                    "shmem",
                    format!(
                        "shmem_global_exit: node n{} failed at {at}; \
                         OpenSHMEM has no run-time fault tolerance",
                        node.0
                    ),
                );
            }
            FaultPolicy::Restart { .. } => true,
        }
    }

    /// Call after finishing iteration `iter` (0-based). Checkpoints when
    /// the interval divides `iter + 1`; see [`CheckpointMode`] for the
    /// protocol cost each mode pays. Returns whether a checkpoint (or
    /// snapshot) was taken.
    pub fn after_iteration(&mut self, pe: &mut PeCtx, iter: u32) -> bool {
        if self.interval == 0 || !(iter + 1).is_multiple_of(self.interval) {
            return false;
        }
        pe.barrier_all();
        match self.mode {
            CheckpointMode::Coordinated => {
                let issue = pe.now();
                pe.ctx().disk_write(self.state_bytes_per_pe);
                let done = pe.now();
                pe.ctx().metric_observe(
                    "ckpt.drain_lag_ns",
                    "mode=coordinated",
                    (done - issue).nanos(),
                );
                pe.barrier_all();
                self.drains.register(iter, issue, done);
            }
            CheckpointMode::Async => {
                // Copy state into the drain buffer: memory traffic only
                // (read + write of the state), no barrier afterwards.
                pe.ctx()
                    .compute(Work::new(0.0, 2.0 * self.state_bytes_per_pe as f64), 1.0);
                let issue = pe.now();
                let done = pe.ctx().disk_write_background(self.state_bytes_per_pe);
                pe.ctx()
                    .metric_observe("ckpt.drain_lag_ns", "mode=async", (done - issue).nanos());
                self.drains.register(iter, issue, done);
            }
        }
        self.last_saved_iter = Some(iter);
        self.checkpoints_taken += 1;
        true
    }

    /// [`ShmemCheckpointer::after_iteration`] plus payload capture: when
    /// the checkpoint fires, `state` is evaluated and stored as the
    /// simulated contents of this PE's checkpoint file, retrievable by
    /// [`ShmemCheckpointer::restore_payload`] after a crash — but only
    /// if the drain made it durable in time.
    pub fn after_iteration_with<P: Clone + Send + Sync + 'static>(
        &mut self,
        pe: &mut PeCtx,
        iter: u32,
        state: impl FnOnce() -> P,
    ) -> bool {
        if !self.after_iteration(pe, iter) {
            return false;
        }
        // A restart rewound the counter: entries at or past `iter` are
        // stale pre-crash snapshots, replaced by the retaken one.
        self.payloads.retain(|&(i, _)| i < iter);
        self.payloads.push((iter, Arc::new(state())));
        true
    }

    /// The iteration execution resumes from after a failure: one past
    /// the last restartable checkpoint (or 0 when none was taken). In
    /// async mode this is the *local* view;
    /// [`ShmemCheckpointer::restart`] replaces it with the team-wide
    /// agreement.
    pub fn restart_iteration(&self) -> u32 {
        let watermark = match self.mode {
            CheckpointMode::Coordinated => self.last_saved_iter,
            CheckpointMode::Async => self.drains.drained_through(self.crash_cutoff()),
        };
        watermark.map_or(0, |i| i + 1)
    }

    /// Durability cutoff: state of the disks at the instant the handled
    /// crash happened (everything later never made it).
    fn crash_cutoff(&self) -> SimTime {
        self.last_crash_time.unwrap_or(SimTime(u64::MAX))
    }

    /// Model a restart: a job-relaunch stall, agreement on the restart
    /// point (async mode: min over an allgather of per-PE drained
    /// watermarks — drain completion times differ across PEs),
    /// re-reading state from scratch, and a barrier. Execution resumes
    /// from the returned iteration.
    pub fn restart(&mut self, pe: &mut PeCtx, relaunch_stall: SimDuration) -> u32 {
        pe.ctx().advance(relaunch_stall);
        let resume = match self.mode {
            CheckpointMode::Coordinated => self.restart_iteration(),
            CheckpointMode::Async => {
                let local = u64::from(self.restart_iteration());
                *allgather_u64(pe, local).iter().min().expect("npes >= 1") as u32
            }
        };
        if resume > 0 {
            pe.ctx().disk_read(self.state_bytes_per_pe);
        }
        pe.barrier_all();
        self.last_saved_iter = resume.checked_sub(1);
        resume
    }

    /// [`ShmemCheckpointer::restart`] plus the
    /// [`FaultEvent::Recovery`] record, for callers that semantically
    /// re-execute the lost iterations themselves. `failed_iter` is the
    /// iteration the failure interrupted; the caller loops from the
    /// returned iteration.
    pub fn restart_semantic(
        &mut self,
        pe: &mut PeCtx,
        relaunch_stall: SimDuration,
        failed_iter: u32,
    ) -> u32 {
        let resume = self.restart(pe, relaunch_stall);
        pe.ctx().record_fault(FaultEvent::Recovery {
            runtime: "shmem",
            action: "checkpoint_restart",
            detail: u64::from(failed_iter.saturating_sub(resume)),
        });
        resume
    }

    /// Recover the payload stored for the checkpoint `resume` points one
    /// past (`None` for `resume == 0`: initial state). In async mode a
    /// payload whose drain was still in flight at the crash is a torn
    /// file and yields `None` even though the snapshot existed in
    /// (lost) memory.
    pub fn restore_payload<P: Clone + Send + Sync + 'static>(&self, resume: u32) -> Option<P> {
        let iter = resume.checked_sub(1)?;
        let durable = match self.mode {
            CheckpointMode::Coordinated => true,
            CheckpointMode::Async => self
                .drains
                .drain_of(iter)
                .is_some_and(|d| d.done <= self.crash_cutoff()),
        };
        if !durable {
            return None;
        }
        self.payloads
            .iter()
            .find(|&&(i, _)| i == iter)
            .and_then(|(_, p)| p.downcast_ref::<P>().cloned())
    }

    /// Number of checkpoints taken so far.
    pub fn taken(&self) -> u32 {
        self.checkpoints_taken
    }

    /// This PE's drain ledger (async mode; coordinated drains complete
    /// synchronously). The campaign generator reads the windows off an
    /// oracle run to aim crashes inside them.
    pub fn drain_windows(&self) -> Vec<(SimTime, SimTime)> {
        self.drains.windows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launch::{shmem_run, shmem_run_faulty};
    use hpcbd_cluster::Placement;
    use hpcbd_simnet::{FaultPlan, NodeId};

    #[test]
    fn checkpoints_fire_on_interval() {
        let out = shmem_run(Placement::new(1, 2), |pe| {
            let mut ck = ShmemCheckpointer::new(3, 1 << 20);
            let mut fired = vec![];
            for iter in 0..10 {
                if ck.after_iteration(pe, iter) {
                    fired.push(iter);
                }
            }
            (fired, ck.taken(), ck.restart_iteration())
        });
        for (fired, taken, resume) in out.results {
            assert_eq!(fired, vec![2, 5, 8]);
            assert_eq!(taken, 3);
            assert_eq!(resume, 9);
        }
    }

    #[test]
    fn async_steady_state_is_cheaper_than_coordinated() {
        fn run(mode: CheckpointMode) -> hpcbd_simnet::SimTime {
            shmem_run(Placement::new(2, 2), move |pe| {
                let mut ck = ShmemCheckpointer::new(2, 64 << 20).with_mode(mode);
                let acc = pe.malloc::<f64>("acc", 1, 0.0);
                let work = Work::new(5.0e7, 0.0);
                for iter in 0..12 {
                    pe.ctx().compute(work, 1.0);
                    pe.local_write(&acc, 0, &[f64::from(iter)]);
                    pe.sum_to_all(&acc);
                    ck.after_iteration(pe, iter);
                }
                ck.taken()
            })
            .elapsed()
        }
        let coordinated = run(CheckpointMode::Coordinated);
        let asynchronous = run(CheckpointMode::Async);
        assert!(
            asynchronous < coordinated,
            "background drains must beat stop-the-world writes at equal \
             interval: async={asynchronous} coordinated={coordinated}"
        );
    }

    #[test]
    fn abort_policy_is_a_structured_abort() {
        let caught = std::panic::catch_unwind(|| {
            let _ = shmem_run_faulty(
                Placement::new(2, 2),
                FaultPlan::new(1).crash_node(NodeId(1), SimTime(1_000)),
                |pe| {
                    let mut ck = ShmemCheckpointer::new(2, 1 << 20);
                    let acc = pe.malloc::<f64>("acc", 1, 0.0);
                    for iter in 0..10 {
                        pe.ctx().compute(Work::new(1_000_000.0, 0.0), 1.0);
                        pe.local_write(&acc, 0, &[f64::from(iter)]);
                        pe.sum_to_all(&acc);
                        ck.after_iteration(pe, iter);
                        ck.poll_plan_failure(pe, FaultPolicy::Abort);
                    }
                },
            );
        })
        .expect_err("shmem_global_exit must unwind");
        let sa = StructuredAbort::from_panic(caught.as_ref() as &(dyn Any + Send))
            .expect("global exit must surface as a structured abort");
        assert_eq!(sa.runtime, "shmem");
        assert!(
            sa.reason.contains("shmem_global_exit"),
            "reason: {}",
            sa.reason
        );
    }

    #[test]
    fn poll_is_free_without_a_plan() {
        let out = shmem_run(Placement::new(2, 1), |pe| {
            let mut ck = ShmemCheckpointer::new(2, 1 << 10);
            let mut detected = 0u32;
            for iter in 0..4 {
                ck.after_iteration(pe, iter);
                if ck.poll_plan_failure(pe, FaultPolicy::Abort) {
                    detected += 1;
                }
            }
            detected
        });
        assert_eq!(out.results, vec![0, 0]);
    }

    /// The canonical semantic-recovery workload: iterative state
    /// evolution over `sum_to_all` with payload capture and full
    /// re-execution from the restored checkpoint.
    fn shmem_sum_job(plan: Option<FaultPlan>, iters: u32) -> Vec<f64> {
        let body = move |pe: &mut PeCtx| {
            let mut ck = ShmemCheckpointer::new(2, 64 << 20).with_mode(CheckpointMode::Async);
            let acc = pe.malloc::<f64>("acc", 1, 0.0);
            let work = Work::new(5.0e7, 0.0);
            let stall = SimDuration::from_secs(1);
            let mut state = 0.0f64;
            let mut iter = 0u32;
            while iter < iters {
                pe.ctx().compute(work, 1.0);
                pe.local_write(&acc, 0, &[f64::from(iter) + 1.0]);
                pe.sum_to_all(&acc);
                let v = pe.local_clone(&acc)[0];
                state += v * f64::from(iter + 1);
                ck.after_iteration_with(pe, iter, || state);
                if ck.poll_plan_failure(
                    pe,
                    FaultPolicy::Restart {
                        relaunch_stall: stall,
                    },
                ) {
                    let resume = ck.restart_semantic(pe, stall, iter);
                    state = ck.restore_payload::<f64>(resume).unwrap_or(0.0);
                    iter = resume;
                    continue;
                }
                iter += 1;
            }
            state
        };
        match plan {
            Some(p) => shmem_run_faulty(Placement::new(2, 2), p, body).results,
            None => shmem_run(Placement::new(2, 2), body).results,
        }
    }

    /// Drain windows of the oracle (fault-free) run of `shmem_sum_job`.
    fn oracle_drain_windows(iters: u32) -> Vec<(SimTime, SimTime)> {
        let out = shmem_run(Placement::new(2, 2), move |pe| {
            let mut ck = ShmemCheckpointer::new(2, 64 << 20).with_mode(CheckpointMode::Async);
            let acc = pe.malloc::<f64>("acc", 1, 0.0);
            let work = Work::new(5.0e7, 0.0);
            let mut state = 0.0f64;
            for iter in 0..iters {
                pe.ctx().compute(work, 1.0);
                pe.local_write(&acc, 0, &[f64::from(iter) + 1.0]);
                pe.sum_to_all(&acc);
                state += pe.local_clone(&acc)[0] * f64::from(iter + 1);
                ck.after_iteration_with(pe, iter, || state);
            }
            ck.drain_windows()
        });
        out.results.into_iter().flatten().collect()
    }

    /// A crash time inside a mid-run drain window of the oracle: late
    /// enough that checkpoints exist, early enough that later
    /// iterations still poll and detect it.
    fn mid_drain_crash_time(iters: u32) -> SimTime {
        let windows = oracle_drain_windows(iters);
        assert!(windows.len() >= 4, "async job must drain repeatedly");
        let (issue, done) = windows[windows.len() / 2];
        SimTime(issue.nanos() + (done.nanos() - issue.nanos()) / 2)
    }

    #[test]
    fn async_restart_from_drained_checkpoint_preserves_the_result() {
        let oracle = shmem_sum_job(None, 10);
        // Aim the crash inside a drain window so the snapshot being
        // drained is torn and restart must fall back one checkpoint.
        let plan = FaultPlan::new(3).crash_node(NodeId(1), mid_drain_crash_time(10));
        let recovered = shmem_sum_job(Some(plan), 10);
        assert_eq!(
            recovered, oracle,
            "correct async recovery must be digest-equal to the fault-free run"
        );
    }

    #[test]
    fn async_restart_before_any_drain_resumes_from_zero() {
        let oracle = shmem_sum_job(None, 6);
        // Crash before the first checkpoint interval completes.
        let plan = FaultPlan::new(3).crash_node(NodeId(1), SimTime(1_000));
        let recovered = shmem_sum_job(Some(plan), 6);
        assert_eq!(recovered, oracle, "full re-execution from iteration 0");
    }
}
