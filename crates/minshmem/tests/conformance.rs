//! Schedule-exploration conformance: a PGAS workload with one-sided
//! puts and a global barrier must be bit-identical to the sequential
//! oracle under perturbed legal schedules.

use hpcbd_check::Explorer;
use hpcbd_cluster::Placement;
use hpcbd_minshmem::shmem_run;

fn pgas_workload() {
    let out = shmem_run(Placement::new(2, 2), |pe| {
        let arr = pe.malloc::<u64>("slots", 4, 0);
        let me = pe.pe();
        // Every PE writes into PE 0's symmetric array, then reads a
        // neighbour's slot back after the barrier.
        pe.put(&arr, me as usize, &[me as u64 * 7], 0);
        pe.barrier_all();
        pe.local_clone(&arr)
    });
    assert_eq!(out.results[0], vec![0, 7, 14, 21]);
}

#[test]
fn shmem_puts_are_schedule_independent() {
    Explorer::new(0x5348)
        .schedules(8)
        .threads(4)
        .explore(pgas_workload)
        .assert_deterministic();
}
