//! Figure 4 — the StackExchange AnswersCount benchmark.
//!
//! Counts the average number of answers per question over an 80 GB text
//! dump, implemented in all four paradigms (Sec. V-C):
//!
//! * **OpenMP** — single node only (8- and 16-core teams): sequential
//!   scratch read plus a parallel parse/count region on the `minomp`
//!   pool, with region time charged through the OpenMP cost model.
//! * **MPI** — parallel I/O (`read_at_all`) over per-node replicas;
//!   *fails below 41 processes* on 80 GB because of the `int` count
//!   limitation, exactly like the paper.
//! * **Spark** — `hadoop_file` over HDFS, map + reduce actions.
//! * **Hadoop** — a MapReduce job with a combiner.
//!
//! Every implementation returns `(elapsed seconds, average answers per
//! question)`; the averages must all agree with the dataset oracle.

use std::sync::Arc;

use hpcbd_cluster::Placement;
use hpcbd_minhdfs::HdfsConfig;
use hpcbd_minimpi::{MpiJob, ReduceOp};
use hpcbd_minmapreduce::{JobConf, MrJobBuilder};
use hpcbd_minomp::{OmpModel, OmpPool, Schedule};
use hpcbd_minspark::{SparkCluster, SparkConfig};
use hpcbd_simnet::{InputFormat, NodeId, Sim, Topology, Work};
use hpcbd_workloads::{PostKind, StackExchangeDataset};

use crate::table::{fmt_secs, ResultTable};

/// The 80 GB benchmark input (sampled).
pub fn dataset() -> StackExchangeDataset {
    StackExchangeDataset::paper_80gb()
}

/// Native per-logical-record cost of the C parse/count loop used by the
/// OpenMP and MPI implementations (sscanf-free scanning).
fn native_scan_work() -> Work {
    Work::new(60.0, 1600.0)
}

/// OpenMP on one node with `threads` threads.
// TABLE3-BEGIN: answers-openmp
pub fn openmp_answers(ds: &StackExchangeDataset, threads: u32) -> (f64, f64) {
    let ds = ds.clone();
    let mut sim = Sim::new(Topology::comet(1));
    sim.world()
        .fs
        .replicate_to_scratch([NodeId(0)], "posts.txt", ds.logical_size, None);
    let proc = sim.spawn(NodeId(0), "omp-main", move |ctx| {
        let t0 = ctx.now();
        // Sequential read of the whole file from local scratch.
        ctx.disk_read(ds.logical_size);
        // Parallel parse + count region over the logical records.
        let records = ds.logical_records();
        let sample = ds.sample_records(0, ds.logical_size);
        let model = OmpModel::default();
        let schedule = Schedule::Dynamic { chunk: 4096 };
        model.charge_region(
            ctx,
            threads,
            schedule,
            records as usize,
            native_scan_work().scaled(records as f64),
        );
        // The real count runs on the actual `minomp` pool (real threads).
        let pool = OmpPool::new(threads as usize);
        let sample_ref = Arc::new(sample);
        let sr = sample_ref.clone();
        let (q, a) = pool.parallel_reduce(
            0..sample_ref.len() as u64,
            schedule,
            (0u64, 0u64),
            move |i| match sr[i as usize].kind {
                PostKind::Question => (1, 0),
                PostKind::Answer => (0, 1),
            },
            |x, y| (x.0 + y.0, x.1 + y.1),
        );
        ((ctx.now() - t0).as_secs_f64(), a as f64 / q as f64)
    });
    let mut report = sim.run();
    report.result::<(f64, f64)>(proc)
}
// TABLE3-END: answers-openmp

/// MPI with parallel I/O on `placement`.
// TABLE3-BEGIN: answers-mpi
pub fn mpi_answers(ds: &StackExchangeDataset, placement: Placement) -> Result<(f64, f64), String> {
    let ds = Arc::new(ds.clone());
    let mut sim = Sim::new(Topology::comet(placement.nodes));
    sim.world().fs.replicate_to_scratch(
        (0..placement.nodes).map(NodeId),
        "posts.txt",
        ds.logical_size,
        None,
    );
    let job = MpiJob::spawn(&mut sim, placement, move |rank| {
        let t0 = rank.now();
        let file = rank.file_open_all("posts.txt").map_err(|e| e.to_string())?;
        let (offset, len) = file.read_chunked_all(rank).map_err(|e| e.to_string())?;
        let sample = ds.sample_records(offset, len);
        let scale = ds.logical_scale();
        rank.ctx()
            .compute(native_scan_work().scaled(sample.len() as f64 * scale), 1.0);
        let (mut q, mut a) = (0u64, 0u64);
        for p in &sample {
            match p.kind {
                PostKind::Question => q += 1,
                PostKind::Answer => a += 1,
            }
        }
        let totals = rank.allreduce(ReduceOp::Sum, &[q, a]);
        Ok::<(f64, f64), String>((
            (rank.now() - t0).as_secs_f64(),
            totals[1] as f64 / totals[0] as f64,
        ))
    });
    let mut report = sim.run();
    let results = job.results::<Result<(f64, f64), String>>(&mut report);
    let mut worst = 0.0f64;
    let mut avg = 0.0;
    for r in results {
        let (t, av) = r?;
        worst = worst.max(t);
        avg = av;
    }
    Ok((worst, avg))
}
// TABLE3-END: answers-mpi

/// Spark over HDFS on `placement`.
// TABLE3-BEGIN: answers-spark
pub fn spark_answers(ds: &StackExchangeDataset, placement: Placement) -> (f64, f64) {
    let ds = Arc::new(ds.clone());
    let config = SparkConfig {
        executors_per_node: placement.per_node,
        ..Default::default()
    };
    let r = SparkCluster::new(placement.nodes, config)
        .with_hdfs(HdfsConfig::default())
        .hdfs_file("/posts", ds.logical_size, None)
        .run(move |sc| {
            let t0 = sc.now();
            let posts = sc.hadoop_file("/posts", ds);
            let counts = posts.map(|p| match p.kind {
                PostKind::Question => (1u64, 0u64),
                PostKind::Answer => (0, 1),
            });
            let (q, a) = sc
                .reduce(&counts, |x, y| (x.0 + y.0, x.1 + y.1))
                .expect("non-empty dataset");
            ((sc.now() - t0).as_secs_f64(), a as f64 / q as f64)
        });
    r.value
}
// TABLE3-END: answers-spark

/// Hadoop MapReduce on `placement`.
// TABLE3-BEGIN: answers-hadoop
pub fn hadoop_answers(ds: &StackExchangeDataset, placement: Placement) -> (f64, f64) {
    let result = MrJobBuilder::new(
        Arc::new(ds.clone()),
        "/posts",
        ds.logical_size,
        |p: &hpcbd_workloads::Post| match p.kind {
            PostKind::Question => vec![("q", 1u64)],
            PostKind::Answer => vec![("a", 1u64)],
        },
        |_k, vs: &[u64]| vs.iter().sum(),
    )
    .combiner(|_k, vs: &[u64]| vs.iter().sum())
    .conf(JobConf {
        reduce_tasks: 2,
        slots_per_node: placement.per_node,
        ..Default::default()
    })
    .run(placement.nodes);
    let q = result
        .pairs
        .iter()
        .find(|(k, _)| *k == "q")
        .map(|(_, v)| *v)
        .unwrap_or(1);
    let a = result
        .pairs
        .iter()
        .find(|(k, _)| *k == "a")
        .map(|(_, v)| *v)
        .unwrap_or(0);
    (result.elapsed.as_secs_f64(), a as f64 / q as f64)
}
// TABLE3-END: answers-hadoop

/// Reproduce Fig. 4: execution time vs process count for all four
/// paradigms, `ppn` processes per node. OpenMP appears only at the 8-
/// and 16-core points (one node); MPI reports its failure below 41
/// processes.
pub fn figure4(ds: &StackExchangeDataset, node_counts: &[u32], ppn: u32) -> ResultTable {
    let mut t = ResultTable::new(
        format!("Fig. 4 — StackExchange AnswersCount, 80 GB, {ppn} processes/node"),
        &["processes", "OpenMP", "MPI", "Spark", "Hadoop"],
    );
    for &nodes in node_counts {
        let placement = Placement::new(nodes, ppn);
        let procs = placement.total();
        let omp = if nodes == 1 && (procs == 8 || procs == 16) {
            fmt_secs(openmp_answers(ds, procs).0)
        } else if nodes == 1 {
            fmt_secs(openmp_answers(ds, procs.min(16)).0)
        } else {
            "-".to_string()
        };
        let mpi = match mpi_answers(ds, placement) {
            Ok((t, _)) => fmt_secs(t),
            Err(_) => "fail (>MAX_INT chunk)".to_string(),
        };
        let spark = fmt_secs(spark_answers(ds, placement).0);
        let hadoop = fmt_secs(hadoop_answers(ds, placement).0);
        t.push_row(vec![procs.to_string(), omp, mpi, spark, hadoop]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small dataset for fast tests: 4 GB logical, ~20k sample records.
    fn small_ds() -> StackExchangeDataset {
        let size = 4u64 << 30;
        let records = size / hpcbd_workloads::stackexchange::RECORD_BYTES;
        StackExchangeDataset::new(0xA125, size, records / 20_000)
    }

    #[test]
    fn all_paradigms_agree_on_the_average() {
        let ds = small_ds();
        let placement = Placement::new(2, 4);
        let (q, a) = ds.oracle_counts(0, ds.logical_size);
        let oracle = a as f64 / q as f64;
        let (_, omp) = openmp_answers(&ds, 8);
        let (_, mpi) = mpi_answers(&ds, placement).unwrap();
        let (_, spark) = spark_answers(&ds, placement);
        let (_, hadoop) = hadoop_answers(&ds, placement);
        for (name, avg) in [
            ("openmp", omp),
            ("mpi", mpi),
            ("spark", spark),
            ("hadoop", hadoop),
        ] {
            assert!(
                (avg - oracle).abs() / oracle < 0.02,
                "{name} avg {avg} vs oracle {oracle}"
            );
        }
        // Sanity: around 4 answers per question by construction.
        assert!((oracle - 4.0).abs() < 0.5);
    }

    #[test]
    fn spark_beats_hadoop() {
        // Fig. 4: "noticeable difference between the Hadoop and Spark
        // execution times" — Hadoop persists intermediates to disk and
        // pays job/task startup.
        let ds = small_ds();
        let placement = Placement::new(2, 4);
        let (spark_t, _) = spark_answers(&ds, placement);
        let (hadoop_t, _) = hadoop_answers(&ds, placement);
        assert!(
            spark_t < hadoop_t,
            "spark {spark_t} must beat hadoop {hadoop_t}"
        );
    }

    #[test]
    fn spark_scales_with_nodes() {
        let ds = small_ds();
        let (t2, _) = spark_answers(&ds, Placement::new(2, 4));
        let (t4, _) = spark_answers(&ds, Placement::new(4, 4));
        assert!(t4 < t2, "4 nodes ({t4}) must beat 2 nodes ({t2})");
    }

    #[test]
    fn openmp_16_threads_beats_8() {
        let ds = small_ds();
        let (t8, _) = openmp_answers(&ds, 8);
        let (t16, _) = openmp_answers(&ds, 16);
        assert!(t16 < t8, "16 threads ({t16}) must beat 8 ({t8})");
    }

    #[test]
    fn openmp_is_disk_bound_so_scaling_saturates() {
        // A single node reads the whole file; compute threads cannot
        // hide the sequential disk — the reason OpenMP cannot compete at
        // scale in Fig. 4.
        let ds = small_ds();
        let (t8, _) = openmp_answers(&ds, 8);
        let (t16, _) = openmp_answers(&ds, 16);
        let speedup = t8 / t16;
        assert!(
            speedup < 1.9,
            "disk floor should cap the 8->16 speedup, got {speedup}"
        );
    }

    #[test]
    fn mpi_80gb_fails_with_16_procs() {
        let ds = dataset();
        let err = mpi_answers(&ds, Placement::new(2, 8)).unwrap_err();
        assert!(err.contains("MAX_INT"));
    }

    #[test]
    fn figure4_rows_render() {
        let ds = small_ds();
        let t = figure4(&ds, &[1, 2], 4);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[1][1], "-", "OpenMP absent beyond one node");
    }
}
