//! Result tables: the rows/series the paper's tables and figures report.

use std::fmt;

/// A labeled table of results (one per reproduced table/figure).
#[derive(Debug, Clone, PartialEq)]
pub struct ResultTable {
    /// Table/figure title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows (stringified cells).
    pub rows: Vec<Vec<String>>,
}

impl ResultTable {
    /// New empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> ResultTable {
        ResultTable {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
    }

    /// Render as CSV (headers first).
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Fetch a cell parsed as `f64` (for shape assertions in tests).
    pub fn cell_f64(&self, row: usize, col: usize) -> f64 {
        self.rows[row][col]
            .trim_end_matches(|c: char| !c.is_ascii_digit())
            .parse()
            .unwrap_or_else(|_| {
                panic!("cell ({row},{col}) = {:?} not numeric", self.rows[row][col])
            })
    }
}

impl fmt::Display for ResultTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "### {}", self.title)?;
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (w, cell) in widths.iter().zip(cells) {
                write!(f, " {cell:w$} |")?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<width$}|", "", width = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Format seconds with three significant decimals, like the paper's
/// tables ("8.2s", "46.751s").
pub fn fmt_secs(secs: f64) -> String {
    format!("{secs:.3}s")
}

/// Format a microsecond latency.
pub fn fmt_micros(us: f64) -> String {
    format!("{us:.2}us")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown_and_csv() {
        let mut t = ResultTable::new("Demo", &["size", "time"]);
        t.push_row(vec!["8".into(), "1.5".into()]);
        t.push_row(vec!["16".into(), "2.25".into()]);
        let md = t.to_string();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| 8 "));
        let csv = t.to_csv();
        assert_eq!(csv, "size,time\n8,1.5\n16,2.25\n");
        assert_eq!(t.cell_f64(1, 1), 2.25);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_rows_rejected() {
        let mut t = ResultTable::new("X", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn cell_f64_strips_units() {
        let mut t = ResultTable::new("U", &["t"]);
        t.push_row(vec![fmt_secs(1.25)]);
        assert_eq!(t.cell_f64(0, 0), 1.25);
    }
}
