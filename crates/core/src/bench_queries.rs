//! Ablation A6 — repeated queries: Hadoop's per-job disk round trip vs
//! Spark's in-memory iteration.
//!
//! Sec. II-D of the paper: "Each query in Hadoop reads data from disk
//! and runs as a separate MapReduce job. However, Spark enables
//! in-memory iterative processing ... the user can query repeatedly on
//! a dataset without having to perform intermediate disk operations."
//! This experiment runs `k` different filter-count queries over the same
//! dataset with both engines and reports how the gap grows with `k`.

use std::sync::Arc;

use hpcbd_cluster::Placement;
use hpcbd_minhdfs::HdfsConfig;
use hpcbd_minmapreduce::{JobConf, MrJobBuilder};
use hpcbd_minspark::{SparkCluster, SparkConfig, StorageLevel};
use hpcbd_simnet::InputFormat;
use hpcbd_workloads::{Post, StackExchangeDataset};

use crate::table::{fmt_secs, ResultTable};

/// Query `q`: posts whose body length falls in the q-th decile band.
fn query_matches(q: u32, p: &Post) -> bool {
    (p.body_len / 200) % 10 == q
}

/// Hadoop: one full MapReduce job per query — each re-reads the input
/// from HDFS and re-parses it. Returns (total seconds, per-query hits).
// TABLE3-BEGIN: queries-hadoop
pub fn hadoop_queries(
    ds: &StackExchangeDataset,
    placement: Placement,
    queries: u32,
) -> (f64, Vec<u64>) {
    let mut total = 0.0;
    let mut hits = Vec::new();
    for q in 0..queries {
        let result = MrJobBuilder::new(
            Arc::new(ds.clone()),
            "/posts",
            ds.logical_size,
            move |p: &Post| {
                if query_matches(q, p) {
                    vec![((), 1u64)]
                } else {
                    vec![]
                }
            },
            |_k, vs: &[u64]| vs.iter().sum(),
        )
        .combiner(|_k, vs: &[u64]| vs.iter().sum())
        .conf(JobConf {
            reduce_tasks: 1,
            slots_per_node: placement.per_node,
            ..Default::default()
        })
        .run(placement.nodes);
        total += result.elapsed.as_secs_f64();
        // Reducer output counts sample records; report logical hits.
        let sample_hits = result.pairs.first().map(|(_, v)| *v).unwrap_or(0);
        hits.push((sample_hits as f64 * ds.logical_scale()) as u64);
    }
    (total, hits)
}
// TABLE3-END: queries-hadoop

/// Spark: load + parse once, `persist`, then run every query as an
/// action over the cached RDD.
// TABLE3-BEGIN: queries-spark
pub fn spark_queries(
    ds: &StackExchangeDataset,
    placement: Placement,
    queries: u32,
) -> (f64, Vec<u64>) {
    let ds = Arc::new(ds.clone());
    let config = SparkConfig {
        executors_per_node: placement.per_node,
        ..Default::default()
    };
    let r = SparkCluster::new(placement.nodes, config)
        .with_hdfs(HdfsConfig::default())
        .hdfs_file("/posts", ds.logical_size, None)
        .run(move |sc| {
            let t0 = sc.now();
            let posts = sc
                .hadoop_file("/posts", ds)
                .persist(StorageLevel::MemoryAndDisk);
            let mut hits = Vec::new();
            for q in 0..queries {
                let matched = posts.filter(move |p| query_matches(q, p));
                hits.push(sc.count(&matched));
            }
            ((sc.now() - t0).as_secs_f64(), hits)
        });
    r.value
}
// TABLE3-END: queries-spark

/// The A6 table: total time for k = 1, 2, 4, ... queries.
pub fn ablation_queries(
    ds: &StackExchangeDataset,
    placement: Placement,
    query_counts: &[u32],
) -> ResultTable {
    let mut t = ResultTable::new(
        format!(
            "A6 — k repeated queries over {} GB: Hadoop (job per query) vs Spark (persist)",
            ds.logical_size >> 30
        ),
        &["queries", "Hadoop", "Spark", "Hadoop/Spark"],
    );
    for &k in query_counts {
        let (hadoop_t, h_hits) = hadoop_queries(ds, placement, k);
        let (spark_t, s_hits) = spark_queries(ds, placement, k);
        // Scaled counts may differ by sampling rounding only.
        for (a, b) in h_hits.iter().zip(&s_hits) {
            let (a, b) = (*a as f64, *b as f64);
            assert!(
                a == 0.0 && b == 0.0 || ((a - b).abs() / a.max(b)) < 0.05,
                "query results diverged: {h_hits:?} vs {s_hits:?}"
            );
        }
        t.push_row(vec![
            k.to_string(),
            fmt_secs(hadoop_t),
            fmt_secs(spark_t),
            format!("{:.2}x", hadoop_t / spark_t),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds() -> StackExchangeDataset {
        let size = 2u64 << 30;
        let records = size / hpcbd_workloads::stackexchange::RECORD_BYTES;
        StackExchangeDataset::new(0x0A6, size, records / 15_000)
    }

    #[test]
    fn engines_agree_on_query_results() {
        let placement = Placement::new(2, 4);
        let (_, h) = hadoop_queries(&ds(), placement, 3);
        let (_, s) = spark_queries(&ds(), placement, 3);
        assert_eq!(h.len(), 3);
        for (a, b) in h.iter().zip(&s) {
            let (a, b) = (*a as f64, *b as f64);
            assert!(((a - b).abs() / a.max(b)) < 0.05, "{h:?} vs {s:?}");
        }
        // Sanity: each decile band catches a nontrivial share.
        assert!(h.iter().all(|c| *c > 0));
    }

    #[test]
    fn spark_advantage_grows_with_query_count() {
        let placement = Placement::new(2, 4);
        let (h1, _) = hadoop_queries(&ds(), placement, 1);
        let (s1, _) = spark_queries(&ds(), placement, 1);
        let (h4, _) = hadoop_queries(&ds(), placement, 4);
        let (s4, _) = spark_queries(&ds(), placement, 4);
        let ratio1 = h1 / s1;
        let ratio4 = h4 / s4;
        assert!(
            ratio4 > ratio1 * 1.5,
            "Hadoop/Spark ratio must grow with queries: k=1 {ratio1:.2}, k=4 {ratio4:.2}"
        );
    }

    #[test]
    fn spark_marginal_query_is_nearly_free() {
        // After the first (paying ingest), each additional query costs a
        // small fraction: the cache turns 80 GB re-reads into memory hits.
        let placement = Placement::new(2, 4);
        let (s1, _) = spark_queries(&ds(), placement, 1);
        let (s5, _) = spark_queries(&ds(), placement, 5);
        let marginal = (s5 - s1) / 4.0;
        assert!(
            marginal < s1 * 0.35,
            "marginal query {marginal:.3}s vs first {s1:.3}s"
        );
    }
}
