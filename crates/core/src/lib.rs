//! `hpcbd-core` — the study itself: per-paradigm benchmark
//! implementations and the experiment framework that regenerates every
//! table and figure of the paper.
//!
//! Modules map one-to-one to the paper's evaluation section:
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`bench_reduce`] | Fig. 3 — reduce microbenchmark |
//! | [`bench_fileread`] | Table II — parallel file read |
//! | [`bench_answers`] | Fig. 4 — StackExchange AnswersCount |
//! | [`bench_pagerank`] | Figs. 6/7 — PageRank (BigDataBench / HiBench) |
//! | [`bench_queries`] | A6 — repeated queries (Sec. II-D/E contrast) |
//! | [`bench_offload`] | A8 — accelerator offload trade-off (Sec. III-D) |
//! | [`bench_seismic`] | A7 — Kirchhoff storage contention (Sec. III-C) |
//! | [`table`] | result-table rendering |
//!
//! Every benchmark validates its computed *result* against a sequential
//! oracle and reports *virtual* execution times from the simulated Comet
//! platform (`hpcbd-simnet` / `hpcbd-cluster`).

#![warn(missing_docs)]

pub mod bench_answers;
pub mod bench_fileread;
pub mod bench_offload;
pub mod bench_pagerank;
pub mod bench_queries;
pub mod bench_reduce;
pub mod bench_seismic;
pub mod table;

pub use table::ResultTable;
