//! Figure 3 — the reduce microbenchmark (OSU-style).
//!
//! MPI side: `MPI_Reduce` of a replicated float array, timed over many
//! iterations, exactly like the OSU microbenchmark the paper uses. Spark
//! side: the paper's equivalent (Fig. 2's code): an array of
//! `processes x array_size` floats parallelized into one RDD, folded
//! with a `reduce` action. The Spark-RDMA variant only changes the
//! shuffle engine — which, as the paper observes, barely matters here
//! because a `reduce` action shuffles nothing; the driver's coordination
//! (always on Java sockets) dominates.

use hpcbd_cluster::Placement;
use hpcbd_minimpi::{mpirun, ReduceOp};
use hpcbd_minspark::{ShuffleEngine, SparkCluster, SparkConfig};

use crate::table::{fmt_micros, ResultTable};

/// One measured series point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReducePoint {
    /// Per-process message size in bytes (elements x 4, f32).
    pub bytes: u64,
    /// Mean per-operation latency in microseconds.
    pub latency_us: f64,
}

/// MPI reduce latency for `elements` f32 per rank on `placement`,
/// averaged over `iters` operations after one warmup.
// TABLE3-BEGIN: reduce-mpi
pub fn mpi_reduce_latency(placement: Placement, elements: usize, iters: u32) -> ReducePoint {
    let out = mpirun(placement, move |rank| {
        let data = vec![1.0f32; elements];
        // Warmup: route establishment, algorithm warm caches.
        rank.reduce(0, ReduceOp::Sum, &data);
        rank.barrier();
        let t0 = rank.now();
        for _ in 0..iters {
            rank.reduce(0, ReduceOp::Sum, &data);
        }
        rank.barrier();
        (rank.now() - t0).as_secs_f64()
    });
    let worst = out.results.iter().cloned().fold(0.0f64, f64::max);
    ReducePoint {
        bytes: elements as u64 * 4,
        latency_us: worst / iters as f64 * 1e6,
    }
}
// TABLE3-END: reduce-mpi

/// Spark reduce latency for the equivalent problem: an RDD of
/// `procs x elements` floats reduced to one scalar (the paper's Fig. 2
/// construction), timed from the driver around the action only.
// TABLE3-BEGIN: reduce-spark
pub fn spark_reduce_latency(placement: Placement, elements: usize, rdma: bool) -> ReducePoint {
    let mut config = SparkConfig::with_shuffle(if rdma {
        ShuffleEngine::Rdma
    } else {
        ShuffleEngine::Socket
    });
    config.executors_per_node = placement.per_node;
    let total = placement.total() as usize * elements;
    let parts = placement.total();
    let secs = SparkCluster::new(placement.nodes, config)
        .run(move |sc| {
            let zeros = vec![0.5f32; total];
            let rdd = sc.parallelize_with_bytes(zeros, parts, 4);
            let t0 = sc.now();
            let sum = sc.reduce(&rdd, |a, b| a + b);
            let dt = (sc.now() - t0).as_secs_f64();
            assert!(sum.is_some());
            dt
        })
        .value;
    ReducePoint {
        bytes: elements as u64 * 4,
        latency_us: secs * 1e6,
    }
}
// TABLE3-END: reduce-spark

/// The standard message-size sweep of Fig. 3 (bytes per process).
pub fn standard_sizes() -> Vec<usize> {
    // 4 B .. 1 MB in x4 steps (f32 element counts).
    vec![1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144]
}

/// Reproduce Fig. 3: all three series over the size sweep on the given
/// placement (the paper: 8 nodes x 8 processes).
pub fn figure3(placement: Placement, sizes: &[usize], mpi_iters: u32) -> ResultTable {
    let mut t = ResultTable::new(
        format!(
            "Fig. 3 — Reduce microbenchmark, {} processes ({} nodes x {} ppn)",
            placement.total(),
            placement.nodes,
            placement.per_node
        ),
        &["bytes", "MPI", "Spark", "Spark-RDMA"],
    );
    for &elements in sizes {
        let mpi = mpi_reduce_latency(placement, elements, mpi_iters);
        let spark = spark_reduce_latency(placement, elements, false);
        let spark_rdma = spark_reduce_latency(placement, elements, true);
        t.push_row(vec![
            (elements * 4).to_string(),
            fmt_micros(mpi.latency_us),
            fmt_micros(spark.latency_us),
            fmt_micros(spark_rdma.latency_us),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Placement {
        Placement::new(2, 4)
    }

    #[test]
    fn mpi_latency_grows_with_message_size() {
        let small_msg = mpi_reduce_latency(small(), 1, 5);
        let large_msg = mpi_reduce_latency(small(), 65536, 5);
        assert!(small_msg.latency_us < large_msg.latency_us);
        // Small reduce is microseconds, not milliseconds.
        assert!(
            small_msg.latency_us < 100.0,
            "4B reduce took {}us",
            small_msg.latency_us
        );
    }

    #[test]
    fn spark_latency_dwarfs_mpi_at_all_sizes() {
        for elements in [1usize, 4096] {
            let mpi = mpi_reduce_latency(small(), elements, 3);
            let spark = spark_reduce_latency(small(), elements, false);
            assert!(
                spark.latency_us > 50.0 * mpi.latency_us,
                "at {elements} elems: spark {}us vs mpi {}us",
                spark.latency_us,
                mpi.latency_us
            );
        }
    }

    #[test]
    fn rdma_does_not_significantly_change_spark_reduce() {
        // The paper: "the use of Spark RDMA does not significantly
        // improve the results" — no shuffle happens in a reduce action.
        let socket = spark_reduce_latency(small(), 1024, false);
        let rdma = spark_reduce_latency(small(), 1024, true);
        let ratio = socket.latency_us / rdma.latency_us;
        assert!(
            (0.8..1.25).contains(&ratio),
            "socket/rdma ratio {ratio} should be ~1"
        );
    }

    #[test]
    fn figure3_produces_full_sweep() {
        let t = figure3(small(), &[1, 256], 3);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.headers.len(), 4);
        // Monotone size column.
        assert!(t.cell_f64(0, 0) < t.cell_f64(1, 0));
    }
}
