//! Table II — the parallel file read microbenchmark.
//!
//! Reads an 8 GB / 80 GB file in parallel and reports execution time,
//! with the paper's three configurations:
//!
//! 1. **Spark on HDFS** — the input lives in HDFS on the scratch SSDs;
//!    lazy RDDs force a `count` action to materialize the read.
//! 2. **Spark on local filesystems** — the input pre-replicated to every
//!    node's scratch; measures what the HDFS layer itself costs (the
//!    paper: ~25 % overhead, "acceptable" for the failure transparency).
//! 3. **MPI** — `MPI_File_read_at_all` over per-node scratch replicas,
//!    one contiguous chunk per rank, plus the same counting pass.

use std::sync::Arc;

use hpcbd_cluster::Placement;
use hpcbd_minhdfs::HdfsConfig;
use hpcbd_minimpi::MpiJob;
use hpcbd_minspark::{SparkCluster, SparkConfig};
use hpcbd_simnet::{InputFormat, NodeId, Sim, Topology, Work};
use hpcbd_workloads::StackExchangeDataset;

use crate::table::{fmt_secs, ResultTable};

/// Dataset sampled so benchmarks parse ~50k records regardless of the
/// logical size.
pub fn dataset(logical_size: u64) -> StackExchangeDataset {
    let records = logical_size / hpcbd_workloads::stackexchange::RECORD_BYTES;
    StackExchangeDataset::new(0xF11E, logical_size, (records / 50_000).max(1))
}

/// Spark reading the file from HDFS, with a count action. Returns
/// (elapsed seconds, logical records counted).
// TABLE3-BEGIN: fileread-spark-hdfs
pub fn spark_hdfs_read(placement: Placement, size: u64, replication: u32) -> (f64, u64) {
    let ds = Arc::new(dataset(size));
    let config = SparkConfig {
        executors_per_node: placement.per_node,
        ..Default::default()
    };
    let r = SparkCluster::new(placement.nodes, config)
        .with_hdfs(HdfsConfig::with_replication(replication))
        .hdfs_file("/input", size, None)
        .run(move |sc| {
            let t0 = sc.now();
            let lines = sc.hadoop_file("/input", ds);
            let n = sc.count(&lines);
            ((sc.now() - t0).as_secs_f64(), n)
        });
    r.value
}
// TABLE3-END: fileread-spark-hdfs

/// Spark reading per-node local replicas (no HDFS layer).
// TABLE3-BEGIN: fileread-spark-local
pub fn spark_local_read(placement: Placement, size: u64) -> (f64, u64) {
    let ds = Arc::new(dataset(size));
    let config = SparkConfig {
        executors_per_node: placement.per_node,
        ..Default::default()
    };
    let r = SparkCluster::new(placement.nodes, config)
        .scratch_file("/scratch/input", size, None)
        .run(move |sc| {
            let t0 = sc.now();
            // Spark splits local text files at ~128 MB, same as HDFS
            // blocks — match that so the comparison isolates the HDFS
            // layer rather than the partition granularity.
            let parts = (size.div_ceil(128 << 20) as u32).max(placement.total());
            let lines = sc.local_file("/scratch/input", size, parts, ds);
            let n = sc.count(&lines);
            ((sc.now() - t0).as_secs_f64(), n)
        });
    r.value
}
// TABLE3-END: fileread-spark-local

/// MPI parallel read of per-node scratch replicas with the counting
/// pass. Returns `Err` with the MPI-IO diagnostic when the per-rank
/// chunk exceeds `MAX_INT` (the paper's >2 GB failure).
// TABLE3-BEGIN: fileread-mpi
pub fn mpi_read(placement: Placement, size: u64) -> Result<(f64, u64), String> {
    let ds = Arc::new(dataset(size));
    let mut sim = Sim::new(Topology::comet(placement.nodes));
    sim.world()
        .fs
        .replicate_to_scratch((0..placement.nodes).map(NodeId), "input.dat", size, None);
    let job = MpiJob::spawn(&mut sim, placement, move |rank| {
        let t0 = rank.now();
        let file = rank.file_open_all("input.dat").map_err(|e| e.to_string())?;
        let (offset, len) = file.read_chunked_all(rank).map_err(|e| e.to_string())?;
        // Count records in the chunk: a newline scan in native code.
        let sample = ds.sample_records(offset, len);
        let scale = ds.logical_scale();
        rank.ctx().compute(
            Work::new(12.0, 800.0).scaled(sample.len() as f64 * scale),
            1.0,
        );
        let local = (sample.len() as f64 * scale) as u64;
        let total = rank.allreduce(hpcbd_minimpi::ReduceOp::Sum, &[local]);
        Ok::<(f64, u64), String>(((rank.now() - t0).as_secs_f64(), total[0]))
    });
    let mut report = sim.run();
    let results = job.results::<Result<(f64, u64), String>>(&mut report);
    let mut worst = 0.0f64;
    let mut count = 0;
    for r in results {
        let (t, n) = r?;
        worst = worst.max(t);
        count = n;
    }
    Ok((worst, count))
}
// TABLE3-END: fileread-mpi

/// Reproduce Table II for both file sizes.
pub fn table2(placement: Placement, sizes: &[u64]) -> ResultTable {
    let mut t = ResultTable::new(
        format!(
            "Table II — Parallel file read, {} nodes x {} ppn",
            placement.nodes, placement.per_node
        ),
        &[
            "size",
            "Spark on HDFS (scratch fs)",
            "Spark on local (scratch fs)",
            "MPI (scratch fs)",
        ],
    );
    for &size in sizes {
        let (hdfs_t, _) = spark_hdfs_read(placement, size, 3);
        let (local_t, _) = spark_local_read(placement, size);
        let mpi = mpi_read(placement, size);
        t.push_row(vec![
            format!("{}GB", size >> 30),
            fmt_secs(hdfs_t),
            fmt_secs(local_t),
            mpi.map(|(t, _)| fmt_secs(t)).unwrap_or_else(|e| e),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Placement {
        Placement::new(2, 4)
    }

    const GB: u64 = 1 << 30;

    #[test]
    fn all_three_count_the_same_records() {
        let size = 2 * GB;
        let (_, hdfs_n) = spark_hdfs_read(small(), size, 2);
        let (_, local_n) = spark_local_read(small(), size);
        let (_, mpi_n) = mpi_read(small(), size).unwrap();
        // Logical counts agree within sampling rounding (<1%).
        let base = mpi_n as f64;
        for n in [hdfs_n, local_n] {
            assert!(
                ((n as f64 - base).abs() / base) < 0.01,
                "counts diverge: {hdfs_n} {local_n} {mpi_n}"
            );
        }
        // And they approximate the true record count.
        let truth = size / hpcbd_workloads::stackexchange::RECORD_BYTES;
        assert!(((mpi_n as f64 - truth as f64).abs() / truth as f64) < 0.01);
    }

    #[test]
    fn ordering_matches_table_2() {
        let size = 2 * GB;
        let (hdfs_t, _) = spark_hdfs_read(small(), size, 2);
        let (local_t, _) = spark_local_read(small(), size);
        let (mpi_t, _) = mpi_read(small(), size).unwrap();
        assert!(
            mpi_t < local_t && local_t < hdfs_t,
            "expected MPI < Spark-local < Spark-HDFS, got {mpi_t} {local_t} {hdfs_t}"
        );
    }

    #[test]
    fn hdfs_overhead_is_moderate() {
        // Paper: ~25% over local. Allow a generous band.
        let size = 4 * GB;
        let (hdfs_t, _) = spark_hdfs_read(small(), size, 2);
        let (local_t, _) = spark_local_read(small(), size);
        let overhead = hdfs_t / local_t - 1.0;
        assert!(
            (0.05..0.8).contains(&overhead),
            "HDFS overhead {overhead:.2} out of band (hdfs {hdfs_t}, local {local_t})"
        );
    }

    #[test]
    fn mpi_fails_below_41_ranks_on_80gb() {
        let err = mpi_read(Placement::new(2, 8), 80 * GB).unwrap_err();
        assert!(err.contains("MAX_INT"), "unexpected error: {err}");
        // And succeeds with enough ranks.
        assert!(mpi_read(Placement::new(6, 8), 80 * GB).is_ok());
    }

    #[test]
    fn table2_renders_both_sizes() {
        let t = table2(small(), &[GB, 2 * GB]);
        assert_eq!(t.rows.len(), 2);
        assert!(t.rows[0][0].contains("1GB"));
    }
}
