//! Ablation A8 — the accelerator offload trade-off (Sec. III-D).
//!
//! "Given the very high cost of transferring data between host and
//! device on existing platforms ... the trend toward heterogeneity of
//! the cores, and very powerful attached accelerators, greatly
//! exacerbates the programming challenge." The paper also contrasts the
//! discrete-memory generation (KNC, Nvidia GPUs) with unified-memory
//! parts (KNL, AMD GPUs).
//!
//! This experiment runs the same kernel on (a) the host's OpenMP team,
//! (b) a discrete GPU through `target` offload with host<->device
//! copies, and (c) a unified-memory many-core, sweeping the kernel's
//! arithmetic intensity. The crossover — where the accelerator starts
//! paying for its transfer wall — is the figure's shape.

use hpcbd_minomp::{target_offload_once, Device, OmpModel, Schedule};
use hpcbd_simnet::{NodeId, Sim, Topology, Work};

use crate::table::{fmt_secs, ResultTable};

/// Time the kernel on the host's full OpenMP team.
pub fn host_time(bytes: u64, flops_per_byte: f64) -> f64 {
    let mut sim = Sim::new(Topology::comet(1));
    let p = sim.spawn(NodeId(0), "host", move |ctx| {
        let model = OmpModel::default();
        let work = Work::new(bytes as f64 * flops_per_byte, bytes as f64);
        model.charge_region(
            ctx,
            24,
            Schedule::Static { chunk: None },
            (bytes / 4096) as usize,
            work,
        );
        ctx.now().as_secs_f64()
    });
    sim.run().result::<f64>(p)
}

/// Time the kernel offloaded to `device` (transfer in + kernel +
/// transfer out).
pub fn offload_time(device: Device, bytes: u64, flops_per_byte: f64) -> f64 {
    let mut sim = Sim::new(Topology::comet(1));
    let p = sim.spawn(NodeId(0), "host", move |ctx| {
        let work = Work::new(bytes as f64 * flops_per_byte, bytes as f64);
        target_offload_once(ctx, &device, bytes, bytes, work).as_secs_f64()
    });
    sim.run().result::<f64>(p)
}

/// The A8 table: host vs discrete GPU vs unified many-core across
/// arithmetic intensities for a fixed working set.
pub fn ablation_offload(bytes: u64, intensities: &[f64]) -> ResultTable {
    let mut t = ResultTable::new(
        format!(
            "A8 — offload trade-off, {} GB working set (flops/byte sweep)",
            bytes >> 30
        ),
        &[
            "flops/byte",
            "host (24 cores)",
            "discrete GPU",
            "unified many-core",
        ],
    );
    for &fpb in intensities {
        t.push_row(vec![
            format!("{fpb}"),
            fmt_secs(host_time(bytes, fpb)),
            fmt_secs(offload_time(Device::discrete_gpu(), bytes, fpb)),
            fmt_secs(offload_time(Device::unified_manycore(), bytes, fpb)),
        ]);
    }
    t
}

/// The smallest intensity in `candidates` at which the discrete GPU
/// beats the host (the crossover the paper's discussion predicts).
pub fn discrete_crossover(bytes: u64, candidates: &[f64]) -> Option<f64> {
    candidates
        .iter()
        .copied()
        .find(|fpb| offload_time(Device::discrete_gpu(), bytes, *fpb) < host_time(bytes, *fpb))
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: u64 = 1 << 30;

    #[test]
    fn low_intensity_kernels_stay_on_the_host() {
        // Streaming kernel (1 flop/byte): the PCIe wall dwarfs the win.
        let host = host_time(2 * GB, 1.0);
        let gpu = offload_time(Device::discrete_gpu(), 2 * GB, 1.0);
        assert!(host < gpu, "host {host} vs gpu {gpu}");
    }

    #[test]
    fn high_intensity_kernels_win_on_the_gpu() {
        let host = host_time(2 * GB, 512.0);
        let gpu = offload_time(Device::discrete_gpu(), 2 * GB, 512.0);
        assert!(gpu < host, "gpu {gpu} vs host {host}");
    }

    #[test]
    fn unified_memory_crosses_over_earlier() {
        // No transfer wall: the unified part wins at intensities where
        // the discrete one still loses.
        let candidates: Vec<f64> = vec![0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];
        let discrete = discrete_crossover(2 * GB, &candidates).unwrap();
        let unified = candidates
            .iter()
            .copied()
            .find(|fpb| {
                offload_time(Device::unified_manycore(), 2 * GB, *fpb) < host_time(2 * GB, *fpb)
            })
            .unwrap();
        assert!(
            unified < discrete,
            "unified crossover {unified} vs discrete {discrete}"
        );
    }

    #[test]
    fn crossover_exists_and_is_monotone() {
        let candidates: Vec<f64> = (0..10).map(|i| 2f64.powi(i)).collect();
        let x = discrete_crossover(2 * GB, &candidates);
        assert!(x.is_some(), "the GPU must win somewhere in the sweep");
        // Once the GPU wins, it keeps winning at higher intensity.
        let x = x.unwrap();
        for fpb in candidates.iter().filter(|f| **f >= x) {
            assert!(
                offload_time(Device::discrete_gpu(), 2 * GB, *fpb) < host_time(2 * GB, *fpb),
                "non-monotone at {fpb}"
            );
        }
    }
}
