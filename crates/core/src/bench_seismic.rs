//! Ablation A7 — storage contention on an embarrassingly parallel
//! seismic read (the paper's Kirchhoff motivation, Sec. III-C).
//!
//! "Parallel I/O does not solve the problem of storage contention if
//! the application is embarrassingly parallel and is reading/writing
//! huge data at the same time." We read a terabyte-scale trace survey
//! with MPI ranks under three storage layouts and sweep the reader
//! count:
//!
//! * **local scratch** — the survey replicated to every node's SSD
//!   (the paper's MPI configuration): aggregate bandwidth scales with
//!   nodes;
//! * **shared NFS** — one server: adding readers only deepens the queue,
//!   the contention the paper warns about;
//! * **HDFS** — distributed blocks: scales like local scratch, plus the
//!   layer's overheads.

use std::sync::Arc;

use hpcbd_cluster::Placement;
use hpcbd_minhdfs::{Hdfs, HdfsConfig};
use hpcbd_minimpi::MpiJob;
use hpcbd_simnet::{InputFormat, NodeId, Sim, Topology};
use hpcbd_workloads::SeismicSurvey;

use crate::table::{fmt_secs, ResultTable};

/// Storage layout under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeismicStorage {
    /// Survey replicated on every node's scratch SSD.
    LocalScratch,
    /// Survey on the single cluster-wide NFS share.
    SharedNfs,
    /// Survey in HDFS.
    Hdfs,
}

/// Run the embarrassingly parallel migration pass: every rank reads its
/// trace range and integrates the kernel. Returns (seconds, kernel sum).
// TABLE3-BEGIN: seismic-mpi
pub fn seismic_scan(
    survey: &SeismicSurvey,
    placement: Placement,
    storage: SeismicStorage,
) -> (f64, f64) {
    let survey = Arc::new(survey.clone());
    let mut sim = Sim::new(Topology::comet(placement.nodes));
    let size = survey.logical_size();
    let hdfs = if storage == SeismicStorage::Hdfs {
        let h = Hdfs::deploy(&mut sim, HdfsConfig::default(), None);
        h.load_file_instant("/survey", size, None);
        Some(h)
    } else {
        sim.world().fs.replicate_to_scratch(
            (0..placement.nodes).map(NodeId),
            "survey.sgy",
            size,
            None,
        );
        None
    };
    let hdfs2 = hdfs.clone();
    let job = MpiJob::spawn(&mut sim, placement, move |rank| {
        let n = rank.size() as u64;
        let me = rank.rank() as u64;
        let chunk = size.div_ceil(n);
        let offset = (me * chunk).min(size);
        let len = chunk.min(size - offset);
        let t0 = rank.now();
        match storage {
            SeismicStorage::LocalScratch => rank.ctx().disk_read(len),
            SeismicStorage::SharedNfs => rank.ctx().nfs_read(len),
            SeismicStorage::Hdfs => {
                let h = hdfs2.as_ref().expect("hdfs deployed");
                let file = h.stat("/survey").expect("survey loaded");
                // Read the blocks overlapping this rank's range.
                for b in &file.blocks {
                    if b.offset < offset + len && b.offset + b.len > offset {
                        h.read_block(rank.ctx(), b);
                    }
                }
            }
        }
        // The migration kernel over the logical traces in range.
        let sample = survey.sample_records(offset, len);
        rank.ctx().compute(
            survey
                .record_work()
                .scaled(sample.len() as f64 * survey.scale as f64),
            1.0,
        );
        let local: f64 = sample.iter().map(SeismicSurvey::kernel).sum();
        let total = rank.allreduce(hpcbd_minimpi::ReduceOp::Sum, &[local]);
        if rank.rank() == 0 {
            if let Some(h) = hdfs2.as_ref() {
                h.shutdown(rank.ctx());
            }
        }
        ((rank.now() - t0).as_secs_f64(), total[0])
    });
    let mut report = sim.run();
    let results = job.results::<(f64, f64)>(&mut report);
    let elapsed = results.iter().map(|(t, _)| *t).fold(0.0, f64::max);
    (elapsed, results[0].1)
}
// TABLE3-END: seismic-mpi

/// The A7 table: read time per storage layout across node counts.
pub fn ablation_seismic(survey: &SeismicSurvey, node_counts: &[u32], ppn: u32) -> ResultTable {
    let mut t = ResultTable::new(
        format!(
            "A7 — seismic survey scan, {} GB logical, {ppn} readers/node",
            survey.logical_size() >> 30
        ),
        &["nodes", "local scratch", "shared NFS", "HDFS"],
    );
    for &nodes in node_counts {
        let placement = Placement::new(nodes, ppn);
        let (local_t, s1) = seismic_scan(survey, placement, SeismicStorage::LocalScratch);
        let (nfs_t, s2) = seismic_scan(survey, placement, SeismicStorage::SharedNfs);
        let (hdfs_t, s3) = seismic_scan(survey, placement, SeismicStorage::Hdfs);
        assert!((s1 - s2).abs() < 1e-6 && (s2 - s3).abs() < 1e-6);
        t.push_row(vec![
            nodes.to_string(),
            fmt_secs(local_t),
            fmt_secs(nfs_t),
            fmt_secs(hdfs_t),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn survey() -> SeismicSurvey {
        // 64 GB logical, 20k sample traces.
        SeismicSurvey::new(0xA7, 32_000_000, 1600)
    }

    #[test]
    fn kernel_sum_matches_oracle_on_all_storages() {
        let s = survey();
        let oracle: f64 = s
            .sample_records(0, s.logical_size())
            .iter()
            .map(SeismicSurvey::kernel)
            .sum();
        for storage in [
            SeismicStorage::LocalScratch,
            SeismicStorage::SharedNfs,
            SeismicStorage::Hdfs,
        ] {
            let (_, sum) = seismic_scan(&s, Placement::new(2, 4), storage);
            assert!(
                (sum - oracle).abs() < 1e-9,
                "{storage:?}: {sum} vs oracle {oracle}"
            );
        }
    }

    #[test]
    fn local_scratch_scales_with_nodes_but_nfs_does_not() {
        let s = survey();
        let (local_2, _) = seismic_scan(&s, Placement::new(2, 4), SeismicStorage::LocalScratch);
        let (local_4, _) = seismic_scan(&s, Placement::new(4, 4), SeismicStorage::LocalScratch);
        let (nfs_2, _) = seismic_scan(&s, Placement::new(2, 4), SeismicStorage::SharedNfs);
        let (nfs_4, _) = seismic_scan(&s, Placement::new(4, 4), SeismicStorage::SharedNfs);
        assert!(
            local_4 < local_2 * 0.7,
            "scratch should scale: {local_2} -> {local_4}"
        );
        let nfs_change = (nfs_2 - nfs_4).abs() / nfs_2;
        assert!(
            nfs_change < 0.1,
            "NFS is one server; {nfs_2} -> {nfs_4} should be flat"
        );
        assert!(nfs_4 > local_4 * 2.0, "contended NFS must be far slower");
    }

    #[test]
    fn hdfs_tracks_local_scratch_within_overheads() {
        let s = survey();
        let (local_t, _) = seismic_scan(&s, Placement::new(4, 4), SeismicStorage::LocalScratch);
        let (hdfs_t, _) = seismic_scan(&s, Placement::new(4, 4), SeismicStorage::Hdfs);
        let ratio = hdfs_t / local_t;
        assert!(
            (1.0..3.0).contains(&ratio),
            "HDFS should be near scratch with layer overheads, ratio {ratio}"
        );
    }
}
