//! Figures 6 & 7 — the PageRank benchmark.
//!
//! One million logical vertices (a 10k-vertex deterministic sample with
//! content scale 100), 16 processes per node, node counts swept:
//!
//! * **MPI** (Fig. 6) — block vertex partitioning, per-iteration
//!   contribution exchange with `alltoall`. Near-flat in node count at
//!   this problem size: per-rank compute shrinks but the exchange
//!   grows, the paper's "MPI code performs almost the same".
//! * **Spark, BigDataBench-tuned** (Figs. 5/6) — adjacency co-partitioned
//!   with the ranks (narrow join) and every intermediate persisted
//!   MEMORY_AND_DISK, the one-line `persist` the paper credits with ~3x.
//!   Because shuffle volume is low, Spark-RDMA ≈ Spark.
//! * **Spark, HiBench-style** (Fig. 7) — no persist, non-co-partitioned
//!   wide join: the adjacency reshuffles every iteration, so the RDMA
//!   shuffle engine wins and the gap grows with node count.
//! * **OpenSHMEM** (ablation A5) — one-sided contribution exchange with
//!   put-with-signal, the irregular-communication pattern Sec. II-C says
//!   PGAS serves well.

use std::collections::BTreeMap;
use std::sync::Arc;

use hpcbd_cluster::Placement;
use hpcbd_minhdfs::HdfsConfig;
use hpcbd_minimpi::{MpiJob, ReduceOp};
use hpcbd_minspark::{Rdd, ShuffleEngine, SparkCluster, SparkConfig, StorageLevel};
use hpcbd_simnet::{Sim, Topology, Work};
use hpcbd_workloads::graph::EdgeListFile;
use hpcbd_workloads::PowerLawGraph;

use crate::table::{fmt_secs, ResultTable};

/// Benchmark input: sample graph + content scale (sample x scale =
/// logical size).
#[derive(Clone)]
pub struct PagerankInput {
    /// The materialized sample graph.
    pub graph: Arc<PowerLawGraph>,
    /// Logical vertices per sample vertex.
    pub scale: u64,
    /// Power iterations.
    pub iters: u32,
}

impl PagerankInput {
    /// The paper's 1M-vertex input (10k sample, scale 100), 5 iterations.
    pub fn paper() -> PagerankInput {
        let (graph, scale) = PowerLawGraph::paper_1m_sample();
        PagerankInput {
            graph: Arc::new(graph),
            scale,
            iters: 5,
        }
    }

    /// A small test input.
    pub fn small() -> PagerankInput {
        PagerankInput {
            graph: Arc::new(PowerLawGraph::new(600, 11, 6)),
            scale: 50,
            iters: 4,
        }
    }

    /// Native per-logical-edge work of the C implementation.
    fn native_edge_work() -> Work {
        Work::new(12.0, 48.0)
    }

    /// Input for the full-Comet run: 1,984 nodes x 24 cores = 47,616
    /// ranks, and the sample graph is sized so every rank owns exactly
    /// two vertices (95,232 sample vertices, ~2M logical at scale 21).
    /// `quick` trims the power iterations for the CI scale-smoke job.
    pub fn comet(quick: bool) -> PagerankInput {
        PagerankInput {
            graph: Arc::new(PowerLawGraph::new(95_232, 17, 4)),
            scale: 21,
            iters: if quick { 2 } else { 5 },
        }
    }
}

/// Sequential oracle with the *Spark dataflow semantics* (vertices that
/// receive no contribution in an iteration drop out of the ranks RDD,
/// like the reference BigDataBench/HiBench codes). Returns the map of
/// surviving vertex -> rank.
pub fn spark_semantics_oracle(
    graph: &PowerLawGraph,
    iters: u32,
) -> std::collections::HashMap<u32, f64> {
    let adj = graph.adjacency();
    let mut ranks: std::collections::HashMap<u32, f64> =
        (0..graph.vertices).map(|v| (v, 1.0)).collect();
    for _ in 0..iters {
        let mut contribs: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
        for (v, r) in &ranks {
            let outs = &adj[*v as usize];
            let share = *r / outs.len() as f64;
            for u in outs {
                *contribs.entry(*u).or_insert(0.0) += share;
            }
        }
        ranks = contribs
            .into_iter()
            .map(|(v, c)| (v, 0.15 + 0.85 * c))
            .collect();
    }
    ranks
}

/// MPI PageRank. Returns (elapsed seconds, rank-vector sample at rank 0).
// TABLE3-BEGIN: pagerank-mpi
pub fn mpi_pagerank(input: &PagerankInput, placement: Placement) -> (f64, Vec<f64>) {
    let input = input.clone();
    let mut sim = Sim::new(Topology::comet(placement.nodes));
    let job = MpiJob::spawn(&mut sim, placement, move |rank| {
        rank.set_bytes_scale(input.scale as f64);
        let n = input.graph.vertices;
        let p = rank.size();
        let me = rank.rank();
        // Block partition [r*n/p, (r+1)*n/p); `owner` is its exact
        // integer inverse (validated against the bounds in the tests).
        let owner = |v: u32| -> u32 { (((v as u64 + 1) * p as u64 - 1) / n as u64) as u32 };
        let v0 = (me as u64 * n as u64 / p as u64) as u32;
        let v1 = ((me as u64 + 1) * n as u64 / p as u64) as u32;
        let adj: Vec<Vec<u32>> = (v0..v1).map(|v| input.graph.neighbours(v)).collect();
        let local_edges: usize = adj.iter().map(|a| a.len()).sum();
        let mut ranks: Vec<f64> = vec![1.0; (v1 - v0) as usize];
        let t0 = rank.now();
        for iter in 0..input.iters {
            rank.span_open_with(|| format!("pagerank/iter/{iter}"));
            // Bucket contributions by destination owner (packed as
            // [dest, share] f64 pairs for the typed alltoall).
            let mut buckets: Vec<Vec<f64>> = vec![Vec::new(); p as usize];
            for (i, outs) in adj.iter().enumerate() {
                let share = ranks[i] / outs.len() as f64;
                for u in outs {
                    let b = owner(*u) as usize;
                    buckets[b].push(*u as f64);
                    buckets[b].push(share);
                }
            }
            rank.ctx().compute(
                PagerankInput::native_edge_work().scaled(local_edges as f64 * input.scale as f64),
                1.0,
            );
            let incoming = rank.alltoall(buckets);
            let mut contrib = vec![0.0f64; (v1 - v0) as usize];
            let mut recvd_pairs = 0usize;
            for part in &incoming {
                recvd_pairs += part.len() / 2;
                for pair in part.chunks_exact(2) {
                    contrib[(pair[0] as u32 - v0) as usize] += pair[1];
                }
            }
            rank.ctx().compute(
                Work::new(4.0, 24.0).scaled(recvd_pairs as f64 * input.scale as f64),
                1.0,
            );
            for (r, c) in ranks.iter_mut().zip(&contrib) {
                *r = 0.15 + 0.85 * c;
            }
            rank.span_close();
        }
        let elapsed = (rank.now() - t0).as_secs_f64();
        // Gather the full vector at rank 0 for validation.
        let gathered = rank.gather(0, &ranks);
        (elapsed, gathered)
    });
    let mut report = sim.run();
    let results = job.results::<(f64, Option<Vec<f64>>)>(&mut report);
    let elapsed = results.iter().map(|(t, _)| *t).fold(0.0, f64::max);
    let ranks = results
        .into_iter()
        .find_map(|(_, g)| g)
        .expect("rank 0 gathers");
    (elapsed, ranks)
}
// TABLE3-END: pagerank-mpi

/// Which Spark PageRank code is run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SparkVariant {
    /// BigDataBench-tuned: co-partitioned links, persist everywhere.
    BigDataBenchTuned,
    /// HiBench-style: wide joins, no caching — shuffle-heavy.
    HiBench,
}

/// A completed Spark PageRank run.
pub struct SparkPagerankRun {
    /// Measured action span, seconds.
    pub elapsed: f64,
    /// Surviving vertex ranks (sample graph).
    pub ranks: Vec<(u32, f64)>,
    /// Job metrics (shuffle volumes, cache behaviour).
    pub metrics: hpcbd_minspark::MetricsSnapshot,
}

/// Spark PageRank. Returns (elapsed seconds, surviving vertex ranks).
pub fn spark_pagerank(
    input: &PagerankInput,
    placement: Placement,
    variant: SparkVariant,
    engine: ShuffleEngine,
) -> (f64, Vec<(u32, f64)>) {
    let run = spark_pagerank_run(input, placement, variant, engine);
    (run.elapsed, run.ranks)
}

/// [`spark_pagerank`] with full job metrics.
// TABLE3-BEGIN: pagerank-spark
pub fn spark_pagerank_run(
    input: &PagerankInput,
    placement: Placement,
    variant: SparkVariant,
    engine: ShuffleEngine,
) -> SparkPagerankRun {
    let input = input.clone();
    let parts = 64u32;
    let mut config = SparkConfig::with_shuffle(engine);
    config.executors_per_node = placement.per_node;
    let file = EdgeListFile::new((*input.graph).clone(), input.scale);
    let logical_size = file.logical_size();
    let avg_degree = input.graph.edge_count() / input.graph.vertices as u64;
    let r = SparkCluster::new(placement.nodes, config)
        .with_hdfs(HdfsConfig::default())
        .hdfs_file("/graph/edges", logical_size, None)
        .run(move |sc| {
            let t0 = sc.now();
            let edges = sc.hadoop_file("/graph/edges", Arc::new(file));
            let grouped = edges.group_by_key(parts);
            // One serialized adjacency record is the vertex id plus its
            // neighbour list (boxed Java collections are fat on the wire).
            let adj_item_bytes = 24 + 16 * avg_degree;
            let links: Rdd<(u32, Vec<u32>)> = match variant {
                SparkVariant::BigDataBenchTuned => grouped.persist(StorageLevel::MemoryAndDisk),
                // `map` drops the partitioner: joins go wide, like the
                // HiBench code whose layout Spark cannot reuse — and the
                // whole adjacency travels in every one of them.
                SparkVariant::HiBench => grouped.map_with_cost(
                    hpcbd_simnet::Work::new(4.0, 32.0),
                    adj_item_bytes,
                    |kv| kv.clone(),
                ),
            };
            let mut ranks = links.map_values(|_| 1.0f64);
            for _ in 0..input.iters {
                let contribs = links
                    .join(&ranks, parts)
                    .values()
                    // Contributions are slim (vertex, share) pairs.
                    .flat_map_with_cost(hpcbd_simnet::Work::new(8.0, 48.0), 24, |(dsts, rank)| {
                        let share = rank / dsts.len() as f64;
                        dsts.iter().map(|d| (*d, share)).collect()
                    });
                if variant == SparkVariant::BigDataBenchTuned {
                    // "This caching is not done in HiBench" — Fig. 5.
                    contribs.persist(StorageLevel::MemoryAndDisk);
                }
                ranks = contribs
                    .reduce_by_key(parts, |a, b| a + b)
                    .map_values(|c| 0.15 + 0.85 * c);
            }
            let out = sc.collect(&ranks);
            ((sc.now() - t0).as_secs_f64(), out)
        });
    let (elapsed, ranks) = r.value;
    SparkPagerankRun {
        elapsed,
        ranks,
        metrics: r.metrics,
    }
}
// TABLE3-END: pagerank-spark

/// OpenSHMEM PageRank (ablation A5): one-sided contribution exchange.
// TABLE3-BEGIN: pagerank-shmem
pub fn shmem_pagerank(input: &PagerankInput, placement: Placement) -> (f64, Vec<f64>) {
    let input = input.clone();
    let out = hpcbd_minshmem::shmem_run_on(
        &hpcbd_cluster::ClusterSpec::comet(placement.nodes),
        placement,
        move |pe| {
            pe.set_bytes_scale(input.scale as f64);
            let n = input.graph.vertices;
            let p = pe.npes();
            let me = pe.pe();
            let owner = |v: u32| -> u32 { (((v as u64 + 1) * p as u64 - 1) / n as u64) as u32 };
            let bounds = |r: u32| -> (u32, u32) {
                (
                    (r as u64 * n as u64 / p as u64) as u32,
                    ((r as u64 + 1) * n as u64 / p as u64) as u32,
                )
            };
            let (v0, v1) = bounds(me);
            let adj: Vec<Vec<u32>> = (v0..v1).map(|v| input.graph.neighbours(v)).collect();
            let local_edges: usize = adj.iter().map(|a| a.len()).sum();
            // Symmetric landing zone: packed [dest, share] pairs, one
            // region per source PE.
            let region = 2 * (n as usize / p as usize + 2) * 8;
            let inbox = pe.malloc::<f64>("pr.inbox", region * p as usize, 0.0);
            let inlen = pe.malloc::<u64>("pr.inlen", p as usize, 0);
            let mut ranks: Vec<f64> = vec![1.0; (v1 - v0) as usize];
            let t0 = pe.now();
            for iter in 0..input.iters {
                pe.span_open_with(|| format!("pagerank/iter/{iter}"));
                let mut buckets: Vec<Vec<f64>> = vec![Vec::new(); p as usize];
                for (i, outs) in adj.iter().enumerate() {
                    let share = ranks[i] / outs.len() as f64;
                    for u in outs {
                        let b = owner(*u) as usize;
                        buckets[b].push(*u as f64);
                        buckets[b].push(share);
                    }
                }
                pe.ctx().compute(
                    PagerankInput::native_edge_work()
                        .scaled(local_edges as f64 * input.scale as f64),
                    1.0,
                );
                let sig = 1000 + iter as u64;
                for dst in 0..p {
                    let bucket = &buckets[dst as usize];
                    assert!(
                        bucket.len() <= region,
                        "inbox region too small: {} > {region}",
                        bucket.len()
                    );
                    pe.put(&inlen, me as usize, &[bucket.len() as u64], dst);
                    if bucket.is_empty() {
                        pe.signal(dst, sig);
                    } else {
                        let b = bucket.clone();
                        pe.put_signal(&inbox, me as usize * region, &b, dst, sig);
                    }
                }
                let mut contrib = vec![0.0f64; (v1 - v0) as usize];
                for _ in 0..p {
                    let from = pe.wait_signal(sig);
                    let len = pe.local_clone(&inlen)[from as usize] as usize;
                    let data = pe.local_range(&inbox, from as usize * region, len);
                    for pair in data.chunks_exact(2) {
                        contrib[(pair[0] as u32 - v0) as usize] += pair[1];
                    }
                }
                pe.ctx().compute(
                    Work::new(4.0, 24.0).scaled(local_edges as f64 * input.scale as f64),
                    1.0,
                );
                for (r, c) in ranks.iter_mut().zip(&contrib) {
                    *r = 0.15 + 0.85 * c;
                }
                pe.barrier_all();
                pe.span_close();
            }
            ((pe.now() - t0).as_secs_f64(), ranks)
        },
    );
    let elapsed = out.results.iter().map(|(t, _)| *t).fold(0.0, f64::max);
    let mut ranks = Vec::new();
    for (_, slice) in out.results {
        ranks.extend(slice);
    }
    (elapsed, ranks)
}
// TABLE3-END: pagerank-shmem

/// Ablation A1 (Sec. VI-C): the BigDataBench PageRank with a
/// per-iteration materializing action (as the reference code does when
/// checkpointing convergence), with and without `persist`. Without the
/// cache every action re-fetches and re-combines the ranks lineage;
/// with it the second use of each iteration's RDDs is a memory hit.
/// Returns (seconds with persist, seconds without).
pub fn persist_ablation(input: &PagerankInput, placement: Placement) -> (f64, f64) {
    fn run(input: &PagerankInput, placement: Placement, persist: bool) -> f64 {
        let input = input.clone();
        let parts = 32u32;
        let config = SparkConfig {
            executors_per_node: placement.per_node,
            ..Default::default()
        };
        let file = EdgeListFile::new((*input.graph).clone(), input.scale);
        let logical_size = file.logical_size();
        SparkCluster::new(placement.nodes, config)
            .with_hdfs(HdfsConfig::default())
            .hdfs_file("/graph/edges", logical_size, None)
            .run(move |sc| {
                let t0 = sc.now();
                let edges = sc.hadoop_file("/graph/edges", Arc::new(file));
                let grouped = edges.group_by_key(parts);
                let links = if persist {
                    grouped.persist(StorageLevel::MemoryAndDisk)
                } else {
                    grouped
                };
                let mut ranks = links.map_values(|_| 1.0f64);
                for _ in 0..input.iters {
                    let contribs = links.join(&ranks, parts).values().flat_map_with_cost(
                        hpcbd_simnet::Work::new(8.0, 48.0),
                        24,
                        |(dsts, rank)| {
                            let share = rank / dsts.len() as f64;
                            dsts.iter().map(|d| (*d, share)).collect()
                        },
                    );
                    if persist {
                        contribs.persist(StorageLevel::MemoryAndDisk);
                    }
                    ranks = contribs
                        .reduce_by_key(parts, |a, b| a + b)
                        .map_values(|c| 0.15 + 0.85 * c);
                    if persist {
                        ranks.persist(StorageLevel::MemoryAndDisk);
                    }
                    // Materializing action each iteration (convergence
                    // check in the reference code).
                    let _ = sc.count(&ranks);
                }
                (sc.now() - t0).as_secs_f64()
            })
            .value
    }
    (run(input, placement, true), run(input, placement, false))
}

/// Reproduce Fig. 6: BigDataBench PageRank — MPI vs Spark vs Spark-RDMA.
pub fn figure6(input: &PagerankInput, node_counts: &[u32], ppn: u32) -> ResultTable {
    let mut t = ResultTable::new(
        format!(
            "Fig. 6 — BigDataBench PageRank, {} logical vertices, {ppn} procs/node",
            input.graph.vertices as u64 * input.scale
        ),
        &["nodes", "MPI", "Spark", "Spark-RDMA"],
    );
    for &nodes in node_counts {
        let placement = Placement::new(nodes, ppn);
        let (mpi_t, _) = mpi_pagerank(input, placement);
        let (spark_t, _) = spark_pagerank(
            input,
            placement,
            SparkVariant::BigDataBenchTuned,
            ShuffleEngine::Socket,
        );
        let (rdma_t, _) = spark_pagerank(
            input,
            placement,
            SparkVariant::BigDataBenchTuned,
            ShuffleEngine::Rdma,
        );
        t.push_row(vec![
            nodes.to_string(),
            fmt_secs(mpi_t),
            fmt_secs(spark_t),
            fmt_secs(rdma_t),
        ]);
    }
    t
}

/// Reproduce Fig. 7: HiBench PageRank — Spark default vs Spark-RDMA.
pub fn figure7(input: &PagerankInput, node_counts: &[u32], ppn: u32) -> ResultTable {
    let mut t = ResultTable::new(
        format!(
            "Fig. 7 — HiBench PageRank, {} logical vertices, {ppn} procs/node",
            input.graph.vertices as u64 * input.scale
        ),
        &["nodes", "Spark", "Spark-RDMA"],
    );
    for &nodes in node_counts {
        let placement = Placement::new(nodes, ppn);
        let (spark_t, _) = spark_pagerank(
            input,
            placement,
            SparkVariant::HiBench,
            ShuffleEngine::Socket,
        );
        let (rdma_t, _) =
            spark_pagerank(input, placement, SparkVariant::HiBench, ShuffleEngine::Rdma);
        t.push_row(vec![nodes.to_string(), fmt_secs(spark_t), fmt_secs(rdma_t)]);
    }
    t
}

/// MPI PageRank restructured for full-machine scale. Same math as
/// [`mpi_pagerank`] (which is the frozen Fig. 6 artifact and stays as
/// the paper wrote it), but the two O(p) walls are removed so 47,616
/// ranks fit:
///
/// * the dense `alltoall` — whose per-rank bucket vector alone is O(p),
///   ~48k mostly-empty `Vec`s per rank per iteration at Comet scale —
///   becomes a sparse neighbour exchange over
///   [`alltoallv_sparse`](hpcbd_minimpi::MpiRank::alltoallv_sparse)
///   (Bruck rotation, ceil(log2 p) rounds, traffic proportional to the
///   items actually sent);
/// * the O(n·p)-byte rank-0 `gather` used for validation becomes an
///   O(log p) `allreduce` checksum over the rank vector.
///
/// Returns (max per-rank elapsed seconds, global rank-vector checksum).
pub fn comet_mpi_pagerank(input: &PagerankInput, placement: Placement) -> (f64, f64) {
    let input = input.clone();
    let mut sim = Sim::new(Topology::comet(placement.nodes));
    let job = MpiJob::spawn(&mut sim, placement, move |rank| {
        rank.set_bytes_scale(input.scale as f64);
        let n = input.graph.vertices;
        let p = rank.size();
        let me = rank.rank();
        let owner = |v: u32| -> u32 { (((v as u64 + 1) * p as u64 - 1) / n as u64) as u32 };
        let v0 = (me as u64 * n as u64 / p as u64) as u32;
        let v1 = ((me as u64 + 1) * n as u64 / p as u64) as u32;
        let adj: Vec<Vec<u32>> = (v0..v1).map(|v| input.graph.neighbours(v)).collect();
        let local_edges: usize = adj.iter().map(|a| a.len()).sum();
        let mut ranks: Vec<f64> = vec![1.0; (v1 - v0) as usize];
        let t0 = rank.now();
        for iter in 0..input.iters {
            rank.span_open_with(|| format!("pagerank/iter/{iter}"));
            // Bucket contributions by destination owner — but only the
            // owners this rank actually reaches (a handful, not p).
            let mut buckets: BTreeMap<u32, Vec<f64>> = BTreeMap::new();
            for (i, outs) in adj.iter().enumerate() {
                let share = ranks[i] / outs.len() as f64;
                for u in outs {
                    let b = buckets.entry(owner(*u)).or_default();
                    b.push(*u as f64);
                    b.push(share);
                }
            }
            rank.ctx().compute(
                PagerankInput::native_edge_work().scaled(local_edges as f64 * input.scale as f64),
                1.0,
            );
            let incoming = rank.alltoallv_sparse(buckets.into_iter().collect());
            let mut contrib = vec![0.0f64; (v1 - v0) as usize];
            let mut recvd_pairs = 0usize;
            for (_, part) in &incoming {
                recvd_pairs += part.len() / 2;
                for pair in part.chunks_exact(2) {
                    contrib[(pair[0] as u32 - v0) as usize] += pair[1];
                }
            }
            rank.ctx().compute(
                Work::new(4.0, 24.0).scaled(recvd_pairs as f64 * input.scale as f64),
                1.0,
            );
            for (r, c) in ranks.iter_mut().zip(&contrib) {
                *r = 0.15 + 0.85 * c;
            }
            rank.span_close();
        }
        let elapsed = (rank.now() - t0).as_secs_f64();
        let local_sum: f64 = ranks.iter().sum();
        let checksum = rank.allreduce(ReduceOp::Sum, &[local_sum])[0];
        (elapsed, checksum)
    });
    let mut report = sim.run();
    let results = job.results::<(f64, f64)>(&mut report);
    let elapsed = results.iter().map(|(t, _)| *t).fold(0.0, f64::max);
    let checksum = results.first().map(|(_, c)| *c).expect("rank 0 result");
    (elapsed, checksum)
}

/// The Fig. 6 workloads at full-Comet scale: one simulated process per
/// core of the real machine (1,984 nodes x 24 cores/node). The MPI arm
/// runs [`comet_mpi_pagerank`] across all 47,616 ranks; the Spark arm
/// runs the tuned BigDataBench code with 24 executors per node, which —
/// with a shuffle service and an HDFS datanode per node plus the
/// driver — simulates 51,585 processes. Each row reports the simulated
/// time and a rank-vector checksum so the run validates itself.
pub fn figure6_comet(input: &PagerankInput, placement: Placement) -> ResultTable {
    let mut t = ResultTable::new(
        format!(
            "Fig. 6 at full-Comet scale — {} nodes x {} procs/node, {} logical vertices",
            placement.nodes,
            placement.per_node,
            input.graph.vertices as u64 * input.scale
        ),
        &["system", "processes", "time", "checksum"],
    );
    let (mpi_t, mpi_sum) = comet_mpi_pagerank(input, placement);
    t.push_row(vec![
        "MPI (sparse alltoallv)".to_string(),
        placement.total().to_string(),
        fmt_secs(mpi_t),
        format!("{mpi_sum:.6e}"),
    ]);
    let spark = spark_pagerank_run(
        input,
        placement,
        SparkVariant::BigDataBenchTuned,
        ShuffleEngine::Rdma,
    );
    let spark_sum: f64 = spark.ranks.iter().map(|(_, r)| *r).sum();
    // Executors plus one shuffle service and one datanode per node,
    // plus the driver.
    let spark_procs = placement.nodes as u64 * (placement.per_node as u64 + 2) + 1;
    t.push_row(vec![
        "Spark-RDMA (tuned)".to_string(),
        spark_procs.to_string(),
        fmt_secs(spark.elapsed),
        format!("{spark_sum:.6e}"),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcbd_workloads::pagerank_reference;

    #[test]
    fn mpi_matches_reference_exactly() {
        let input = PagerankInput::small();
        let (t, ranks) = mpi_pagerank(&input, Placement::new(2, 4));
        let oracle = pagerank_reference(&input.graph, input.iters);
        assert_eq!(ranks.len(), oracle.len());
        for (a, b) in ranks.iter().zip(&oracle) {
            assert!((a - b).abs() < 1e-9, "mpi {a} vs oracle {b}");
        }
        assert!(t > 0.0);
    }

    #[test]
    fn shmem_matches_reference_exactly() {
        let input = PagerankInput::small();
        let (t, ranks) = shmem_pagerank(&input, Placement::new(2, 2));
        let oracle = pagerank_reference(&input.graph, input.iters);
        assert_eq!(ranks.len(), oracle.len());
        for (a, b) in ranks.iter().zip(&oracle) {
            assert!((a - b).abs() < 1e-9, "shmem {a} vs oracle {b}");
        }
        assert!(t > 0.0);
    }

    #[test]
    fn comet_sparse_mpi_matches_dense_checksum() {
        // The sparse-exchange variant computes the same rank vector as
        // the frozen dense artifact; only the f64 accumulation order
        // differs, so compare the checksums with a tolerance.
        let input = PagerankInput::small();
        for placement in [
            Placement::new(1, 3),
            Placement::new(2, 4),
            Placement::new(3, 5),
        ] {
            let (dense_t, dense_ranks) = mpi_pagerank(&input, placement);
            let (sparse_t, sparse_sum) = comet_mpi_pagerank(&input, placement);
            let dense_sum: f64 = dense_ranks.iter().sum();
            assert!(
                (dense_sum - sparse_sum).abs() < 1e-9 * dense_sum.abs().max(1.0),
                "dense {dense_sum} vs sparse {sparse_sum}"
            );
            assert!(dense_t > 0.0 && sparse_t > 0.0);
        }
    }

    #[test]
    fn comet_input_covers_every_rank() {
        // Every one of the 47,616 Comet ranks owns at least one vertex,
        // so no rank degenerates to an empty block partition.
        let input = PagerankInput::comet(true);
        let p = 1984u64 * 24;
        assert!(input.graph.vertices as u64 >= 2 * p);
        assert_eq!(input.graph.vertices as u64 * input.scale, 1_999_872);
    }

    #[test]
    fn spark_matches_dataflow_oracle() {
        let input = PagerankInput::small();
        let (_, ranks) = spark_pagerank(
            &input,
            Placement::new(2, 4),
            SparkVariant::BigDataBenchTuned,
            ShuffleEngine::Socket,
        );
        let oracle = spark_semantics_oracle(&input.graph, input.iters);
        assert_eq!(ranks.len(), oracle.len());
        for (v, r) in &ranks {
            let o = oracle[v];
            assert!((r - o).abs() < 1e-9, "vertex {v}: spark {r} vs oracle {o}");
        }
    }

    #[test]
    fn hibench_variant_agrees_with_tuned_on_values() {
        let input = PagerankInput::small();
        let (_, tuned) = spark_pagerank(
            &input,
            Placement::new(1, 4),
            SparkVariant::BigDataBenchTuned,
            ShuffleEngine::Socket,
        );
        let (_, hibench) = spark_pagerank(
            &input,
            Placement::new(1, 4),
            SparkVariant::HiBench,
            ShuffleEngine::Socket,
        );
        let a: std::collections::HashMap<u32, u64> =
            tuned.iter().map(|(v, r)| (*v, r.to_bits())).collect();
        let b: std::collections::HashMap<u32, u64> =
            hibench.iter().map(|(v, r)| (*v, r.to_bits())).collect();
        assert_eq!(a, b, "caching must not change results");
    }

    #[test]
    fn hibench_shuffles_far_more_bytes_than_tuned() {
        // The mechanism behind Figs. 6/7, verified directly: the wide
        // joins of the HiBench code move the adjacency every iteration.
        let input = PagerankInput::small();
        let p = Placement::new(2, 4);
        let tuned = spark_pagerank_run(
            &input,
            p,
            SparkVariant::BigDataBenchTuned,
            ShuffleEngine::Socket,
        );
        let hibench = spark_pagerank_run(&input, p, SparkVariant::HiBench, ShuffleEngine::Socket);
        assert!(
            hibench.metrics.shuffle_bytes_total() > 2 * tuned.metrics.shuffle_bytes_total(),
            "hibench {} vs tuned {}",
            hibench.metrics.shuffle_bytes_total(),
            tuned.metrics.shuffle_bytes_total()
        );
        // And the tuned variant's persist actually hits.
        assert!(tuned.metrics.cache_hits > 0);
    }

    #[test]
    fn tuned_beats_hibench_in_time() {
        // The ~3x persist effect, directionally.
        let input = PagerankInput::small();
        let p = Placement::new(2, 4);
        let (tuned_t, _) = spark_pagerank(
            &input,
            p,
            SparkVariant::BigDataBenchTuned,
            ShuffleEngine::Socket,
        );
        let (hibench_t, _) =
            spark_pagerank(&input, p, SparkVariant::HiBench, ShuffleEngine::Socket);
        assert!(
            tuned_t < hibench_t,
            "tuned {tuned_t} must beat hibench {hibench_t}"
        );
    }

    #[test]
    fn mpi_beats_spark_in_absolute_time() {
        let input = PagerankInput::small();
        let p = Placement::new(2, 4);
        let (mpi_t, _) = mpi_pagerank(&input, p);
        let (spark_t, _) = spark_pagerank(
            &input,
            p,
            SparkVariant::BigDataBenchTuned,
            ShuffleEngine::Socket,
        );
        assert!(mpi_t < spark_t, "mpi {mpi_t} vs spark {spark_t}");
    }
}
