//! The MapReduce execution engine: jobtracker, workers, shuffle servers.
//!
//! Faithful to the cost structure the paper attributes to Hadoop
//! (Sec. II-D, V-C): per-job and per-task JVM startup, every intermediate
//! result **persisted to local disk** (map-side spill, shuffle-server
//! read-back), a socket-transport shuffle, merge-sort at the reducer, and
//! replicated HDFS output. Failed tasks are detected by timeout + ping
//! and re-executed on surviving workers ("failed tasks are re-executed
//! automatically").

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::sync::Arc;

use parking_lot::RwLock;

use hpcbd_cluster::ClusterSpec;
use hpcbd_minhdfs::{Hdfs, HdfsBlock, HdfsConfig};
use hpcbd_simnet::{
    partition_of, FaultEvent, FaultPlan, MatchSpec, NodeId, Payload, Pid, ProcCtx, RuntimeClass,
    Sim, SimDuration, SimTime, StructuredAbort, Tag, Transport, Work,
};

use crate::types::{InputFormat, JobConf, LocalityStats};

const JT_TAG: Tag = (1 << 44) + 1;
const WORKER_TAG: Tag = (1 << 44) + 2;
const SHUF_TAG: Tag = (1 << 44) + 3;
const PONG_TAG: Tag = (1 << 44) + 4;
// Own region: reply tags encode (map task << 8) | partition.
const SHUF_REPLY: Tag = 1 << 45;

/// Average serialized bytes of one intermediate key/value pair — drives
/// logical shuffle sizes (Java serialization is verbose).
pub const PAIR_BYTES: u64 = 24;

enum WorkerMsg {
    Map { task: u32, block: HdfsBlock },
    Reduce { partition: u32, map_tasks: u32 },
    Ping,
    Shutdown,
}

enum JtMsg<K2, V2> {
    MapDone {
        task: u32,
        worker: u32,
    },
    ReduceDone {
        partition: u32,
        worker: u32,
        pairs: Vec<(K2, V2)>,
    },
    /// A reducer's shuffle fetch timed out: the map output's home node is
    /// gone and the map must be re-executed (the reduce attempt aborted).
    MapLost {
        map_task: u32,
        partition: u32,
        worker: u32,
    },
}

struct ShufFetch {
    map_task: u32,
    partition: u32,
    reply_to: Pid,
}

/// Typed pairs of one shuffle bucket, keyed by (map task, partition).
type BucketPairs<K2, V2> = HashMap<(u32, u32), Arc<Vec<(K2, V2)>>>;

/// Map-output store: data plane (typed pairs) and size plane (logical
/// bytes) for the shuffle servers. Index: (map task, reduce partition).
struct MapOutputs<K2, V2> {
    pairs: RwLock<BucketPairs<K2, V2>>,
    bytes: RwLock<HashMap<(u32, u32), u64>>,
    /// Node that ran each map task (set at completion).
    homes: RwLock<HashMap<u32, NodeId>>,
}

impl<K2, V2> MapOutputs<K2, V2> {
    fn new() -> Arc<Self> {
        Arc::new(MapOutputs {
            pairs: RwLock::new(HashMap::new()),
            bytes: RwLock::new(HashMap::new()),
            homes: RwLock::new(HashMap::new()),
        })
    }
}

/// Everything the spawned processes share.
/// A boxed user map function.
type MapFn<R, K2, V2> = Box<dyn Fn(&R) -> Vec<(K2, V2)> + Send + Sync>;
/// A boxed user reduce/combine function.
type ReduceFn<K2, V2> = Box<dyn Fn(&K2, &[V2]) -> V2 + Send + Sync>;

struct JobCtx<I: InputFormat, K2, V2> {
    conf: JobConf,
    hdfs: Hdfs,
    input_path: String,
    format: Arc<I>,
    mapper: MapFn<I::Rec, K2, V2>,
    reducer: ReduceFn<K2, V2>,
    combiner: Option<ReduceFn<K2, V2>>,
    /// Extra CPU work per logical record in the map (beyond parsing).
    map_work: Work,
    /// CPU work per logical intermediate pair in the reduce.
    reduce_work: Work,
    outputs: Arc<MapOutputs<K2, V2>>,
    worker_pids: RwLock<Vec<Pid>>,
    shuffle_pids: RwLock<Vec<Pid>>,
    jt_pid: RwLock<Option<Pid>>,
    /// Fault injection: (worker index, dies after completing N map tasks).
    fail_worker: Option<(u32, u32)>,
    /// Straggler injection: (worker index, compute slowdown factor).
    slow_worker: Option<(u32, f64)>,
}

/// Result of a completed MapReduce job.
pub struct MrResult<K2, V2> {
    /// All reducer output pairs, sorted by partition then key order of
    /// arrival (deterministic).
    pub pairs: Vec<(K2, V2)>,
    /// The job's virtual execution time.
    pub elapsed: SimTime,
    /// Locality / re-execution accounting.
    pub locality: LocalityStats,
}

/// Configuration + closures for one job. Build with [`MrJobBuilder`].
pub struct MrJobBuilder<I: InputFormat, K2, V2> {
    conf: JobConf,
    format: Arc<I>,
    input_path: String,
    input_size: u64,
    mapper: MapFn<I::Rec, K2, V2>,
    reducer: ReduceFn<K2, V2>,
    combiner: Option<ReduceFn<K2, V2>>,
    map_work: Work,
    reduce_work: Work,
    hdfs_config: HdfsConfig,
    fail_worker: Option<(u32, u32)>,
    slow_worker: Option<(u32, f64)>,
    execution: Option<hpcbd_simnet::Execution>,
    faults: Option<FaultPlan>,
}

impl<I, K2, V2> MrJobBuilder<I, K2, V2>
where
    I: InputFormat,
    K2: Clone + Eq + Ord + Hash + Send + Sync + 'static,
    V2: Clone + Send + Sync + 'static,
{
    /// A job over `input_path` of `input_size` logical bytes, whose
    /// content is described by `format`.
    pub fn new(
        format: Arc<I>,
        input_path: &str,
        input_size: u64,
        mapper: impl Fn(&I::Rec) -> Vec<(K2, V2)> + Send + Sync + 'static,
        reducer: impl Fn(&K2, &[V2]) -> V2 + Send + Sync + 'static,
    ) -> Self {
        MrJobBuilder {
            conf: JobConf::default(),
            format,
            input_path: input_path.to_string(),
            input_size,
            mapper: Box::new(mapper),
            reducer: Box::new(reducer),
            combiner: None,
            map_work: Work::NONE,
            reduce_work: Work::new(8.0, 48.0),
            hdfs_config: HdfsConfig::default(),
            fail_worker: None,
            slow_worker: None,
            execution: None,
            faults: None,
        }
    }

    /// Install a deterministic fault plan: node crashes kill that node's
    /// workers and shuffle server (their tasks and map outputs are
    /// re-executed elsewhere), stragglers stretch compute, link/drop
    /// faults delay messages. Node 0 hosts the jobtracker — a real
    /// Hadoop-1 SPOF — so crashing it is refused.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        assert!(
            plan.crash_time(NodeId(0)).is_none(),
            "node 0 hosts the jobtracker; crashing it kills the job"
        );
        self.faults = Some(plan);
        self
    }

    /// Select the engine execution mode for this run (virtual-time
    /// results are bit-identical across modes; see
    /// [`hpcbd_simnet::parallel`]).
    pub fn execution(mut self, exec: hpcbd_simnet::Execution) -> Self {
        self.execution = Some(exec);
        self
    }

    /// Set the job configuration.
    pub fn conf(mut self, conf: JobConf) -> Self {
        self.conf = conf;
        self
    }

    /// Set the HDFS configuration (block size drives the split count).
    pub fn hdfs(mut self, config: HdfsConfig) -> Self {
        self.hdfs_config = config;
        self
    }

    /// Install a combiner (map-side pre-reduction).
    pub fn combiner(mut self, c: impl Fn(&K2, &[V2]) -> V2 + Send + Sync + 'static) -> Self {
        self.combiner = Some(Box::new(c));
        self
    }

    /// Extra CPU work per logical record in the map phase.
    pub fn map_work(mut self, w: Work) -> Self {
        self.map_work = w;
        self
    }

    /// CPU work per logical intermediate pair in the reduce phase.
    pub fn reduce_work(mut self, w: Work) -> Self {
        self.reduce_work = w;
        self
    }

    /// Fault injection: worker `w` dies silently while running its
    /// `n+1`-th map task.
    pub fn fail_worker_after(mut self, w: u32, n: u32) -> Self {
        self.fail_worker = Some((w, n));
        self
    }

    /// Straggler injection: worker `w` computes `factor`x slower (a bad
    /// disk or a noisy neighbour). Pair with
    /// [`crate::JobConf::speculative_execution`] to watch backup tasks
    /// rescue the job.
    pub fn slow_worker(mut self, w: u32, factor: f64) -> Self {
        assert!(factor >= 1.0);
        self.slow_worker = Some((w, factor));
        self
    }

    /// Run the job on a fresh `nodes`-node Comet allocation.
    pub fn run(self, nodes: u32) -> MrResult<K2, V2> {
        let cluster = ClusterSpec::comet(nodes);
        let mut sim = Sim::new(cluster.topology());
        if let Some(exec) = self.execution {
            sim.set_execution(exec);
        }
        if let Some(plan) = self.faults {
            sim.set_fault_plan(plan);
        }
        let hdfs = Hdfs::deploy(&mut sim, self.hdfs_config, None);
        hdfs.load_file_instant(&self.input_path, self.input_size, None);

        let job = Arc::new(JobCtx {
            conf: self.conf,
            hdfs: hdfs.clone(),
            input_path: self.input_path.clone(),
            format: self.format,
            mapper: self.mapper,
            reducer: self.reducer,
            combiner: self.combiner,
            map_work: self.map_work,
            reduce_work: self.reduce_work,
            outputs: MapOutputs::new(),
            worker_pids: RwLock::new(Vec::new()),
            shuffle_pids: RwLock::new(Vec::new()),
            jt_pid: RwLock::new(None),
            fail_worker: self.fail_worker,
            slow_worker: self.slow_worker,
        });

        // Shuffle server per node.
        for n in 0..nodes {
            let job2 = job.clone();
            let pid = sim.spawn(NodeId(n), format!("shuffle@{n}"), move |ctx| {
                shuffle_server(ctx, job2)
            });
            job.shuffle_pids.write().push(pid);
        }
        // Workers: slots per node.
        let mut widx = 0u32;
        for n in 0..nodes {
            for s in 0..self.conf.slots_per_node {
                let job2 = job.clone();
                let w = widx;
                let pid = sim.spawn(NodeId(n), format!("worker{w}@n{n}s{s}"), move |ctx| {
                    worker_loop(ctx, job2, w)
                });
                job.worker_pids.write().push(pid);
                widx += 1;
            }
        }
        // Jobtracker on node 0.
        let job2 = job.clone();
        let jt = sim.spawn(NodeId(0), "jobtracker", move |ctx| jobtracker(ctx, job2));
        *job.jt_pid.write() = Some(jt);

        let mut report = sim.run();
        let (pairs, locality) = report.result::<(Vec<(K2, V2)>, LocalityStats)>(jt);
        // Job time is the tracker's completion: the client-visible end.
        // (Speculative losers may still be burning cycles afterwards —
        // real Hadoop kills them; we just stop billing them.)
        let elapsed = report.procs[jt.index()].finish;
        MrResult {
            pairs,
            elapsed,
            locality,
        }
    }
}

fn control() -> Transport {
    Transport::java_socket_control()
}

fn jobtracker<I, K2, V2>(
    ctx: &mut ProcCtx,
    job: Arc<JobCtx<I, K2, V2>>,
) -> (Vec<(K2, V2)>, LocalityStats)
where
    I: InputFormat,
    K2: Clone + Eq + Ord + Hash + Send + Sync + 'static,
    V2: Clone + Send + Sync + 'static,
{
    let conf = job.conf;
    ctx.advance(conf.job_startup);
    let file = job
        .hdfs
        .stat(&job.input_path)
        .expect("input file loaded before job start");
    let worker_pids: Vec<Pid> = job.worker_pids.read().clone();
    let nworkers = worker_pids.len() as u32;
    let worker_node = |w: u32| -> NodeId { NodeId(w / conf.slots_per_node) };

    let mut locality = LocalityStats::default();
    let mut alive: Vec<bool> = vec![true; nworkers as usize];
    let mut free: VecDeque<u32> = (0..nworkers).collect();
    let mut pending: VecDeque<(u32, HdfsBlock)> = file
        .blocks
        .iter()
        .enumerate()
        .map(|(i, b)| (i as u32, b.clone()))
        .collect();
    let total_maps = pending.len() as u32;
    let mut in_flight: HashMap<u32, (u32, HdfsBlock)> = HashMap::new(); // worker -> task
    let mut done_tasks: std::collections::HashSet<u32> = std::collections::HashSet::new();
    let mut backed_up: std::collections::HashSet<u32> = std::collections::HashSet::new();
    let mut done_maps = 0u32;

    // ---- Map phase ----
    ctx.span_open("mr/map_wave");
    while done_maps < total_maps {
        // Speculative execution: with no fresh work left but idle slots
        // and stragglers in flight, launch one backup copy per laggard
        // (Hadoop's `mapreduce.map.speculative`). First completion wins.
        if conf.speculative_execution && pending.is_empty() && !free.is_empty() {
            let laggard = in_flight
                .iter()
                .filter(|(_, (t, _))| !backed_up.contains(t) && !done_tasks.contains(t))
                .map(|(w, (t, b))| (*w, *t, b.clone()))
                .min_by_key(|(_, t, _)| *t);
            if let Some((_, task, block)) = laggard {
                let w = free.pop_front().unwrap();
                backed_up.insert(task);
                locality.speculative_maps += 1;
                ctx.advance(conf.scheduling_delay);
                in_flight.insert(w, (task, block.clone()));
                ctx.send(
                    worker_pids[w as usize],
                    WORKER_TAG,
                    512,
                    Payload::value(WorkerMsg::Map { task, block }),
                    &control(),
                );
            }
        }
        // Assign while possible, preferring block-local workers.
        while !pending.is_empty() && !free.is_empty() {
            let (slot_in_pending, widx) = {
                // Find a (task, free worker) pair with locality.
                let mut found = None;
                'outer: for (ti, (_, block)) in pending.iter().enumerate() {
                    for (fi, w) in free.iter().enumerate() {
                        if block.is_local_to(worker_node(*w)) {
                            found = Some((ti, fi));
                            break 'outer;
                        }
                    }
                }
                match found {
                    Some((ti, fi)) => (ti, fi),
                    None => (0, 0),
                }
            };
            let (task, block) = pending.remove(slot_in_pending).unwrap();
            let w = free.remove(widx).unwrap();
            if block.is_local_to(worker_node(w)) {
                locality.local_maps += 1;
            } else {
                locality.remote_maps += 1;
            }
            ctx.advance(conf.scheduling_delay);
            in_flight.insert(w, (task, block.clone()));
            ctx.send(
                worker_pids[w as usize],
                WORKER_TAG,
                512,
                Payload::value(WorkerMsg::Map { task, block }),
                &control(),
            );
        }
        // Await a completion (or detect failures).
        match ctx.recv_timeout(MatchSpec::tag(JT_TAG), conf.task_timeout) {
            Ok(msg) => {
                let m = msg.expect_value::<JtMsg<K2, V2>>();
                if let JtMsg::MapDone { task, worker } = &*m {
                    in_flight.remove(worker);
                    free.push_back(*worker);
                    // Duplicate completions (speculation) count once.
                    if done_tasks.insert(*task) {
                        done_maps += 1;
                    }
                }
            }
            Err(_) => {
                // Ping every in-flight worker; requeue tasks of the dead.
                // Sorted so HashMap iteration order never leaks into the
                // virtual-time schedule.
                let mut stale: Vec<u32> = in_flight.keys().copied().collect();
                stale.sort_unstable();
                for w in stale {
                    ctx.send(
                        worker_pids[w as usize],
                        WORKER_TAG,
                        64,
                        Payload::value(WorkerMsg::Ping),
                        &control(),
                    );
                    let alive_now = ctx
                        .recv_timeout(
                            MatchSpec::src_tag(worker_pids[w as usize], PONG_TAG),
                            SimDuration::from_secs(5),
                        )
                        .is_ok();
                    if !alive_now {
                        alive[w as usize] = false;
                        let (task, block) = in_flight.remove(&w).expect("in flight");
                        locality.reexecuted_maps += 1;
                        ctx.record_fault(FaultEvent::Recovery {
                            runtime: "mapreduce",
                            action: "map_reexec",
                            detail: task as u64,
                        });
                        pending.push_back((task, block));
                    }
                }
                if !alive.iter().any(|a| *a) {
                    StructuredAbort::raise(
                        "mapreduce",
                        "job aborted: every worker died; job cannot finish",
                    );
                }
            }
        }
    }

    ctx.span_close();

    // ---- Reduce phase ----
    ctx.span_open("mr/reduce_wave");
    let blocks_by_task: HashMap<u32, HdfsBlock> = file
        .blocks
        .iter()
        .enumerate()
        .map(|(i, b)| (i as u32, b.clone()))
        .collect();
    let mut pending_r: VecDeque<u32> = (0..conf.reduce_tasks).collect();
    let mut in_flight_r: HashMap<u32, u32> = HashMap::new();
    // Maps whose outputs died with their node, forced back into execution
    // by reducer MapLost reports.
    let mut pending_m: VecDeque<u32> = VecDeque::new();
    let mut in_flight_m: HashMap<u32, u32> = HashMap::new(); // worker -> map task
    let mut remapping: std::collections::HashSet<u32> = std::collections::HashSet::new();
    let mut output: Vec<(u32, Vec<(K2, V2)>)> = Vec::new();
    while output.len() < conf.reduce_tasks as usize {
        // Lost maps re-execute first; affected reduces wait for their
        // fresh outputs rather than timing out again.
        while !pending_m.is_empty() && !free.is_empty() {
            let t = pending_m.pop_front().unwrap();
            let w = free.pop_front().unwrap();
            if !alive[w as usize] {
                pending_m.push_front(t);
                continue;
            }
            let block = blocks_by_task[&t].clone();
            locality.reexecuted_maps += 1;
            ctx.advance(conf.scheduling_delay);
            in_flight_m.insert(w, t);
            ctx.send(
                worker_pids[w as usize],
                WORKER_TAG,
                512,
                Payload::value(WorkerMsg::Map { task: t, block }),
                &control(),
            );
        }
        while pending_m.is_empty()
            && in_flight_m.is_empty()
            && !pending_r.is_empty()
            && !free.is_empty()
        {
            let r = pending_r.pop_front().unwrap();
            let w = free.pop_front().unwrap();
            if !alive[w as usize] {
                pending_r.push_front(r);
                continue;
            }
            ctx.advance(conf.scheduling_delay);
            in_flight_r.insert(w, r);
            ctx.send(
                worker_pids[w as usize],
                WORKER_TAG,
                256,
                Payload::value(WorkerMsg::Reduce {
                    partition: r,
                    map_tasks: total_maps,
                }),
                &control(),
            );
        }
        match ctx.recv_timeout(MatchSpec::tag(JT_TAG), conf.task_timeout) {
            Ok(msg) => {
                let m = msg.expect_value::<JtMsg<K2, V2>>();
                match &*m {
                    JtMsg::ReduceDone {
                        partition,
                        worker,
                        pairs,
                    } => {
                        in_flight_r.remove(worker);
                        free.push_back(*worker);
                        output.push((*partition, pairs.clone()));
                    }
                    // A re-executed map finishing, or a speculative
                    // duplicate from the map phase arriving late.
                    JtMsg::MapDone { task, worker } => {
                        if in_flight_m.remove(worker).is_some() {
                            remapping.remove(task);
                        } else {
                            in_flight.remove(worker);
                        }
                        free.push_back(*worker);
                    }
                    JtMsg::MapLost {
                        map_task,
                        partition,
                        worker,
                    } => {
                        // The reporting reducer aborted: reclaim it and
                        // requeue its partition for after the re-map.
                        in_flight_r.remove(worker);
                        free.push_back(*worker);
                        pending_r.push_back(*partition);
                        // The map output's home node is dead: write off
                        // every worker there and requeue their work.
                        let home = job.outputs.homes.read().get(map_task).copied();
                        if let Some(home) = home {
                            ctx.record_fault(FaultEvent::Recovery {
                                runtime: "mapreduce",
                                action: "node_lost",
                                detail: home.0 as u64,
                            });
                            for w in 0..nworkers {
                                if alive[w as usize] && worker_node(w) == home {
                                    alive[w as usize] = false;
                                    if let Some(r) = in_flight_r.remove(&w) {
                                        pending_r.push_back(r);
                                    }
                                    if let Some(t) = in_flight_m.remove(&w) {
                                        remapping.remove(&t);
                                        pending_m.push_back(t);
                                    }
                                }
                            }
                            free.retain(|w| alive[*w as usize]);
                        }
                        if remapping.insert(*map_task) {
                            ctx.record_fault(FaultEvent::Recovery {
                                runtime: "mapreduce",
                                action: "map_reexec",
                                detail: *map_task as u64,
                            });
                            pending_m.push_back(*map_task);
                        }
                    }
                }
            }
            Err(_) => {
                let mut stale: Vec<u32> = in_flight_r
                    .keys()
                    .chain(in_flight_m.keys())
                    .copied()
                    .collect();
                stale.sort_unstable();
                for w in stale {
                    ctx.send(
                        worker_pids[w as usize],
                        WORKER_TAG,
                        64,
                        Payload::value(WorkerMsg::Ping),
                        &control(),
                    );
                    let ok = ctx
                        .recv_timeout(
                            MatchSpec::src_tag(worker_pids[w as usize], PONG_TAG),
                            SimDuration::from_secs(5),
                        )
                        .is_ok();
                    if !ok {
                        alive[w as usize] = false;
                        if let Some(r) = in_flight_r.remove(&w) {
                            pending_r.push_back(r);
                        }
                        if let Some(t) = in_flight_m.remove(&w) {
                            remapping.remove(&t);
                            locality.reexecuted_maps += 1;
                            pending_m.push_back(t);
                        }
                    }
                }
                if !alive.iter().any(|a| *a) {
                    StructuredAbort::raise(
                        "mapreduce",
                        "job aborted: every worker died; job cannot finish",
                    );
                }
            }
        }
    }

    ctx.span_close();

    // ---- Teardown ----
    // Shutdown goes to every worker, including ones presumed dead: a
    // worker wrongly declared dead by a slow ping is still blocked on its
    // queue, and a message to a truly dead process is silently dropped.
    for pid in worker_pids.iter() {
        ctx.send(
            *pid,
            WORKER_TAG,
            32,
            Payload::value(WorkerMsg::Shutdown),
            &control(),
        );
    }
    for pid in job.shuffle_pids.read().iter() {
        ctx.send(
            *pid,
            SHUF_TAG,
            32,
            Payload::value(ShufFetch {
                map_task: u32::MAX,
                partition: u32::MAX,
                reply_to: ctx.pid(),
            }),
            &control(),
        );
    }
    job.hdfs.shutdown(ctx);

    output.sort_by_key(|(p, _)| *p);
    let pairs = output.into_iter().flat_map(|(_, v)| v).collect();
    (pairs, locality)
}

fn worker_loop<I, K2, V2>(ctx: &mut ProcCtx, job: Arc<JobCtx<I, K2, V2>>, me: u32)
where
    I: InputFormat,
    K2: Clone + Eq + Ord + Hash + Send + Sync + 'static,
    V2: Clone + Send + Sync + 'static,
{
    // Straggler injection slows the map-side compute (the phase backup
    // tasks cover; reduce speculation is not modeled).
    let slowdown = match job.slow_worker {
        Some((w, f)) if w == me => f,
        _ => 1.0,
    };
    let jvm_factor = RuntimeClass::Jvm.factor();
    let crash_at = ctx.node_crash_time();
    let mut maps_done = 0u32;
    loop {
        let msg = match ctx.recv_deadline(MatchSpec::tag(WORKER_TAG), crash_at) {
            Ok(m) => m,
            Err(_) => {
                ctx.record_fault(FaultEvent::NodeCrash { node: ctx.node() });
                return; // the node died under this tasktracker
            }
        };
        let m = msg.expect_value::<WorkerMsg>();
        let jt = job.jt_pid.read().expect("jobtracker registered");
        match &*m {
            WorkerMsg::Ping => {
                ctx.send(jt, PONG_TAG, 16, Payload::Empty, &control());
            }
            WorkerMsg::Shutdown => return,
            WorkerMsg::Map { task, block } => {
                if let Some((fw, after)) = job.fail_worker {
                    if fw == me && maps_done >= after {
                        // Die silently mid-task.
                        return;
                    }
                }
                ctx.metric_counter("mr.tasks", "kind=map", 1);
                ctx.span_open("mr/task/map");
                ctx.advance(job.conf.task_jvm_startup);
                job.hdfs.read_block(ctx, block);
                let records = job.format.sample_records(block.offset, block.len);
                let scale = job.format.logical_scale();
                // Parse + map cost over *logical* records.
                let per_rec = job.format.record_work().plus(job.map_work);
                ctx.compute(
                    per_rec.scaled(records.len() as f64 * scale),
                    jvm_factor * slowdown,
                );
                // Real map over the sample.
                let parts = job.conf.reduce_tasks;
                let mut out: Vec<Vec<(K2, V2)>> = (0..parts).map(|_| Vec::new()).collect();
                let mut emitted = 0u64;
                for rec in &records {
                    for (k, v) in (job.mapper)(rec) {
                        emitted += 1;
                        let p = partition_of(&k, parts);
                        out[p as usize].push((k, v));
                    }
                }
                // Optional combiner (map-side pre-reduction).
                if let Some(comb) = &job.combiner {
                    ctx.compute(
                        Work::new(emitted as f64, emitted as f64 * 32.0).scaled(scale),
                        jvm_factor,
                    );
                    for slot in out.iter_mut() {
                        *slot = combine_pairs(std::mem::take(slot), comb);
                    }
                }
                // Spill to local disk (the defining Hadoop cost).
                let mut total_logical = 0u64;
                for (p, pairs) in out.into_iter().enumerate() {
                    let logical = (pairs.len() as f64 * scale * PAIR_BYTES as f64) as u64;
                    total_logical += logical;
                    job.outputs
                        .pairs
                        .write()
                        .insert((*task, p as u32), Arc::new(pairs));
                    job.outputs.bytes.write().insert((*task, p as u32), logical);
                }
                ctx.advance(SimDuration::from_secs_f64(
                    total_logical as f64 * job.conf.spill_cpu_per_byte,
                ));
                ctx.disk_write(total_logical);
                job.outputs.homes.write().insert(*task, ctx.node());
                maps_done += 1;
                ctx.send(
                    jt,
                    JT_TAG,
                    128,
                    Payload::value(JtMsg::<K2, V2>::MapDone {
                        task: *task,
                        worker: me,
                    }),
                    &control(),
                );
                ctx.span_close();
            }
            WorkerMsg::Reduce {
                partition,
                map_tasks,
            } => {
                ctx.metric_counter("mr.tasks", "kind=reduce", 1);
                ctx.span_open("mr/task/reduce");
                ctx.advance(job.conf.task_jvm_startup);
                let scale = job.format.logical_scale();
                let ipoib = Transport::ipoib_socket();
                // Shuffle: fetch this partition of every map output. A
                // fetch that outlives its generous deadline means the map
                // output's home node is gone — report it and abort; the
                // tracker re-executes the map and retries this reduce.
                let mut all: Vec<(K2, V2)> = Vec::new();
                let mut logical_in = 0u64;
                let mut lost: Option<u32> = None;
                for mt in 0..*map_tasks {
                    let home = *job
                        .outputs
                        .homes
                        .read()
                        .get(&mt)
                        .expect("map output registered");
                    let bytes = *job
                        .outputs
                        .bytes
                        .read()
                        .get(&(mt, *partition))
                        .expect("partition size");
                    logical_in += bytes;
                    if home == ctx.node() {
                        if bytes > 0 {
                            ctx.disk_read(bytes);
                        }
                    } else if bytes > 0 {
                        let server = job.shuffle_pids.read()[home.index()];
                        ctx.send(
                            server,
                            SHUF_TAG,
                            128,
                            Payload::value(ShufFetch {
                                map_task: mt,
                                partition: *partition,
                                reply_to: ctx.pid(),
                            }),
                            &control(),
                        );
                        let wire = ipoib.wire_time(bytes);
                        let timeout = SimDuration::from_nanos(wire.nanos().saturating_mul(4))
                            + SimDuration::from_secs(5);
                        if ctx
                            .recv_timeout(
                                MatchSpec::tag(SHUF_REPLY + ((mt as u64) << 8) + *partition as u64),
                                timeout,
                            )
                            .is_err()
                        {
                            lost = Some(mt);
                            break;
                        }
                    }
                    if let Some(pairs) = job.outputs.pairs.read().get(&(mt, *partition)) {
                        all.extend(pairs.iter().cloned());
                    }
                }
                if let Some(mt) = lost {
                    ctx.send(
                        jt,
                        JT_TAG,
                        96,
                        Payload::value(JtMsg::<K2, V2>::MapLost {
                            map_task: mt,
                            partition: *partition,
                            worker: me,
                        }),
                        &control(),
                    );
                    ctx.span_close();
                    continue;
                }
                // Merge sort cost over logical pairs.
                let n_logical = (logical_in / PAIR_BYTES).max(1) as f64;
                ctx.compute(
                    Work::new(n_logical * n_logical.log2().max(1.0), n_logical * 48.0),
                    jvm_factor,
                );
                // Real grouped reduce.
                let reduced = combine_pairs(all, &job.reducer);
                ctx.compute(job.reduce_work.scaled(n_logical), jvm_factor);
                // Output to HDFS (replicated write).
                let out_logical = (reduced.len() as f64 * scale * PAIR_BYTES as f64) as u64;
                job.hdfs.write_file(
                    ctx,
                    &format!("{}/part-r-{partition:05}", job.input_path),
                    out_logical,
                    None,
                );
                ctx.send(
                    jt,
                    JT_TAG,
                    out_logical.max(64),
                    Payload::value(JtMsg::<K2, V2>::ReduceDone {
                        partition: *partition,
                        worker: me,
                        pairs: reduced,
                    }),
                    &control(),
                );
                ctx.span_close();
            }
        }
    }
}

/// Group pairs by key (deterministic order) and fold each group.
fn combine_pairs<K2, V2>(
    pairs: Vec<(K2, V2)>,
    f: &(impl Fn(&K2, &[V2]) -> V2 + ?Sized),
) -> Vec<(K2, V2)>
where
    K2: Clone + Eq + Ord + Hash,
    V2: Clone,
{
    let mut groups: HashMap<K2, Vec<V2>> = HashMap::new();
    for (k, v) in pairs {
        groups.entry(k).or_default().push(v);
    }
    let mut keys: Vec<K2> = groups.keys().cloned().collect();
    keys.sort();
    keys.into_iter()
        .map(|k| {
            let vs = &groups[&k];
            let out = f(&k, vs);
            (k, out)
        })
        .collect()
}

fn shuffle_server<I, K2, V2>(ctx: &mut ProcCtx, job: Arc<JobCtx<I, K2, V2>>)
where
    I: InputFormat,
    K2: Clone + Send + Sync + 'static,
    V2: Clone + Send + Sync + 'static,
{
    let ipoib = Transport::ipoib_socket();
    let crash_at = ctx.node_crash_time();
    loop {
        let msg = match ctx.recv_deadline(MatchSpec::tag(SHUF_TAG), crash_at) {
            Ok(m) => m,
            Err(_) => {
                ctx.record_fault(FaultEvent::NodeCrash { node: ctx.node() });
                return; // the node died with its map outputs
            }
        };
        let req = msg.expect_value::<ShufFetch>();
        if req.map_task == u32::MAX {
            return; // shutdown sentinel
        }
        let bytes = *job
            .outputs
            .bytes
            .read()
            .get(&(req.map_task, req.partition))
            .expect("partition size registered");
        // Map outputs live on disk; read back, then stream to the reducer.
        if bytes > 0 {
            ctx.disk_read(bytes);
        }
        ctx.send(
            req.reply_to,
            SHUF_REPLY + ((req.map_task as u64) << 8) + req.partition as u64,
            bytes.max(1),
            Payload::Empty,
            &ipoib,
        );
    }
}
