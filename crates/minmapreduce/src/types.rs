//! Job configuration, input formats, and the task protocol.

use hpcbd_simnet::SimDuration;

pub use hpcbd_simnet::dataset::InputFormat;

/// Hadoop job configuration.
#[derive(Debug, Clone, Copy)]
pub struct JobConf {
    /// Reduce task count (`mapreduce.job.reduces`).
    pub reduce_tasks: u32,
    /// Concurrent task slots per node (map or reduce).
    pub slots_per_node: u32,
    /// One-time job client + ApplicationMaster startup.
    pub job_startup: SimDuration,
    /// Per-task JVM launch cost.
    pub task_jvm_startup: SimDuration,
    /// Tracker-side delay per task assignment (heartbeat granularity).
    pub scheduling_delay: SimDuration,
    /// CPU cost per map-output byte for serialization + partitioning,
    /// seconds/byte (JVM object overhead included).
    pub spill_cpu_per_byte: f64,
    /// Task liveness timeout before the tracker re-executes
    /// (`mapreduce.task.timeout`, scaled down for simulation).
    pub task_timeout: SimDuration,
    /// Launch backup copies of straggling map tasks when slots idle
    /// (`mapreduce.map.speculative`).
    pub speculative_execution: bool,
}

impl Default for JobConf {
    fn default() -> JobConf {
        JobConf {
            reduce_tasks: 8,
            slots_per_node: 8,
            job_startup: SimDuration::from_millis(2_500),
            task_jvm_startup: SimDuration::from_millis(220),
            scheduling_delay: SimDuration::from_millis(15),
            spill_cpu_per_byte: 1.0e-9,
            task_timeout: SimDuration::from_secs(60),
            speculative_execution: false,
        }
    }
}

/// Where a task was assigned, relative to its input block replicas —
/// reported per job for locality diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LocalityStats {
    /// Map tasks whose worker node held a replica of the input block.
    pub local_maps: u32,
    /// Map tasks that had to read their block over the network.
    pub remote_maps: u32,
    /// Map tasks that were re-executed after a worker failure.
    pub reexecuted_maps: u32,
    /// Backup copies launched by speculative execution.
    pub speculative_maps: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_conf_is_sane() {
        let c = JobConf::default();
        assert!(c.reduce_tasks > 0);
        assert!(c.job_startup > c.task_jvm_startup);
        assert!(c.task_timeout > c.scheduling_delay);
    }
}
