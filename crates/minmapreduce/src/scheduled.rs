//! Scheduler adapter: compile the Hadoop MapReduce AnswersCount job into
//! an elastic multi-tenant [`hpcbd_sched::JobSpec`].
//!
//! Hadoop's signature under contention is *per-task weight*: every map
//! and reduce pays a JVM launch before touching data, map output is
//! spilled to local disk, and reduce output is written back to HDFS.
//! Tasks are elastic (the Hadoop scheduler trickles them onto free
//! slots) and preemptable — YARN kills containers of over-share queues,
//! which is exactly the behaviour the sched crate's preemption models.

use std::sync::Arc;

use hpcbd_sched::{JobSpec, Segment, TaskSpec, Wave};
use hpcbd_simnet::{NodeId, RuntimeClass, Transport, Work};
use hpcbd_workloads::stackexchange::RECORD_BYTES;

use crate::{JobConf, PAIR_BYTES};

/// Per-record parse/count cost of the mapper (native scan cost; the JVM
/// multiplier is applied at charge time).
fn scan_work() -> Work {
    Work::new(60.0, 1600.0)
}

/// The Hadoop AnswersCount job: `maps` map tasks over `bytes` of HDFS
/// posts (split `i` preferred on node `i % nodes`), then `reduces`
/// reduce tasks that fetch the spilled map output and write to HDFS.
pub fn scheduled_answers(
    queue: &'static str,
    tenant: &'static str,
    bytes: u64,
    maps: u32,
    reduces: u32,
    nodes: u32,
) -> JobSpec {
    let conf = JobConf::default();
    let jvm = RuntimeClass::Jvm.factor();
    let split = bytes / maps.max(1) as u64;
    // Combiner output: one (key, count) pair per key per map.
    let map_out = 2 * PAIR_BYTES;
    // The map is split into record-batch slices with a preemption
    // checkpoint between them — a YARN container kill lands at a slice
    // boundary instead of waiting out the whole split.
    const SLICES: u64 = 4;
    let launch: Segment = Arc::new(move |ctx, _env| {
        ctx.sleep(conf.task_jvm_startup);
    });
    let map_slice: Segment = Arc::new(move |ctx, _env| {
        ctx.disk_read(split / SLICES);
        let records = (split / SLICES / RECORD_BYTES) as f64;
        ctx.compute(scan_work().scaled(records), jvm);
    });
    let spill: Segment = Arc::new(move |ctx, _env| {
        // Sort + spill the combined output to local disk.
        ctx.sleep(hpcbd_simnet::SimDuration::from_nanos(
            (conf.spill_cpu_per_byte * map_out as f64 * 1e9) as u64,
        ));
        ctx.disk_write(map_out);
    });
    let map_segments: Vec<Segment> = std::iter::once(launch)
        .chain(std::iter::repeat_with(|| map_slice.clone()).take(SLICES as usize))
        .chain(std::iter::once(spill))
        .collect();
    let fetch_total = map_out * maps as u64 / reduces.max(1) as u64;
    let reduce: Segment = Arc::new(move |ctx, env| {
        ctx.sleep(conf.task_jvm_startup);
        // Shuffle fetch from every map's node over IPoIB sockets.
        let me = env.index as u64;
        let span = maps.min(nodes) as u64;
        for k in 0..span {
            let src = NodeId(((me + k) % nodes.max(1) as u64) as u32);
            ctx.one_sided_transfer(
                src,
                fetch_total / span.max(1),
                &Transport::ipoib_socket(),
                1,
            );
        }
        ctx.compute(Work::new(8.0, 48.0).scaled(maps as f64), jvm);
        // Final output written to HDFS (local replica; the pipeline to
        // remote replicas is charged by the NameNode in the full model).
        ctx.disk_write(fetch_total);
    });
    JobSpec {
        template: "hadoop/answers",
        queue,
        tenant,
        waves: vec![
            Wave {
                tasks: (0..maps)
                    .map(|i| TaskSpec {
                        segments: map_segments.clone(),
                        preferred: Some(NodeId(i % nodes.max(1))),
                        preemptable: true,
                    })
                    .collect(),
                gang: false,
            },
            Wave {
                tasks: vec![
                    TaskSpec {
                        segments: vec![reduce],
                        preferred: None,
                        preemptable: true,
                    };
                    reduces as usize
                ],
                gang: false,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn answers_has_map_and_reduce_waves() {
        let job = scheduled_answers("batch", "etl", 1 << 30, 16, 2, 4);
        assert_eq!(job.waves.len(), 2);
        assert_eq!(job.waves[0].tasks.len(), 16);
        assert_eq!(job.waves[1].tasks.len(), 2);
        assert!(job.waves.iter().all(|w| !w.gang));
        assert_eq!(job.waves[0].tasks[5].preferred, Some(NodeId(1)));
    }
}
