//! `hpcbd-minmapreduce` — a Hadoop-MapReduce-like engine on `simnet`.
//!
//! Implements the MapReduce programming model of Sec. II-D on the
//! `minhdfs` substrate, preserving the cost structure that makes Hadoop
//! the slowest-but-steadiest line of Fig. 4: per-job and per-task JVM
//! startup, input splits scheduled with block locality, map outputs
//! **spilled to local disk** and served back by per-node shuffle servers
//! over the socket transport, reducer-side merge sort, replicated HDFS
//! output, and automatic re-execution of failed tasks.
//!
//! # Example: word count
//!
//! ```
//! use std::sync::Arc;
//! use hpcbd_minmapreduce::{InputFormat, MrJobBuilder};
//! use hpcbd_simnet::Work;
//!
//! struct Words;
//! impl InputFormat for Words {
//!     type Rec = String;
//!     fn sample_records(&self, offset: u64, len: u64) -> Vec<String> {
//!         // Two deterministic words per 64 MB block.
//!         let b = offset / (64 << 20);
//!         vec![format!("w{}", b % 3), "common".to_string()]
//!     }
//!     fn logical_scale(&self) -> f64 { 1.0 }
//!     fn record_work(&self) -> Work { Work::new(50.0, 100.0) }
//! }
//!
//! let result = MrJobBuilder::new(
//!     Arc::new(Words),
//!     "/in",
//!     256 << 20, // 4 blocks of 64 MB
//!     |w: &String| vec![(w.clone(), 1u64)],
//!     |_k, vs: &[u64]| vs.iter().sum(),
//! )
//! .hdfs(hpcbd_minhdfs::HdfsConfig { block_size: 64 << 20, ..Default::default() })
//! .run(2);
//! let common = result
//!     .pairs
//!     .iter()
//!     .find(|(k, _)| k == "common")
//!     .map(|(_, v)| *v)
//!     .unwrap();
//! assert_eq!(common, 4);
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod scheduled;
pub mod types;

pub use engine::{MrJobBuilder, MrResult, PAIR_BYTES};
pub use scheduled::scheduled_answers;
pub use types::{InputFormat, JobConf, LocalityStats};

#[cfg(test)]
mod tests {
    use super::*;
    use hpcbd_minhdfs::HdfsConfig;
    use hpcbd_simnet::Work;
    use std::sync::Arc;

    /// Deterministic synthetic input: each 32 MB block yields ten
    /// `(key, 1)`-style records drawn from a small key universe.
    struct Synth {
        keys: u64,
        scale: f64,
    }

    impl InputFormat for Synth {
        type Rec = u64;
        fn sample_records(&self, offset: u64, _len: u64) -> Vec<u64> {
            let block = offset / (32 << 20);
            (0..10).map(|i| (block * 7 + i) % self.keys).collect()
        }
        fn logical_scale(&self) -> f64 {
            self.scale
        }
        fn record_work(&self) -> Work {
            Work::new(100.0, 200.0)
        }
    }

    fn count_job(nodes: u32, blocks: u64, keys: u64) -> MrResult<u64, u64> {
        MrJobBuilder::new(
            Arc::new(Synth { keys, scale: 1.0 }),
            "/in",
            blocks * (32 << 20),
            |k: &u64| vec![(*k, 1u64)],
            |_k, vs: &[u64]| vs.iter().sum(),
        )
        .hdfs(HdfsConfig {
            block_size: 32 << 20,
            ..Default::default()
        })
        .conf(JobConf {
            reduce_tasks: 4,
            slots_per_node: 2,
            ..Default::default()
        })
        .run(nodes)
    }

    fn oracle_counts(blocks: u64, keys: u64) -> std::collections::HashMap<u64, u64> {
        let mut m = std::collections::HashMap::new();
        for b in 0..blocks {
            for i in 0..10 {
                *m.entry((b * 7 + i) % keys).or_insert(0u64) += 1;
            }
        }
        m
    }

    #[test]
    fn counts_match_oracle() {
        let blocks = 8;
        let keys = 5;
        let result = count_job(2, blocks, keys);
        let oracle = oracle_counts(blocks, keys);
        let got: std::collections::HashMap<u64, u64> = result.pairs.iter().cloned().collect();
        assert_eq!(got, oracle);
        assert_eq!(
            result.locality.local_maps + result.locality.remote_maps,
            blocks as u32
        );
    }

    #[test]
    fn results_are_deterministic() {
        let a = count_job(3, 6, 4);
        let b = count_job(3, 6, 4);
        assert_eq!(a.pairs, b.pairs);
        assert_eq!(a.elapsed, b.elapsed);
    }

    #[test]
    fn replication_3_makes_most_maps_local() {
        // With replication 3 on 3 nodes every block is everywhere.
        let r = count_job(3, 9, 4);
        assert_eq!(r.locality.remote_maps, 0);
        assert_eq!(r.locality.local_maps, 9);
    }

    #[test]
    fn combiner_reduces_shuffle_but_not_results() {
        let blocks = 6u64;
        let keys = 3u64;
        let with_combiner = MrJobBuilder::new(
            Arc::new(Synth { keys, scale: 1.0 }),
            "/in",
            blocks * (32 << 20),
            |k: &u64| vec![(*k, 1u64)],
            |_k, vs: &[u64]| vs.iter().sum(),
        )
        .combiner(|_k, vs: &[u64]| vs.iter().sum())
        .hdfs(HdfsConfig {
            block_size: 32 << 20,
            ..Default::default()
        })
        .run(2);
        let without = count_job(2, blocks, keys);
        let a: std::collections::HashMap<u64, u64> = with_combiner.pairs.iter().cloned().collect();
        let b: std::collections::HashMap<u64, u64> = without.pairs.iter().cloned().collect();
        assert_eq!(a, b, "combiner must not change results");
    }

    #[test]
    fn failed_worker_tasks_are_reexecuted() {
        let blocks = 8u64;
        let keys = 5u64;
        let result = MrJobBuilder::new(
            Arc::new(Synth { keys, scale: 1.0 }),
            "/in",
            blocks * (32 << 20),
            |k: &u64| vec![(*k, 1u64)],
            |_k, vs: &[u64]| vs.iter().sum(),
        )
        .hdfs(HdfsConfig {
            block_size: 32 << 20,
            ..Default::default()
        })
        .conf(JobConf {
            reduce_tasks: 2,
            slots_per_node: 2,
            task_timeout: hpcbd_simnet::SimDuration::from_secs(30),
            ..Default::default()
        })
        // Worker 1 dies while running its second map task.
        .fail_worker_after(1, 1)
        .run(2);
        assert!(result.locality.reexecuted_maps >= 1);
        let oracle = oracle_counts(blocks, keys);
        let got: std::collections::HashMap<u64, u64> = result.pairs.iter().cloned().collect();
        assert_eq!(got, oracle, "results survive a worker failure");
    }

    #[test]
    fn fault_plan_node_crash_reexecutes_lost_maps() {
        use hpcbd_simnet::{FaultPlan, NodeId, SimTime};
        let blocks = 8u64;
        let keys = 5u64;
        let result = MrJobBuilder::new(
            Arc::new(Synth {
                keys,
                scale: 50_000.0,
            }),
            "/in",
            blocks * (32 << 20),
            |k: &u64| vec![(*k, 1u64)],
            |_k, vs: &[u64]| vs.iter().sum(),
        )
        .hdfs(HdfsConfig {
            block_size: 32 << 20,
            ..Default::default()
        })
        .conf(JobConf {
            reduce_tasks: 2,
            slots_per_node: 2,
            task_timeout: hpcbd_simnet::SimDuration::from_secs(20),
            ..Default::default()
        })
        // Node 1 — two workers plus the shuffle server holding its map
        // outputs — dies mid-map-phase, after its workers already homed
        // some outputs there.
        .faults(FaultPlan::new(11).crash_node(NodeId(1), SimTime(3_300_000_000)))
        .run(3);
        assert!(
            result.locality.reexecuted_maps >= 1,
            "maps homed on the crashed node must re-execute"
        );
        let oracle = oracle_counts(blocks, keys);
        let got: std::collections::HashMap<u64, u64> = result.pairs.iter().cloned().collect();
        assert_eq!(got, oracle, "results survive the node crash");
    }

    #[test]
    fn speculative_execution_rescues_stragglers() {
        fn run(speculative: bool) -> (hpcbd_simnet::SimTime, MrResult<u64, u64>) {
            let r = MrJobBuilder::new(
                Arc::new(Synth {
                    keys: 5,
                    scale: 200_000.0,
                }),
                "/in",
                8 * (32 << 20),
                |k: &u64| vec![(*k, 1u64)],
                |_k, vs: &[u64]| vs.iter().sum(),
            )
            .hdfs(HdfsConfig {
                block_size: 32 << 20,
                ..Default::default()
            })
            .conf(JobConf {
                reduce_tasks: 2,
                slots_per_node: 2,
                speculative_execution: speculative,
                ..Default::default()
            })
            // Worker 0's maps run 20x slower: a classic straggler.
            .slow_worker(0, 20.0)
            .combiner(|_k, vs: &[u64]| vs.iter().sum())
            .run(2);
            (r.elapsed, r)
        }
        let (slow_t, no_spec) = run(false);
        let (spec_t, with_spec) = run(true);
        assert_eq!(no_spec.locality.speculative_maps, 0);
        assert!(with_spec.locality.speculative_maps >= 1);
        assert!(
            spec_t.as_secs_f64() < slow_t.as_secs_f64() * 0.75,
            "backup tasks must rescue the job: {spec_t} vs {slow_t}"
        );
        // Results identical either way.
        let a: std::collections::HashMap<u64, u64> = no_spec.pairs.into_iter().collect();
        let b: std::collections::HashMap<u64, u64> = with_spec.pairs.into_iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn speculation_is_a_noop_without_stragglers() {
        let normal = count_job(2, 8, 5);
        let r = MrJobBuilder::new(
            Arc::new(Synth {
                keys: 5,
                scale: 1.0,
            }),
            "/in",
            8 * (32 << 20),
            |k: &u64| vec![(*k, 1u64)],
            |_k, vs: &[u64]| vs.iter().sum(),
        )
        .hdfs(HdfsConfig {
            block_size: 32 << 20,
            ..Default::default()
        })
        .conf(JobConf {
            reduce_tasks: 4,
            slots_per_node: 2,
            speculative_execution: true,
            ..Default::default()
        })
        .run(2);
        let a: std::collections::HashMap<u64, u64> = normal.pairs.into_iter().collect();
        let b: std::collections::HashMap<u64, u64> = r.pairs.into_iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn scale_factor_multiplies_time_not_results() {
        let slow = MrJobBuilder::new(
            Arc::new(Synth {
                keys: 4,
                scale: 1000.0,
            }),
            "/in",
            4 * (32 << 20),
            |k: &u64| vec![(*k, 1u64)],
            |_k, vs: &[u64]| vs.iter().sum(),
        )
        .hdfs(HdfsConfig {
            block_size: 32 << 20,
            ..Default::default()
        })
        .run(2);
        let fast = MrJobBuilder::new(
            Arc::new(Synth {
                keys: 4,
                scale: 1.0,
            }),
            "/in",
            4 * (32 << 20),
            |k: &u64| vec![(*k, 1u64)],
            |_k, vs: &[u64]| vs.iter().sum(),
        )
        .hdfs(HdfsConfig {
            block_size: 32 << 20,
            ..Default::default()
        })
        .run(2);
        assert!(slow.elapsed > fast.elapsed);
        // Sample-level results identical; only the modeled time scales.
        let a: std::collections::HashMap<u64, u64> = slow.pairs.into_iter().collect();
        let b: std::collections::HashMap<u64, u64> = fast.pairs.into_iter().collect();
        assert_eq!(a, b);
    }
}
