//! Schedule-exploration conformance: a full MapReduce job (splits,
//! spills, shuffle servers, reduce merge, replicated output) must be
//! bit-identical to the sequential oracle under perturbed legal
//! schedules.

use std::sync::Arc;

use hpcbd_check::Explorer;
use hpcbd_minmapreduce::{InputFormat, MrJobBuilder};
use hpcbd_simnet::Work;

struct Words;
impl InputFormat for Words {
    type Rec = String;
    fn sample_records(&self, offset: u64, _len: u64) -> Vec<String> {
        let b = offset / (64 << 20);
        vec![format!("w{}", b % 3), "common".to_string()]
    }
    fn logical_scale(&self) -> f64 {
        1.0
    }
    fn record_work(&self) -> Work {
        Work::new(50.0, 100.0)
    }
}

fn wordcount_workload() {
    let result = MrJobBuilder::new(
        Arc::new(Words),
        "/conformance/in",
        256 << 20,
        |w: &String| vec![(w.clone(), 1u64)],
        |_k, vs: &[u64]| vs.iter().sum(),
    )
    .hdfs(hpcbd_minhdfs::HdfsConfig {
        block_size: 64 << 20,
        ..Default::default()
    })
    .run(2);
    let common = result
        .pairs
        .iter()
        .find(|(k, _)| k == "common")
        .map(|(_, v)| *v)
        .unwrap();
    assert_eq!(common, 4);
}

#[test]
fn mapreduce_job_is_schedule_independent() {
    Explorer::new(0x4D52)
        .schedules(6)
        .threads(4)
        .explore(wordcount_workload)
        .assert_deterministic();
}
