//! Schedule-exploration conformance: an HDFS client doing replicated
//! reads and a pipelined write must be bit-identical to the sequential
//! oracle under perturbed legal schedules (datanode servers are
//! long-lived simulated processes, so this exercises the harness on a
//! service-style workload too).

use hpcbd_check::Explorer;
use hpcbd_minhdfs::{Hdfs, HdfsConfig};
use hpcbd_simnet::{NodeId, Sim, Topology};

fn hdfs_workload() {
    let mut sim = Sim::new(Topology::comet(3));
    let hdfs = Hdfs::deploy(&mut sim, HdfsConfig::with_replication(2), None);
    hdfs.load_file_instant("/conformance/in", 256 << 20, None);
    let client = hdfs.clone();
    sim.spawn(NodeId(0), "client", move |ctx| {
        let read = client.read_file(ctx, "/conformance/in");
        assert_eq!(read, 256 << 20);
        client.write_file(ctx, "/conformance/out", 64 << 20, None);
        client.shutdown(ctx);
        read
    });
    sim.run();
}

#[test]
fn hdfs_read_write_is_schedule_independent() {
    Explorer::new(0x4846)
        .schedules(8)
        .threads(4)
        .explore(hdfs_workload)
        .assert_deterministic();
}
