//! The deployed HDFS instance: namespace, block placement, datanodes.

use std::any::Any;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use parking_lot::RwLock;

use hpcbd_simnet::{
    FaultEvent, MatchSpec, NodeId, Payload, Pid, ProcCtx, Sim, SimDuration, SimTime, Tag, Transport,
};

use crate::types::{HdfsBlock, HdfsConfig, HdfsFile};

/// Tag on which datanode processes serve requests.
pub(crate) const DN_TAG: Tag = (1 << 42) + 1;
/// Tag space for read replies: `DN_REPLY_BASE + block id`.
pub(crate) const DN_REPLY_BASE: Tag = 1 << 43;

/// Requests understood by a datanode process.
pub(crate) enum DnRequest {
    /// Stream a block to `reply_to` on `DN_REPLY_BASE + block_id`.
    Read {
        /// Block id (reply tag disambiguator).
        block_id: u64,
        /// Bytes to stream.
        len: u64,
        /// Destination process.
        reply_to: Pid,
        /// Whether the reader shares this datanode's node (loopback
        /// stream instead of the fabric).
        local: bool,
    },
    /// Re-replication: read `block_id` back from disk and stream it to
    /// the datanode `target_dn`, which stores a fresh replica.
    Replicate {
        /// Block id being re-replicated.
        block_id: u64,
        /// Bytes to stream.
        len: u64,
        /// Datanode receiving the new replica.
        target_dn: Pid,
    },
    /// Receive a pipelined replica and persist it.
    Store {
        /// Bytes to write.
        len: u64,
    },
    /// Terminate the datanode.
    Shutdown,
}

struct Inner {
    namespace: RwLock<HashMap<String, HdfsFile>>,
    /// Shared with every datanode closure: a dying datanode records itself
    /// here, and clients consult it when choosing replicas.
    dead: Arc<RwLock<HashSet<NodeId>>>,
    /// Nodes whose block loss has already been repaired (re-replication
    /// runs once per dead node, whoever detects the death first).
    re_replicated: RwLock<HashSet<NodeId>>,
    next_block: RwLock<u64>,
    datanode_pids: Vec<Pid>,
    nodes: u32,
}

/// A deployed HDFS instance. Clone-cheap handle; capture it in process
/// closures.
#[derive(Clone)]
pub struct Hdfs {
    /// Configuration the instance was deployed with.
    pub config: HdfsConfig,
    inner: Arc<Inner>,
}

impl Hdfs {
    /// Deploy HDFS on every node of `sim`'s topology: spawns one datanode
    /// process per node. Call before spawning application processes, and
    /// call [`Hdfs::shutdown`] from exactly one application process when
    /// the job is done (datanodes otherwise run forever).
    ///
    /// `fail_node_at`: optional fault injection — `(node, time)` makes
    /// that node's datanode die silently at the given virtual time.
    pub fn deploy(
        sim: &mut Sim,
        config: HdfsConfig,
        fail_node_at: Option<(NodeId, SimTime)>,
    ) -> Hdfs {
        let nodes = sim.world().topology.len() as u32;
        let dead: Arc<RwLock<HashSet<NodeId>>> = Arc::new(RwLock::new(HashSet::new()));
        let mut datanode_pids = Vec::new();
        for node in 0..nodes {
            let node = NodeId(node);
            let fail_at = match fail_node_at {
                Some((n, t)) if n == node => Some(t),
                _ => None,
            };
            let dead = dead.clone();
            let pid = sim.spawn(node, format!("datanode@{node}"), move |ctx| {
                datanode_loop(ctx, fail_at, dead);
            });
            datanode_pids.push(pid);
        }
        Hdfs {
            config,
            inner: Arc::new(Inner {
                namespace: RwLock::new(HashMap::new()),
                dead,
                re_replicated: RwLock::new(HashSet::new()),
                next_block: RwLock::new(0),
                datanode_pids,
                nodes,
            }),
        }
    }

    /// Number of nodes the instance spans.
    pub fn nodes(&self) -> u32 {
        self.inner.nodes
    }

    /// Pid of the datanode on `node`.
    pub fn datanode(&self, node: NodeId) -> Pid {
        self.inner.datanode_pids[node.index()]
    }

    /// Mark a node's datanode as dead (fault injection bookkeeping).
    pub fn mark_dead(&self, node: NodeId) {
        self.inner.dead.write().insert(node);
    }

    /// Whether a node's datanode is known dead.
    pub fn is_dead(&self, node: NodeId) -> bool {
        self.inner.dead.read().contains(&node)
    }

    /// Deterministic round-robin block placement: block `i` of a file
    /// whose first replica starts at `start` lands on nodes
    /// `start+i, start+i+1, ...` (mod cluster size).
    fn place_block(&self, start: u32, index: u64, len: u64, offset: u64) -> HdfsBlock {
        let id = {
            let mut g = self.inner.next_block.write();
            let id = *g;
            *g += 1;
            id
        };
        let n = self.inner.nodes;
        let r = self.config.replication.clamp(1, n);
        let first = (start as u64 + index) % n as u64;
        let replicas = (0..r)
            .map(|k| NodeId(((first + k as u64) % n as u64) as u32))
            .collect();
        HdfsBlock {
            id,
            offset,
            len,
            replicas,
        }
    }

    /// Instantly create `path` in the namespace (no virtual time cost):
    /// the standard way experiments pre-populate their input before the
    /// timed phase, mirroring "the dataset was already in HDFS".
    ///
    /// `data` is the content sample shared by all readers.
    pub fn load_file_instant(
        &self,
        path: &str,
        size: u64,
        data: Option<Arc<dyn Any + Send + Sync>>,
    ) -> HdfsFile {
        let bs = self.config.block_size;
        // Spread files across start nodes by path hash (deterministic).
        let start = (fxhash(path) % self.inner.nodes as u64) as u32;
        let nblocks = size.div_ceil(bs).max(1);
        let blocks: Vec<HdfsBlock> = (0..nblocks)
            .map(|i| {
                let offset = i * bs;
                let len = bs.min(size - offset.min(size));
                self.place_block(start, i, len, offset)
            })
            .collect();
        let file = HdfsFile {
            path: path.to_string(),
            size,
            blocks,
            data,
        };
        self.inner
            .namespace
            .write()
            .insert(path.to_string(), file.clone());
        file
    }

    /// Namenode lookup: metadata for `path`. Charges one control-plane
    /// RPC round trip to the caller.
    pub fn open(&self, ctx: &mut ProcCtx, path: &str) -> Option<HdfsFile> {
        let rpc = Transport::java_socket_control();
        ctx.advance(rpc.latency + rpc.send_overhead + rpc.recv_overhead);
        self.inner.namespace.read().get(path).cloned()
    }

    /// Metadata without cost (scheduler-side placement decisions reuse
    /// cached metadata).
    pub fn stat(&self, path: &str) -> Option<HdfsFile> {
        self.inner.namespace.read().get(path).cloned()
    }

    /// Alive replicas of a block, preferring `prefer` first.
    pub fn alive_replicas(&self, block: &HdfsBlock, prefer: Option<NodeId>) -> Vec<NodeId> {
        let dead = self.inner.dead.read();
        let mut alive: Vec<NodeId> = block
            .replicas
            .iter()
            .copied()
            .filter(|n| !dead.contains(n))
            .collect();
        if let Some(p) = prefer {
            if let Some(pos) = alive.iter().position(|n| *n == p) {
                alive.swap(0, pos);
            }
        }
        alive
    }

    /// Namenode-side re-replication planning for a dead datanode:
    /// restore the replication factor of every block that had a replica
    /// there. Deterministic — files are walked in path order, and each
    /// lost block's new home is the first alive non-replica node in a
    /// round-robin scan keyed by block id. Updates the namespace
    /// metadata and returns the transfers as
    /// `(block_id, len, source_node, target_node)`.
    pub fn plan_re_replication(&self, dead_node: NodeId) -> Vec<(u64, u64, NodeId, NodeId)> {
        let n = self.inner.nodes;
        let dead = self.inner.dead.read().clone();
        let mut moves = Vec::new();
        let mut ns = self.inner.namespace.write();
        let mut paths: Vec<String> = ns.keys().cloned().collect();
        paths.sort();
        for path in paths {
            let file = ns.get_mut(&path).expect("path just listed");
            for b in file.blocks.iter_mut() {
                let Some(pos) = b.replicas.iter().position(|r| *r == dead_node) else {
                    continue;
                };
                b.replicas.remove(pos);
                let Some(source) = b.replicas.iter().copied().find(|r| !dead.contains(r)) else {
                    continue; // every replica is gone; readers will panic
                };
                let start = (b.id % n as u64) as u32;
                let target = (0..n)
                    .map(|k| NodeId((start + k) % n))
                    .find(|c| !dead.contains(c) && !b.replicas.contains(c));
                if let Some(target) = target {
                    b.replicas.push(target);
                    moves.push((b.id, b.len, source, target));
                }
            }
        }
        moves
    }

    /// Namenode reaction to a dead datanode, driven by whichever client
    /// first observes the silence (standing in for heartbeat expiry):
    /// marks the node dead and — once per node — streams a fresh copy of
    /// every lost block from a surviving replica to its new home.
    pub fn handle_dead_node(&self, ctx: &mut ProcCtx, node: NodeId) {
        self.mark_dead(node);
        if !self.inner.re_replicated.write().insert(node) {
            return; // someone already repaired this node's blocks
        }
        let rpc = Transport::java_socket_control();
        ctx.metric_counter("hdfs.re_replications", "", 1);
        ctx.span_open("hdfs/re_replicate");
        for (block_id, len, source, target) in self.plan_re_replication(node) {
            ctx.record_fault(FaultEvent::Recovery {
                runtime: "hdfs",
                action: "re_replicate",
                detail: block_id,
            });
            ctx.send(
                self.datanode(source),
                DN_TAG,
                256,
                Payload::value(DnRequest::Replicate {
                    block_id,
                    len,
                    target_dn: self.datanode(target),
                }),
                &rpc,
            );
        }
        ctx.span_close();
    }

    /// Read one block from the calling process.
    ///
    /// Every read streams through a datanode — the Hadoop 2.x default
    /// (no short-circuit local reads): a local replica is served by the
    /// node's own datanode over loopback TCP; a remote one over the
    /// IPoIB socket transport. The datanode pays the disk read and the
    /// stream send, so co-located readers contend on their node's
    /// datanode exactly as they do on a real cluster. Dead datanodes are
    /// skipped; if the chosen one dies mid-request the client times out
    /// and retries the next replica — the failure transparency Table II's
    /// discussion credits HDFS with.
    ///
    /// Returns the node that served the block.
    pub fn read_block(&self, ctx: &mut ProcCtx, block: &HdfsBlock) -> NodeId {
        let me = ctx.node();
        let overhead = self.config.per_block_overhead;
        let checksum =
            SimDuration::from_secs_f64(block.len as f64 * self.config.checksum_cpu_per_byte);
        // A replica list naming a known-dead node means heartbeats have
        // expired but repair hasn't run yet: kick it (once per node).
        let dead_replicas: Vec<NodeId> = block
            .replicas
            .iter()
            .copied()
            .filter(|r| self.is_dead(*r))
            .collect();
        for r in dead_replicas {
            self.handle_dead_node(ctx, r);
        }
        let candidates = self.alive_replicas(block, Some(me));
        assert!(
            !candidates.is_empty(),
            "all replicas of block {} are dead",
            block.id
        );
        for node in candidates {
            ctx.advance(overhead);
            // Ask the replica's datanode to stream the block.
            let dn = self.datanode(node);
            let req = DnRequest::Read {
                block_id: block.id,
                len: block.len,
                reply_to: ctx.pid(),
                local: node == me,
            };
            ctx.send(
                dn,
                DN_TAG,
                256,
                Payload::value(req),
                &Transport::java_socket_control(),
            );
            // Generous timeout: transfer time plus slack.
            let xfer = Transport::ipoib_socket().uncontended_transfer(block.len);
            let timeout = SimDuration::from_nanos(xfer.nanos() * 4 + 2_000_000_000);
            match ctx.recv_timeout(MatchSpec::tag(DN_REPLY_BASE + block.id), timeout) {
                Ok(_) => {
                    ctx.advance(checksum);
                    return node;
                }
                Err(_) => {
                    // Datanode died mid-request: fail over to the next
                    // replica and have the namenode repair replication.
                    self.handle_dead_node(ctx, node);
                    continue;
                }
            }
        }
        panic!("no replica of block {} could be read", block.id);
    }

    /// Read a whole file sequentially from the calling process. Returns
    /// bytes read.
    pub fn read_file(&self, ctx: &mut ProcCtx, path: &str) -> u64 {
        let file = self
            .open(ctx, path)
            .unwrap_or_else(|| panic!("hdfs: no such file {path}"));
        let mut total = 0;
        for b in &file.blocks {
            self.read_block(ctx, b);
            total += b.len;
        }
        total
    }

    /// Client-side file write: pipeline every block to its replicas
    /// (network to first replica unless local, then pipelined copies),
    /// each replica paying a disk write. Charges the caller for the
    /// pipeline critical path. Returns the created file.
    pub fn write_file(
        &self,
        ctx: &mut ProcCtx,
        path: &str,
        size: u64,
        data: Option<Arc<dyn Any + Send + Sync>>,
    ) -> HdfsFile {
        let file = self.load_file_instant(path, size, data);
        let ipoib = Transport::ipoib_socket();
        for b in &file.blocks {
            ctx.advance(self.config.per_block_overhead);
            // First copy: local disk if we are a replica, else one network
            // hop.  Subsequent replicas receive pipelined copies; the
            // client-visible cost approximates one transfer plus one disk
            // write per extra replica (pipelining overlaps, we charge the
            // critical path: transfer + write of the slowest stage).
            if b.replicas.first() == Some(&ctx.node()) {
                ctx.disk_write(b.len);
            } else {
                ctx.advance(ipoib.uncontended_transfer(b.len));
                ctx.advance(SimDuration::from_secs_f64(
                    b.len as f64 / ctx.world().topology.node(b.replicas[0]).spec.disk.write_bw,
                ));
            }
            for _extra in 1..b.replicas.len() {
                ctx.advance(ipoib.uncontended_transfer(b.len));
            }
        }
        file
    }

    /// Stop every datanode that is still alive. Call from one application
    /// process after the workload completes.
    pub fn shutdown(&self, ctx: &mut ProcCtx) {
        // Every datanode gets the message, including ones presumed dead:
        // the `dead` set can lag a FaultPlan crash, and a message to a
        // finished process is silently dropped.
        for pid in self.inner.datanode_pids.iter() {
            ctx.send(
                *pid,
                DN_TAG,
                32,
                Payload::value(DnRequest::Shutdown),
                &Transport::java_socket_control(),
            );
        }
    }
}

/// Cheap deterministic string hash (FNV-1a) for placement spreading.
fn fxhash(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn datanode_loop(ctx: &mut ProcCtx, fail_at: Option<SimTime>, dead: Arc<RwLock<HashSet<NodeId>>>) {
    let ipoib = Transport::ipoib_socket();
    let fail_at = match (fail_at, ctx.node_crash_time()) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };
    loop {
        let msg = match fail_at {
            Some(t) => match ctx.recv_deadline(MatchSpec::tag(DN_TAG), Some(t)) {
                Ok(m) => m,
                Err(_) => {
                    // Die silently: in-flight clients will time out.
                    if Some(t) == ctx.node_crash_time() {
                        ctx.record_fault(FaultEvent::NodeCrash { node: ctx.node() });
                    }
                    dead.write().insert(ctx.node());
                    return;
                }
            },
            None => ctx.recv(MatchSpec::tag(DN_TAG)),
        };
        let req = msg.expect_value::<DnRequest>();
        match &*req {
            DnRequest::Read {
                block_id,
                len,
                reply_to,
                local,
            } => {
                ctx.disk_read(*len);
                let tr = if *local {
                    Transport::loopback_socket()
                } else {
                    ipoib
                };
                ctx.send(
                    *reply_to,
                    DN_REPLY_BASE + block_id,
                    *len,
                    Payload::Empty,
                    &tr,
                );
            }
            DnRequest::Replicate {
                block_id,
                len,
                target_dn,
            } => {
                // Read the surviving copy back and pipeline it to the
                // block's new home.
                ctx.record_fault(FaultEvent::Recovery {
                    runtime: "hdfs",
                    action: "replica_stream",
                    detail: *block_id,
                });
                ctx.disk_read(*len);
                ctx.send(
                    *target_dn,
                    DN_TAG,
                    *len,
                    Payload::value(DnRequest::Store { len: *len }),
                    &ipoib,
                );
            }
            DnRequest::Store { len } => {
                ctx.disk_write(*len);
            }
            DnRequest::Shutdown => return,
        }
    }
}
