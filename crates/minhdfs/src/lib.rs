//! `hpcbd-minhdfs` — an HDFS-like distributed block store on `simnet`.
//!
//! Implements the pieces of HDFS the paper's experiments exercise
//! (Sec. IV "Filesystem", Sec. V-B2, Table II):
//!
//! * files split into fixed-size **blocks** (128 MB default), each
//!   replicated on `replication` nodes with deterministic round-robin
//!   placement;
//! * **locality metadata** (which nodes hold which block) consumed by the
//!   Spark and MapReduce schedulers;
//! * a **datanode process per node** serving remote block reads over the
//!   socket transport, with local reads short-circuiting to the node's
//!   own SSD;
//! * per-block protocol and checksum overheads — the measured ≈25 %
//!   premium of HDFS over raw local reads in Table II;
//! * **failure transparency**: a datanode can be killed mid-run; clients
//!   time out and fail over to surviving replicas without surfacing an
//!   error, which is exactly the behaviour the paper credits for
//!   accepting the HDFS overhead ("failure at HDFS level ... will not
//!   propagate to the application level").
//!
//! The namenode is modeled as shared metadata plus a per-lookup RPC
//! charge rather than a serializing process; namenode contention is not a
//! phenomenon any reproduced experiment depends on (documented
//! simplification).

#![warn(missing_docs)]

pub mod cluster;
pub mod types;

pub use cluster::Hdfs;
pub use types::{HdfsBlock, HdfsConfig, HdfsFile};

#[cfg(test)]
mod tests {
    use super::*;
    use hpcbd_simnet::{NodeId, Sim, SimDuration, SimTime, Topology};

    fn deploy_on(nodes: u32, config: HdfsConfig) -> (Sim, Hdfs) {
        let mut sim = Sim::new(Topology::comet(nodes));
        let hdfs = Hdfs::deploy(&mut sim, config, None);
        (sim, hdfs)
    }

    #[test]
    fn blocks_cover_file_and_respect_replication() {
        let (_sim, hdfs) = deploy_on(4, HdfsConfig::default());
        let f = hdfs.load_file_instant("/data/input", 1000 << 20, None);
        assert_eq!(f.blocks.len(), 8); // ceil(1000/128)
        let mut covered = 0;
        for (i, b) in f.blocks.iter().enumerate() {
            assert_eq!(b.offset, i as u64 * (128 << 20));
            assert_eq!(b.replicas.len(), 3);
            // Replicas distinct.
            let mut r = b.replicas.clone();
            r.sort();
            r.dedup();
            assert_eq!(r.len(), 3);
            covered += b.len;
        }
        assert_eq!(covered, 1000 << 20);
        assert_eq!(f.blocks.last().unwrap().len, 104 << 20);
    }

    #[test]
    fn replication_clamps_to_cluster_size() {
        let (_sim, hdfs) = deploy_on(2, HdfsConfig::with_replication(5));
        let f = hdfs.load_file_instant("/x", 1, None);
        assert_eq!(f.blocks[0].replicas.len(), 2);
    }

    #[test]
    fn local_read_short_circuits_and_remote_read_costs_more() {
        let (mut sim, hdfs) = deploy_on(2, HdfsConfig::with_replication(1));
        // One block, placed deterministically; find its node by reading
        // from both and comparing times.
        let f = hdfs.load_file_instant("/one-block", 64 << 20, None);
        let home = f.blocks[0].replicas[0];
        let other = NodeId(1 - home.0);
        let h1 = hdfs.clone();
        let b1 = f.blocks[0].clone();
        let local = sim.spawn(home, "local-reader", move |ctx| {
            let start = ctx.now();
            let served = h1.read_block(ctx, &b1);
            (served, (ctx.now() - start).nanos())
        });
        let h2 = hdfs.clone();
        let b2 = f.blocks[0].clone();
        let remote = sim.spawn(other, "remote-reader", move |ctx| {
            let start = ctx.now();
            let served = h2.read_block(ctx, &b2);
            (served, (ctx.now() - start).nanos())
        });
        let h3 = hdfs.clone();
        sim.spawn(home, "closer", move |ctx| {
            ctx.sleep(SimDuration::from_secs(120));
            h3.shutdown(ctx);
        });
        let mut report = sim.run();
        let (served_l, t_local) = report.result::<(NodeId, u64)>(local);
        let (served_r, t_remote) = report.result::<(NodeId, u64)>(remote);
        assert_eq!(served_l, home);
        assert_eq!(served_r, home);
        assert!(
            t_remote > t_local,
            "remote {t_remote} must exceed local {t_local}"
        );
    }

    #[test]
    fn read_file_touches_every_block() {
        let (mut sim, hdfs) = deploy_on(3, HdfsConfig::default());
        hdfs.load_file_instant("/f", 300 << 20, None);
        let h = hdfs.clone();
        let reader = sim.spawn(NodeId(0), "reader", move |ctx| {
            let n = h.read_file(ctx, "/f");
            h.shutdown(ctx);
            n
        });
        let mut report = sim.run();
        assert_eq!(report.result::<u64>(reader), 300 << 20);
    }

    #[test]
    fn datanode_failure_is_transparent_to_readers() {
        let mut sim = Sim::new(Topology::comet(3));
        // Node 1's datanode dies at t=1ms, before the read begins.
        let hdfs = Hdfs::deploy(
            &mut sim,
            HdfsConfig::with_replication(2),
            Some((NodeId(1), SimTime(1_000_000))),
        );
        // Build a file and pick a block replicated on node 1.
        let f = hdfs.load_file_instant("/fragile", 1024 << 20, None);
        let victim_block = f
            .blocks
            .iter()
            .find(|b| b.is_local_to(NodeId(1)) && !b.is_local_to(NodeId(0)))
            .expect("some block lives on node 1 only (plus one other)")
            .clone();
        let h = hdfs.clone();
        let reader = sim.spawn(NodeId(0), "survivor-reader", move |ctx| {
            ctx.sleep(SimDuration::from_millis(10)); // let the failure land
            let served = h.read_block(ctx, &victim_block);
            h.shutdown(ctx);
            served
        });
        let mut report = sim.run();
        let served = report.result::<NodeId>(reader);
        assert_ne!(served, NodeId(1), "dead node cannot serve");
    }

    #[test]
    fn alive_replicas_prefers_local() {
        let (_sim, hdfs) = deploy_on(4, HdfsConfig::default());
        let f = hdfs.load_file_instant("/p", 1, None);
        let b = &f.blocks[0];
        let pref = b.replicas[1];
        let order = hdfs.alive_replicas(b, Some(pref));
        assert_eq!(order[0], pref);
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn write_file_charges_time_and_registers() {
        let (mut sim, hdfs) = deploy_on(2, HdfsConfig::with_replication(2));
        let h = hdfs.clone();
        let writer = sim.spawn(NodeId(0), "writer", move |ctx| {
            let start = ctx.now();
            h.write_file(ctx, "/out", 256 << 20, None);
            h.shutdown(ctx);
            (ctx.now() - start).nanos()
        });
        let mut report = sim.run();
        let t = report.result::<u64>(writer);
        assert!(t > 0);
        assert!(hdfs.stat("/out").is_some());
        assert_eq!(hdfs.stat("/out").unwrap().size, 256 << 20);
    }

    #[test]
    fn used_bytes_and_listing_account_files() {
        let (_sim, hdfs) = deploy_on(2, HdfsConfig::default());
        hdfs.load_file_instant("/a", 10, None);
        hdfs.load_file_instant("/b", 20, None);
        assert!(hdfs.stat("/a").is_some());
        assert!(hdfs.stat("/missing").is_none());
        // Blocks exist for both; replica lists are non-empty.
        let a = hdfs.stat("/a").unwrap();
        assert_eq!(a.blocks.len(), 1);
        assert!(!a.blocks[0].replicas.is_empty());
    }

    #[test]
    fn marked_dead_nodes_are_skipped_in_replica_choice() {
        let (_sim, hdfs) = deploy_on(3, HdfsConfig::default());
        let f = hdfs.load_file_instant("/f", 1, None);
        let b = &f.blocks[0];
        let victim = b.replicas[0];
        hdfs.mark_dead(victim);
        assert!(hdfs.is_dead(victim));
        let alive = hdfs.alive_replicas(b, None);
        assert_eq!(alive.len(), 2);
        assert!(!alive.contains(&victim));
    }

    #[test]
    fn re_replication_placement_is_deterministic_and_valid() {
        let (_sim, hdfs) = deploy_on(4, HdfsConfig::with_replication(2));
        let f = hdfs.load_file_instant("/f", 512 << 20, None);
        let victim = f.blocks[0].replicas[0];
        let lost: Vec<u64> = f
            .blocks
            .iter()
            .filter(|b| b.replicas.contains(&victim))
            .map(|b| b.id)
            .collect();
        assert!(!lost.is_empty());
        hdfs.mark_dead(victim);
        let moves = hdfs.plan_re_replication(victim);
        // Exactly one transfer per lost block, each to an alive node that
        // was not already a replica, and metadata back at replication 2.
        let moved: Vec<u64> = moves.iter().map(|(id, _, _, _)| *id).collect();
        assert_eq!(moved, lost, "one repair per lost block, in block order");
        let after = hdfs.stat("/f").unwrap();
        for b in &after.blocks {
            assert_eq!(b.replicas.len(), 2);
            assert!(!b.replicas.contains(&victim));
            let mut r = b.replicas.clone();
            r.sort();
            r.dedup();
            assert_eq!(r.len(), 2, "replicas distinct after repair");
        }
        for (id, _, source, target) in &moves {
            assert_ne!(source, target);
            assert_ne!(*target, victim);
            let b = after.blocks.iter().find(|b| b.id == *id).unwrap();
            assert!(b.replicas.contains(target));
        }
        // Idempotent: nothing references the dead node any more.
        assert!(hdfs.plan_re_replication(victim).is_empty());
    }

    #[test]
    fn dead_datanode_triggers_re_replication_on_read() {
        let mut sim = Sim::new(Topology::comet(3));
        let hdfs = Hdfs::deploy(&mut sim, HdfsConfig::with_replication(2), None);
        let plan = hpcbd_simnet::FaultPlan::new(5).crash_node(NodeId(1), SimTime(1_000_000));
        sim.set_fault_plan(plan);
        let f = hdfs.load_file_instant("/fragile", 1024 << 20, None);
        let victim_block = f
            .blocks
            .iter()
            .find(|b| b.is_local_to(NodeId(1)) && !b.is_local_to(NodeId(0)))
            .expect("some block lives on node 1 (plus one other)")
            .clone();
        let h = hdfs.clone();
        let reader = sim.spawn(NodeId(0), "survivor-reader", move |ctx| {
            ctx.sleep(SimDuration::from_millis(10)); // let the crash land
            let served = h.read_block(ctx, &victim_block);
            ctx.sleep(SimDuration::from_secs(30)); // let repairs stream
            h.shutdown(ctx);
            served
        });
        let mut report = sim.run();
        let served = report.result::<NodeId>(reader);
        assert_ne!(served, NodeId(1), "dead node cannot serve");
        // The failover repaired replication for every block node 1 held.
        for b in &hdfs.stat("/fragile").unwrap().blocks {
            assert_eq!(b.replicas.len(), 2);
            assert!(!b.replicas.contains(&NodeId(1)));
        }
    }

    #[test]
    #[should_panic(expected = "no such file")]
    fn reading_missing_file_panics() {
        let (mut sim, hdfs) = deploy_on(1, HdfsConfig::default());
        let h = hdfs.clone();
        sim.spawn(NodeId(0), "r", move |ctx| {
            h.read_file(ctx, "/nope");
        });
        sim.run();
    }

    #[test]
    fn block_ids_are_cluster_unique() {
        let (_sim, hdfs) = deploy_on(2, HdfsConfig::default());
        let f1 = hdfs.load_file_instant("/x", 300 << 20, None);
        let f2 = hdfs.load_file_instant("/y", 300 << 20, None);
        let mut ids: Vec<u64> = f1
            .blocks
            .iter()
            .chain(f2.blocks.iter())
            .map(|b| b.id)
            .collect();
        let n = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn namespace_is_deterministic() {
        let (_s1, h1) = deploy_on(4, HdfsConfig::default());
        let (_s2, h2) = deploy_on(4, HdfsConfig::default());
        let f1 = h1.load_file_instant("/same", 999 << 20, None);
        let f2 = h2.load_file_instant("/same", 999 << 20, None);
        let r1: Vec<_> = f1.blocks.iter().map(|b| b.replicas.clone()).collect();
        let r2: Vec<_> = f2.blocks.iter().map(|b| b.replicas.clone()).collect();
        assert_eq!(r1, r2);
    }
}
