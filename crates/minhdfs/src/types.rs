//! HDFS metadata types: files, blocks and configuration.

use std::any::Any;
use std::sync::Arc;

use hpcbd_simnet::NodeId;

/// Cluster-wide HDFS configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HdfsConfig {
    /// Block size in bytes (Hadoop 2.x default: 128 MB).
    pub block_size: u64,
    /// Replication factor (default 3). Clamped to the node count at
    /// placement time.
    pub replication: u32,
    /// Fixed protocol overhead per block access (datanode handshake,
    /// checksum file open).
    pub per_block_overhead: hpcbd_simnet::SimDuration,
    /// Checksum-verification CPU cost per byte read, seconds/byte.
    pub checksum_cpu_per_byte: f64,
}

impl Default for HdfsConfig {
    fn default() -> HdfsConfig {
        HdfsConfig {
            block_size: 128 << 20,
            replication: 3,
            per_block_overhead: hpcbd_simnet::SimDuration::from_millis(18),
            checksum_cpu_per_byte: 0.12e-9,
        }
    }
}

impl HdfsConfig {
    /// Default config with a different replication factor — the knob the
    /// paper turned to fix Spark's data-locality stragglers (Sec. V-B2).
    pub fn with_replication(replication: u32) -> HdfsConfig {
        HdfsConfig {
            replication,
            ..HdfsConfig::default()
        }
    }
}

/// One replicated block of a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HdfsBlock {
    /// Cluster-unique block id.
    pub id: u64,
    /// Offset of this block within its file.
    pub offset: u64,
    /// Length in bytes (the final block may be short).
    pub len: u64,
    /// Nodes holding a replica, in pipeline order.
    pub replicas: Vec<NodeId>,
}

impl HdfsBlock {
    /// Whether any replica lives on `node`.
    pub fn is_local_to(&self, node: NodeId) -> bool {
        self.replicas.contains(&node)
    }
}

/// A file in the namespace.
#[derive(Clone)]
pub struct HdfsFile {
    /// Absolute path.
    pub path: String,
    /// Logical size in bytes.
    pub size: u64,
    /// Blocks in offset order.
    pub blocks: Vec<HdfsBlock>,
    /// Optional content handle (dataset sample), shared by every reader.
    pub data: Option<Arc<dyn Any + Send + Sync>>,
}

impl std::fmt::Debug for HdfsFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HdfsFile")
            .field("path", &self.path)
            .field("size", &self.size)
            .field("blocks", &self.blocks.len())
            .field("has_data", &self.data.is_some())
            .finish()
    }
}

impl HdfsFile {
    /// Downcast the content handle.
    pub fn data_as<T: Any + Send + Sync>(&self) -> Option<Arc<T>> {
        self.data.clone().and_then(|d| d.downcast::<T>().ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_hadoop_2x() {
        let c = HdfsConfig::default();
        assert_eq!(c.block_size, 128 << 20);
        assert_eq!(c.replication, 3);
    }

    #[test]
    fn block_locality() {
        let b = HdfsBlock {
            id: 0,
            offset: 0,
            len: 10,
            replicas: vec![NodeId(1), NodeId(3)],
        };
        assert!(b.is_local_to(NodeId(3)));
        assert!(!b.is_local_to(NodeId(0)));
    }
}
