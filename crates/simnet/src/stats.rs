//! Per-process and aggregate execution statistics.

use crate::time::SimDuration;

/// Counters accumulated by one simulated process.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProcStats {
    /// Messages sent.
    pub msgs_sent: u64,
    /// Logical payload bytes sent.
    pub bytes_sent: u64,
    /// Messages received.
    pub msgs_recvd: u64,
    /// Logical payload bytes received.
    pub bytes_recvd: u64,
    /// Bytes read from the local disk.
    pub disk_read_bytes: u64,
    /// Bytes written to the local disk.
    pub disk_write_bytes: u64,
    /// Virtual time spent in modeled computation.
    pub compute_time: SimDuration,
    /// Virtual time spent blocked waiting for messages.
    pub wait_time: SimDuration,
    /// Virtual time spent in disk operations (including queueing).
    pub disk_time: SimDuration,
    /// Fault events observed: injected message faults charged to this
    /// process plus recovery actions it recorded.
    pub fault_events: u64,
    /// Extra virtual delivery delay injected into this process's sends by
    /// the fault plan (drops, degraded links, partitions).
    pub fault_delay: SimDuration,
}

impl ProcStats {
    /// Merge another process's counters into this one (for aggregation).
    pub fn merge(&mut self, other: &ProcStats) {
        self.msgs_sent += other.msgs_sent;
        self.bytes_sent += other.bytes_sent;
        self.msgs_recvd += other.msgs_recvd;
        self.bytes_recvd += other.bytes_recvd;
        self.disk_read_bytes += other.disk_read_bytes;
        self.disk_write_bytes += other.disk_write_bytes;
        self.compute_time += other.compute_time;
        self.wait_time += other.wait_time;
        self.disk_time += other.disk_time;
        self.fault_events += other.fault_events;
        self.fault_delay += other.fault_delay;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_counters() {
        let mut a = ProcStats {
            msgs_sent: 1,
            bytes_sent: 10,
            compute_time: SimDuration::from_micros(5),
            ..Default::default()
        };
        let b = ProcStats {
            msgs_sent: 2,
            bytes_sent: 30,
            compute_time: SimDuration::from_micros(7),
            wait_time: SimDuration::from_nanos(3),
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.msgs_sent, 3);
        assert_eq!(a.bytes_sent, 40);
        assert_eq!(a.compute_time, SimDuration::from_micros(12));
        assert_eq!(a.wait_time, SimDuration::from_nanos(3));
    }

    #[test]
    fn merge_sums_fault_counters() {
        let mut a = ProcStats {
            fault_events: 3,
            fault_delay: SimDuration::from_micros(40),
            ..Default::default()
        };
        let b = ProcStats {
            fault_events: 5,
            fault_delay: SimDuration::from_nanos(250),
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.fault_events, 8);
        assert_eq!(
            a.fault_delay,
            SimDuration::from_micros(40) + SimDuration::from_nanos(250)
        );
        // Merging a default leaves fault counters untouched.
        a.merge(&ProcStats::default());
        assert_eq!(a.fault_events, 8);
    }

    #[test]
    fn merge_is_commutative_over_fault_counters() {
        let a = ProcStats {
            fault_events: 2,
            fault_delay: SimDuration::from_nanos(7),
            msgs_sent: 1,
            ..Default::default()
        };
        let b = ProcStats {
            fault_events: 9,
            fault_delay: SimDuration::from_micros(1),
            wait_time: SimDuration::from_nanos(11),
            ..Default::default()
        };
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
    }
}
