//! The dataset abstraction shared by every data-processing runtime.
//!
//! A dataset is backed by a (possibly huge) *logical* file. The
//! simulation charges I/O and CPU for logical bytes and records, but
//! materializes only a deterministic **sample**; `logical_scale` says how
//! many logical records each sample record represents. This is the
//! "content scale factor" substitution documented in DESIGN.md §2: an
//! experiment "reads 80 GB" — paying 80 GB of simulated disk/network
//! time — while parsing a tractable sample whose statistics match the
//! full dataset by construction.

use crate::cost::Work;

/// A source of typed records for a byte range of a logical file.
pub trait InputFormat: Send + Sync + 'static {
    /// Materialized record type.
    type Rec: Send + Sync + Clone + 'static;

    /// Sample records for the byte range `[offset, offset + len)`.
    /// Must be deterministic in `(offset, len)`.
    fn sample_records(&self, offset: u64, len: u64) -> Vec<Self::Rec>;

    /// Logical records represented by one sample record.
    fn logical_scale(&self) -> f64;

    /// CPU work to read + parse one *logical* record.
    fn record_work(&self) -> Work;
}
