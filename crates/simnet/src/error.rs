//! Error and diagnostic types surfaced by the engine.

use std::fmt;

/// Returned by [`crate::ProcCtx::recv_deadline`] when the virtual deadline
/// passes before a matching message is delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvTimeout;

impl fmt::Display for RecvTimeout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "virtual-time receive deadline expired")
    }
}

impl std::error::Error for RecvTimeout {}

/// Panic payload used when the engine detects that every live process is
/// blocked with no pending wakeup — a distributed deadlock. Processes
/// unwound for this reason carry this payload so that `Sim::run` can tell a
/// deadlock apart from an application panic and report the right error.
#[derive(Debug, Clone)]
pub struct DeadlockNote(pub String);

impl fmt::Display for DeadlockNote {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simulation deadlock: {}", self.0)
    }
}
