//! Deterministic hashing for shuffle partitioners.
//!
//! `std::collections::HashMap`'s default hasher is randomly seeded per
//! process, which would make hash-partitioned shuffles (Hadoop, Spark)
//! non-reproducible across runs. Every partitioner in the stack uses this
//! fixed-seed FNV-1a hasher instead.

use std::hash::{Hash, Hasher};

/// FNV-1a with a fixed seed. Fast, deterministic, good enough dispersion
/// for partitioning (not HashDoS-resistant — irrelevant in a simulator).
#[derive(Debug, Clone)]
pub struct DetHasher(u64);

impl Default for DetHasher {
    fn default() -> DetHasher {
        DetHasher(0xcbf29ce484222325)
    }
}

impl Hasher for DetHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
}

/// Hash any `Hash` value deterministically.
pub fn det_hash<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = DetHasher::default();
    value.hash(&mut h);
    h.finish()
}

/// Deterministic partition assignment: `hash(key) % parts`.
pub fn partition_of<T: Hash + ?Sized>(key: &T, parts: u32) -> u32 {
    (det_hash(key) % parts as u64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_across_calls() {
        assert_eq!(det_hash(&"hello"), det_hash(&"hello"));
        assert_eq!(det_hash(&42u64), det_hash(&42u64));
        assert_ne!(det_hash(&"hello"), det_hash(&"world"));
    }

    #[test]
    fn partitions_in_range_and_spread() {
        let parts = 7;
        let mut seen = vec![0u32; parts as usize];
        for k in 0..1000u64 {
            let p = partition_of(&k, parts);
            assert!(p < parts);
            seen[p as usize] += 1;
        }
        // Rough dispersion: no partition empty, none hogging >40%.
        for (i, c) in seen.iter().enumerate() {
            assert!(*c > 0, "partition {i} empty");
            assert!(*c < 400, "partition {i} has {c}");
        }
    }
}
