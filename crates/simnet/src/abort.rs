//! Structured aborts: the "fail loudly, fail parseably" contract.
//!
//! The fault-campaign explorer (`hpcbd-check`) asserts that every run
//! under an adversarial [`crate::FaultPlan`] either matches the
//! fault-free oracle or **terminates with a structured abort** — never
//! hangs, never silently corrupts. A plain `panic!` cannot be told apart
//! from a bug in the runtime, so runtimes that give up deliberately
//! (MPI's `MPI_Abort`, Spark exhausting its task-retry budget, a
//! MapReduce job with no surviving workers) raise a [`StructuredAbort`]
//! instead.
//!
//! The engine catches every process panic and forwards it as a string
//! (see `describe_panic` in the engine), so the abort renders itself
//! with a fixed machine-recognizable marker and can be re-parsed from
//! the message that [`crate::Sim::run`] re-panics with.

use std::any::Any;
use std::fmt;

/// Marker prefix every structured abort message carries. Kept stable:
/// the campaign runner and `SparkCluster::try_run`-style wrappers match
/// on it after the engine has stringified the panic payload.
pub const STRUCTURED_ABORT_MARKER: &str = "structured-abort";

/// A deliberate, structured job termination raised by a runtime when it
/// has exhausted its fault-tolerance options. Raise with
/// [`StructuredAbort::raise`]; recognize with
/// [`StructuredAbort::from_panic`] or [`StructuredAbort::from_message`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructuredAbort {
    /// Which runtime gave up ("mpi", "spark", "mapreduce", "shmem").
    pub runtime: String,
    /// Human-readable cause ("MPI_Abort: node n1 failed at ...",
    /// "task for partition 3 failed 5 times", ...).
    pub reason: String,
}

impl StructuredAbort {
    /// Build an abort record.
    pub fn new(runtime: impl Into<String>, reason: impl Into<String>) -> StructuredAbort {
        StructuredAbort {
            runtime: runtime.into(),
            reason: reason.into(),
        }
    }

    /// Terminate the calling simulated process with this abort. The
    /// engine stringifies the payload (keeping the marker) and
    /// [`crate::Sim::run`] re-panics with it, so a `catch_unwind` around
    /// the launcher sees a message [`StructuredAbort::from_message`]
    /// recognizes.
    pub fn raise(runtime: impl Into<String>, reason: impl Into<String>) -> ! {
        std::panic::panic_any(StructuredAbort::new(runtime, reason))
    }

    /// Recover the abort from any panic payload: the original typed
    /// payload (caught before the engine stringified it) or a string
    /// containing the rendered form.
    pub fn from_panic(payload: &(dyn Any + Send)) -> Option<StructuredAbort> {
        if let Some(sa) = payload.downcast_ref::<StructuredAbort>() {
            return Some(sa.clone());
        }
        if let Some(s) = payload.downcast_ref::<String>() {
            return StructuredAbort::from_message(s);
        }
        if let Some(s) = payload.downcast_ref::<&str>() {
            return StructuredAbort::from_message(s);
        }
        None
    }

    /// Parse the rendered form back out of a (possibly wrapped) panic
    /// message. Scans for the marker, so the engine's
    /// `"simulated process p3 panicked: ..."` prefix does not hide it.
    pub fn from_message(msg: &str) -> Option<StructuredAbort> {
        let start = msg.find(STRUCTURED_ABORT_MARKER)?;
        let rest = &msg[start + STRUCTURED_ABORT_MARKER.len()..];
        let rest = rest.strip_prefix('[')?;
        let close = rest.find("]: ")?;
        Some(StructuredAbort {
            runtime: rest[..close].to_string(),
            reason: rest[close + 3..].to_string(),
        })
    }
}

impl fmt::Display for StructuredAbort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{STRUCTURED_ABORT_MARKER}[{}]: {}",
            self.runtime, self.reason
        )
    }
}

impl std::error::Error for StructuredAbort {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_through_rendered_message() {
        let sa = StructuredAbort::new("mpi", "MPI_Abort: node n1 failed at 5ms");
        let rendered = sa.to_string();
        assert!(rendered.contains(STRUCTURED_ABORT_MARKER));
        assert_eq!(StructuredAbort::from_message(&rendered), Some(sa.clone()));
        // Wrapped the way the engine re-panics it.
        let wrapped = format!("simulated process p7 panicked: {rendered}");
        assert_eq!(StructuredAbort::from_message(&wrapped), Some(sa));
    }

    #[test]
    fn plain_messages_are_not_structured() {
        assert_eq!(StructuredAbort::from_message("index out of bounds"), None);
        assert_eq!(StructuredAbort::from_message(""), None);
    }

    #[test]
    fn from_panic_handles_typed_and_string_payloads() {
        let sa = StructuredAbort::new("spark", "retry budget exhausted");
        let typed: Box<dyn Any + Send> = Box::new(sa.clone());
        assert_eq!(
            StructuredAbort::from_panic(typed.as_ref()),
            Some(sa.clone())
        );
        let stringy: Box<dyn Any + Send> = Box::new(sa.to_string());
        assert_eq!(StructuredAbort::from_panic(stringy.as_ref()), Some(sa));
        let other: Box<dyn Any + Send> = Box::new(42u32);
        assert_eq!(StructuredAbort::from_panic(other.as_ref()), None);
    }

    #[test]
    fn engine_forwards_structured_aborts_through_run() {
        use crate::{NodeId, Sim, Topology};
        let caught = std::panic::catch_unwind(|| {
            let mut sim = Sim::new(Topology::comet(1));
            sim.spawn(NodeId(0), "aborter", |_ctx| {
                StructuredAbort::raise("mpi", "deliberate test abort");
            });
            sim.run();
        })
        .expect_err("the abort must unwind out of Sim::run");
        let sa = StructuredAbort::from_panic(caught.as_ref() as &(dyn Any + Send))
            .expect("Sim::run must preserve the structured-abort marker");
        assert_eq!(sa.runtime, "mpi");
        assert_eq!(sa.reason, "deliberate test abort");
    }
}
