//! Job-level launch hooks: the vocabulary a cluster scheduler uses to run
//! *foreign* work on pre-spawned processes.
//!
//! The engine's process table is fixed when [`crate::Sim::run`] starts, so
//! a multi-tenant scheduler cannot spawn a process per arriving job.
//! Instead it keeps a pool of long-lived *slot workers* and ships each
//! task to one of them as a closure inside a [`crate::Payload::Value`]
//! message. This module defines the pieces both sides share:
//!
//! * [`TaskClosure`] — the shippable task body. It receives the worker's
//!   own [`crate::ProcCtx`], so every cost the task charges (compute,
//!   disk, NIC) lands on the worker's node and contends with co-located
//!   tenants exactly like a real container would.
//! * [`LaunchEnv`] — what a dispatched task knows about its launch: job
//!   and wave ids, its index in the gang, and the pids/nodes of its
//!   gang peers, so runtime adapters can run collectives (rings,
//!   barriers, shuffles) between tasks of the same wave.
//! * [`JobChannel`] — a per-(job, wave) tag namespace carved out of the
//!   high tag space, so intra-gang messages never collide with the
//!   scheduler's control plane or with another tenant's traffic.
//!
//! Everything here is deterministic: a tag is a pure function of
//! `(job, wave, lane)`, and the launch environment is assembled by the
//! scheduler at a well-defined virtual time. No wall-clock state leaks
//! in, so sequential, parallel and speculative execution modes see
//! bit-identical job schedules.

use std::sync::Arc;

use crate::engine::{Pid, ProcCtx};
use crate::message::Tag;
use crate::topology::NodeId;

/// Tags at or above this value are reserved for job-private channels
/// allocated through [`JobChannel`]. Framework control tags (small
/// constants) must stay below it.
pub const JOB_TAG_BASE: Tag = 1 << 62;

/// A task body shipped from a scheduler to a slot worker. Bodies must be
/// pure functions of `(ctx, env)` — no host state — so replaying the
/// same schedule reproduces the same virtual timeline bit-for-bit.
pub type TaskClosure = Arc<dyn Fn(&mut ProcCtx, &LaunchEnv) + Send + Sync>;

/// A per-(job, wave) message-tag namespace.
///
/// Lane numbers let one wave multiplex several logical channels (e.g. a
/// reduction ring and a barrier) without collisions: the packed tag is
/// unique across jobs, waves and lanes, and always `>= JOB_TAG_BASE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobChannel {
    /// Scheduler-assigned job sequence number.
    pub job: u64,
    /// Wave (stage) index within the job.
    pub wave: u32,
}

impl JobChannel {
    /// The tag for `lane` of this (job, wave) channel.
    ///
    /// Packing: 38 bits of job, 14 bits of wave, 10 bits of lane. The
    /// asserts fire long before any realistic scenario reaches the
    /// limits (275 G jobs, 16 K waves, 1 K lanes).
    #[inline]
    pub fn tag(&self, lane: u32) -> Tag {
        assert!(self.job < (1 << 38), "job id out of tag range");
        assert!(self.wave < (1 << 14), "wave out of tag range");
        assert!(lane < (1 << 10), "lane out of tag range");
        JOB_TAG_BASE | (self.job << 24) | ((self.wave as u64) << 10) | lane as u64
    }
}

/// Everything a dispatched task knows about where and with whom it runs.
#[derive(Debug, Clone)]
pub struct LaunchEnv {
    /// Scheduler-assigned job sequence number.
    pub job: u64,
    /// Wave (stage) index this task belongs to.
    pub wave: u32,
    /// This task's index within its wave.
    pub index: u32,
    /// Pids of the workers running this wave, in task-index order. Empty
    /// for elastic (non-gang) waves, whose tasks never message peers.
    pub gang: Vec<Pid>,
    /// Nodes hosting each gang member, parallel to `gang`.
    pub gang_nodes: Vec<NodeId>,
    /// The wave's private tag namespace.
    pub channel: JobChannel,
}

impl LaunchEnv {
    /// Number of peers in the gang (0 for elastic tasks).
    #[inline]
    pub fn gang_size(&self) -> usize {
        self.gang.len()
    }

    /// Pid of gang member `i`.
    #[inline]
    pub fn peer(&self, i: usize) -> Pid {
        self.gang[i]
    }

    /// Node of gang member `i`.
    #[inline]
    pub fn peer_node(&self, i: usize) -> NodeId {
        self.gang_nodes[i]
    }

    /// The tag for `lane` of this wave's channel.
    #[inline]
    pub fn tag(&self, lane: u32) -> Tag {
        self.channel.tag(lane)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_unique_across_jobs_waves_and_lanes() {
        let mut seen = std::collections::HashSet::new();
        for job in [0u64, 1, 2, 1000, (1 << 38) - 1] {
            for wave in [0u32, 1, 37, (1 << 14) - 1] {
                for lane in [0u32, 1, 1023] {
                    let t = JobChannel { job, wave }.tag(lane);
                    assert!(t >= JOB_TAG_BASE);
                    assert!(seen.insert(t), "collision at {job}/{wave}/{lane}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "lane out of tag range")]
    fn oversized_lane_rejected() {
        let _ = JobChannel { job: 0, wave: 0 }.tag(1 << 10);
    }

    #[test]
    fn launch_env_accessors() {
        let env = LaunchEnv {
            job: 7,
            wave: 2,
            index: 1,
            gang: vec![Pid(4), Pid(9)],
            gang_nodes: vec![NodeId(0), NodeId(1)],
            channel: JobChannel { job: 7, wave: 2 },
        };
        assert_eq!(env.gang_size(), 2);
        assert_eq!(env.peer(1), Pid(9));
        assert_eq!(env.peer_node(0), NodeId(0));
        assert_eq!(env.tag(3), JobChannel { job: 7, wave: 2 }.tag(3));
    }
}
