//! Execution tracing: a per-process timeline of simulation-visible
//! operations.
//!
//! Disabled by default (zero overhead); enable with
//! [`crate::Sim::enable_tracing`] before `run`. The collected events can
//! be rendered as a text timeline or exported in the Chrome tracing
//! format (`chrome://tracing`, Perfetto) for visual inspection of, say,
//! a Spark stage's dispatch wave or an alltoall's NIC serialization.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::engine::Pid;
use crate::time::{SimDuration, SimTime};

/// What a trace event describes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// Modeled computation.
    Compute,
    /// Message handed to a transport.
    Send {
        /// Destination process.
        dst: Pid,
        /// Logical payload bytes.
        bytes: u64,
    },
    /// Message consumed (span covers blocking time).
    Recv {
        /// Source process.
        src: Pid,
        /// Logical payload bytes.
        bytes: u64,
    },
    /// Local disk read.
    DiskRead {
        /// Bytes read.
        bytes: u64,
    },
    /// Local disk write.
    DiskWrite {
        /// Bytes written.
        bytes: u64,
    },
    /// NFS server access.
    Nfs {
        /// Bytes moved.
        bytes: u64,
    },
    /// One-sided RDMA transfer initiated by this process.
    OneSided {
        /// Bytes moved.
        bytes: u64,
    },
    /// An injected fault or a runtime recovery action (zero-length
    /// instant; the payload carries the virtual-time cost).
    Fault(crate::faults::FaultEvent),
    /// A structured phase span opened with [`crate::ProcCtx::span_open`]:
    /// a nestable, runtime-level label ("pagerank/iter/3/shuffle",
    /// "mpi/allreduce") covering the primitive events it encloses.
    /// `depth` is the nesting level (0 = outermost) at which the span
    /// sat on its process's span stack.
    Phase {
        /// Hierarchical phase label; `/` separates levels.
        label: Arc<str>,
        /// Nesting depth on the opening process's span stack.
        depth: u32,
    },
}

impl EventKind {
    /// Short label for rendering.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::Compute => "compute",
            EventKind::Send { .. } => "send",
            EventKind::Recv { .. } => "recv",
            EventKind::DiskRead { .. } => "disk_read",
            EventKind::DiskWrite { .. } => "disk_write",
            EventKind::Nfs { .. } => "nfs",
            EventKind::OneSided { .. } => "rdma",
            EventKind::Fault(ev) => ev.label(),
            EventKind::Phase { .. } => "phase",
        }
    }
}

/// Escape a string for inclusion inside a JSON string literal: quotes,
/// backslashes and control characters become their escape sequences.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One timeline span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// The process the span belongs to.
    pub pid: Pid,
    /// Span start (virtual time).
    pub start: SimTime,
    /// Span end (virtual time).
    pub end: SimTime,
    /// What happened.
    pub kind: EventKind,
}

/// Collected events (append-only during a run).
#[derive(Default)]
pub struct Trace {
    events: Mutex<Vec<TraceEvent>>,
}

impl Trace {
    /// Fresh empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Record one span.
    pub fn record(&self, pid: Pid, start: SimTime, end: SimTime, kind: EventKind) {
        self.events.lock().push(TraceEvent {
            pid,
            start,
            end,
            kind,
        });
    }

    /// Merge a batch of events collected in a private per-process buffer.
    ///
    /// The engine buffers each process's events locally (one `Vec::push`
    /// per event, no shared lock on the hot path) and absorbs the buffer
    /// once at process finish. Because the export order is recovered
    /// entirely by the sort in [`Trace::sorted_events`], the wall-clock
    /// order in which buffers are absorbed is irrelevant: the result is
    /// byte-identical to recording every event through the shared lock.
    pub fn absorb(&self, mut batch: Vec<TraceEvent>) {
        self.events.lock().append(&mut batch);
    }

    /// Events in the deterministic export order.
    ///
    /// Under [`crate::Execution::Parallel`] events from different
    /// processes are appended in wall-clock order, which varies run to
    /// run — so the export order must come entirely from the sort key.
    /// The key `(start, pid, end, kind)` is a total order up to fully
    /// identical (hence interchangeable) events, making trace exports
    /// bit-identical across runs and execution modes.
    pub fn sorted_events(&self) -> Vec<TraceEvent> {
        fn kind_key(k: &EventKind) -> (u8, u64, u32) {
            match *k {
                EventKind::Compute => (0, 0, 0),
                EventKind::Send { dst, bytes } => (1, bytes, dst.0),
                EventKind::Recv { src, bytes } => (2, bytes, src.0),
                EventKind::DiskRead { bytes } => (3, bytes, 0),
                EventKind::DiskWrite { bytes } => (4, bytes, 0),
                EventKind::Nfs { bytes } => (5, bytes, 0),
                EventKind::OneSided { bytes } => (6, bytes, 0),
                // Distinct fault events must sort apart; identical ones
                // are interchangeable, so a content hash is a valid key.
                EventKind::Fault(ref ev) => (7, crate::hash::det_hash(ev), 0),
                // Same argument for phases: the label hash separates
                // distinct spans, `depth` orders a parent after the child
                // it exactly coincides with.
                EventKind::Phase { ref label, depth } => {
                    (8, crate::hash::det_hash(&**label), depth)
                }
            }
        }
        let mut v = self.events.lock().clone();
        v.sort_by_key(|e| (e.start, e.pid, e.end, kind_key(&e.kind)));
        v
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Chrome tracing format (a JSON array of complete events, `ph: "X"`)
    /// loadable in `chrome://tracing` or Perfetto. Timestamps in
    /// microseconds, one row per process.
    pub fn to_chrome_json(&self, proc_names: &[String]) -> String {
        let mut out = String::from("[\n");
        for (i, e) in self.sorted_events().iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let name = proc_names
                .get(e.pid.index())
                .map(|s| s.as_str())
                .unwrap_or("?");
            let detail = match &e.kind {
                EventKind::Send { dst, bytes } => format!("to p{} {} B", dst.0, bytes),
                EventKind::Recv { src, bytes } => format!("from p{} {} B", src.0, bytes),
                EventKind::DiskRead { bytes }
                | EventKind::DiskWrite { bytes }
                | EventKind::Nfs { bytes }
                | EventKind::OneSided { bytes } => format!("{bytes} B"),
                EventKind::Compute => String::new(),
                EventKind::Fault(ev) => format!("{ev:?}"),
                EventKind::Phase { depth, .. } => format!("depth {depth}"),
            };
            // Phase spans display under their own label so nested runtime
            // phases read as a flame graph above the primitive ops.
            let display: &str = match &e.kind {
                EventKind::Phase { label, .. } => label,
                _ => e.kind.label(),
            };
            out.push_str(&format!(
                "  {{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"ts\": {:.3}, \"dur\": {:.3}, \"pid\": 0, \"tid\": {}, \"args\": {{\"proc\": \"{}\", \"detail\": \"{}\"}}}}",
                json_escape(display),
                e.kind.label(),
                e.start.nanos() as f64 / 1e3,
                (e.end.nanos().saturating_sub(e.start.nanos())) as f64 / 1e3,
                e.pid.0,
                json_escape(name),
                json_escape(&detail)
            ));
        }
        out.push_str("\n]\n");
        out
    }

    /// A compact text timeline: one line per event, grouped by process,
    /// with a per-process fault summary (event count and total injected
    /// delay) after any process that observed faults.
    pub fn render_text(&self, proc_names: &[String]) -> String {
        fn flush_faults(out: &mut String, count: u64, delay: SimDuration) {
            if count > 0 {
                out.push_str(&format!(
                    "  -- faults: {count} event(s), +{delay} injected delay --\n"
                ));
            }
        }
        let mut out = String::new();
        let mut events = self.sorted_events();
        events.sort_by_key(|e| (e.pid, e.start));
        let mut current: Option<Pid> = None;
        let mut fault_count = 0u64;
        let mut fault_delay = SimDuration::ZERO;
        for e in events {
            if current != Some(e.pid) {
                flush_faults(&mut out, fault_count, fault_delay);
                fault_count = 0;
                fault_delay = SimDuration::ZERO;
                current = Some(e.pid);
                let name = proc_names
                    .get(e.pid.index())
                    .map(|s| s.as_str())
                    .unwrap_or("?");
                out.push_str(&format!("== {} ({}) ==\n", e.pid, name));
            }
            if let EventKind::Fault(ev) = &e.kind {
                fault_count += 1;
                fault_delay += ev.injected_delay();
            }
            out.push_str(&format!(
                "  [{} .. {}] {} {:?}\n",
                e.start,
                e.end,
                e.kind.label(),
                e.kind
            ));
        }
        flush_faults(&mut out, fault_count, fault_delay);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_sort() {
        let t = Trace::new();
        t.record(Pid(1), SimTime(20), SimTime(30), EventKind::Compute);
        t.record(
            Pid(0),
            SimTime(10),
            SimTime(15),
            EventKind::Send {
                dst: Pid(1),
                bytes: 64,
            },
        );
        let ev = t.sorted_events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].pid, Pid(0));
        assert_eq!(ev[1].kind, EventKind::Compute);
    }

    #[test]
    fn chrome_json_is_wellformed_enough() {
        let t = Trace::new();
        t.record(
            Pid(0),
            SimTime(1000),
            SimTime(3000),
            EventKind::DiskRead { bytes: 4096 },
        );
        let json = t.to_chrome_json(&["reader".to_string()]);
        assert!(json.starts_with("[\n"));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"dur\": 2.000"));
        assert!(json.contains("disk_read"));
        assert!(json.trim_end().ends_with(']'));
    }

    /// The per-process-buffer path must be observationally identical to
    /// the old globally-locked path: on a randomized workload, absorbing
    /// whole per-process buffers (in any wall-clock order) exports the
    /// exact event sequence that per-event `record` calls produce.
    mod merge_order {
        use super::*;
        use proptest::prelude::*;

        fn build_event(pid: u32, start: u64, len: u64, kind_sel: u8, bytes: u64) -> TraceEvent {
            let kind = match kind_sel % 7 {
                0 => EventKind::Compute,
                1 => EventKind::Send {
                    dst: Pid(pid ^ 1),
                    bytes,
                },
                2 => EventKind::Recv {
                    src: Pid(pid ^ 1),
                    bytes,
                },
                3 => EventKind::DiskRead { bytes },
                4 => EventKind::DiskWrite { bytes },
                5 => EventKind::Nfs { bytes },
                _ => EventKind::OneSided { bytes },
            };
            TraceEvent {
                pid: Pid(pid),
                start: SimTime(start),
                end: SimTime(start + len),
                kind,
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn absorbed_buffers_export_identically_to_global_records(
                // (pid, start, len, kind selector, bytes) per event; small
                // ranges force heavy collisions on (start, pid) so the
                // tie-breaking tail of the sort key is exercised.
                evs in collection::vec(
                    (0u32..6, 0u64..50, 0u64..5, 0u8..7, 0u64..4), 1..120),
                absorb_order_seed in 0u64..1000,
            ) {
                let events: Vec<TraceEvent> = evs
                    .iter()
                    .map(|&(p, s, l, k, b)| build_event(p, s, l, k, b))
                    .collect();

                // Reference: every event through the shared-lock path, in
                // generation order (an arbitrary wall-clock interleaving).
                let global = Trace::new();
                for e in &events {
                    global.record(e.pid, e.start, e.end, e.kind.clone());
                }

                // Candidate: split into per-process buffers (preserving
                // each process's own order, as the engine does), then
                // absorb the buffers in a seed-rotated process order to
                // model nondeterministic process-finish order.
                let buffered = Trace::new();
                let npids = 6;
                let mut bufs: Vec<Vec<TraceEvent>> = vec![Vec::new(); npids];
                for e in &events {
                    bufs[e.pid.index()].push(e.clone());
                }
                for i in 0..npids {
                    let p = (i + absorb_order_seed as usize) % npids;
                    buffered.absorb(std::mem::take(&mut bufs[p]));
                }

                prop_assert_eq!(global.len(), buffered.len());
                prop_assert_eq!(global.sorted_events(), buffered.sorted_events());
            }
        }
    }

    #[test]
    fn absorb_empty_batch_is_noop() {
        let t = Trace::new();
        t.absorb(Vec::new());
        assert!(t.is_empty());
        t.record(Pid(0), SimTime(1), SimTime(2), EventKind::Compute);
        t.absorb(Vec::new());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn chrome_json_escapes_special_characters() {
        let t = Trace::new();
        t.record(Pid(0), SimTime(0), SimTime(10), EventKind::Compute);
        t.record(
            Pid(0),
            SimTime(10),
            SimTime(20),
            EventKind::Phase {
                label: r#"odd"phase\label"#.into(),
                depth: 0,
            },
        );
        // A process name with a quote, a backslash and a control char must
        // not break the JSON document.
        let json = t.to_chrome_json(&["we\"ird\\name\tproc".to_string()]);
        assert!(json.contains(r#"we\"ird\\name\tproc"#), "json: {json}");
        assert!(json.contains(r#"odd\"phase\\label"#), "json: {json}");
        // Crude structural check: every quote in the output is either a
        // delimiter or escaped, so quotes balance to an even count after
        // removing escaped ones.
        let unescaped = json.replace("\\\\", "").replace("\\\"", "");
        assert_eq!(unescaped.matches('"').count() % 2, 0);
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape(r#"a"b"#), r#"a\"b"#);
        assert_eq!(json_escape(r"a\b"), r"a\\b");
        assert_eq!(json_escape("a\nb\x01"), "a\\nb\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn text_render_summarizes_faults_per_process() {
        use crate::faults::FaultEvent;
        let t = Trace::new();
        t.record(Pid(0), SimTime(0), SimTime(5), EventKind::Compute);
        t.record(
            Pid(0),
            SimTime(5),
            SimTime(5),
            EventKind::Fault(FaultEvent::MessageDropped {
                dst: Pid(1),
                bytes: 64,
                delay: SimDuration::from_nanos(700),
            }),
        );
        t.record(
            Pid(0),
            SimTime(6),
            SimTime(6),
            EventKind::Fault(FaultEvent::LinkDegraded {
                dst_node: crate::topology::NodeId(1),
                bytes: 64,
                delay: SimDuration::from_nanos(300),
            }),
        );
        t.record(Pid(1), SimTime(2), SimTime(9), EventKind::Compute);
        let txt = t.render_text(&["faulty".into(), "clean".into()]);
        assert!(
            txt.contains("-- faults: 2 event(s), +1.000us injected delay --"),
            "text: {txt}"
        );
        // The clean process gets no summary line.
        let after_clean = txt.split("== p1 (clean) ==").nth(1).unwrap();
        assert!(!after_clean.contains("faults:"), "text: {txt}");
    }

    #[test]
    fn phase_events_sort_with_parent_after_coincident_child() {
        let t = Trace::new();
        t.record(
            Pid(0),
            SimTime(0),
            SimTime(10),
            EventKind::Phase {
                label: "outer".into(),
                depth: 0,
            },
        );
        t.record(
            Pid(0),
            SimTime(0),
            SimTime(10),
            EventKind::Phase {
                label: "outer/inner".into(),
                depth: 1,
            },
        );
        let ev = t.sorted_events();
        // Equal (start, pid, end): depth breaks the tie only when the
        // label hashes collide, but the order must at least be stable.
        assert_eq!(ev.len(), 2);
        let again = t.sorted_events();
        assert_eq!(ev, again);
    }

    #[test]
    fn text_render_groups_by_process() {
        let t = Trace::new();
        t.record(Pid(0), SimTime(0), SimTime(5), EventKind::Compute);
        t.record(Pid(1), SimTime(2), SimTime(9), EventKind::Compute);
        let txt = t.render_text(&["a".into(), "b".into()]);
        assert!(txt.contains("== p0 (a) =="));
        assert!(txt.contains("== p1 (b) =="));
    }
}
