//! Deterministic fault injection: the [`FaultPlan`].
//!
//! A `FaultPlan` is a declarative, virtual-time-scheduled description of
//! everything that goes wrong during a run: node crashes at a `SimTime`,
//! straggler slowdowns over an interval, link degradation or partition
//! between node pairs, and per-message drops. It is installed once per
//! simulation ([`crate::Sim::set_fault_plan`]) and every layer — engine,
//! transports, storage, and all the mini-runtimes built on top — reads
//! the *same* plan, so an MPI job and a Spark job can be subjected to an
//! identical failure world and their recovery costs compared.
//!
//! # Determinism
//!
//! Nothing in this module consults the wall clock or OS randomness.
//!
//! * Crashes, stragglers, and link faults are pure functions of virtual
//!   time, which the engine already reproduces bit-for-bit across
//!   [`crate::Execution::Sequential`] and [`crate::Execution::Parallel`].
//! * Per-message drops cannot use a classic mutable RNG stream keyed by
//!   wall-clock send order — parallel mode would perturb it. Instead the
//!   engine assigns every inter-node message a sequence number from a
//!   counter incremented *inside the send commit window*. Commit windows
//!   are totally ordered identically in both execution modes, so message
//!   `k` is the same message in every run; [`FaultPlan::should_drop`]
//!   then hashes `(seed, k)` with the fixed-seed FNV-1a hasher
//!   ([`crate::det_hash`]) and drops when `hash % 1_000_000 < drop_ppm`.
//!   The drop decision is a pure function of the plan and the message's
//!   position in the committed total order.
//!
//! "Dropped" messages are modeled the way reliable transports (TCP,
//! RC verbs) surface loss: the payload is delivered late by the
//! retransmission delay rather than vanishing, so protocols above never
//! lose control messages outright but *do* see timeouts fire, which is
//! what exercises their failure detectors. Process failure (a crashed
//! node) is real loss: runtimes terminate their server loops at the
//! plan's crash time and everything hosted there is gone.

use crate::hash::det_hash;
use crate::time::{SimDuration, SimTime};
use crate::topology::NodeId;

/// What an active link fault does to traffic between a node pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkFault {
    /// Wire + latency cost inflated by this factor (> 1.0).
    Degrade(f64),
    /// No delivery until the fault interval ends; messages sent during
    /// the partition arrive at heal time plus the retransmit delay.
    Partition,
}

/// A scheduled link fault between two nodes (symmetric), active on
/// messages *sent* in `[from, until)`.
#[derive(Debug, Clone, Copy)]
struct LinkSpec {
    a: NodeId,
    b: NodeId,
    from: SimTime,
    until: SimTime,
    fault: LinkFault,
}

/// A scheduled straggler interval: `node` runs `factor`× slower on
/// compute and local-disk work started in `[from, until)`.
#[derive(Debug, Clone, Copy)]
struct StragglerSpec {
    node: NodeId,
    from: SimTime,
    until: SimTime,
    factor: f64,
}

/// A structured record of an injected fault or a runtime's recovery
/// action, carried in the execution trace
/// ([`crate::trace::EventKind::Fault`]) with its virtual timestamp.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum FaultEvent {
    /// A node reached its scheduled crash time; recorded by each server
    /// process on the node as it terminates.
    NodeCrash {
        /// The crashed node.
        node: NodeId,
    },
    /// An inter-node message was "dropped" and retransmitted.
    MessageDropped {
        /// Destination process of the affected message.
        dst: crate::engine::Pid,
        /// Logical payload bytes.
        bytes: u64,
        /// Extra delivery delay charged (the retransmission).
        delay: SimDuration,
    },
    /// A message crossed a degraded link.
    LinkDegraded {
        /// Destination node of the affected message.
        dst_node: NodeId,
        /// Logical payload bytes.
        bytes: u64,
        /// Extra delivery delay charged.
        delay: SimDuration,
    },
    /// A message was sent into a network partition and delivery stalled
    /// until the partition healed.
    LinkPartitioned {
        /// Destination node of the affected message.
        dst_node: NodeId,
        /// Logical payload bytes.
        bytes: u64,
        /// Extra delivery delay charged.
        delay: SimDuration,
    },
    /// A runtime performed a recovery action (task retry, speculative
    /// copy, re-replication, checkpoint restart, ...). `runtime` and
    /// `action` are short static labels; `detail` is an action-specific
    /// quantity (task id, block id, iteration, ...).
    Recovery {
        /// Which runtime recovered ("spark", "mapreduce", "hdfs", "mpi").
        runtime: &'static str,
        /// What it did ("task_retry", "re_replicate", "restart", ...).
        action: &'static str,
        /// Action-specific quantity.
        detail: u64,
    },
}

impl FaultEvent {
    /// Short label for trace rendering.
    pub fn label(&self) -> &'static str {
        match self {
            FaultEvent::NodeCrash { .. } => "node_crash",
            FaultEvent::MessageDropped { .. } => "msg_drop",
            FaultEvent::LinkDegraded { .. } => "link_degrade",
            FaultEvent::LinkPartitioned { .. } => "link_partition",
            FaultEvent::Recovery { .. } => "recovery",
        }
    }

    /// Extra virtual delay this event injected into the run (zero for
    /// events that carry no delay, like crashes and recovery actions).
    pub fn injected_delay(&self) -> SimDuration {
        match self {
            FaultEvent::MessageDropped { delay, .. }
            | FaultEvent::LinkDegraded { delay, .. }
            | FaultEvent::LinkPartitioned { delay, .. } => *delay,
            FaultEvent::NodeCrash { .. } | FaultEvent::Recovery { .. } => SimDuration::ZERO,
        }
    }
}

/// A deterministic, virtual-time-scheduled fault scenario. Built with
/// the chained constructors, installed with
/// [`crate::Sim::set_fault_plan`], and read by the engine and every
/// runtime. See the module docs for the determinism argument.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    drop_ppm: u32,
    retransmit: SimDuration,
    crashes: Vec<(NodeId, SimTime)>,
    stragglers: Vec<StragglerSpec>,
    links: Vec<LinkSpec>,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::new(0)
    }
}

impl FaultPlan {
    /// An empty plan. `seed` only matters once message drops are enabled.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_ppm: 0,
            retransmit: SimDuration::from_millis(200),
            crashes: Vec::new(),
            stragglers: Vec::new(),
            links: Vec::new(),
        }
    }

    /// Schedule `node` to fail permanently at virtual time `at`.
    ///
    /// Crashes are permanent, so a second crash for the same node is a
    /// contradiction in the plan (which one do failure detectors
    /// replay?) and is rejected.
    pub fn crash_node(mut self, node: NodeId, at: SimTime) -> FaultPlan {
        assert!(
            self.crash_time(node).is_none(),
            "duplicate crash scheduled for node n{}: crashes are permanent, \
             one crash time per node",
            node.0
        );
        self.crashes.push((node, at));
        self
    }

    /// Make `node` a straggler: compute and local-disk operations started
    /// in `[from, until)` take `factor`× as long (factor > 1.0 slows).
    pub fn slow_node(
        mut self,
        node: NodeId,
        from: SimTime,
        until: SimTime,
        factor: f64,
    ) -> FaultPlan {
        assert!(factor > 0.0, "straggler factor must be positive");
        assert!(
            from < until,
            "zero-duration straggler interval on node n{}: [{from}, {until}) is empty",
            node.0
        );
        self.stragglers.push(StragglerSpec {
            node,
            from,
            until,
            factor,
        });
        self
    }

    /// Degrade the (symmetric) link between `a` and `b`: messages sent in
    /// `[from, until)` pay `factor`× the wire + latency cost.
    pub fn degrade_link(
        mut self,
        a: NodeId,
        b: NodeId,
        from: SimTime,
        until: SimTime,
        factor: f64,
    ) -> FaultPlan {
        assert!(factor >= 1.0, "degrade factor must be >= 1.0");
        assert!(
            from < until,
            "zero-duration link-degrade interval n{}-n{}: [{from}, {until}) is empty",
            a.0,
            b.0
        );
        self.links.push(LinkSpec {
            a,
            b,
            from,
            until,
            fault: LinkFault::Degrade(factor),
        });
        self
    }

    /// Partition the (symmetric) link between `a` and `b` for
    /// `[from, until)`: messages sent inside the window are held until
    /// the partition heals, then delivered after the retransmit delay.
    pub fn partition_link(
        mut self,
        a: NodeId,
        b: NodeId,
        from: SimTime,
        until: SimTime,
    ) -> FaultPlan {
        assert!(
            from < until,
            "zero-duration partition interval n{}-n{}: [{from}, {until}) is empty",
            a.0,
            b.0
        );
        self.links.push(LinkSpec {
            a,
            b,
            from,
            until,
            fault: LinkFault::Partition,
        });
        self
    }

    /// Drop `ppm` out of every million inter-node messages (seeded
    /// counter-based hash; see module docs). Dropped messages are
    /// delivered late by the retransmit delay.
    pub fn drop_messages(mut self, ppm: u32) -> FaultPlan {
        assert!(
            ppm <= 1_000_000,
            "drop_messages rate is parts-per-million: {ppm} > 1_000_000"
        );
        self.drop_ppm = ppm;
        self
    }

    /// Override the retransmission delay charged to dropped and
    /// partition-held messages (default 200 ms — a TCP RTO-scale value).
    pub fn retransmit_delay(mut self, d: SimDuration) -> FaultPlan {
        self.retransmit = d;
        self
    }

    /// Whether the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.drop_ppm == 0
            && self.crashes.is_empty()
            && self.stragglers.is_empty()
            && self.links.is_empty()
    }

    /// Whether per-message drops are enabled (the engine only burns
    /// message sequence numbers when they are).
    pub fn has_drops(&self) -> bool {
        self.drop_ppm > 0
    }

    /// The retransmission delay charged to dropped / partition-held
    /// messages.
    pub fn retransmit(&self) -> SimDuration {
        self.retransmit
    }

    /// Earliest scheduled crash time of `node`, if any.
    pub fn crash_time(&self, node: NodeId) -> Option<SimTime> {
        self.crashes
            .iter()
            .filter(|&&(n, _)| n == node)
            .map(|&(_, t)| t)
            .min()
    }

    /// All scheduled crashes, as declared.
    pub fn crashes(&self) -> &[(NodeId, SimTime)] {
        &self.crashes
    }

    /// Crashes at or before `at` over the first `nodes` node ids, in
    /// deterministic `(time, node)` order — what an SPMD failure
    /// detector replays to agree on the failure history.
    pub fn crashes_through(&self, nodes: u32, at: SimTime) -> Vec<(NodeId, SimTime)> {
        let mut v: Vec<(NodeId, SimTime)> = (0..nodes)
            .filter_map(|n| self.crash_time(NodeId(n)).map(|t| (NodeId(n), t)))
            .filter(|&(_, t)| t <= at)
            .collect();
        v.sort_by_key(|&(n, t)| (t, n));
        v
    }

    /// Slowdown factor for work started on `node` at time `at` (product
    /// of all active straggler intervals; `1.0` when healthy).
    pub fn compute_factor(&self, node: NodeId, at: SimTime) -> f64 {
        let mut f = 1.0;
        for s in &self.stragglers {
            if s.node == node && at >= s.from && at < s.until {
                f *= s.factor;
            }
        }
        f
    }

    /// The link fault (if any) affecting a message sent between `a` and
    /// `b` at time `at`, with the fault's end time. Link specs are
    /// symmetric; the first matching spec wins.
    pub fn link_fault(&self, a: NodeId, b: NodeId, at: SimTime) -> Option<(LinkFault, SimTime)> {
        self.links
            .iter()
            .find(|l| {
                ((l.a == a && l.b == b) || (l.a == b && l.b == a)) && at >= l.from && at < l.until
            })
            .map(|l| (l.fault, l.until))
    }

    /// Deterministic drop decision for the inter-node message holding
    /// sequence number `counter` in the committed total order.
    pub fn should_drop(&self, counter: u64) -> bool {
        self.drop_ppm > 0 && det_hash(&(self.seed, counter)) % 1_000_000 < self.drop_ppm as u64
    }

    /// The drop seed (atoms + seed + retransmit rebuild an equal plan).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Decompose the plan into its indivisible injected faults, in
    /// declaration order. `atoms` / [`FaultPlan::with_atom`] are the
    /// campaign shrinker's interface: a violation is minimized by
    /// rebuilding plans from subsets of these atoms (seed and
    /// retransmit delay carry over unchanged) until no atom can be
    /// removed without the violation disappearing.
    pub fn atoms(&self) -> Vec<FaultAtom> {
        let mut v = Vec::new();
        for &(node, at) in &self.crashes {
            v.push(FaultAtom::Crash { node, at });
        }
        for s in &self.stragglers {
            v.push(FaultAtom::Straggler {
                node: s.node,
                from: s.from,
                until: s.until,
                factor: s.factor,
            });
        }
        for l in &self.links {
            v.push(match l.fault {
                LinkFault::Degrade(factor) => FaultAtom::Degrade {
                    a: l.a,
                    b: l.b,
                    from: l.from,
                    until: l.until,
                    factor,
                },
                LinkFault::Partition => FaultAtom::Partition {
                    a: l.a,
                    b: l.b,
                    from: l.from,
                    until: l.until,
                },
            });
        }
        if self.drop_ppm > 0 {
            v.push(FaultAtom::Drops { ppm: self.drop_ppm });
        }
        v
    }

    /// Add one atom back through the validating builder methods.
    pub fn with_atom(self, atom: FaultAtom) -> FaultPlan {
        match atom {
            FaultAtom::Crash { node, at } => self.crash_node(node, at),
            FaultAtom::Straggler {
                node,
                from,
                until,
                factor,
            } => self.slow_node(node, from, until, factor),
            FaultAtom::Degrade {
                a,
                b,
                from,
                until,
                factor,
            } => self.degrade_link(a, b, from, until, factor),
            FaultAtom::Partition { a, b, from, until } => self.partition_link(a, b, from, until),
            FaultAtom::Drops { ppm } => self.drop_messages(ppm),
        }
    }

    /// Rebuild a plan from a subset of atoms, keeping this plan's seed
    /// and retransmit delay (so drop decisions for surviving `Drops`
    /// atoms are unchanged).
    pub fn from_atoms(&self, atoms: &[FaultAtom]) -> FaultPlan {
        let mut p = FaultPlan::new(self.seed).retransmit_delay(self.retransmit);
        for a in atoms {
            p = p.with_atom(a.clone());
        }
        p
    }

    /// Human-readable one-line-per-atom rendering — the repro format
    /// the campaign runner writes for a shrunk minimal fault plan.
    pub fn describe(&self) -> String {
        let atoms = self.atoms();
        if atoms.is_empty() {
            return format!("fault plan (seed {}): empty\n", self.seed);
        }
        let mut s = format!(
            "fault plan (seed {}, retransmit {}):\n",
            self.seed, self.retransmit
        );
        for a in atoms {
            s.push_str(&format!("  {a}\n"));
        }
        s
    }
}

/// One indivisible injected fault — the unit the campaign shrinker adds
/// and removes. See [`FaultPlan::atoms`].
#[derive(Debug, Clone, PartialEq)]
pub enum FaultAtom {
    /// [`FaultPlan::crash_node`].
    Crash {
        /// Crashed node.
        node: NodeId,
        /// Crash time.
        at: SimTime,
    },
    /// [`FaultPlan::slow_node`].
    Straggler {
        /// Straggling node.
        node: NodeId,
        /// Interval start.
        from: SimTime,
        /// Interval end (exclusive).
        until: SimTime,
        /// Slowdown factor.
        factor: f64,
    },
    /// [`FaultPlan::degrade_link`].
    Degrade {
        /// One endpoint.
        a: NodeId,
        /// Other endpoint.
        b: NodeId,
        /// Interval start.
        from: SimTime,
        /// Interval end (exclusive).
        until: SimTime,
        /// Cost inflation factor.
        factor: f64,
    },
    /// [`FaultPlan::partition_link`].
    Partition {
        /// One endpoint.
        a: NodeId,
        /// Other endpoint.
        b: NodeId,
        /// Interval start.
        from: SimTime,
        /// Interval end (exclusive).
        until: SimTime,
    },
    /// [`FaultPlan::drop_messages`].
    Drops {
        /// Drop rate in parts-per-million.
        ppm: u32,
    },
}

impl std::fmt::Display for FaultAtom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultAtom::Crash { node, at } => write!(f, "crash n{} @ {at}", node.0),
            FaultAtom::Straggler {
                node,
                from,
                until,
                factor,
            } => write!(f, "straggler n{} x{factor} [{from}, {until})", node.0),
            FaultAtom::Degrade {
                a,
                b,
                from,
                until,
                factor,
            } => write!(f, "degrade n{}-n{} x{factor} [{from}, {until})", a.0, b.0),
            FaultAtom::Partition { a, b, from, until } => {
                write!(f, "partition n{}-n{} [{from}, {until})", a.0, b.0)
            }
            FaultAtom::Drops { ppm } => write!(f, "drop {ppm} ppm"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_hash_is_deterministic_and_seeded() {
        let plan = FaultPlan::new(42).drop_messages(50_000); // 5%
        let first: Vec<bool> = (0..4096).map(|k| plan.should_drop(k)).collect();
        let second: Vec<bool> = (0..4096).map(|k| plan.should_drop(k)).collect();
        assert_eq!(first, second, "same plan, same counters, same decisions");

        // The rate is roughly honored (5% of 4096 ≈ 205; allow wide slack).
        let drops = first.iter().filter(|&&d| d).count();
        assert!((50..400).contains(&drops), "5% of 4096 gave {drops} drops");

        // A different seed reshuffles which messages drop.
        let other = FaultPlan::new(43).drop_messages(50_000);
        let reshuffled: Vec<bool> = (0..4096).map(|k| other.should_drop(k)).collect();
        assert_ne!(first, reshuffled, "seed must change the drop set");

        // Zero rate never drops; full rate always drops.
        assert!(!FaultPlan::new(1).should_drop(7));
        let always = FaultPlan::new(1).drop_messages(1_000_000);
        assert!((0..1000).all(|k| always.should_drop(k)));
    }

    #[test]
    fn crash_and_straggler_queries() {
        let plan = FaultPlan::new(0)
            .crash_node(NodeId(2), SimTime(3_000))
            .crash_node(NodeId(1), SimTime(9_000))
            .slow_node(NodeId(0), SimTime(100), SimTime(200), 4.0);
        assert_eq!(plan.crash_time(NodeId(2)), Some(SimTime(3_000)));
        assert_eq!(plan.crash_time(NodeId(0)), None);
        assert_eq!(
            plan.crashes_through(3, SimTime(4_000)),
            vec![(NodeId(2), SimTime(3_000))]
        );
        assert_eq!(
            plan.crashes_through(3, SimTime(10_000)),
            vec![(NodeId(2), SimTime(3_000)), (NodeId(1), SimTime(9_000))]
        );
        assert_eq!(plan.compute_factor(NodeId(0), SimTime(150)), 4.0);
        assert_eq!(plan.compute_factor(NodeId(0), SimTime(200)), 1.0);
        assert_eq!(plan.compute_factor(NodeId(1), SimTime(150)), 1.0);
    }

    #[test]
    fn crash_exactly_at_the_query_time_is_visible() {
        // `crashes_through(_, at)` is inclusive: a detector polling at
        // exactly the crash instant must see the crash, and
        // `crash_time` must report it unchanged.
        let plan = FaultPlan::new(0).crash_node(NodeId(1), SimTime(5_000));
        assert_eq!(plan.crash_time(NodeId(1)), Some(SimTime(5_000)));
        assert_eq!(
            plan.crashes_through(2, SimTime(5_000)),
            vec![(NodeId(1), SimTime(5_000))]
        );
        assert_eq!(plan.crashes_through(2, SimTime(4_999)), vec![]);
        // A crash at time zero is legal and immediately visible.
        let early = FaultPlan::new(0).crash_node(NodeId(0), SimTime::ZERO);
        assert_eq!(
            early.crashes_through(1, SimTime::ZERO),
            vec![(NodeId(0), SimTime::ZERO)]
        );
    }

    #[test]
    #[should_panic(expected = "duplicate crash scheduled for node n2")]
    fn duplicate_crash_for_a_node_is_rejected() {
        let _ = FaultPlan::new(0)
            .crash_node(NodeId(2), SimTime(5_000))
            .crash_node(NodeId(2), SimTime(3_000));
    }

    #[test]
    #[should_panic(expected = "parts-per-million")]
    fn drop_rate_above_one_million_ppm_is_rejected() {
        let _ = FaultPlan::new(0).drop_messages(1_000_001);
    }

    #[test]
    #[should_panic(expected = "zero-duration straggler interval")]
    fn zero_duration_straggler_interval_is_rejected() {
        let _ = FaultPlan::new(0).slow_node(NodeId(0), SimTime(100), SimTime(100), 2.0);
    }

    #[test]
    #[should_panic(expected = "zero-duration partition interval")]
    fn zero_duration_partition_interval_is_rejected() {
        let _ = FaultPlan::new(0).partition_link(NodeId(0), NodeId(1), SimTime(50), SimTime(50));
    }

    #[test]
    #[should_panic(expected = "zero-duration link-degrade interval")]
    fn zero_duration_degrade_interval_is_rejected() {
        let _ = FaultPlan::new(0).degrade_link(NodeId(0), NodeId(1), SimTime(9), SimTime(9), 2.0);
    }

    #[test]
    fn atoms_roundtrip_through_the_builders() {
        let plan = FaultPlan::new(7)
            .retransmit_delay(SimDuration::from_millis(50))
            .crash_node(NodeId(2), SimTime(3_000))
            .slow_node(NodeId(0), SimTime(100), SimTime(200), 4.0)
            .degrade_link(NodeId(0), NodeId(1), SimTime(10), SimTime(20), 3.0)
            .partition_link(NodeId(1), NodeId(2), SimTime(0), SimTime(100))
            .drop_messages(50_000);
        let atoms = plan.atoms();
        assert_eq!(atoms.len(), 5);
        let rebuilt = plan.from_atoms(&atoms);
        assert_eq!(rebuilt.seed(), 7);
        assert_eq!(rebuilt.retransmit(), SimDuration::from_millis(50));
        assert_eq!(rebuilt.atoms(), atoms);
        assert_eq!(rebuilt.describe(), plan.describe());
        // Drop decisions survive the rebuild (same seed, same rate).
        assert!((0..512).all(|k| rebuilt.should_drop(k) == plan.should_drop(k)));
        // A subset rebuild keeps only the chosen atoms.
        let only_crash = plan.from_atoms(&atoms[..1]);
        assert_eq!(only_crash.atoms(), atoms[..1].to_vec());
        assert!(!only_crash.has_drops());
        // Empty subset is the empty plan.
        assert!(plan.from_atoms(&[]).is_empty());
    }

    #[test]
    fn link_faults_are_symmetric_and_windowed() {
        let plan = FaultPlan::new(0)
            .degrade_link(NodeId(0), NodeId(1), SimTime(10), SimTime(20), 3.0)
            .partition_link(NodeId(1), NodeId(2), SimTime(0), SimTime(100));
        assert!(matches!(
            plan.link_fault(NodeId(1), NodeId(0), SimTime(15)),
            Some((LinkFault::Degrade(f), SimTime(20))) if f == 3.0
        ));
        assert_eq!(plan.link_fault(NodeId(0), NodeId(1), SimTime(20)), None);
        assert_eq!(
            plan.link_fault(NodeId(2), NodeId(1), SimTime(50)),
            Some((LinkFault::Partition, SimTime(100)))
        );
        assert_eq!(plan.link_fault(NodeId(0), NodeId(2), SimTime(50)), None);
    }
}
