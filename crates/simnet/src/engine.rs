//! The conservative virtual-time execution engine.
//!
//! Every simulated process is a stackful coroutine ([`crate::coro`])
//! executing real Rust code — a few hundred KiB of lazily-paged stack
//! instead of the 2 MiB OS thread of earlier versions, which is what
//! lets a full SDSC Comet (1984 nodes x 24 ≈ 48k processes) run on a
//! laptop-class host. The engine enforces a single invariant:
//! **whenever a process performs a simulation-visible operation
//! (message send/delivery, disk reservation, sleep), it is the process
//! with the minimum virtual clock among all runnable processes, and
//! those commit windows are totally ordered.** The commit token is
//! passed through explicit per-process wakers: a wake stores the grant
//! in the process's slot and enqueues its coroutine on the worker
//! resume queue; parking is an in-process context switch, not a condvar
//! wait. The ready queue is a calendar bucket queue
//! ([`crate::queue::CalendarQueue`]) ordered by
//! `(virtual time, pid, generation)`, a key chosen to be independent of
//! the wall-clock order in which entries are pushed — which is what lets
//! the same queue drive both execution modes below bit-identically.
//!
//! Between simulation-visible operations a process runs arbitrary real
//! computation and advances its own clock locally ([`ProcCtx::compute`])
//! at zero synchronization cost; the conservative yield happens lazily
//! at the next visible operation.
//!
//! # Execution modes
//!
//! * [`Execution::Sequential`] (default): at most one process executes
//!   at a time. A process keeps the token from its commit window through
//!   the following compute segment, exactly like a classic baton-passing
//!   conservative simulator.
//! * [`Execution::Parallel`]: after a process finishes the *commit* part
//!   of a visible operation (its mutation of shared simulation state),
//!   the token is released immediately and the process runs its next
//!   compute segment concurrently with other released processes — real
//!   Rust work overlaps on real cores. Ordering is preserved by a
//!   conservative lookahead rule: a released process `q` whose last
//!   commit ended at virtual time `lb_q` can only re-enter the ready
//!   queue at `(t, q)` with `t >= lb_q`, so the scheduler may grant a
//!   queued entry `e` whenever `(e.time, e.pid) < (lb_q, q)` for every
//!   in-flight `q`. Under that rule every grant decision is identical to
//!   the sequential schedule, making virtual times, results, and stats
//!   **bit-identical** across modes (see DESIGN.md §"Parallel engine").
//! * [`Execution::Speculative`]: parallel, plus anti-message-free
//!   optimistic execution past the conservative frontier — sends are
//!   buffered and committed by the dispatcher at their order key while
//!   the sender keeps computing, and device reservations are predicted
//!   against a snapshot, validated at the order key, and rolled back +
//!   replayed when stale. Every shared mutation still lands in exact
//!   `(virtual time, pid, generation)` order, so results stay
//!   bit-identical with the other modes (see [`crate::speculate`] and
//!   DESIGN.md §14).
//!
//! # Host-performance structure (DESIGN.md §9)
//!
//! The hot path is sharded so unrelated processes never contend on one
//! lock:
//!
//! * `sched` — the scheduler state proper (ready queue, token, in-flight
//!   frontier, per-process scheduling cells). The only lock on the
//!   align/dispatch path, with an O(1)-amortized calendar queue behind
//!   it and a *self-grant fast path* that skips the queue and the
//!   condition-variable round-trip entirely when the aligning process is
//!   already globally minimal.
//! * per-process mail shards — mailbox, final stats and finish time.
//!   Mailbox scans (`recv` matching, `try_recv` polling) touch only the
//!   owning process's shard.
//! * per-node resource cells — NIC and scratch-disk next-free times; a
//!   separate cell for the shared NFS server. Device reservations touch
//!   only the initiating node's cell.
//!
//! Every mutation of sharded state still happens inside a commit window
//! (token held), so the total order of visible operations — and with it
//! bit-determinism — is untouched; the sharding only shortens and
//! de-contends the critical sections. Trace events are buffered in a
//! per-process `Vec` and merged at export ([`crate::trace::Trace`]), so
//! tracing costs one `Vec::push` per event on the hot path.

use std::any::Any;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::cost::Work;
use crate::error::{DeadlockNote, RecvTimeout};
use crate::fs::SimFs;
use crate::message::{MatchSpec, Message, Payload, Tag};
use crate::parallel::{default_execution, Execution};
use crate::queue::{CalendarQueue, OrderKey};
use crate::speculate::{
    SpecBug, SpecCell, SpecCheckpoint, SpecIo, SpecSend, SPEC_COOLDOWN_OPS, SPEC_THROTTLE_AFTER,
    SPEC_WINDOW,
};
use crate::stats::ProcStats;
use crate::time::{SimDuration, SimTime};
use crate::topology::{NodeId, Topology};
use crate::trace::TraceEvent;
use crate::transport::Transport;

/// Identifies a simulated process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub u32);

impl Pid {
    /// Index into the process table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Pid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Immutable world state shared by every process: the hardware topology
/// and the storage namespace.
pub struct World {
    /// Hardware description of the cluster.
    pub topology: Topology,
    /// Simulated storage namespace.
    pub fs: SimFs,
    /// NFS share characteristics (one server for the whole cluster).
    pub nfs: crate::topology::DiskSpec,
    /// Execution trace sink (empty unless `Sim::enable_tracing` ran).
    pub(crate) trace: std::sync::OnceLock<Arc<crate::trace::Trace>>,
    /// Installed fault plan (empty unless `Sim::set_fault_plan` ran).
    pub(crate) faults: std::sync::OnceLock<Arc<crate::faults::FaultPlan>>,
}

impl World {
    /// Build a world over a topology with an empty filesystem.
    pub fn new(topology: Topology) -> World {
        World {
            topology,
            fs: SimFs::new(),
            nfs: crate::topology::DiskSpec::nfs_share(),
            trace: std::sync::OnceLock::new(),
            faults: std::sync::OnceLock::new(),
        }
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&Arc<crate::faults::FaultPlan>> {
        self.faults.get()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WakeReason {
    Turn,
    Message,
    Timeout,
    Deadlock,
    /// A parked speculation validated clean at its order key: resume
    /// straight into the continuation, no token attached.
    SpecCommit,
    /// A parked speculation validated stale: the token is attached;
    /// roll back to the checkpoint and replay against live state.
    SpecReplay,
}

#[derive(Debug)]
enum Status {
    Ready,
    Running,
    Blocked {
        spec: MatchSpec,
        deadline: Option<SimTime>,
    },
    /// Parked on an optimistic device reservation awaiting validation
    /// at its order key (see [`crate::speculate`]).
    Speculating(SpecIo),
    Done,
}

/// Per-process waker slot. A wake stores the grant value; `parked`
/// tracks whether the process's coroutine is suspended and therefore
/// needs a resume-queue push to observe it (see [`Engine::wake`]).
struct Slot {
    m: Mutex<SlotState>,
}

struct SlotState {
    value: Option<(SimTime, WakeReason)>,
    /// True while the coroutine is suspended with no pending value — the
    /// state in which a wake must enqueue it for resumption. Starts true:
    /// a coroutine first runs when its first wake enqueues it.
    parked: bool,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            m: Mutex::new(SlotState {
                value: None,
                parked: true,
            }),
        }
    }

    /// Wait (in the coroutine sense) until a wake value is available.
    /// Must run inside this process's coroutine. If the value raced in
    /// between the caller's last visible operation and this park, it is
    /// consumed without suspending at all — the fast path that replaces
    /// the old condvar's wake-before-wait case.
    fn park(&self) -> (SimTime, WakeReason) {
        loop {
            if let Some(v) = self.m.lock().value.take() {
                return v;
            }
            crate::coro::suspend();
        }
    }
}

/// Scheduling cell of one process: the fields the dispatcher reads and
/// writes under the `sched` lock. Everything else a process owns lives in
/// its [`ProcShard`] (mail lock) or its `ProcCtx` (no lock at all).
struct SchedProc {
    clock: SimTime,
    gen: u64,
    status: Status,
    wake_reason: WakeReason,
    /// Buffered speculative sends, FIFO in issue (= order-key) order.
    /// Each has a matching ready-queue entry carrying its key; the
    /// dispatcher pops from the front when that entry reaches the
    /// global minimum. Bounded by [`SPEC_WINDOW`].
    spec: std::collections::VecDeque<SpecSend>,
}

/// Scheduler state: the single lock on the align/dispatch hot path.
struct Sched {
    procs: Vec<SchedProc>,
    runnable: CalendarQueue,
    live: usize,
    deadlocked: bool,
    /// Current commit-token holder: the one process allowed to mutate
    /// shared simulation state. `None` while the token is being passed.
    turn: Option<Pid>,
    /// Released processes still running a compute segment, with the
    /// lower bound on the virtual time of their next ready-queue entry
    /// (their clock at release; clocks only move forward).
    inflight: Vec<(Pid, SimTime)>,
    /// (pid, message, was_deadlock) for every unwound process.
    panics: Vec<PanicRecord>,
}

impl Sched {
    /// Push `pid` as runnable at `time`, invalidating any earlier entry
    /// for it. Caller holds the sched lock.
    fn push(&mut self, pid: Pid, time: SimTime) {
        crate::selfprof::host_count(crate::selfprof::HostOp::QueuePush);
        let p = &mut self.procs[pid.index()];
        p.gen += 1;
        let gen = p.gen;
        self.runnable.push(OrderKey { time, pid, gen });
    }
}

/// (pid, message, was_deadlock) of one unwound process.
type PanicRecord = (Pid, String, bool);

/// Per-process shard: everything a process owns that other processes
/// only touch inside commit windows. The mail lock is effectively
/// uncontended — the commit token already serializes every access — and
/// exists to satisfy `Sync`, not to arbitrate.
struct ProcShard {
    name: String,
    node: NodeId,
    slot: Slot,
    mail: Mutex<Mail>,
}

struct Mail {
    mailbox: std::collections::VecDeque<Message>,
    finish: Option<SimTime>,
    stats: ProcStats,
}

/// Per-node device state: next-free times of the node's NIC and scratch
/// disk. Touched only by processes on (or transferring from) this node,
/// inside commit windows.
struct NodeRes {
    nic_free: SimTime,
    disk_free: SimTime,
}

struct Engine {
    sched: Mutex<Sched>,
    shards: Vec<ProcShard>,
    nodes: Vec<Mutex<NodeRes>>,
    nfs_free: Mutex<SimTime>,
    /// Installed schedule perturbation (conformance harness only; see
    /// [`crate::perturb`]). Resolved once at `Sim::run`; `None` on
    /// normal runs, so the hot path pays one pointer test.
    perturb: Option<Arc<crate::perturb::Perturbation>>,
    /// Messages sent to processes that had already finished.
    /// Token-serialized; atomic only for `Sync`.
    dropped_msgs: AtomicU64,
    /// Sequence numbers handed to inter-node messages for the fault
    /// plan's drop hash. Incremented inside send commit windows, which
    /// are totally ordered identically in both execution modes — the
    /// basis of faulty-run bit-determinism. Only advanced when the plan
    /// actually enables drops.
    fault_seq: AtomicU64,
    /// Fault plan resolved at run start, for the dispatcher-side commit
    /// of buffered speculative sends (same handle the per-process
    /// contexts carry).
    faults: Option<Arc<crate::faults::FaultPlan>>,
    /// Whether tracing is active this run (dispatcher-side commits must
    /// record fault events too).
    tracing: bool,
    /// Trace events produced by dispatcher-side commits of buffered
    /// sends. Absorbed into the shared trace after the worker pool
    /// exits; `Trace::sorted_events` makes the append order irrelevant.
    commit_trace: Mutex<Vec<TraceEvent>>,
    /// Speculation outcome counters (see [`crate::speculate`]). Wall-
    /// clock-schedule-dependent: reported, never digested.
    spec_commits: AtomicU64,
    spec_rollbacks: AtomicU64,
    /// Planted speculation bug (harness self-tests), resolved at run
    /// start; `None` on normal runs.
    spec_bug: Option<SpecBug>,
    /// Telemetry sampling interval resolved at run start (`None` off).
    /// Per-process contexts copy it into a `bool`; the report carries it
    /// so the observability layer knows the tick (see
    /// [`crate::telemetry`]).
    telemetry_interval: Option<u64>,
    /// Metric points absorbed from per-process buffers at finish.
    /// Export order is recovered by [`crate::telemetry::sort_points`],
    /// so the wall-clock absorb order is irrelevant.
    metric_sink: Mutex<Vec<crate::telemetry::MetricPoint>>,
    /// Coroutines ready to be resumed by a worker. Lock order: `sched`
    /// and a slot lock may be held when taking this lock, never the
    /// reverse.
    resume: Mutex<ResumeQ>,
    resume_cv: Condvar,
}

/// The worker pool's resume queue: pids whose coroutines have a pending
/// wake value and await a worker.
struct ResumeQ {
    q: std::collections::VecDeque<Pid>,
    /// Set once the last process finished (or a worker spawn failed);
    /// workers exit when the queue is drained.
    shutdown: bool,
}

impl Engine {
    /// Hand `pid` a wake value, enqueuing its coroutine for resumption
    /// if it is parked. If the coroutine is currently running (e.g. it
    /// granted itself between pushing its ready-queue entry and
    /// parking), the value alone suffices: its park loop consumes it
    /// without suspending, or its worker re-enqueues it at switch-out.
    fn wake(&self, pid: Pid, clock: SimTime, reason: WakeReason) {
        crate::selfprof::host_count(crate::selfprof::HostOp::Wake);
        let mut s = self.shards[pid.index()].slot.m.lock();
        debug_assert!(s.value.is_none(), "second wake before {pid} parked");
        s.value = Some((clock, reason));
        if s.parked {
            s.parked = false;
            drop(s);
            self.enqueue_resume(pid);
        }
    }

    fn enqueue_resume(&self, pid: Pid) {
        let mut q = self.resume.lock();
        q.q.push_back(pid);
        self.resume_cv.notify_one();
    }
    /// Grant the commit token to the next runnable process if the
    /// conservative frontier allows it; otherwise detect completion or
    /// deadlock. Caller holds the sched lock. Idempotent: safe to call
    /// after any state change that might enable a grant.
    fn try_dispatch(&self, g: &mut Sched) {
        if g.turn.is_some() || g.deadlocked {
            return;
        }
        loop {
            let cand = match g.runnable.peek_min() {
                None => break,
                Some(e) => e,
            };
            // A buffered speculative send carries its own key; its gen is
            // *behind* the process's current gen counter (later pushes
            // bumped it), so the spec-queue head must be recognized
            // before the staleness test can discard it.
            let is_spec_send = g.procs[cand.pid.index()]
                .spec
                .front()
                .is_some_and(|s| s.key.gen == cand.gen);
            if !is_spec_send && g.procs[cand.pid.index()].gen != cand.gen {
                crate::selfprof::host_count(crate::selfprof::HostOp::QueuePop);
                g.runnable.pop_min(); // stale entry
                continue;
            }
            // Perturbation (conformance harness): defer this grant while
            // other processes are still in flight. The candidate remains
            // the minimum, so only the grant's wall-clock moment moves —
            // every in-flight process re-triggers dispatch when it aligns
            // or finishes, and holds stop once the in-flight set drains,
            // so progress (and the deadlock detector) is unaffected.
            if let Some(p) = &self.perturb {
                if !g.inflight.is_empty() && p.hold_grant(cand.time.nanos(), cand.pid.0, cand.gen) {
                    return;
                }
            }
            // Conservative lookahead frontier: an in-flight process q
            // re-enters the queue at some (t, q) with t >= lb_q. Grant
            // `cand` only if no such future entry could order before it;
            // otherwise wait for the in-flight set to drain. The
            // candidate's own in-flight entry is excluded: a process's
            // future re-entry always orders after its already-queued
            // entries (clocks are monotone), and a speculating sender is
            // in flight *while* its buffered keys sit in the queue.
            if g.inflight
                .iter()
                .any(|&(q, lb)| q != cand.pid && (cand.time, cand.pid) >= (lb, q))
            {
                return;
            }
            crate::selfprof::host_count(crate::selfprof::HostOp::QueuePop);
            g.runnable.pop_min();
            if is_spec_send {
                // Commit the buffered send at its key point and keep
                // walking: no token changes hands, so an entire run of
                // ready speculative effects streams out of one dispatch.
                let s = g.procs[cand.pid.index()]
                    .spec
                    .pop_front()
                    .expect("spec head checked above");
                self.commit_send(g, s);
                self.spec_commits.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let p = &mut g.procs[cand.pid.index()];
            match &p.status {
                Status::Ready => {
                    p.status = Status::Running;
                }
                Status::Blocked {
                    deadline: Some(_), ..
                } => {
                    // Generation matched, so this entry is the deadline
                    // pushed when blocking: the deadline fired before any
                    // matching message was delivered.
                    p.status = Status::Running;
                    p.wake_reason = WakeReason::Timeout;
                    p.clock = p.clock.max(cand.time);
                }
                Status::Speculating(io) => {
                    // Validate the parked speculation at its order key.
                    let io = *io;
                    if self.validate_and_apply(&io, cand.pid, cand.gen) {
                        // Clean: the prediction is now the committed
                        // truth. Resume the process into its continuation
                        // as in-flight compute — no token attached — and
                        // keep walking.
                        p.status = Status::Running;
                        p.wake_reason = WakeReason::SpecCommit;
                        p.clock = io.resume_clock;
                        g.inflight.push((cand.pid, io.resume_clock));
                        self.spec_commits.fetch_add(1, Ordering::Relaxed);
                        self.wake(cand.pid, io.resume_clock, WakeReason::SpecCommit);
                        continue;
                    }
                    // Stale: grant the token so the process can roll back
                    // and replay against live state. As token holder it
                    // is the frontier, so the replay cannot lose again.
                    p.status = Status::Running;
                    p.wake_reason = WakeReason::SpecReplay;
                    let clock = p.clock;
                    crate::selfprof::host_count(crate::selfprof::HostOp::TokenGrant);
                    crate::selfprof::host_count(crate::selfprof::HostOp::SpecReplay);
                    g.turn = Some(cand.pid);
                    self.spec_rollbacks.fetch_add(1, Ordering::Relaxed);
                    self.wake(cand.pid, clock, WakeReason::SpecReplay);
                    return;
                }
                _ => continue, // defensive: not grantable
            }
            crate::selfprof::host_count(crate::selfprof::HostOp::TokenGrant);
            g.turn = Some(cand.pid);
            let clock = p.clock;
            let reason = p.wake_reason;
            self.wake(cand.pid, clock, reason);
            return;
        }
        // Nothing grantable. With compute still in flight this is a
        // transient state; with nothing in flight and live processes it
        // is a distributed deadlock.
        if g.inflight.is_empty() && g.live > 0 && !g.deadlocked {
            g.deadlocked = true;
            let mut diag = String::new();
            for (i, p) in g.procs.iter().enumerate() {
                if let Status::Blocked { spec, .. } = &p.status {
                    diag.push_str(&format!(
                        "{} ({}) blocked at {} on recv {:?}; ",
                        Pid(i as u32),
                        self.shards[i].name,
                        p.clock,
                        spec
                    ));
                }
            }
            let mut doomed = Vec::new();
            for (i, p) in g.procs.iter_mut().enumerate() {
                // A Speculating process cannot exist here (its queue
                // entry is always processable once the in-flight set is
                // empty), but wake it defensively rather than hang.
                if matches!(p.status, Status::Blocked { .. } | Status::Speculating(_)) {
                    p.status = Status::Running;
                    p.wake_reason = WakeReason::Deadlock;
                    doomed.push((Pid(i as u32), p.clock));
                }
            }
            for (pid, clock) in doomed {
                self.wake(pid, clock, WakeReason::Deadlock);
            }
            // Stash the diagnostic through the panics channel.
            g.panics
                .push((Pid(u32::MAX), format!("deadlock: {diag}"), true));
        }
    }

    /// Deliver a message, waking the destination if it is blocked on a
    /// matching receive. Caller holds the sched lock (and the commit
    /// token).
    fn deliver(&self, g: &mut Sched, dst: Pid, msg: Message) {
        let arrival = msg.arrival;
        let p = &mut g.procs[dst.index()];
        match &p.status {
            Status::Done => {
                self.dropped_msgs.fetch_add(1, Ordering::Relaxed);
            }
            Status::Blocked { spec, .. } if spec.matches(&msg) => {
                p.status = Status::Ready;
                p.wake_reason = WakeReason::Message;
                // Clock stays at the block-time value; the receiver
                // recomputes its resume clock from the matched message.
                let t = p.clock.max(arrival);
                self.shards[dst.index()].mail.lock().mailbox.push_back(msg);
                Sched::push(g, dst, t);
            }
            _ => {
                self.shards[dst.index()].mail.lock().mailbox.push_back(msg);
            }
        }
    }

    /// Execute a buffered speculative send's shared effects at its order
    /// key: NIC reservation, fault decisions (including the drop-hash
    /// sequence number), delivery. Caller holds the sched lock and the
    /// key is the global minimum, so every decision lands at exactly the
    /// point of the global order where the sequential engine would have
    /// made it. Stats deltas go to the sender's mail shard (merged with
    /// its context stats at finish); trace events to `commit_trace`.
    fn commit_send(&self, g: &mut Sched, s: SpecSend) {
        crate::selfprof::host_count(crate::selfprof::HostOp::SendCommit);
        let src = s.key.pid;
        let src_node = self.shards[src.index()].node;
        let mut arrival = if s.same_node {
            s.sent_at + s.latency + s.wire
        } else {
            let mut nr = self.nodes[src_node.index()].lock();
            let start = s.sent_at.max(nr.nic_free);
            nr.nic_free = start + s.wire;
            start + s.wire + s.latency
        };
        if !s.same_node {
            if let Some(plan) = &self.faults {
                let evs = send_fault_adjust(
                    plan,
                    &self.fault_seq,
                    src_node,
                    s.dst_node,
                    s.dst,
                    s.sent_at,
                    s.bytes,
                    s.wire,
                    s.latency,
                    &mut arrival,
                );
                if !evs.is_empty() {
                    {
                        let mut m = self.shards[src.index()].mail.lock();
                        for &(_, extra) in &evs {
                            m.stats.fault_events += 1;
                            m.stats.fault_delay += extra;
                        }
                    }
                    if self.tracing {
                        let mut tb = self.commit_trace.lock();
                        for (ev, _) in evs {
                            tb.push(TraceEvent {
                                pid: src,
                                start: s.sent_at,
                                end: s.sent_at,
                                kind: crate::trace::EventKind::Fault(ev),
                            });
                        }
                    }
                }
            }
        }
        let msg = Message {
            src,
            dst: s.dst,
            tag: s.tag,
            bytes: s.bytes,
            payload: s.payload,
            sent_at: s.sent_at,
            arrival,
            recv_cost: s.recv_cost,
        };
        self.deliver(g, s.dst, msg);
    }

    /// Validate a parked speculation at its order key and, if clean,
    /// publish the predicted reservation. Sound because device next-free
    /// times are monotone: value equality with the snapshot implies the
    /// conservative engine would compute the identical reservation here.
    fn validate_and_apply(&self, io: &SpecIo, pid: Pid, gen: u64) -> bool {
        crate::selfprof::host_count(crate::selfprof::HostOp::SpecValidate);
        match self.spec_bug {
            // Planted unsound commit check (harness self-test): trust
            // the prediction — neither validate nor publish.
            Some(SpecBug::TrustStalePrediction) => return true,
            // Planted pessimal check: everything is "stale".
            Some(SpecBug::ForceReplay) => return false,
            None => {}
        }
        // Perturbation (conformance harness): treat a clean validation
        // as stale. Replay recomputes the identical outcome from live
        // state, so only the schedule moves, never a result.
        if let Some(p) = &self.perturb {
            if p.force_replay(pid.0, gen) {
                return false;
            }
        }
        match io.cell {
            SpecCell::Nic(n) => {
                let mut nr = self.nodes[n.index()].lock();
                if nr.nic_free == io.snap {
                    nr.nic_free = io.predicted_start + io.reserve;
                    true
                } else {
                    false
                }
            }
            SpecCell::Disk(n) => {
                let mut nr = self.nodes[n.index()].lock();
                if nr.disk_free == io.snap {
                    nr.disk_free = io.predicted_start + io.reserve;
                    true
                } else {
                    false
                }
            }
            SpecCell::Nfs => {
                let mut free = self.nfs_free.lock();
                if *free == io.snap {
                    *free = io.predicted_start + io.reserve;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Current value of a device next-free cell (speculation read-set).
    fn read_cell(&self, cell: SpecCell) -> SimTime {
        match cell {
            SpecCell::Nic(n) => self.nodes[n.index()].lock().nic_free,
            SpecCell::Disk(n) => self.nodes[n.index()].lock().disk_free,
            SpecCell::Nfs => *self.nfs_free.lock(),
        }
    }

    /// Reserve `dur` on a device cell starting no earlier than `at`;
    /// returns the completion time. The conservative reservation shared
    /// by the classic paths and speculative replays.
    fn reserve_cell(&self, cell: SpecCell, at: SimTime, dur: SimDuration) -> SimTime {
        match cell {
            SpecCell::Nic(n) => {
                let mut nr = self.nodes[n.index()].lock();
                let start = at.max(nr.nic_free);
                nr.nic_free = start + dur;
                start + dur
            }
            SpecCell::Disk(n) => {
                let mut nr = self.nodes[n.index()].lock();
                let start = at.max(nr.disk_free);
                nr.disk_free = start + dur;
                start + dur
            }
            SpecCell::Nfs => {
                let mut free = self.nfs_free.lock();
                let start = at.max(*free);
                *free = start + dur;
                start + dur
            }
        }
    }

    /// Commit every still-buffered speculative send, in key order, at
    /// shutdown (`live == 0`). Normal process finish drains its own
    /// buffer by aligning, but a panicking or deadlock-doomed process
    /// skips alignment; its sends must still commit so `dropped_msgs`
    /// matches the sequential engine, which executed them inline.
    fn drain_spec(&self, g: &mut Sched) {
        let mut pending: Vec<SpecSend> = Vec::new();
        for p in g.procs.iter_mut() {
            pending.extend(p.spec.drain(..));
        }
        pending.sort_by_key(|s| s.key);
        for s in pending {
            self.commit_send(g, s);
            self.spec_commits.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// The order-dependent part of a send's fault handling, shared by the
/// classic in-window path and the dispatcher-side commit of buffered
/// speculative sends: link degradation/partition delay and the
/// drop-hash decision (which consumes a `fault_seq` number). Adjusts
/// `arrival` in place and returns the fault events to attribute to the
/// sender, each with its delay for the stats counters.
#[allow(clippy::too_many_arguments)]
fn send_fault_adjust(
    plan: &crate::faults::FaultPlan,
    fault_seq: &AtomicU64,
    src_node: NodeId,
    dst_node: NodeId,
    dst: Pid,
    sent_at: SimTime,
    bytes: u64,
    wire: SimDuration,
    latency: SimDuration,
    arrival: &mut SimTime,
) -> Vec<(crate::faults::FaultEvent, SimDuration)> {
    use crate::faults::{FaultEvent, LinkFault};
    let mut evs = Vec::new();
    match plan.link_fault(src_node, dst_node, sent_at) {
        Some((LinkFault::Degrade(f), _)) => {
            let base = wire + latency;
            let extra = SimDuration::from_nanos((base.nanos() as f64 * (f - 1.0)).round() as u64);
            *arrival += extra;
            evs.push((
                FaultEvent::LinkDegraded {
                    dst_node,
                    bytes,
                    delay: extra,
                },
                extra,
            ));
        }
        Some((LinkFault::Partition, until)) => {
            let healed = until + plan.retransmit();
            if healed > *arrival {
                let extra = healed - *arrival;
                *arrival = healed;
                evs.push((
                    FaultEvent::LinkPartitioned {
                        dst_node,
                        bytes,
                        delay: extra,
                    },
                    extra,
                ));
            }
        }
        None => {}
    }
    if plan.has_drops() {
        let seq = fault_seq.fetch_add(1, Ordering::Relaxed);
        if plan.should_drop(seq) {
            let extra = plan.retransmit();
            *arrival += extra;
            evs.push((
                FaultEvent::MessageDropped {
                    dst,
                    bytes,
                    delay: extra,
                },
                extra,
            ));
        }
    }
    evs
}

/// Per-process context handed to each process closure. All simulation
/// operations go through this handle. Engine, trace and fault-plan
/// handles are resolved once at spawn — the hot path clones no `Arc`s.
pub struct ProcCtx {
    engine: Arc<Engine>,
    world: Arc<World>,
    proc_nodes: Arc<Vec<NodeId>>,
    pid: Pid,
    node: NodeId,
    clock: SimTime,
    stats: ProcStats,
    /// Preresolved fault plan (None on clean runs).
    faults: Option<Arc<crate::faults::FaultPlan>>,
    /// Whether tracing is enabled for this run (resolved at spawn).
    tracing: bool,
    /// Per-process append-only trace buffer; merged into the shared
    /// [`crate::trace::Trace`] once, at process finish.
    trace_buf: Vec<TraceEvent>,
    /// Open phase spans: `(label, open time)`, innermost last. Always
    /// empty when tracing is off (the span API is a no-op then).
    span_stack: Vec<(Arc<str>, SimTime)>,
    /// Whether telemetry is enabled for this run (resolved at spawn).
    telemetry: bool,
    /// Per-process append-only metric-point buffer; merged into the
    /// engine's sink at process finish. Always empty when telemetry is
    /// off (the metric API is a no-op then).
    metric_buf: Vec<crate::telemetry::MetricPoint>,
    /// In-flight cap above which `release_turn` keeps the token; `0`
    /// encodes sequential mode, making release a no-op without a lock.
    release_cap: usize,
    /// Schedule perturbation (conformance harness; `None` on normal
    /// runs) plus a per-process visible-op counter salting its
    /// decisions. The counter is deterministic per process, so a seed
    /// replays the same decision sequence.
    perturb: Option<Arc<crate::perturb::Perturbation>>,
    perturb_ops: u64,
    /// Whether this run executes speculatively (see [`crate::speculate`]).
    speculative: bool,
    /// Consecutive lost speculations; at [`SPEC_THROTTLE_AFTER`] the
    /// process enters cooldown.
    spec_fails: u32,
    /// Remaining operations to run conservatively before speculating
    /// again (rollback throttle).
    spec_cooldown: u32,
}

impl ProcCtx {
    /// This process's id.
    #[inline]
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The node this process is placed on.
    #[inline]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Node a process is placed on.
    #[inline]
    pub fn node_of(&self, pid: Pid) -> NodeId {
        self.proc_nodes[pid.index()]
    }

    /// Whether `pid` shares this process's node.
    #[inline]
    pub fn is_local(&self, pid: Pid) -> bool {
        self.node_of(pid) == self.node
    }

    /// Total number of processes in the simulation.
    #[inline]
    pub fn num_procs(&self) -> usize {
        self.proc_nodes.len()
    }

    /// Current virtual time of this process.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Shared world state (topology + filesystem).
    #[inline]
    pub fn world(&self) -> &World {
        &self.world
    }

    /// The simulated filesystem.
    #[inline]
    pub fn fs(&self) -> &SimFs {
        &self.world.fs
    }

    /// Statistics collected so far by this process.
    #[inline]
    pub fn stats(&self) -> &ProcStats {
        &self.stats
    }

    /// Append a span to this process's trace buffer (no locking; the
    /// buffer is merged into the shared trace at process finish).
    #[inline]
    fn trace_push(&mut self, start: SimTime, end: SimTime, kind: crate::trace::EventKind) {
        if self.tracing {
            self.trace_buf.push(TraceEvent {
                pid: self.pid,
                start,
                end,
                kind,
            });
        }
    }

    /// The simulation's fault plan, if one was installed.
    #[inline]
    pub fn fault_plan(&self) -> Option<&Arc<crate::faults::FaultPlan>> {
        self.faults.as_ref()
    }

    /// Whether tracing (and with it the span API) is active for this
    /// run. Lets callers skip building dynamic span labels when the
    /// result would be discarded.
    #[inline]
    pub fn tracing_enabled(&self) -> bool {
        self.tracing
    }

    /// Whether telemetry (and with it the metric API) is active for this
    /// run. Lets callers skip building dynamic label strings when the
    /// point would be discarded.
    #[inline]
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry
    }

    /// Append one metric point to this process's buffer (no locking; the
    /// buffer is merged into the engine's sink at process finish).
    #[inline]
    fn metric_push(
        &mut self,
        name: impl Into<Arc<str>>,
        labels: impl Into<Arc<str>>,
        op: crate::telemetry::MetricOp,
    ) {
        let seq = self.metric_buf.len() as u32;
        self.metric_buf.push(crate::telemetry::MetricPoint {
            time: self.clock,
            pid: self.pid,
            seq,
            name: name.into(),
            labels: labels.into(),
            op,
        });
    }

    /// Add `v` to the `(name, labels)` counter at the current virtual
    /// time. Counters saturate; they never wrap. No-op — including the
    /// argument conversions — when telemetry is off.
    #[inline]
    pub fn metric_counter(
        &mut self,
        name: impl Into<Arc<str>>,
        labels: impl Into<Arc<str>>,
        v: u64,
    ) {
        if self.telemetry {
            self.metric_push(name, labels, crate::telemetry::MetricOp::CounterAdd(v));
        }
    }

    /// Set the `(name, labels)` gauge to `v` at the current virtual
    /// time. No-op when telemetry is off.
    #[inline]
    pub fn metric_gauge(&mut self, name: impl Into<Arc<str>>, labels: impl Into<Arc<str>>, v: u64) {
        if self.telemetry {
            self.metric_push(name, labels, crate::telemetry::MetricOp::GaugeSet(v));
        }
    }

    /// Record one observation `v` into the `(name, labels)` fixed-bucket
    /// histogram at the current virtual time. No-op when telemetry is
    /// off.
    #[inline]
    pub fn metric_observe(
        &mut self,
        name: impl Into<Arc<str>>,
        labels: impl Into<Arc<str>>,
        v: u64,
    ) {
        if self.telemetry {
            self.metric_push(name, labels, crate::telemetry::MetricOp::Observe(v));
        }
    }

    /// Open a nestable phase span at the current virtual time. The span
    /// is recorded into the trace as a [`crate::trace::EventKind::Phase`]
    /// when the matching [`ProcCtx::span_close`] runs (any spans still
    /// open when the process finishes are closed at its finish time).
    /// No-op — including the label conversion — when tracing is off.
    #[inline]
    pub fn span_open(&mut self, label: impl Into<Arc<str>>) {
        if self.tracing {
            self.span_stack.push((label.into(), self.clock));
        }
    }

    /// Like [`ProcCtx::span_open`] but the label is built lazily, so
    /// `format!`-style labels cost nothing when tracing is off.
    #[inline]
    pub fn span_open_with(&mut self, label: impl FnOnce() -> String) {
        if self.tracing {
            self.span_stack.push((label().into(), self.clock));
        }
    }

    /// Close the innermost open phase span, recording it as a trace
    /// event covering `[open, now]`. No-op when tracing is off or no
    /// span is open.
    #[inline]
    pub fn span_close(&mut self) {
        if !self.tracing {
            return;
        }
        if let Some((label, start)) = self.span_stack.pop() {
            let depth = self.span_stack.len() as u32;
            let end = self.clock;
            self.trace_buf.push(TraceEvent {
                pid: self.pid,
                start,
                end,
                kind: crate::trace::EventKind::Phase { label, depth },
            });
        }
    }

    /// Run `f` inside a phase span: `span_open(label)`, `f`, `span_close`.
    #[inline]
    pub fn span<R>(&mut self, label: impl Into<Arc<str>>, f: impl FnOnce(&mut ProcCtx) -> R) -> R {
        self.span_open(label);
        let out = f(self);
        self.span_close();
        out
    }

    /// Close every span still open (process finish / unwind path).
    fn close_all_spans(&mut self) {
        while !self.span_stack.is_empty() {
            self.span_close();
        }
    }

    /// Earliest scheduled crash of this process's node, if any. Server
    /// loops use this as a receive deadline so everything hosted on the
    /// node dies at the plan's crash time.
    pub fn node_crash_time(&self) -> Option<SimTime> {
        self.crash_time_of(self.node)
    }

    /// Earliest scheduled crash of `node`, if any.
    pub fn crash_time_of(&self, node: NodeId) -> Option<SimTime> {
        self.faults.as_ref().and_then(|p| p.crash_time(node))
    }

    /// Record a structured fault / recovery event in the trace (a
    /// zero-length instant at the current virtual time) and count it in
    /// this process's statistics.
    pub fn record_fault(&mut self, ev: crate::faults::FaultEvent) {
        self.stats.fault_events += 1;
        let t = self.clock;
        self.trace_push(t, t, crate::trace::EventKind::Fault(ev));
    }

    /// Like [`ProcCtx::record_fault`], but stamped at an explicit
    /// virtual time — possibly in this process's past. Runtimes that
    /// *learn* of a fault after it happened (a checkpointer detecting a
    /// planned node crash at its next poll) use this so the trace shows
    /// the crash at the instant the node died, which is what recovery
    /// SLOs (time-to-detect, time-to-recover) are measured against.
    pub fn record_fault_at(&mut self, at: SimTime, ev: crate::faults::FaultEvent) {
        self.stats.fault_events += 1;
        self.trace_push(at, at, crate::trace::EventKind::Fault(ev));
    }

    /// Advance this process's clock by modeled computation: `work` executed
    /// at `runtime_factor` times native single-core cost (see
    /// [`crate::RuntimeClass`]). Purely local — no synchronization; in
    /// parallel mode this is the code that overlaps across cores.
    pub fn compute(&mut self, work: Work, runtime_factor: f64) {
        let mut d = {
            let spec = &self.world.topology.node(self.node).spec;
            work.duration_on(spec, runtime_factor)
        };
        if let Some(plan) = &self.faults {
            let f = plan.compute_factor(self.node, self.clock);
            if f != 1.0 {
                d = SimDuration::from_nanos((d.nanos() as f64 * f).round() as u64);
            }
        }
        let t0 = self.clock;
        self.clock += d;
        self.stats.compute_time += d;
        self.trace_push(t0, self.clock, crate::trace::EventKind::Compute);
    }

    /// Advance this process's clock by a raw duration (framework-internal
    /// overheads). Purely local.
    pub fn advance(&mut self, d: SimDuration) {
        self.clock += d;
        self.stats.compute_time += d;
    }

    /// Advance the clock and yield, letting earlier processes run.
    pub fn sleep(&mut self, d: SimDuration) {
        self.clock += d;
        // A sleep mutates nothing shared; speculatively it needs no
        // alignment at all — just raise our in-flight lower bound so
        // the frontier reflects the advanced clock.
        if self.speculative && self.spec_sleep() {
            return;
        }
        self.become_min();
        self.release_turn();
    }

    /// Whether the next operation may speculate: speculative mode, not
    /// in rollback cooldown, not perturbed onto the conservative path.
    fn spec_allowed(&mut self) -> bool {
        if !self.speculative {
            return false;
        }
        if self.spec_cooldown > 0 {
            self.spec_cooldown -= 1;
            return false;
        }
        if let Some(p) = &self.perturb {
            self.perturb_ops += 1;
            if p.defeat_speculation(self.pid.0, self.perturb_ops) {
                return false;
            }
        }
        true
    }

    /// Record a lost speculation; [`SPEC_THROTTLE_AFTER`] consecutive
    /// losses trigger a [`SPEC_COOLDOWN_OPS`]-operation conservative
    /// cooldown. Purely a waste cap: a replay runs under the token and
    /// always succeeds, so progress never depends on this.
    fn note_replay(&mut self) {
        self.spec_fails += 1;
        if self.spec_fails >= SPEC_THROTTLE_AFTER {
            self.spec_cooldown = SPEC_COOLDOWN_OPS;
            self.spec_fails = 0;
        }
    }

    /// Restore the per-process state a lost speculation dirtied.
    fn rollback(&mut self, ckpt: SpecCheckpoint) {
        self.clock = ckpt.clock;
        self.stats = ckpt.stats;
        self.trace_buf.truncate(ckpt.trace_len);
    }

    /// Speculative sleep: raise this process's in-flight lower bound to
    /// the advanced clock (enabling grants the stale bound blocked) and
    /// keep running. Returns `false` when this process holds a kept
    /// token — then the classic align path must pass it on.
    fn spec_sleep(&mut self) -> bool {
        let me = self.pid;
        let mut g = self.engine.sched.lock();
        if g.deadlocked {
            drop(g);
            panic::panic_any(DeadlockNote(format!(
                "{me} sleeping during deadlock teardown"
            )));
        }
        if g.turn == Some(me) {
            return false;
        }
        match g.inflight.iter_mut().find(|e| e.0 == me) {
            Some(e) => e.1 = self.clock,
            None => g.inflight.push((me, self.clock)),
        }
        self.engine.try_dispatch(&mut g);
        true
    }

    /// Align: enter the ready queue at the current clock and wait for the
    /// commit token, i.e. until this process is the minimum-time runnable
    /// process. Returns `false` if the simulation is tearing down from a
    /// deadlock (the caller must not touch shared state).
    fn align_quiet(&mut self) -> bool {
        let me = self.pid;
        // Perturbation (conformance harness): jitter the wall-clock
        // approach to the scheduler lock and sometimes force the slow
        // (queue + condvar) path even when the fast path would apply.
        // Both choices are inside the frontier rule's admitted set, so
        // virtual-time results cannot change.
        let mut force_slow_path = false;
        if let Some(p) = &self.perturb {
            self.perturb_ops += 1;
            p.jitter(me.0, self.perturb_ops);
            force_slow_path = p.defeat_fast_path(me.0, self.perturb_ops);
        }
        {
            let mut g = self.engine.sched.lock();
            if g.deadlocked {
                return false;
            }
            if g.turn == Some(me) {
                // Sequential mode (or a kept token): pass it through the
                // queue so the globally minimal process gets it next.
                g.turn = None;
            }
            g.inflight.retain(|&(q, _)| q != me);
            // Self-grant fast path: if this process would be the next
            // grant anyway — the token is free, every queued entry orders
            // after `(clock, me)`, and no in-flight frontier blocks us —
            // take the token directly, skipping the queue round-trip and
            // the condvar park/wake entirely. The grant decision is the
            // same one `try_dispatch` would make for our pushed entry, so
            // the schedule (and every virtual-time result) is unchanged.
            if g.turn.is_none() && !force_slow_path {
                // Clean stale heads so the comparison sees a live entry.
                // Buffered speculative sends carry a behind-the-counter
                // gen on purpose; they are live, never stale (and any of
                // ours at the head correctly defeats the fast path: they
                // must commit before we may take the token).
                while let Some(k) = g.runnable.peek_min() {
                    let sp = &g.procs[k.pid.index()];
                    let is_spec = sp.spec.front().is_some_and(|s| s.key.gen == k.gen);
                    if !is_spec && sp.gen != k.gen {
                        g.runnable.pop_min();
                    } else {
                        break;
                    }
                }
                let head_after_me = g
                    .runnable
                    .peek_min()
                    .is_none_or(|k| (k.time, k.pid) > (self.clock, me));
                if head_after_me
                    && !g
                        .inflight
                        .iter()
                        .any(|&(q, lb)| (self.clock, me) >= (lb, q))
                {
                    let p = &mut g.procs[me.index()];
                    p.clock = self.clock;
                    p.status = Status::Running;
                    p.wake_reason = WakeReason::Turn;
                    g.turn = Some(me);
                    return true;
                }
            }
            {
                let p = &mut g.procs[me.index()];
                p.clock = self.clock;
                p.status = Status::Ready;
                p.wake_reason = WakeReason::Turn;
            }
            Sched::push(&mut g, me, self.clock);
            self.engine.try_dispatch(&mut g);
        }
        let (clock, reason) = self.engine.shards[me.index()].slot.park();
        self.clock = clock;
        reason != WakeReason::Deadlock
    }

    /// Yield until this process is the minimum-time runnable process and
    /// holds the commit token. All operations with global effects call
    /// this first, which is what makes resource-reservation order
    /// independent of OS scheduling.
    fn become_min(&mut self) {
        if !self.align_quiet() {
            panic::panic_any(DeadlockNote(format!(
                "{} woken during deadlock teardown",
                self.pid
            )));
        }
    }

    /// Release the commit token after a visible operation's shared-state
    /// mutation, entering the in-flight set so the next compute segment
    /// can overlap with other processes. No-op in sequential mode (the
    /// token is kept until the next [`ProcCtx::become_min`]) — and the
    /// no-op is lock-free: `release_cap == 0` encodes sequential.
    fn release_turn(&mut self) {
        if self.release_cap == 0 {
            return; // sequential: keep the token; the next align passes it
        }
        // Perturbation (conformance harness): sometimes keep the token
        // through the next compute segment — exactly the legal behaviour
        // the engine already exhibits when the in-flight cap is reached.
        if let Some(p) = &self.perturb {
            self.perturb_ops += 1;
            if p.keep_token(self.pid.0, self.perturb_ops) {
                return;
            }
        }
        let mut g = self.engine.sched.lock();
        if g.deadlocked {
            return;
        }
        debug_assert_eq!(g.turn, Some(self.pid), "token released by non-holder");
        if g.inflight.len() >= self.release_cap {
            return; // keep the token; the next align passes it on
        }
        crate::selfprof::host_count(crate::selfprof::HostOp::TokenRelease);
        g.turn = None;
        g.inflight.push((self.pid, self.clock));
        self.engine.try_dispatch(&mut g);
    }

    /// Run `f` inside this process's next commit window: at a
    /// deterministic point in the global visible-operation order, with
    /// the commit token held. Frameworks use this to order side effects
    /// on state shared *outside* the engine (symmetric heaps, RMA
    /// windows) so parallel execution cannot reorder them.
    pub fn ordered<R>(&mut self, f: impl FnOnce() -> R) -> R {
        self.become_min();
        let out = f();
        self.release_turn();
        out
    }

    /// Send a message. The sender is charged the transport's endpoint CPU
    /// cost; the payload then occupies the sender NIC (serialized with
    /// other transfers from this node) and arrives `latency` later.
    /// Intra-node messages skip the NIC.
    pub fn send(
        &mut self,
        dst: Pid,
        tag: Tag,
        bytes: u64,
        payload: Payload,
        transport: &Transport,
    ) {
        let cpu = transport.endpoint_cpu(transport.send_overhead, bytes);
        let t0 = self.clock;
        self.clock += cpu;
        self.stats.compute_time += cpu;
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += bytes;
        self.trace_push(t0, self.clock, crate::trace::EventKind::Send { dst, bytes });
        // Buffer-and-go speculation: everything past this point depends
        // only on state at the send's order key, never on this
        // process's continuation — so the scheduler can execute it
        // there while we keep computing.
        let payload = if self.spec_allowed() {
            match self.try_buffer_send(dst, tag, bytes, payload, transport) {
                Ok(()) => return,
                Err(payload) => payload, // window full / token kept
            }
        } else {
            payload
        };
        self.become_min();
        self.send_commit(dst, tag, bytes, payload, transport);
    }

    /// Buffer a send for dispatcher-side commit at its order key.
    /// Returns the payload when buffering is not possible (speculation
    /// window full, or this process holds a kept token and is already
    /// in a commit window) — the caller then sends conservatively,
    /// which drains the buffer first by aligning.
    fn try_buffer_send(
        &mut self,
        dst: Pid,
        tag: Tag,
        bytes: u64,
        payload: Payload,
        transport: &Transport,
    ) -> Result<(), Payload> {
        let me = self.pid;
        let sent_at = self.clock;
        let dst_node = self.proc_nodes[dst.index()];
        let mut g = self.engine.sched.lock();
        if g.deadlocked {
            drop(g);
            panic::panic_any(DeadlockNote(format!(
                "{me} sending during deadlock teardown"
            )));
        }
        if g.turn == Some(me) || g.procs[me.index()].spec.len() >= SPEC_WINDOW {
            return Err(payload);
        }
        // Our buffered keys protect themselves by sitting in the ready
        // queue, so the in-flight lower bound only has to cover *future*
        // entries — raise it to the current clock, which both tightens
        // the frontier for everyone else and covers this send's key.
        match g.inflight.iter_mut().find(|e| e.0 == me) {
            Some(e) => e.1 = sent_at,
            None => g.inflight.push((me, sent_at)),
        }
        let p = &mut g.procs[me.index()];
        p.gen += 1;
        let key = OrderKey {
            time: sent_at,
            pid: me,
            gen: p.gen,
        };
        p.spec.push_back(SpecSend {
            key,
            dst,
            dst_node,
            same_node: dst_node == self.node,
            tag,
            bytes,
            payload,
            sent_at,
            recv_cost: transport.endpoint_cpu(transport.recv_overhead, bytes),
            wire: transport.wire_time(bytes),
            latency: transport.latency,
        });
        g.runnable.push(key);
        self.engine.try_dispatch(&mut g);
        Ok(())
    }

    /// The commit-window part of a send (token held): NIC reservation,
    /// fault decisions, delivery, token release.
    fn send_commit(
        &mut self,
        dst: Pid,
        tag: Tag,
        bytes: u64,
        payload: Payload,
        transport: &Transport,
    ) {
        let sent_at = self.clock;
        let dst_node = self.proc_nodes[dst.index()];
        let same_node = dst_node == self.node;
        let wire = transport.wire_time(bytes);
        let mut arrival = if same_node {
            sent_at + transport.latency + wire
        } else {
            let mut nr = self.engine.nodes[self.node.index()].lock();
            let start = sent_at.max(nr.nic_free);
            nr.nic_free = start + wire;
            start + wire + transport.latency
        };
        // Fault injection, inside the commit window so every decision
        // (and the drop-hash sequence number) lands at a deterministic
        // point of the global order. Intra-node loopback is immune.
        if !same_node {
            if let Some(plan) = self.faults.clone() {
                for (ev, extra) in send_fault_adjust(
                    &plan,
                    &self.engine.fault_seq,
                    self.node,
                    dst_node,
                    dst,
                    sent_at,
                    bytes,
                    wire,
                    transport.latency,
                    &mut arrival,
                ) {
                    self.stats.fault_events += 1;
                    self.stats.fault_delay += extra;
                    self.trace_push(sent_at, sent_at, crate::trace::EventKind::Fault(ev));
                }
            }
        }
        let recv_cost = transport.endpoint_cpu(transport.recv_overhead, bytes);
        let msg = Message {
            src: self.pid,
            dst,
            tag,
            bytes,
            payload,
            sent_at,
            arrival,
            recv_cost,
        };
        {
            let mut g = self.engine.sched.lock();
            self.engine.deliver(&mut g, dst, msg);
        }
        self.release_turn();
    }

    fn take_match(&mut self, spec: MatchSpec) -> Option<Message> {
        let mut m = self.engine.shards[self.pid.index()].mail.lock();
        let best = m
            .mailbox
            .iter()
            .enumerate()
            .filter(|(_, m)| spec.matches(m))
            .min_by_key(|(i, m)| (m.arrival, *i))
            .map(|(i, _)| i);
        best.and_then(|i| m.mailbox.remove(i))
    }

    fn finish_recv(&mut self, msg: Message, blocked_since: SimTime) -> Message {
        let resume = self.clock.max(msg.arrival);
        self.stats.wait_time += resume - blocked_since;
        self.clock = resume + msg.recv_cost;
        self.stats.compute_time += msg.recv_cost;
        self.stats.msgs_recvd += 1;
        self.stats.bytes_recvd += msg.bytes;
        self.trace_push(
            blocked_since,
            self.clock,
            crate::trace::EventKind::Recv {
                src: msg.src,
                bytes: msg.bytes,
            },
        );
        msg
    }

    /// Receive the earliest-arriving message matching `spec`, blocking in
    /// virtual time until one is delivered. Panics (unwinding the whole
    /// simulation with a diagnostic) if no such message can ever arrive.
    pub fn recv(&mut self, spec: MatchSpec) -> Message {
        self.recv_deadline(spec, None)
            .expect("recv without deadline cannot time out")
    }

    /// Like [`ProcCtx::recv`] but gives up at virtual `deadline`.
    pub fn recv_timeout(
        &mut self,
        spec: MatchSpec,
        timeout: SimDuration,
    ) -> Result<Message, RecvTimeout> {
        let deadline = self.clock + timeout;
        self.recv_deadline(spec, Some(deadline))
    }

    /// Like [`ProcCtx::recv`] but gives up at an absolute virtual deadline.
    pub fn recv_deadline(
        &mut self,
        spec: MatchSpec,
        deadline: Option<SimTime>,
    ) -> Result<Message, RecvTimeout> {
        let blocked_since = self.clock;
        // Align first so the mailbox is inspected at a deterministic
        // point of the visible-operation order (identical in both
        // execution modes).
        self.become_min();
        if let Some(m) = self.take_match(spec) {
            let m = self.finish_recv(m, blocked_since);
            self.release_turn();
            return Ok(m);
        }
        // Block, handing the token back.
        let me = self.pid;
        {
            let mut g = self.engine.sched.lock();
            if g.deadlocked {
                drop(g);
                panic::panic_any(DeadlockNote(format!(
                    "{} blocked during deadlock teardown",
                    self.pid
                )));
            }
            debug_assert_eq!(g.turn, Some(me), "blocking without the token");
            g.turn = None;
            {
                let p = &mut g.procs[me.index()];
                p.clock = self.clock;
                p.status = Status::Blocked { spec, deadline };
            }
            if let Some(d) = deadline {
                Sched::push(&mut g, me, d.max(self.clock));
            } else {
                // No queue entry: only a matching delivery can wake us.
                g.procs[me.index()].gen += 1;
            }
            self.engine.try_dispatch(&mut g);
        }
        let (clock, reason) = self.engine.shards[me.index()].slot.park();
        self.clock = clock;
        match reason {
            WakeReason::Message => {
                let m = self
                    .take_match(spec)
                    .expect("woken for message but no match in mailbox");
                let m = self.finish_recv(m, blocked_since);
                self.release_turn();
                Ok(m)
            }
            WakeReason::Timeout => {
                self.stats.wait_time += self.clock - blocked_since;
                self.release_turn();
                Err(RecvTimeout)
            }
            WakeReason::Deadlock => panic::panic_any(DeadlockNote(format!(
                "{} blocked on {:?} forever",
                self.pid, spec
            ))),
            WakeReason::Turn | WakeReason::SpecCommit | WakeReason::SpecReplay => {
                unreachable!("blocked process woken with {reason:?}")
            }
        }
    }

    /// Non-blocking receive: a matching message whose arrival time is not
    /// after this process's current clock.
    pub fn try_recv(&mut self, spec: MatchSpec) -> Option<Message> {
        // Align so the arrival check happens at a deterministic point.
        self.become_min();
        let now = self.clock;
        let taken = {
            let mut m = self.engine.shards[self.pid.index()].mail.lock();
            let best = m
                .mailbox
                .iter()
                .enumerate()
                .filter(|(_, m)| spec.matches(m) && m.arrival <= now)
                .min_by_key(|(i, m)| (m.arrival, *i))
                .map(|(i, _)| i);
            best.and_then(|i| m.mailbox.remove(i))
        };
        let out = taken.map(|m| self.finish_recv(m, now));
        self.release_turn();
        out
    }

    /// One-sided RDMA transfer (OpenSHMEM put/get, MPI RMA): the initiator
    /// pays the endpoint overhead, occupies its NIC for the payload, and
    /// blocks until remote completion (`latency` after the last byte).
    /// The target process is never involved — its CPU clock is untouched,
    /// which is exactly what RDMA hardware offload buys.
    ///
    /// `round_trips` is 1 for a put and 2 for a get or a fetching atomic.
    pub fn one_sided_transfer(
        &mut self,
        target_node: NodeId,
        bytes: u64,
        transport: &Transport,
        round_trips: u32,
    ) {
        // Unit effect: the transfer's only shared state is the NIC
        // next-free cell, so it is validated-class speculatable. (The
        // `_with` variant runs a caller effect inside the commit window
        // and stays conservative.)
        if self.spec_allowed() {
            let cpu = transport.endpoint_cpu(transport.send_overhead, bytes);
            let t_op = self.clock;
            self.clock += cpu;
            self.stats.compute_time += cpu;
            self.stats.msgs_sent += 1;
            self.stats.bytes_sent += bytes;
            let wire = transport.wire_time(bytes);
            let lat =
                SimDuration::from_nanos(transport.latency.nanos() * round_trips.max(1) as u64);
            if target_node == self.node {
                // Loopback touches nothing shared: complete locally,
                // no alignment at all.
                self.clock += lat + wire;
                let end = self.clock;
                self.trace_push(t_op, end, crate::trace::EventKind::OneSided { bytes });
                return;
            }
            if self.one_sided_speculative(t_op, bytes, wire, lat) {
                return;
            }
            // Holding a kept token: align (passing it on) and commit
            // against live state.
            self.become_min();
            let wire_done = self
                .engine
                .reserve_cell(SpecCell::Nic(self.node), self.clock, wire);
            self.clock = wire_done + lat;
            let end = self.clock;
            self.trace_push(t_op, end, crate::trace::EventKind::OneSided { bytes });
            self.release_turn();
            return;
        }
        self.one_sided_transfer_with(target_node, bytes, transport, round_trips, || ());
    }

    /// Validated-class speculation for a cross-node one-sided transfer:
    /// snapshot the NIC cell, predict the completion, park for
    /// validation at the order key. Returns `false` when this process
    /// holds a kept token (caller commits conservatively).
    fn one_sided_speculative(
        &mut self,
        t_op: SimTime,
        bytes: u64,
        wire: SimDuration,
        lat: SimDuration,
    ) -> bool {
        let me = self.pid;
        let t = self.clock;
        let cell = SpecCell::Nic(self.node);
        let end;
        {
            let mut g = self.engine.sched.lock();
            if g.deadlocked {
                drop(g);
                panic::panic_any(DeadlockNote(format!(
                    "{me} speculating during deadlock teardown"
                )));
            }
            if g.turn == Some(me) {
                return false;
            }
            let snap = self.engine.read_cell(cell);
            let predicted_start = t.max(snap);
            end = predicted_start + wire + lat;
            let io = SpecIo {
                cell,
                snap,
                predicted_start,
                reserve: wire,
                resume_clock: end,
            };
            {
                let p = &mut g.procs[me.index()];
                p.clock = t;
                p.status = Status::Speculating(io);
            }
            g.inflight.retain(|&(q, _)| q != me);
            Sched::push(&mut g, me, t);
            self.engine.try_dispatch(&mut g);
        }
        // Checkpoint, then apply the prediction optimistically. Local
        // state only — the shared cell is untouched until validation.
        let ckpt = SpecCheckpoint {
            clock: t,
            stats: self.stats.clone(),
            trace_len: self.trace_buf.len(),
        };
        self.clock = end;
        self.trace_push(t_op, end, crate::trace::EventKind::OneSided { bytes });
        let (clock, reason) = self.engine.shards[me.index()].slot.park();
        match reason {
            WakeReason::SpecCommit => {
                debug_assert_eq!(clock, end, "commit resume clock mismatch");
                self.spec_fails = 0;
                true
            }
            WakeReason::SpecReplay => {
                self.rollback(ckpt);
                let wire_done = self.engine.reserve_cell(cell, self.clock, wire);
                self.clock = wire_done + lat;
                let end = self.clock;
                self.trace_push(t_op, end, crate::trace::EventKind::OneSided { bytes });
                self.note_replay();
                self.release_turn();
                true
            }
            WakeReason::Deadlock => panic::panic_any(DeadlockNote(format!(
                "{me} speculation torn down by deadlock"
            ))),
            _ => unreachable!("speculating process woken with {reason:?}"),
        }
    }

    /// [`ProcCtx::one_sided_transfer`] with a data-plane `effect` executed
    /// inside the commit window, after the transfer's completion time is
    /// known. Frameworks pass the actual memory mutation (symmetric-heap
    /// store, window accumulate) here so that remote-memory effects are
    /// applied in deterministic virtual-time order even when other
    /// processes compute concurrently.
    pub fn one_sided_transfer_with<R>(
        &mut self,
        target_node: NodeId,
        bytes: u64,
        transport: &Transport,
        round_trips: u32,
        effect: impl FnOnce() -> R,
    ) -> R {
        let cpu = transport.endpoint_cpu(transport.send_overhead, bytes);
        let t_op = self.clock;
        self.clock += cpu;
        self.stats.compute_time += cpu;
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += bytes;
        self.become_min();
        let wire = transport.wire_time(bytes);
        let lat = SimDuration::from_nanos(transport.latency.nanos() * round_trips.max(1) as u64);
        if target_node == self.node {
            self.clock += lat + wire;
        } else {
            let mut nr = self.engine.nodes[self.node.index()].lock();
            let start = self.clock.max(nr.nic_free);
            nr.nic_free = start + wire;
            self.clock = start + wire + lat;
        }
        let out = effect();
        let end = self.clock;
        self.trace_push(t_op, end, crate::trace::EventKind::OneSided { bytes });
        self.release_turn();
        out
    }

    /// Service duration of a device request at the current clock (the
    /// straggler fault factor is clock-dependent, so both the
    /// speculative prediction and a rollback replay recompute it at the
    /// same virtual time and agree by construction).
    fn device_io_dur(&self, bytes: u64, is_nfs: bool, is_write: bool) -> SimDuration {
        let spec: crate::topology::DiskSpec = if is_nfs {
            self.world.nfs
        } else {
            self.world.topology.node(self.node).spec.disk
        };
        let bw = if is_write {
            spec.write_bw
        } else {
            spec.read_bw
        };
        let mut dur = spec.request_overhead + SimDuration::from_secs_f64(bytes as f64 / bw);
        // A straggling node is slow at everything local, its scratch
        // disk included; the shared NFS server is unaffected.
        if !is_nfs {
            if let Some(plan) = &self.faults {
                let f = plan.compute_factor(self.node, self.clock);
                if f != 1.0 {
                    dur = SimDuration::from_nanos((dur.nanos() as f64 * f).round() as u64);
                }
            }
        }
        dur
    }

    /// Apply a blocking device request's local effects: wait + volume
    /// stats, clock advance to `finish`, trace span.
    fn apply_device_io(&mut self, bytes: u64, is_nfs: bool, is_write: bool, finish: SimTime) {
        self.stats.disk_time += finish - self.clock;
        let t0 = self.clock;
        self.clock = finish;
        if is_write {
            self.stats.disk_write_bytes += bytes;
        } else {
            self.stats.disk_read_bytes += bytes;
        }
        let kind = match (is_nfs, is_write) {
            (true, _) => crate::trace::EventKind::Nfs { bytes },
            (false, true) => crate::trace::EventKind::DiskWrite { bytes },
            (false, false) => crate::trace::EventKind::DiskRead { bytes },
        };
        self.trace_push(t0, finish, kind);
    }

    fn device_io(&mut self, bytes: u64, is_nfs: bool, is_write: bool) {
        if self.spec_allowed() && self.device_io_speculative(bytes, is_nfs, is_write) {
            return;
        }
        self.become_min();
        let cell = if is_nfs {
            SpecCell::Nfs
        } else {
            SpecCell::Disk(self.node)
        };
        let dur = self.device_io_dur(bytes, is_nfs, is_write);
        let finish = self.engine.reserve_cell(cell, self.clock, dur);
        self.apply_device_io(bytes, is_nfs, is_write, finish);
        self.release_turn();
    }

    /// Validated-class speculation for a blocking device request:
    /// checkpoint, snapshot the device cell, apply the predicted
    /// outcome, park for validation at the order key; roll back and
    /// replay under the token if the cell moved. Returns `false` when
    /// this process holds a kept token (caller runs conservatively).
    fn device_io_speculative(&mut self, bytes: u64, is_nfs: bool, is_write: bool) -> bool {
        let me = self.pid;
        let t = self.clock;
        let cell = if is_nfs {
            SpecCell::Nfs
        } else {
            SpecCell::Disk(self.node)
        };
        let finish;
        {
            let mut g = self.engine.sched.lock();
            if g.deadlocked {
                drop(g);
                panic::panic_any(DeadlockNote(format!(
                    "{me} speculating during deadlock teardown"
                )));
            }
            if g.turn == Some(me) {
                return false;
            }
            let dur = self.device_io_dur(bytes, is_nfs, is_write);
            let snap = self.engine.read_cell(cell);
            let predicted_start = t.max(snap);
            finish = predicted_start + dur;
            let io = SpecIo {
                cell,
                snap,
                predicted_start,
                reserve: dur,
                resume_clock: finish,
            };
            {
                let p = &mut g.procs[me.index()];
                p.clock = t;
                p.status = Status::Speculating(io);
            }
            g.inflight.retain(|&(q, _)| q != me);
            Sched::push(&mut g, me, t);
            self.engine.try_dispatch(&mut g);
        }
        let ckpt = SpecCheckpoint {
            clock: t,
            stats: self.stats.clone(),
            trace_len: self.trace_buf.len(),
        };
        self.apply_device_io(bytes, is_nfs, is_write, finish);
        let (clock, reason) = self.engine.shards[me.index()].slot.park();
        match reason {
            WakeReason::SpecCommit => {
                debug_assert_eq!(clock, finish, "commit resume clock mismatch");
                self.spec_fails = 0;
                true
            }
            WakeReason::SpecReplay => {
                self.rollback(ckpt);
                let dur = self.device_io_dur(bytes, is_nfs, is_write);
                let finish = self.engine.reserve_cell(cell, self.clock, dur);
                self.apply_device_io(bytes, is_nfs, is_write, finish);
                self.note_replay();
                self.release_turn();
                true
            }
            WakeReason::Deadlock => panic::panic_any(DeadlockNote(format!(
                "{me} speculation torn down by deadlock"
            ))),
            _ => unreachable!("speculating process woken with {reason:?}"),
        }
    }

    /// Read `bytes` from this node's scratch disk (serialized with other
    /// requests to the same device; the cost includes queueing).
    pub fn disk_read(&mut self, bytes: u64) {
        self.device_io(bytes, false, false);
    }

    /// Write `bytes` to this node's scratch disk.
    pub fn disk_write(&mut self, bytes: u64) {
        self.device_io(bytes, false, true);
    }

    /// Read `bytes` from the shared NFS server (one server, cluster-wide
    /// contention).
    pub fn nfs_read(&mut self, bytes: u64) {
        self.device_io(bytes, true, false);
    }

    /// Write `bytes` to the shared NFS server.
    pub fn nfs_write(&mut self, bytes: u64) {
        self.device_io(bytes, true, true);
    }

    /// Issue a *background* write of `bytes` to this node's scratch
    /// disk: the device is reserved (serialized with every other
    /// request to it, foreground or background) and the write appears
    /// in the trace, but the calling process does **not** block — its
    /// clock is unchanged and compute proceeds overlapped with the I/O.
    /// Returns the virtual time the write completes on the device;
    /// asynchronous checkpointing registers that instant as the drain
    /// watermark ([`crate::ckpt::DrainSchedule`]).
    ///
    /// Reservation happens inside a commit window (like every shared
    /// resource), so the returned completion time is bit-identical
    /// across execution modes. The queueing delay is *not* charged to
    /// this process's `disk_time` — it never waited — but the bytes
    /// count toward its write volume.
    pub fn disk_write_background(&mut self, bytes: u64) -> SimTime {
        if self.spec_allowed() {
            if let Some(finish) = self.disk_bg_speculative(bytes) {
                return finish;
            }
        }
        self.become_min();
        // Straggling nodes drain slowly too (same rule as `device_io`).
        let dur = self.device_io_dur(bytes, false, true);
        let finish = self
            .engine
            .reserve_cell(SpecCell::Disk(self.node), self.clock, dur);
        self.stats.disk_write_bytes += bytes;
        self.trace_push(
            self.clock,
            finish,
            crate::trace::EventKind::DiskWrite { bytes },
        );
        self.release_turn();
        finish
    }

    /// Validated-class speculation for a background disk write: the
    /// caller's clock never advances (`resume_clock` is the issue
    /// time); only the predicted device completion is at stake.
    /// Returns `None` when this process holds a kept token.
    fn disk_bg_speculative(&mut self, bytes: u64) -> Option<SimTime> {
        let me = self.pid;
        let t = self.clock;
        let cell = SpecCell::Disk(self.node);
        let finish;
        {
            let mut g = self.engine.sched.lock();
            if g.deadlocked {
                drop(g);
                panic::panic_any(DeadlockNote(format!(
                    "{me} speculating during deadlock teardown"
                )));
            }
            if g.turn == Some(me) {
                return None;
            }
            let dur = self.device_io_dur(bytes, false, true);
            let snap = self.engine.read_cell(cell);
            let predicted_start = t.max(snap);
            finish = predicted_start + dur;
            let io = SpecIo {
                cell,
                snap,
                predicted_start,
                reserve: dur,
                resume_clock: t,
            };
            {
                let p = &mut g.procs[me.index()];
                p.clock = t;
                p.status = Status::Speculating(io);
            }
            g.inflight.retain(|&(q, _)| q != me);
            Sched::push(&mut g, me, t);
            self.engine.try_dispatch(&mut g);
        }
        let ckpt = SpecCheckpoint {
            clock: t,
            stats: self.stats.clone(),
            trace_len: self.trace_buf.len(),
        };
        self.stats.disk_write_bytes += bytes;
        self.trace_push(t, finish, crate::trace::EventKind::DiskWrite { bytes });
        let (clock, reason) = self.engine.shards[me.index()].slot.park();
        match reason {
            WakeReason::SpecCommit => {
                debug_assert_eq!(clock, t, "background write must not advance the clock");
                self.spec_fails = 0;
                Some(finish)
            }
            WakeReason::SpecReplay => {
                self.rollback(ckpt);
                let dur = self.device_io_dur(bytes, false, true);
                let finish = self.engine.reserve_cell(cell, self.clock, dur);
                self.stats.disk_write_bytes += bytes;
                self.trace_push(t, finish, crate::trace::EventKind::DiskWrite { bytes });
                self.note_replay();
                self.release_turn();
                Some(finish)
            }
            WakeReason::Deadlock => panic::panic_any(DeadlockNote(format!(
                "{me} speculation torn down by deadlock"
            ))),
            _ => unreachable!("speculating process woken with {reason:?}"),
        }
    }
}

type ProcFn = Box<dyn FnOnce(&mut ProcCtx) -> Box<dyn Any + Send> + Send>;

struct ProcSpawn {
    node: NodeId,
    name: String,
    f: ProcFn,
}

/// Simulation builder: define a topology, spawn processes, run.
pub struct Sim {
    world: Arc<World>,
    spawns: Vec<ProcSpawn>,
    exec: Execution,
}

/// Final report of one process.
#[derive(Debug)]
pub struct ProcReport {
    /// Process id.
    pub pid: Pid,
    /// Process name given at spawn.
    pub name: String,
    /// Node it ran on.
    pub node: NodeId,
    /// Virtual time its closure returned.
    pub finish: SimTime,
    /// Accumulated statistics.
    pub stats: ProcStats,
}

/// Result of a completed simulation.
pub struct SimReport {
    /// Per-process reports, indexed by pid.
    pub procs: Vec<ProcReport>,
    /// Per-process return values, indexed by pid.
    results: Vec<Option<Box<dyn Any + Send>>>,
    /// Messages that were sent to already-finished processes.
    pub dropped_msgs: u64,
    /// Speculations committed clean this run (buffered sends plus
    /// validated device reservations). Zero outside
    /// [`Execution::Speculative`]. Wall-clock-schedule-dependent —
    /// attribution only, deliberately excluded from digests/captures.
    pub spec_commits: u64,
    /// Speculations that validated stale and were rolled back and
    /// replayed. Same caveats as `spec_commits`.
    pub spec_rollbacks: u64,
    /// The execution trace, when tracing was enabled.
    pub trace: Option<Arc<crate::trace::Trace>>,
    /// Telemetry sampling interval this run used (`None` off; see
    /// [`crate::telemetry`]).
    pub telemetry_interval: Option<u64>,
    /// Metric points recorded by processes, in the canonical
    /// `(time, name, labels, pid, seq)` export order. Empty when
    /// telemetry is off.
    pub metric_points: Vec<crate::telemetry::MetricPoint>,
}

impl SimReport {
    /// The virtual time at which the last process finished — the paper's
    /// "execution time" of a run.
    pub fn makespan(&self) -> SimTime {
        self.procs
            .iter()
            .map(|p| p.finish)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Take the typed return value of one process.
    pub fn result<T: 'static>(&mut self, pid: Pid) -> T {
        *self.results[pid.index()]
            .take()
            .unwrap_or_else(|| panic!("{pid} produced no result or it was already taken"))
            .downcast::<T>()
            .unwrap_or_else(|_| panic!("{pid} result is not a {}", std::any::type_name::<T>()))
    }

    /// Aggregate statistics over all processes.
    pub fn total_stats(&self) -> ProcStats {
        let mut total = ProcStats::default();
        for p in &self.procs {
            total.merge(&p.stats);
        }
        total
    }
}

impl Sim {
    /// New simulation over `topology`, using the process-wide default
    /// execution mode (see [`set_default_execution`]).
    pub fn new(topology: Topology) -> Sim {
        Sim {
            world: Arc::new(World::new(topology)),
            spawns: Vec::new(),
            exec: default_execution(),
        }
    }

    /// Choose the execution mode for this run. Both modes produce
    /// bit-identical virtual-time results; [`Execution::Parallel`]
    /// overlaps compute segments across cores.
    pub fn set_execution(&mut self, exec: Execution) {
        self.exec = exec;
    }

    /// The execution mode this run will use.
    pub fn execution(&self) -> Execution {
        self.exec
    }

    /// Access the world (to pre-populate the filesystem).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Turn on execution tracing for this run; every simulation-visible
    /// operation records a timeline span. Returns the trace handle (also
    /// available on the final [`SimReport`]).
    pub fn enable_tracing(&mut self) -> Arc<crate::trace::Trace> {
        self.world
            .trace
            .get_or_init(|| Arc::new(crate::trace::Trace::new()))
            .clone()
    }

    /// Install a fault plan for this run (see [`crate::FaultPlan`]): node
    /// crashes, stragglers, link faults and message drops, all scheduled
    /// in virtual time and replayed bit-identically in both execution
    /// modes. The first installed plan wins; later calls return it
    /// unchanged.
    pub fn set_fault_plan(
        &mut self,
        plan: crate::faults::FaultPlan,
    ) -> Arc<crate::faults::FaultPlan> {
        self.world.faults.get_or_init(|| Arc::new(plan)).clone()
    }

    /// Register a process on `node`. Processes start at virtual time zero
    /// in registration order. Returns the process id.
    pub fn spawn<T, F>(&mut self, node: NodeId, name: impl Into<String>, f: F) -> Pid
    where
        T: Send + 'static,
        F: FnOnce(&mut ProcCtx) -> T + Send + 'static,
    {
        assert!(
            node.index() < self.world.topology.len(),
            "spawn on unknown {node}"
        );
        let pid = Pid(self.spawns.len() as u32);
        self.spawns.push(ProcSpawn {
            node,
            name: name.into(),
            f: Box::new(move |ctx| Box::new(f(ctx)) as Box<dyn Any + Send>),
        });
        pid
    }

    /// Run the simulation to completion and return the report.
    ///
    /// Panics if any process panicked (with that panic's message) or if a
    /// distributed deadlock was detected (with a per-process diagnostic).
    pub fn run(self) -> SimReport {
        let n = self.spawns.len();
        assert!(n > 0, "simulation has no processes");
        // When a run capture is active (bench bins building a RunReport),
        // force tracing on so the capture sees the full event stream. One
        // relaxed atomic load on the cold setup path; nothing on the hot
        // path changes.
        let capturing = crate::observe::capture_active();
        if capturing {
            self.world
                .trace
                .get_or_init(|| Arc::new(crate::trace::Trace::new()));
        }
        // Telemetry feeds the capture (the obs layer builds time-series
        // from it), so it only collects while a capture window is open —
        // points recorded into the void would be dropped anyway.
        let telemetry_interval = if capturing {
            crate::telemetry::telemetry_interval()
        } else {
            None
        };
        let selfprof_t0 = crate::selfprof::selfprof_enabled().then(std::time::Instant::now);
        let proc_nodes: Arc<Vec<NodeId>> = Arc::new(self.spawns.iter().map(|s| s.node).collect());
        let nodes = self.world.topology.len();
        let release_cap = match self.exec {
            Execution::Sequential => 0,
            Execution::Parallel { threads } | Execution::Speculative { threads } => threads,
        };
        let speculative = matches!(self.exec, Execution::Speculative { .. });
        let perturb = crate::perturb::current_perturbation();
        let engine = Arc::new(Engine {
            perturb: perturb.clone(),
            sched: Mutex::new(Sched {
                procs: (0..n)
                    .map(|_| SchedProc {
                        clock: SimTime::ZERO,
                        gen: 0,
                        status: Status::Ready,
                        wake_reason: WakeReason::Turn,
                        spec: std::collections::VecDeque::new(),
                    })
                    .collect(),
                runnable: CalendarQueue::new(),
                live: n,
                deadlocked: false,
                turn: None,
                inflight: Vec::new(),
                panics: Vec::new(),
            }),
            shards: self
                .spawns
                .iter()
                .map(|s| ProcShard {
                    name: s.name.clone(),
                    node: s.node,
                    slot: Slot::new(),
                    mail: Mutex::new(Mail {
                        mailbox: std::collections::VecDeque::new(),
                        finish: None,
                        stats: ProcStats::default(),
                    }),
                })
                .collect(),
            nodes: (0..nodes)
                .map(|_| {
                    Mutex::new(NodeRes {
                        nic_free: SimTime::ZERO,
                        disk_free: SimTime::ZERO,
                    })
                })
                .collect(),
            nfs_free: Mutex::new(SimTime::ZERO),
            dropped_msgs: AtomicU64::new(0),
            fault_seq: AtomicU64::new(0),
            faults: self.world.faults.get().cloned(),
            tracing: self.world.trace.get().is_some(),
            commit_trace: Mutex::new(Vec::new()),
            spec_commits: AtomicU64::new(0),
            spec_rollbacks: AtomicU64::new(0),
            spec_bug: if speculative {
                crate::speculate::current_spec_bug()
            } else {
                None
            },
            telemetry_interval,
            metric_sink: Mutex::new(Vec::new()),
            resume: Mutex::new(ResumeQ {
                q: std::collections::VecDeque::new(),
                shutdown: false,
            }),
            resume_cv: Condvar::new(),
        });

        type ResultSlots = Vec<Option<Box<dyn Any + Send>>>;
        let results: Arc<Mutex<ResultSlots>> = Arc::new(Mutex::new((0..n).map(|_| None).collect()));

        // One coroutine per process, each running the full process body
        // on its own lazily-paged stack. Bodies start suspended; the
        // scheduler's first wake enqueues them on the resume queue.
        let specs: Vec<(String, Box<dyn FnOnce() + Send>)> = self
            .spawns
            .into_iter()
            .enumerate()
            .map(|(i, spawn)| {
                let pid = Pid(i as u32);
                let engine = engine.clone();
                let world = self.world.clone();
                let proc_nodes = proc_nodes.clone();
                let results = results.clone();
                let perturb = perturb.clone();
                let name = spawn.name;
                let body: Box<dyn FnOnce() + Send> = Box::new(move || {
                    // Wait for the first grant.
                    let (clock, reason) = engine.shards[pid.index()].slot.park();
                    let tracing = world.trace.get().is_some();
                    let faults = world.faults.get().cloned();
                    let mut ctx = ProcCtx {
                        engine: engine.clone(),
                        world,
                        proc_nodes,
                        pid,
                        node: spawn.node,
                        clock,
                        stats: ProcStats::default(),
                        faults,
                        tracing,
                        trace_buf: Vec::new(),
                        span_stack: Vec::new(),
                        telemetry: engine.telemetry_interval.is_some(),
                        metric_buf: Vec::new(),
                        release_cap,
                        perturb,
                        perturb_ops: 0,
                        speculative,
                        spec_fails: 0,
                        spec_cooldown: 0,
                    };
                    if reason == WakeReason::Deadlock {
                        // Simulation tore down before we ever ran.
                        finish_proc(&engine, &mut ctx, None);
                        return;
                    }
                    // Process start commits nothing: release the token so
                    // starts overlap in parallel mode.
                    ctx.release_turn();
                    let f = spawn.f;
                    let outcome = panic::catch_unwind(AssertUnwindSafe(|| f(&mut ctx)));
                    match outcome {
                        Ok(val) => {
                            results.lock()[pid.index()] = Some(val);
                            finish_proc(&engine, &mut ctx, None);
                        }
                        Err(payload) => {
                            let (msg, was_deadlock) = describe_panic(payload.as_ref());
                            finish_proc(&engine, &mut ctx, Some((msg, was_deadlock)));
                        }
                    }
                });
                (name, body)
            })
            .collect();
        let coros = crate::coro::Coroutines::build(specs);

        // Enqueue every process at its start time and kick off the first
        // grant; it lands on the resume queue the workers drain below.
        {
            let mut g = engine.sched.lock();
            for i in 0..n {
                let t = g.procs[i].clock;
                Sched::push(&mut g, Pid(i as u32), t);
            }
            engine.try_dispatch(&mut g);
        }

        // Worker pool. The old engine ran every process on its own OS
        // thread but the frontier rule capped concurrency at the token
        // holder plus `threads` in-flight compute segments — so that is
        // exactly the worker count. Sequential mode runs the single
        // worker on the calling thread: zero thread spawns per run.
        let workers = match self.exec {
            Execution::Sequential => 1,
            Execution::Parallel { threads } | Execution::Speculative { threads } => {
                threads.saturating_add(1).min(512).min(n)
            }
        };
        if workers <= 1 {
            worker_loop(&engine, &coros);
        } else {
            std::thread::scope(|scope| {
                for w in 1..workers {
                    let engine = &engine;
                    let coros = &coros;
                    let spawned = std::thread::Builder::new()
                        .name(format!("sim-worker-{w}"))
                        .spawn_scoped(scope, move || worker_loop(engine, coros));
                    if let Err(e) = spawned {
                        // Let the already-spawned workers drain and exit
                        // before unwinding, or the scope join would hang.
                        let mut q = engine.resume.lock();
                        q.shutdown = true;
                        engine.resume_cv.notify_all();
                        drop(q);
                        panic!(
                            "failed to spawn engine worker thread {w} of {workers} \
                             for {n} simulated processes: {e}"
                        );
                    }
                }
                worker_loop(&engine, &coros);
            });
        }
        drop(coros);

        // Fault events recorded by dispatcher-side commits of buffered
        // sends; `sorted_events` recovers order, so a late absorb is as
        // good as an inline one.
        if let Some(tr) = self.world.trace.get() {
            let buf = std::mem::take(&mut *engine.commit_trace.lock());
            if !buf.is_empty() {
                tr.absorb(buf);
            }
        }

        let g = engine.sched.lock();
        // Report application panics first; deadlock only if nothing else.
        if let Some((pid, msg, _)) = g
            .panics
            .iter()
            .find(|(_, _, was_deadlock)| !*was_deadlock)
            .cloned()
        {
            panic!("simulated process {pid} panicked: {msg}");
        }
        if let Some((_, msg, _)) = g.panics.first().cloned() {
            panic!("{msg}");
        }
        let procs = engine
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let m = s.mail.lock();
                ProcReport {
                    pid: Pid(i as u32),
                    name: s.name.clone(),
                    node: s.node,
                    finish: m.finish.unwrap_or(g.procs[i].clock),
                    stats: m.stats.clone(),
                }
            })
            .collect();
        let dropped = engine.dropped_msgs.load(Ordering::Relaxed);
        drop(g);
        let results = Arc::try_unwrap(results)
            .map(|m| m.into_inner())
            .unwrap_or_else(|arc| {
                let mut g = arc.lock();
                g.iter_mut().map(|o| o.take()).collect()
            });
        let spec_commits = engine.spec_commits.load(Ordering::Relaxed);
        let spec_rollbacks = engine.spec_rollbacks.load(Ordering::Relaxed);
        crate::speculate::spec_counters_add(spec_commits, spec_rollbacks);
        let mut metric_points = std::mem::take(&mut *engine.metric_sink.lock());
        crate::telemetry::sort_points(&mut metric_points);
        if let Some(t0) = selfprof_t0 {
            crate::selfprof::add_run_wall_ns(t0.elapsed().as_nanos() as u64);
        }
        let report = SimReport {
            procs,
            results,
            dropped_msgs: dropped,
            spec_commits,
            spec_rollbacks,
            trace: self.world.trace.get().cloned(),
            telemetry_interval: engine.telemetry_interval,
            metric_points,
        };
        if capturing {
            crate::observe::record_run(&report, self.world.topology.len());
        }
        report
    }
}

fn describe_panic(payload: &(dyn Any + Send)) -> (String, bool) {
    if let Some(note) = payload.downcast_ref::<DeadlockNote>() {
        (note.0.clone(), true)
    } else if let Some(sa) = payload.downcast_ref::<crate::abort::StructuredAbort>() {
        // Keep the machine-recognizable marker: `Sim::run` re-panics
        // with this string and `StructuredAbort::from_message` parses
        // it back out (see `crate::abort`).
        (sa.to_string(), false)
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        ((*s).to_string(), false)
    } else if let Some(s) = payload.downcast_ref::<String>() {
        (s.clone(), false)
    } else {
        ("<non-string panic payload>".to_string(), false)
    }
}

fn finish_proc(engine: &Arc<Engine>, ctx: &mut ProcCtx, panic_info: Option<(String, bool)>) {
    let pid = ctx.pid;
    if panic_info.is_none() {
        // Normal completion is itself a visible event: align so the
        // transition to Done happens at a deterministic point of the
        // global order (e.g. whether a message to this process is
        // dropped must not depend on wall-clock scheduling). During
        // deadlock teardown the alignment is skipped.
        let _ = ctx.align_quiet();
    }
    // Merge this process's trace buffer into the shared trace exactly
    // once. Export order is recovered by the sort in `sorted_events`, so
    // the append order across processes is irrelevant. Spans left open
    // (early return, panic unwind) close at the finish time first so the
    // exported trace only ever contains well-formed phase events.
    ctx.close_all_spans();
    if ctx.tracing {
        if let Some(tr) = ctx.world.trace.get() {
            tr.absorb(std::mem::take(&mut ctx.trace_buf));
        }
    }
    if !ctx.metric_buf.is_empty() {
        engine
            .metric_sink
            .lock()
            .append(&mut std::mem::take(&mut ctx.metric_buf));
    }
    {
        let mut m = engine.shards[pid.index()].mail.lock();
        m.finish = Some(ctx.clock);
        // Merge, don't overwrite: dispatcher-side commits of buffered
        // speculative sends attribute fault stats to this shard.
        let taken = std::mem::take(&mut ctx.stats);
        m.stats.merge(&taken);
    }
    let mut g = engine.sched.lock();
    if g.turn == Some(pid) {
        g.turn = None;
    }
    g.inflight.retain(|&(q, _)| q != pid);
    {
        let p = &mut g.procs[pid.index()];
        p.status = Status::Done;
        p.clock = ctx.clock;
        p.gen += 1; // invalidate any stale queue entries
    }
    if let Some((msg, was_deadlock)) = panic_info {
        g.panics.push((pid, msg, was_deadlock));
    }
    g.live -= 1;
    if g.live == 0 {
        // Commit any sends still buffered by panicked/doomed processes
        // so `dropped_msgs` matches the sequential engine (which sent
        // them inline before unwinding).
        engine.drain_spec(&mut g);
        // Last process: signal the worker pool to exit once the queue
        // drains. This coroutine performs no further visible operation
        // (its results are already stored), so it runs straight to
        // completion and its worker observes the shutdown.
        let mut q = engine.resume.lock();
        q.shutdown = true;
        engine.resume_cv.notify_all();
    } else if !g.deadlocked {
        engine.try_dispatch(&mut g);
    }
}

/// Drain the resume queue, running each popped coroutine until its next
/// suspension. Runs on the calling thread in sequential mode and on the
/// fixed worker pool in parallel mode; exits when the queue is empty
/// after shutdown was signalled.
fn worker_loop(engine: &Engine, coros: &crate::coro::Coroutines) {
    loop {
        let pid = {
            let mut q = engine.resume.lock();
            loop {
                if let Some(pid) = q.q.pop_front() {
                    break pid;
                }
                if q.shutdown {
                    return;
                }
                engine.resume_cv.wait(&mut q);
            }
        };
        crate::selfprof::host_count(crate::selfprof::HostOp::CoroResume);
        match coros.resume(pid.index()) {
            crate::coro::SwitchOut::Done => {}
            crate::coro::SwitchOut::Parked => {
                // Publish the parked state — or, if a wake raced in
                // between the coroutine's last value check and its
                // context save, re-enqueue it ourselves (the waker saw
                // `parked == false` and deliberately left that to us).
                let mut s = engine.shards[pid.index()].slot.m.lock();
                if s.value.is_some() {
                    drop(s);
                    engine.enqueue_resume(pid);
                } else {
                    crate::selfprof::host_count(crate::selfprof::HostOp::Park);
                    s.parked = true;
                }
            }
        }
    }
}
