//! The conservative virtual-time execution engine.
//!
//! Every simulated process is an OS thread executing real Rust code. The
//! engine enforces a single invariant: **whenever a process performs a
//! simulation-visible operation (message send/delivery, disk
//! reservation, sleep), it is the process with the minimum virtual clock
//! among all runnable processes, and those commit windows are totally
//! ordered.** The commit token is passed through per-process condition
//! variables; the ready queue is a binary heap ordered by
//! `(virtual time, pid, generation)`, a key chosen to be independent of
//! the wall-clock order in which entries are pushed — which is what lets
//! the same heap drive both execution modes below bit-identically.
//!
//! Between simulation-visible operations a process runs arbitrary real
//! computation and advances its own clock locally ([`ProcCtx::compute`])
//! at zero synchronization cost; the conservative yield happens lazily
//! at the next visible operation.
//!
//! # Execution modes
//!
//! * [`Execution::Sequential`] (default): at most one process executes
//!   at a time. A process keeps the token from its commit window through
//!   the following compute segment, exactly like a classic baton-passing
//!   conservative simulator.
//! * [`Execution::Parallel`]: after a process finishes the *commit* part
//!   of a visible operation (its mutation of shared simulation state),
//!   the token is released immediately and the process runs its next
//!   compute segment concurrently with other released processes — real
//!   Rust work overlaps on real cores. Ordering is preserved by a
//!   conservative lookahead rule: a released process `q` whose last
//!   commit ended at virtual time `lb_q` can only re-enter the ready
//!   queue at `(t, q)` with `t >= lb_q`, so the scheduler may grant a
//!   queued entry `e` whenever `(e.time, e.pid) < (lb_q, q)` for every
//!   in-flight `q`. Under that rule every grant decision is identical to
//!   the sequential schedule, making virtual times, results, and stats
//!   **bit-identical** across modes (see DESIGN.md §"Parallel engine").

use std::any::Any;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::cost::Work;
use crate::error::{DeadlockNote, RecvTimeout};
use crate::fs::SimFs;
use crate::message::{MatchSpec, Message, Payload, Tag};
use crate::parallel::{default_execution, Execution};
use crate::stats::ProcStats;
use crate::time::{SimDuration, SimTime};
use crate::topology::{NodeId, Topology};
use crate::transport::Transport;

/// Identifies a simulated process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub u32);

impl Pid {
    /// Index into the process table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Pid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Immutable world state shared by every process: the hardware topology
/// and the storage namespace.
pub struct World {
    /// Hardware description of the cluster.
    pub topology: Topology,
    /// Simulated storage namespace.
    pub fs: SimFs,
    /// NFS share characteristics (one server for the whole cluster).
    pub nfs: crate::topology::DiskSpec,
    /// Execution trace sink (empty unless `Sim::enable_tracing` ran).
    pub(crate) trace: std::sync::OnceLock<Arc<crate::trace::Trace>>,
    /// Installed fault plan (empty unless `Sim::set_fault_plan` ran).
    pub(crate) faults: std::sync::OnceLock<Arc<crate::faults::FaultPlan>>,
}

impl World {
    /// Build a world over a topology with an empty filesystem.
    pub fn new(topology: Topology) -> World {
        World {
            topology,
            fs: SimFs::new(),
            nfs: crate::topology::DiskSpec::nfs_share(),
            trace: std::sync::OnceLock::new(),
            faults: std::sync::OnceLock::new(),
        }
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&Arc<crate::faults::FaultPlan>> {
        self.faults.get()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WakeReason {
    Turn,
    Message,
    Timeout,
    Deadlock,
}

#[derive(Debug)]
enum Status {
    Ready,
    Running,
    Blocked {
        spec: MatchSpec,
        deadline: Option<SimTime>,
    },
    Done,
}

struct Slot {
    m: Mutex<Option<(SimTime, WakeReason)>>,
    cv: Condvar,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            m: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn wake(&self, clock: SimTime, reason: WakeReason) {
        let mut g = self.m.lock();
        *g = Some((clock, reason));
        self.cv.notify_one();
    }

    fn park(&self) -> (SimTime, WakeReason) {
        let mut g = self.m.lock();
        while g.is_none() {
            self.cv.wait(&mut g);
        }
        g.take().unwrap()
    }
}

struct ProcState {
    name: String,
    node: NodeId,
    clock: SimTime,
    gen: u64,
    status: Status,
    wake_reason: WakeReason,
    mailbox: VecDeque<Message>,
    slot: Arc<Slot>,
    finish: Option<SimTime>,
    stats: ProcStats,
}

/// Ready-queue entry. Ordered by `(time, pid, gen)` — a key that does
/// NOT depend on push order, so the pop sequence is identical whether
/// entries arrive in sequential baton order or out of order from
/// concurrently released processes (the heart of the cross-mode
/// bit-determinism argument).
#[derive(Clone, Copy, PartialEq, Eq)]
struct Entry {
    time: SimTime,
    pid: Pid,
    gen: u64,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.pid, self.gen).cmp(&(other.time, other.pid, other.gen))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct Inner {
    procs: Vec<ProcState>,
    runnable: BinaryHeap<Reverse<Entry>>,
    live: usize,
    deadlocked: bool,
    /// Execution mode for this run.
    exec: Execution,
    /// Current commit-token holder: the one process allowed to mutate
    /// shared simulation state. `None` while the token is being passed.
    turn: Option<Pid>,
    /// Released processes still running a compute segment, with the
    /// lower bound on the virtual time of their next ready-queue entry
    /// (their clock at release; clocks only move forward).
    inflight: Vec<(Pid, SimTime)>,
    /// Next-free time of each node's NIC (sender-side serialization).
    nic_free: Vec<SimTime>,
    /// Next-free time of each node's scratch disk.
    disk_free: Vec<SimTime>,
    /// Next-free time of the shared NFS server.
    nfs_free: SimTime,
    /// Messages sent to processes that had already finished.
    dropped_msgs: u64,
    /// Sequence numbers handed to inter-node messages for the fault
    /// plan's drop hash. Incremented inside send commit windows, which
    /// are totally ordered identically in both execution modes — the
    /// basis of faulty-run bit-determinism. Only advanced when the plan
    /// actually enables drops.
    fault_seq: u64,
    /// (pid, message, was_deadlock) for every unwound process.
    panics: Vec<PanicRecord>,
}

/// (pid, message, was_deadlock) of one unwound process.
type PanicRecord = (Pid, String, bool);

struct Engine {
    inner: Mutex<Inner>,
    done: Condvar,
}

impl Engine {
    /// Push `pid` as runnable at `time`, invalidating any earlier entry
    /// for it. Caller holds the lock.
    fn push(g: &mut Inner, pid: Pid, time: SimTime) {
        g.procs[pid.index()].gen += 1;
        let gen = g.procs[pid.index()].gen;
        g.runnable.push(Reverse(Entry { time, pid, gen }));
    }

    /// Grant the commit token to the next runnable process if the
    /// conservative frontier allows it; otherwise detect completion or
    /// deadlock. Caller holds the lock. Idempotent: safe to call after
    /// any state change that might enable a grant.
    fn try_dispatch(&self, g: &mut Inner) {
        if g.turn.is_some() || g.deadlocked {
            return;
        }
        loop {
            let cand = match g.runnable.peek() {
                None => break,
                Some(&Reverse(e)) => e,
            };
            if g.procs[cand.pid.index()].gen != cand.gen {
                g.runnable.pop(); // stale entry
                continue;
            }
            // Conservative lookahead frontier: an in-flight process q
            // re-enters the queue at some (t, q) with t >= lb_q. Grant
            // `cand` only if no such future entry could order before it;
            // otherwise wait for the in-flight set to drain.
            if g.inflight
                .iter()
                .any(|&(q, lb)| (cand.time, cand.pid) >= (lb, q))
            {
                return;
            }
            g.runnable.pop();
            let p = &mut g.procs[cand.pid.index()];
            match &p.status {
                Status::Ready => {
                    p.status = Status::Running;
                }
                Status::Blocked {
                    deadline: Some(_), ..
                } => {
                    // Generation matched, so this entry is the deadline
                    // pushed when blocking: the deadline fired before any
                    // matching message was delivered.
                    p.status = Status::Running;
                    p.wake_reason = WakeReason::Timeout;
                    p.clock = p.clock.max(cand.time);
                }
                _ => continue, // defensive: not grantable
            }
            g.turn = Some(cand.pid);
            let slot = p.slot.clone();
            let clock = p.clock;
            let reason = p.wake_reason;
            slot.wake(clock, reason);
            return;
        }
        // Nothing grantable. With compute still in flight this is a
        // transient state; with nothing in flight and live processes it
        // is a distributed deadlock.
        if g.inflight.is_empty() && g.live > 0 && !g.deadlocked {
            g.deadlocked = true;
            let mut diag = String::new();
            for (i, p) in g.procs.iter().enumerate() {
                if let Status::Blocked { spec, .. } = &p.status {
                    diag.push_str(&format!(
                        "{} ({}) blocked at {} on recv {:?}; ",
                        Pid(i as u32),
                        p.name,
                        p.clock,
                        spec
                    ));
                }
            }
            for p in g.procs.iter_mut() {
                if matches!(p.status, Status::Blocked { .. }) {
                    p.status = Status::Running;
                    p.wake_reason = WakeReason::Deadlock;
                    p.slot.wake(p.clock, WakeReason::Deadlock);
                }
            }
            // Stash the diagnostic through the panics channel.
            g.panics
                .push((Pid(u32::MAX), format!("deadlock: {diag}"), true));
        }
        self.done.notify_all();
    }

    /// Deliver a message, waking the destination if it is blocked on a
    /// matching receive. Caller holds the lock (and the commit token).
    fn deliver(g: &mut Inner, dst: Pid, msg: Message) {
        let arrival = msg.arrival;
        let p = &mut g.procs[dst.index()];
        match &p.status {
            Status::Done => {
                g.dropped_msgs += 1;
            }
            Status::Blocked { spec, .. } if spec.matches(&msg) => {
                p.mailbox.push_back(msg);
                p.status = Status::Ready;
                p.wake_reason = WakeReason::Message;
                // Clock stays at the block-time value; the receiver
                // recomputes its resume clock from the matched message.
                let t = p.clock.max(arrival);
                Engine::push(g, dst, t);
            }
            _ => {
                p.mailbox.push_back(msg);
            }
        }
    }
}

/// Per-process context handed to each process closure. All simulation
/// operations go through this handle.
pub struct ProcCtx {
    engine: Arc<Engine>,
    world: Arc<World>,
    proc_nodes: Arc<Vec<NodeId>>,
    pid: Pid,
    node: NodeId,
    clock: SimTime,
    stats: ProcStats,
}

impl ProcCtx {
    /// This process's id.
    #[inline]
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The node this process is placed on.
    #[inline]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Node a process is placed on.
    #[inline]
    pub fn node_of(&self, pid: Pid) -> NodeId {
        self.proc_nodes[pid.index()]
    }

    /// Whether `pid` shares this process's node.
    #[inline]
    pub fn is_local(&self, pid: Pid) -> bool {
        self.node_of(pid) == self.node
    }

    /// Total number of processes in the simulation.
    #[inline]
    pub fn num_procs(&self) -> usize {
        self.proc_nodes.len()
    }

    /// Current virtual time of this process.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Shared world state (topology + filesystem).
    #[inline]
    pub fn world(&self) -> &World {
        &self.world
    }

    /// The simulated filesystem.
    #[inline]
    pub fn fs(&self) -> &SimFs {
        &self.world.fs
    }

    /// Statistics collected so far by this process.
    #[inline]
    pub fn stats(&self) -> &ProcStats {
        &self.stats
    }

    #[inline]
    fn trace(&self) -> Option<&Arc<crate::trace::Trace>> {
        self.world.trace.get()
    }

    /// The simulation's fault plan, if one was installed.
    #[inline]
    pub fn fault_plan(&self) -> Option<&Arc<crate::faults::FaultPlan>> {
        self.world.faults.get()
    }

    /// Earliest scheduled crash of this process's node, if any. Server
    /// loops use this as a receive deadline so everything hosted on the
    /// node dies at the plan's crash time.
    pub fn node_crash_time(&self) -> Option<SimTime> {
        self.crash_time_of(self.node)
    }

    /// Earliest scheduled crash of `node`, if any.
    pub fn crash_time_of(&self, node: NodeId) -> Option<SimTime> {
        self.world.faults.get().and_then(|p| p.crash_time(node))
    }

    /// Record a structured fault / recovery event in the trace (a
    /// zero-length instant at the current virtual time) and count it in
    /// this process's statistics.
    pub fn record_fault(&mut self, ev: crate::faults::FaultEvent) {
        self.stats.fault_events += 1;
        if let Some(tr) = self.trace() {
            tr.record(
                self.pid,
                self.clock,
                self.clock,
                crate::trace::EventKind::Fault(ev),
            );
        }
    }

    /// Advance this process's clock by modeled computation: `work` executed
    /// at `runtime_factor` times native single-core cost (see
    /// [`crate::RuntimeClass`]). Purely local — no synchronization; in
    /// parallel mode this is the code that overlaps across cores.
    pub fn compute(&mut self, work: Work, runtime_factor: f64) {
        let mut d = {
            let spec = &self.world.topology.node(self.node).spec;
            work.duration_on(spec, runtime_factor)
        };
        if let Some(plan) = self.world.faults.get() {
            let f = plan.compute_factor(self.node, self.clock);
            if f != 1.0 {
                d = SimDuration::from_nanos((d.nanos() as f64 * f).round() as u64);
            }
        }
        let t0 = self.clock;
        self.clock += d;
        self.stats.compute_time += d;
        if let Some(tr) = self.trace() {
            tr.record(self.pid, t0, self.clock, crate::trace::EventKind::Compute);
        }
    }

    /// Advance this process's clock by a raw duration (framework-internal
    /// overheads). Purely local.
    pub fn advance(&mut self, d: SimDuration) {
        self.clock += d;
        self.stats.compute_time += d;
    }

    /// Advance the clock and yield, letting earlier processes run.
    pub fn sleep(&mut self, d: SimDuration) {
        self.clock += d;
        self.become_min();
        self.release_turn();
    }

    /// Align: enter the ready queue at the current clock and wait for the
    /// commit token, i.e. until this process is the minimum-time runnable
    /// process. Returns `false` if the simulation is tearing down from a
    /// deadlock (the caller must not touch shared state).
    fn align_quiet(&mut self) -> bool {
        let engine = self.engine.clone();
        let slot;
        {
            let mut g = engine.inner.lock();
            if g.deadlocked {
                return false;
            }
            let me = self.pid;
            if g.turn == Some(me) {
                // Sequential mode (or a kept token): pass it through the
                // queue so the globally minimal process gets it next.
                g.turn = None;
            }
            g.inflight.retain(|&(q, _)| q != me);
            let p = &mut g.procs[me.index()];
            p.clock = self.clock;
            p.status = Status::Ready;
            p.wake_reason = WakeReason::Turn;
            slot = p.slot.clone();
            Engine::push(&mut g, me, self.clock);
            engine.try_dispatch(&mut g);
        }
        let (clock, reason) = slot.park();
        self.clock = clock;
        reason != WakeReason::Deadlock
    }

    /// Yield until this process is the minimum-time runnable process and
    /// holds the commit token. All operations with global effects call
    /// this first, which is what makes resource-reservation order
    /// independent of OS scheduling.
    fn become_min(&mut self) {
        if !self.align_quiet() {
            panic::panic_any(DeadlockNote(format!(
                "{} woken during deadlock teardown",
                self.pid
            )));
        }
    }

    /// Release the commit token after a visible operation's shared-state
    /// mutation, entering the in-flight set so the next compute segment
    /// can overlap with other processes. No-op in sequential mode (the
    /// token is kept until the next [`ProcCtx::become_min`]).
    fn release_turn(&mut self) {
        let engine = self.engine.clone();
        let mut g = engine.inner.lock();
        if g.deadlocked {
            return;
        }
        debug_assert_eq!(g.turn, Some(self.pid), "token released by non-holder");
        let cap = match g.exec {
            Execution::Sequential => 0,
            Execution::Parallel { threads } => threads,
        };
        if g.inflight.len() >= cap {
            return; // keep the token; the next align passes it on
        }
        g.turn = None;
        g.inflight.push((self.pid, self.clock));
        engine.try_dispatch(&mut g);
    }

    /// Run `f` inside this process's next commit window: at a
    /// deterministic point in the global visible-operation order, with
    /// the commit token held. Frameworks use this to order side effects
    /// on state shared *outside* the engine (symmetric heaps, RMA
    /// windows) so parallel execution cannot reorder them.
    pub fn ordered<R>(&mut self, f: impl FnOnce() -> R) -> R {
        self.become_min();
        let out = f();
        self.release_turn();
        out
    }

    /// Send a message. The sender is charged the transport's endpoint CPU
    /// cost; the payload then occupies the sender NIC (serialized with
    /// other transfers from this node) and arrives `latency` later.
    /// Intra-node messages skip the NIC.
    pub fn send(
        &mut self,
        dst: Pid,
        tag: Tag,
        bytes: u64,
        payload: Payload,
        transport: &Transport,
    ) {
        let cpu = transport.endpoint_cpu(transport.send_overhead, bytes);
        let t0 = self.clock;
        self.clock += cpu;
        self.stats.compute_time += cpu;
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += bytes;
        if let Some(tr) = self.trace() {
            tr.record(
                self.pid,
                t0,
                self.clock,
                crate::trace::EventKind::Send { dst, bytes },
            );
        }
        self.become_min();
        {
            let engine = self.engine.clone();
            let mut g = engine.inner.lock();
            let sent_at = self.clock;
            let dst_node = self.proc_nodes[dst.index()];
            let same_node = dst_node == self.node;
            let wire = transport.wire_time(bytes);
            let mut arrival = if same_node {
                sent_at + transport.latency + wire
            } else {
                let nic = &mut g.nic_free[self.node.index()];
                let start = sent_at.max(*nic);
                *nic = start + wire;
                start + wire + transport.latency
            };
            // Fault injection, inside the commit window so every decision
            // (and the drop-hash sequence number) lands at a deterministic
            // point of the global order. Intra-node loopback is immune.
            if !same_node {
                if let Some(plan) = self.world.faults.get().cloned() {
                    use crate::faults::{FaultEvent, LinkFault};
                    let tr = self.world.trace.get().cloned();
                    let pid = self.pid;
                    let injected = move |ev: FaultEvent,
                                         delay: SimDuration,
                                         stats: &mut ProcStats| {
                        stats.fault_events += 1;
                        stats.fault_delay += delay;
                        if let Some(tr) = &tr {
                            tr.record(pid, sent_at, sent_at, crate::trace::EventKind::Fault(ev));
                        }
                    };
                    match plan.link_fault(self.node, dst_node, sent_at) {
                        Some((LinkFault::Degrade(f), _)) => {
                            let base = wire + transport.latency;
                            let extra = SimDuration::from_nanos(
                                (base.nanos() as f64 * (f - 1.0)).round() as u64,
                            );
                            arrival += extra;
                            injected(
                                FaultEvent::LinkDegraded {
                                    dst_node,
                                    bytes,
                                    delay: extra,
                                },
                                extra,
                                &mut self.stats,
                            );
                        }
                        Some((LinkFault::Partition, until)) => {
                            let healed = until + plan.retransmit();
                            if healed > arrival {
                                let extra = healed - arrival;
                                arrival = healed;
                                injected(
                                    FaultEvent::LinkPartitioned {
                                        dst_node,
                                        bytes,
                                        delay: extra,
                                    },
                                    extra,
                                    &mut self.stats,
                                );
                            }
                        }
                        None => {}
                    }
                    if plan.has_drops() {
                        let seq = g.fault_seq;
                        g.fault_seq += 1;
                        if plan.should_drop(seq) {
                            let extra = plan.retransmit();
                            arrival += extra;
                            injected(
                                FaultEvent::MessageDropped {
                                    dst,
                                    bytes,
                                    delay: extra,
                                },
                                extra,
                                &mut self.stats,
                            );
                        }
                    }
                }
            }
            let recv_cost = transport.endpoint_cpu(transport.recv_overhead, bytes);
            let msg = Message {
                src: self.pid,
                tag,
                bytes,
                payload,
                sent_at,
                arrival,
                recv_cost,
            };
            Engine::deliver(&mut g, dst, msg);
        }
        self.release_turn();
    }

    fn take_match(&mut self, spec: MatchSpec) -> Option<Message> {
        let engine = self.engine.clone();
        let mut g = engine.inner.lock();
        let p = &mut g.procs[self.pid.index()];
        let best = p
            .mailbox
            .iter()
            .enumerate()
            .filter(|(_, m)| spec.matches(m))
            .min_by_key(|(i, m)| (m.arrival, *i))
            .map(|(i, _)| i);
        best.and_then(|i| p.mailbox.remove(i))
    }

    fn finish_recv(&mut self, msg: Message, blocked_since: SimTime) -> Message {
        let resume = self.clock.max(msg.arrival);
        self.stats.wait_time += resume - blocked_since;
        self.clock = resume + msg.recv_cost;
        self.stats.compute_time += msg.recv_cost;
        self.stats.msgs_recvd += 1;
        self.stats.bytes_recvd += msg.bytes;
        if let Some(tr) = self.trace() {
            tr.record(
                self.pid,
                blocked_since,
                self.clock,
                crate::trace::EventKind::Recv {
                    src: msg.src,
                    bytes: msg.bytes,
                },
            );
        }
        msg
    }

    /// Receive the earliest-arriving message matching `spec`, blocking in
    /// virtual time until one is delivered. Panics (unwinding the whole
    /// simulation with a diagnostic) if no such message can ever arrive.
    pub fn recv(&mut self, spec: MatchSpec) -> Message {
        self.recv_deadline(spec, None)
            .expect("recv without deadline cannot time out")
    }

    /// Like [`ProcCtx::recv`] but gives up at virtual `deadline`.
    pub fn recv_timeout(
        &mut self,
        spec: MatchSpec,
        timeout: SimDuration,
    ) -> Result<Message, RecvTimeout> {
        let deadline = self.clock + timeout;
        self.recv_deadline(spec, Some(deadline))
    }

    /// Like [`ProcCtx::recv`] but gives up at an absolute virtual deadline.
    pub fn recv_deadline(
        &mut self,
        spec: MatchSpec,
        deadline: Option<SimTime>,
    ) -> Result<Message, RecvTimeout> {
        let blocked_since = self.clock;
        // Align first so the mailbox is inspected at a deterministic
        // point of the visible-operation order (identical in both
        // execution modes).
        self.become_min();
        if let Some(m) = self.take_match(spec) {
            let m = self.finish_recv(m, blocked_since);
            self.release_turn();
            return Ok(m);
        }
        // Block, handing the token back.
        let engine = self.engine.clone();
        let slot;
        {
            let mut g = engine.inner.lock();
            if g.deadlocked {
                drop(g);
                panic::panic_any(DeadlockNote(format!(
                    "{} blocked during deadlock teardown",
                    self.pid
                )));
            }
            let me = self.pid;
            debug_assert_eq!(g.turn, Some(me), "blocking without the token");
            g.turn = None;
            let p = &mut g.procs[me.index()];
            p.clock = self.clock;
            p.status = Status::Blocked { spec, deadline };
            slot = p.slot.clone();
            if let Some(d) = deadline {
                Engine::push(&mut g, me, d.max(self.clock));
            } else {
                // No heap entry: only a matching delivery can wake us.
                p.gen += 1;
            }
            engine.try_dispatch(&mut g);
        }
        let (clock, reason) = slot.park();
        self.clock = clock;
        match reason {
            WakeReason::Message => {
                let m = self
                    .take_match(spec)
                    .expect("woken for message but no match in mailbox");
                let m = self.finish_recv(m, blocked_since);
                self.release_turn();
                Ok(m)
            }
            WakeReason::Timeout => {
                self.stats.wait_time += self.clock - blocked_since;
                self.release_turn();
                Err(RecvTimeout)
            }
            WakeReason::Deadlock => panic::panic_any(DeadlockNote(format!(
                "{} blocked on {:?} forever",
                self.pid, spec
            ))),
            WakeReason::Turn => unreachable!("blocked process woken with Turn"),
        }
    }

    /// Non-blocking receive: a matching message whose arrival time is not
    /// after this process's current clock.
    pub fn try_recv(&mut self, spec: MatchSpec) -> Option<Message> {
        // Align so the arrival check happens at a deterministic point.
        self.become_min();
        let now = self.clock;
        let engine = self.engine.clone();
        let taken = {
            let mut g = engine.inner.lock();
            let p = &mut g.procs[self.pid.index()];
            let best = p
                .mailbox
                .iter()
                .enumerate()
                .filter(|(_, m)| spec.matches(m) && m.arrival <= now)
                .min_by_key(|(i, m)| (m.arrival, *i))
                .map(|(i, _)| i);
            best.and_then(|i| p.mailbox.remove(i))
        };
        let out = taken.map(|m| self.finish_recv(m, now));
        self.release_turn();
        out
    }

    /// One-sided RDMA transfer (OpenSHMEM put/get, MPI RMA): the initiator
    /// pays the endpoint overhead, occupies its NIC for the payload, and
    /// blocks until remote completion (`latency` after the last byte).
    /// The target process is never involved — its CPU clock is untouched,
    /// which is exactly what RDMA hardware offload buys.
    ///
    /// `round_trips` is 1 for a put and 2 for a get or a fetching atomic.
    pub fn one_sided_transfer(
        &mut self,
        target_node: NodeId,
        bytes: u64,
        transport: &Transport,
        round_trips: u32,
    ) {
        self.one_sided_transfer_with(target_node, bytes, transport, round_trips, || ());
    }

    /// [`ProcCtx::one_sided_transfer`] with a data-plane `effect` executed
    /// inside the commit window, after the transfer's completion time is
    /// known. Frameworks pass the actual memory mutation (symmetric-heap
    /// store, window accumulate) here so that remote-memory effects are
    /// applied in deterministic virtual-time order even when other
    /// processes compute concurrently.
    pub fn one_sided_transfer_with<R>(
        &mut self,
        target_node: NodeId,
        bytes: u64,
        transport: &Transport,
        round_trips: u32,
        effect: impl FnOnce() -> R,
    ) -> R {
        let cpu = transport.endpoint_cpu(transport.send_overhead, bytes);
        let t_op = self.clock;
        self.clock += cpu;
        self.stats.compute_time += cpu;
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += bytes;
        self.become_min();
        let wire = transport.wire_time(bytes);
        let lat = SimDuration::from_nanos(transport.latency.nanos() * round_trips.max(1) as u64);
        if target_node == self.node {
            self.clock += lat + wire;
        } else {
            let engine = self.engine.clone();
            let mut g = engine.inner.lock();
            let nic = &mut g.nic_free[self.node.index()];
            let start = self.clock.max(*nic);
            *nic = start + wire;
            self.clock = start + wire + lat;
        }
        let out = effect();
        if let Some(tr) = self.trace() {
            tr.record(
                self.pid,
                t_op,
                self.clock,
                crate::trace::EventKind::OneSided { bytes },
            );
        }
        self.release_turn();
        out
    }

    fn device_io(&mut self, bytes: u64, is_nfs: bool, is_write: bool) {
        self.become_min();
        {
            let engine = self.engine.clone();
            let mut g = engine.inner.lock();
            let (spec, free): (crate::topology::DiskSpec, &mut SimTime) = if is_nfs {
                (self.world.nfs, &mut g.nfs_free)
            } else {
                (
                    self.world.topology.node(self.node).spec.disk,
                    &mut g.disk_free[self.node.index()],
                )
            };
            let bw = if is_write {
                spec.write_bw
            } else {
                spec.read_bw
            };
            let mut dur = spec.request_overhead + SimDuration::from_secs_f64(bytes as f64 / bw);
            // A straggling node is slow at everything local, its scratch
            // disk included; the shared NFS server is unaffected.
            if !is_nfs {
                if let Some(plan) = self.world.faults.get() {
                    let f = plan.compute_factor(self.node, self.clock);
                    if f != 1.0 {
                        dur = SimDuration::from_nanos((dur.nanos() as f64 * f).round() as u64);
                    }
                }
            }
            let start = self.clock.max(*free);
            *free = start + dur;
            let finish = start + dur;
            self.stats.disk_time += finish - self.clock;
            let t0 = self.clock;
            self.clock = finish;
            if is_write {
                self.stats.disk_write_bytes += bytes;
            } else {
                self.stats.disk_read_bytes += bytes;
            }
            if let Some(tr) = self.trace() {
                let kind = match (is_nfs, is_write) {
                    (true, _) => crate::trace::EventKind::Nfs { bytes },
                    (false, true) => crate::trace::EventKind::DiskWrite { bytes },
                    (false, false) => crate::trace::EventKind::DiskRead { bytes },
                };
                tr.record(self.pid, t0, finish, kind);
            }
        }
        self.release_turn();
    }

    /// Read `bytes` from this node's scratch disk (serialized with other
    /// requests to the same device; the cost includes queueing).
    pub fn disk_read(&mut self, bytes: u64) {
        self.device_io(bytes, false, false);
    }

    /// Write `bytes` to this node's scratch disk.
    pub fn disk_write(&mut self, bytes: u64) {
        self.device_io(bytes, false, true);
    }

    /// Read `bytes` from the shared NFS server (one server, cluster-wide
    /// contention).
    pub fn nfs_read(&mut self, bytes: u64) {
        self.device_io(bytes, true, false);
    }

    /// Write `bytes` to the shared NFS server.
    pub fn nfs_write(&mut self, bytes: u64) {
        self.device_io(bytes, true, true);
    }
}

type ProcFn = Box<dyn FnOnce(&mut ProcCtx) -> Box<dyn Any + Send> + Send>;

struct ProcSpawn {
    node: NodeId,
    name: String,
    f: ProcFn,
}

/// Simulation builder: define a topology, spawn processes, run.
pub struct Sim {
    world: Arc<World>,
    spawns: Vec<ProcSpawn>,
    exec: Execution,
}

/// Final report of one process.
#[derive(Debug)]
pub struct ProcReport {
    /// Process id.
    pub pid: Pid,
    /// Process name given at spawn.
    pub name: String,
    /// Node it ran on.
    pub node: NodeId,
    /// Virtual time its closure returned.
    pub finish: SimTime,
    /// Accumulated statistics.
    pub stats: ProcStats,
}

/// Result of a completed simulation.
pub struct SimReport {
    /// Per-process reports, indexed by pid.
    pub procs: Vec<ProcReport>,
    /// Per-process return values, indexed by pid.
    results: Vec<Option<Box<dyn Any + Send>>>,
    /// Messages that were sent to already-finished processes.
    pub dropped_msgs: u64,
    /// The execution trace, when tracing was enabled.
    pub trace: Option<Arc<crate::trace::Trace>>,
}

impl SimReport {
    /// The virtual time at which the last process finished — the paper's
    /// "execution time" of a run.
    pub fn makespan(&self) -> SimTime {
        self.procs
            .iter()
            .map(|p| p.finish)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Take the typed return value of one process.
    pub fn result<T: 'static>(&mut self, pid: Pid) -> T {
        *self.results[pid.index()]
            .take()
            .unwrap_or_else(|| panic!("{pid} produced no result or it was already taken"))
            .downcast::<T>()
            .unwrap_or_else(|_| panic!("{pid} result is not a {}", std::any::type_name::<T>()))
    }

    /// Aggregate statistics over all processes.
    pub fn total_stats(&self) -> ProcStats {
        let mut total = ProcStats::default();
        for p in &self.procs {
            total.merge(&p.stats);
        }
        total
    }
}

impl Sim {
    /// New simulation over `topology`, using the process-wide default
    /// execution mode (see [`set_default_execution`]).
    pub fn new(topology: Topology) -> Sim {
        Sim {
            world: Arc::new(World::new(topology)),
            spawns: Vec::new(),
            exec: default_execution(),
        }
    }

    /// Choose the execution mode for this run. Both modes produce
    /// bit-identical virtual-time results; [`Execution::Parallel`]
    /// overlaps compute segments across cores.
    pub fn set_execution(&mut self, exec: Execution) {
        self.exec = exec;
    }

    /// The execution mode this run will use.
    pub fn execution(&self) -> Execution {
        self.exec
    }

    /// Access the world (to pre-populate the filesystem).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Turn on execution tracing for this run; every simulation-visible
    /// operation records a timeline span. Returns the trace handle (also
    /// available on the final [`SimReport`]).
    pub fn enable_tracing(&mut self) -> Arc<crate::trace::Trace> {
        self.world
            .trace
            .get_or_init(|| Arc::new(crate::trace::Trace::new()))
            .clone()
    }

    /// Install a fault plan for this run (see [`crate::FaultPlan`]): node
    /// crashes, stragglers, link faults and message drops, all scheduled
    /// in virtual time and replayed bit-identically in both execution
    /// modes. The first installed plan wins; later calls return it
    /// unchanged.
    pub fn set_fault_plan(
        &mut self,
        plan: crate::faults::FaultPlan,
    ) -> Arc<crate::faults::FaultPlan> {
        self.world.faults.get_or_init(|| Arc::new(plan)).clone()
    }

    /// Register a process on `node`. Processes start at virtual time zero
    /// in registration order. Returns the process id.
    pub fn spawn<T, F>(&mut self, node: NodeId, name: impl Into<String>, f: F) -> Pid
    where
        T: Send + 'static,
        F: FnOnce(&mut ProcCtx) -> T + Send + 'static,
    {
        assert!(
            node.index() < self.world.topology.len(),
            "spawn on unknown {node}"
        );
        let pid = Pid(self.spawns.len() as u32);
        self.spawns.push(ProcSpawn {
            node,
            name: name.into(),
            f: Box::new(move |ctx| Box::new(f(ctx)) as Box<dyn Any + Send>),
        });
        pid
    }

    /// Run the simulation to completion and return the report.
    ///
    /// Panics if any process panicked (with that panic's message) or if a
    /// distributed deadlock was detected (with a per-process diagnostic).
    pub fn run(self) -> SimReport {
        let n = self.spawns.len();
        assert!(n > 0, "simulation has no processes");
        let proc_nodes: Arc<Vec<NodeId>> = Arc::new(self.spawns.iter().map(|s| s.node).collect());
        let nodes = self.world.topology.len();
        let engine = Arc::new(Engine {
            inner: Mutex::new(Inner {
                procs: self
                    .spawns
                    .iter()
                    .map(|s| ProcState {
                        name: s.name.clone(),
                        node: s.node,
                        clock: SimTime::ZERO,
                        gen: 0,
                        status: Status::Ready,
                        wake_reason: WakeReason::Turn,
                        mailbox: VecDeque::new(),
                        slot: Arc::new(Slot::new()),
                        finish: None,
                        stats: ProcStats::default(),
                    })
                    .collect(),
                runnable: BinaryHeap::new(),
                live: n,
                deadlocked: false,
                exec: self.exec,
                turn: None,
                inflight: Vec::new(),
                nic_free: vec![SimTime::ZERO; nodes],
                disk_free: vec![SimTime::ZERO; nodes],
                nfs_free: SimTime::ZERO,
                dropped_msgs: 0,
                fault_seq: 0,
                panics: Vec::new(),
            }),
            done: Condvar::new(),
        });

        type ResultSlots = Vec<Option<Box<dyn Any + Send>>>;
        let results: Arc<Mutex<ResultSlots>> = Arc::new(Mutex::new((0..n).map(|_| None).collect()));

        let mut handles = Vec::with_capacity(n);
        for (i, spawn) in self.spawns.into_iter().enumerate() {
            let pid = Pid(i as u32);
            let engine = engine.clone();
            let world = self.world.clone();
            let proc_nodes = proc_nodes.clone();
            let results = results.clone();
            let slot = engine.inner.lock().procs[i].slot.clone();
            let handle = std::thread::Builder::new()
                .name(format!("sim-{}", spawn.name))
                .stack_size(1 << 21)
                .spawn(move || {
                    // Wait for the first grant.
                    let (clock, reason) = slot.park();
                    let mut ctx = ProcCtx {
                        engine: engine.clone(),
                        world,
                        proc_nodes,
                        pid,
                        node: spawn.node,
                        clock,
                        stats: ProcStats::default(),
                    };
                    if reason == WakeReason::Deadlock {
                        // Simulation tore down before we ever ran.
                        finish_proc(&engine, &mut ctx, None);
                        return;
                    }
                    // Process start commits nothing: release the token so
                    // starts overlap in parallel mode.
                    ctx.release_turn();
                    let f = spawn.f;
                    let outcome = panic::catch_unwind(AssertUnwindSafe(|| f(&mut ctx)));
                    match outcome {
                        Ok(val) => {
                            results.lock()[pid.index()] = Some(val);
                            finish_proc(&engine, &mut ctx, None);
                        }
                        Err(payload) => {
                            let (msg, was_deadlock) = describe_panic(payload.as_ref());
                            finish_proc(&engine, &mut ctx, Some((msg, was_deadlock)));
                        }
                    }
                })
                .expect("spawn simulation thread");
            handles.push(handle);
        }

        // Enqueue every process at its start time and wait for the end.
        {
            let mut g = engine.inner.lock();
            for i in 0..n {
                let t = g.procs[i].clock;
                Engine::push(&mut g, Pid(i as u32), t);
            }
            engine.try_dispatch(&mut g);
            while g.live > 0 {
                engine.done.wait(&mut g);
            }
        }
        for h in handles {
            let _ = h.join();
        }

        let g = engine.inner.lock();
        // Report application panics first; deadlock only if nothing else.
        if let Some((pid, msg, _)) = g
            .panics
            .iter()
            .find(|(_, _, was_deadlock)| !*was_deadlock)
            .cloned()
        {
            panic!("simulated process {pid} panicked: {msg}");
        }
        if let Some((_, msg, _)) = g.panics.first().cloned() {
            panic!("{msg}");
        }
        let procs = g
            .procs
            .iter()
            .enumerate()
            .map(|(i, p)| ProcReport {
                pid: Pid(i as u32),
                name: p.name.clone(),
                node: p.node,
                finish: p.finish.unwrap_or(p.clock),
                stats: p.stats.clone(),
            })
            .collect();
        let dropped = g.dropped_msgs;
        drop(g);
        let results = Arc::try_unwrap(results)
            .map(|m| m.into_inner())
            .unwrap_or_else(|arc| {
                let mut g = arc.lock();
                g.iter_mut().map(|o| o.take()).collect()
            });
        SimReport {
            procs,
            results,
            dropped_msgs: dropped,
            trace: self.world.trace.get().cloned(),
        }
    }
}

fn describe_panic(payload: &(dyn Any + Send)) -> (String, bool) {
    if let Some(note) = payload.downcast_ref::<DeadlockNote>() {
        (note.0.clone(), true)
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        ((*s).to_string(), false)
    } else if let Some(s) = payload.downcast_ref::<String>() {
        (s.clone(), false)
    } else {
        ("<non-string panic payload>".to_string(), false)
    }
}

fn finish_proc(engine: &Arc<Engine>, ctx: &mut ProcCtx, panic_info: Option<(String, bool)>) {
    let pid = ctx.pid;
    if panic_info.is_none() {
        // Normal completion is itself a visible event: align so the
        // transition to Done happens at a deterministic point of the
        // global order (e.g. whether a message to this process is
        // dropped must not depend on wall-clock scheduling). During
        // deadlock teardown the alignment is skipped.
        let _ = ctx.align_quiet();
    }
    let mut g = engine.inner.lock();
    if g.turn == Some(pid) {
        g.turn = None;
    }
    g.inflight.retain(|&(q, _)| q != pid);
    {
        let p = &mut g.procs[pid.index()];
        p.status = Status::Done;
        p.finish = Some(ctx.clock);
        p.clock = ctx.clock;
        p.stats = std::mem::take(&mut ctx.stats);
        p.gen += 1; // invalidate any stale heap entries
    }
    if let Some((msg, was_deadlock)) = panic_info {
        g.panics.push((pid, msg, was_deadlock));
    }
    g.live -= 1;
    if g.live == 0 {
        engine.done.notify_all();
    } else if !g.deadlocked {
        engine.try_dispatch(&mut g);
    }
}
