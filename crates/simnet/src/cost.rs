//! CPU cost model.
//!
//! Computation inside a simulated process is *real* Rust code (so results
//! are correct), but the virtual time it is charged is derived from an
//! abstract work description — the amount of work the modeled platform
//! (a Comet node) would perform, at the modeled efficiency of the paradigm's
//! language runtime (native C/C++ vs JVM).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use parking_lot::Mutex;

use crate::time::SimDuration;
use crate::topology::NodeSpec;

/// An abstract amount of CPU work: floating-point/integer operations plus
/// memory traffic. Duration is the sum of both components (no overlap), a
/// deliberately pessimistic roofline that suits the byte-crunching workloads
/// reproduced here.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Work {
    /// Scalar operations executed.
    pub flops: f64,
    /// Bytes moved through the memory hierarchy.
    pub mem_bytes: f64,
}

impl Work {
    /// No work.
    pub const NONE: Work = Work {
        flops: 0.0,
        mem_bytes: 0.0,
    };

    /// Pure compute work.
    #[inline]
    pub fn flops(n: f64) -> Work {
        Work {
            flops: n,
            mem_bytes: 0.0,
        }
    }

    /// Pure memory-streaming work.
    #[inline]
    pub fn mem_bytes(n: f64) -> Work {
        Work {
            flops: 0.0,
            mem_bytes: n,
        }
    }

    /// Both components.
    #[inline]
    pub fn new(flops: f64, mem_bytes: f64) -> Work {
        Work { flops, mem_bytes }
    }

    /// Sum of two work descriptions.
    #[inline]
    pub fn plus(self, other: Work) -> Work {
        Work {
            flops: self.flops + other.flops,
            mem_bytes: self.mem_bytes + other.mem_bytes,
        }
    }

    /// Work scaled by a factor (e.g. logical-to-sample scale of a dataset).
    #[inline]
    pub fn scaled(self, k: f64) -> Work {
        Work {
            flops: self.flops * k,
            mem_bytes: self.mem_bytes * k,
        }
    }

    /// Time to execute this work on one core of `node`, multiplied by the
    /// paradigm's `runtime_factor` ([`RuntimeClass`]).
    pub fn duration_on(&self, node: &NodeSpec, runtime_factor: f64) -> SimDuration {
        let secs = self.flops / node.flops_per_core + self.mem_bytes / node.mem_bw_per_core;
        SimDuration::from_secs_f64(secs * runtime_factor)
    }
}

/// The language-runtime efficiency class of a paradigm, expressed as a
/// multiplier over native single-core execution time.
///
/// The paper's stacks split exactly this way (Sec. IV, "Operating system"):
/// HPC frameworks compile to native code; Big Data frameworks run on the
/// JVM, with boxing, garbage collection and interpretation overheads on
/// record-at-a-time processing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuntimeClass {
    /// C/C++/Fortran compiled code (MPI, OpenMP, OpenSHMEM).
    Native,
    /// JVM bytecode operating on boxed records (Spark, Hadoop).
    Jvm,
}

impl RuntimeClass {
    /// Execution-time multiplier relative to native code.
    ///
    /// 2.8x for the JVM reflects measured gaps on text-parsing and
    /// pointer-chasing record workloads (not tight numeric loops, where the
    /// JIT narrows the gap — none of the reproduced benchmarks are such
    /// loops on the Big Data side).
    #[inline]
    pub fn factor(self) -> f64 {
        match self {
            RuntimeClass::Native => 1.0,
            RuntimeClass::Jvm => 2.8,
        }
    }
}

/// Message-size threshold (bytes) above which allreduce switches from
/// recursive doubling to the bandwidth-optimal ring algorithm.
///
/// This matches real MPI tuning tables: below the threshold the
/// latency term (⌈log₂ n⌉ rounds vs 2(n−1) ring steps) dominates and
/// recursive doubling wins; above it, moving 1/n of the vector per step
/// wins on bandwidth. The ring additionally requires a power-of-two
/// communicator here (matching the restriction in the minimpi
/// implementation), so non-power-of-two sizes always fold through
/// recursive doubling.
pub const ALLREDUCE_RING_THRESHOLD: u64 = 64 * 1024;

/// Which algorithm the tuned allreduce selection picks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllreduceAlgo {
    /// ⌈log₂ n⌉ full-vector exchange rounds (latency-optimal).
    RecursiveDoubling,
    /// Reduce-scatter + allgather ring, 2(n−1) steps of 1/n of the
    /// vector each (bandwidth-optimal).
    Ring,
}

/// Memoized algorithm-selection table keyed by `(comm size, bytes)`.
///
/// Workloads like PageRank evaluate the same selection for the same
/// communicator and vector size every iteration; the table makes repeat
/// lookups a single hash probe. Selection itself is a pure function of
/// the key, so memoization cannot change any virtual-time result —
/// [`collective_memo_stats`] exposes hit/miss counters so benchmarks can
/// verify the cache actually absorbs the traffic.
static ALLREDUCE_MEMO: OnceLock<Mutex<HashMap<(u32, u64), AllreduceAlgo>>> = OnceLock::new();
static MEMO_HITS: AtomicU64 = AtomicU64::new(0);
static MEMO_MISSES: AtomicU64 = AtomicU64::new(0);

fn allreduce_algo_uncached(comm_size: u32, bytes: u64) -> AllreduceAlgo {
    if bytes <= ALLREDUCE_RING_THRESHOLD || !comm_size.is_power_of_two() {
        AllreduceAlgo::RecursiveDoubling
    } else {
        AllreduceAlgo::Ring
    }
}

/// Tuned allreduce algorithm for a `comm_size`-rank communicator moving
/// `bytes` per rank, memoized on `(comm size, bytes)`.
pub fn allreduce_algo(comm_size: u32, bytes: u64) -> AllreduceAlgo {
    let memo = ALLREDUCE_MEMO.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(&algo) = memo.lock().get(&(comm_size, bytes)) {
        MEMO_HITS.fetch_add(1, Ordering::Relaxed);
        return algo;
    }
    MEMO_MISSES.fetch_add(1, Ordering::Relaxed);
    let algo = allreduce_algo_uncached(comm_size, bytes);
    memo.lock().insert((comm_size, bytes), algo);
    algo
}

/// `(hits, misses)` of the collective-selection memo since process
/// start. Diagnostic only.
pub fn collective_memo_stats() -> (u64, u64) {
    (
        MEMO_HITS.load(Ordering::Relaxed),
        MEMO_MISSES.load(Ordering::Relaxed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_combines_flops_and_bytes() {
        let node = NodeSpec::comet();
        let w = Work::new(node.flops_per_core, node.mem_bw_per_core);
        // One second of flops + one second of memory = two seconds native.
        let d = w.duration_on(&node, RuntimeClass::Native.factor());
        assert_eq!(d.nanos(), 2_000_000_000);
    }

    #[test]
    fn jvm_factor_multiplies() {
        let node = NodeSpec::comet();
        let w = Work::flops(node.flops_per_core);
        let native = w.duration_on(&node, RuntimeClass::Native.factor());
        let jvm = w.duration_on(&node, RuntimeClass::Jvm.factor());
        let ratio = jvm.nanos() as f64 / native.nanos() as f64;
        assert!((ratio - RuntimeClass::Jvm.factor()).abs() < 1e-6);
    }

    #[test]
    fn allreduce_selection_rule() {
        // Small vectors: latency-optimal recursive doubling.
        assert_eq!(allreduce_algo(4, 1024), AllreduceAlgo::RecursiveDoubling);
        assert_eq!(
            allreduce_algo(8, ALLREDUCE_RING_THRESHOLD),
            AllreduceAlgo::RecursiveDoubling
        );
        // Large vectors on a power-of-two communicator: ring.
        assert_eq!(
            allreduce_algo(4, ALLREDUCE_RING_THRESHOLD + 1),
            AllreduceAlgo::Ring
        );
        // Non-power-of-two sizes always fold through recursive doubling.
        assert_eq!(allreduce_algo(6, 1 << 22), AllreduceAlgo::RecursiveDoubling);
    }

    #[test]
    fn allreduce_memo_caches_repeat_lookups() {
        // An unusual key no other test uses, so the first lookup misses.
        let key = (16u32, 777_777u64);
        let (_, m0) = collective_memo_stats();
        let first = allreduce_algo(key.0, key.1);
        let (h1, m1) = collective_memo_stats();
        assert_eq!(m1, m0 + 1, "first lookup must miss");
        for _ in 0..10 {
            assert_eq!(allreduce_algo(key.0, key.1), first);
        }
        let (h2, m2) = collective_memo_stats();
        assert_eq!(m2, m1, "repeat lookups must not miss");
        assert!(h2 >= h1 + 10, "repeat lookups must hit");
        // Memoized and uncached selection agree for a spread of keys.
        for comm in [2u32, 3, 4, 8, 12, 16, 64] {
            for bytes in [1u64, 1 << 10, 1 << 16, (1 << 16) + 1, 1 << 24] {
                assert_eq!(
                    allreduce_algo(comm, bytes),
                    allreduce_algo_uncached(comm, bytes)
                );
            }
        }
    }

    #[test]
    fn zero_work_is_free_and_scaling_composes() {
        let node = NodeSpec::comet();
        assert_eq!(Work::NONE.duration_on(&node, 1.0).nanos(), 0);
        let w = Work::new(10.0, 20.0).scaled(3.0).plus(Work::flops(2.0));
        assert_eq!(w.flops, 32.0);
        assert_eq!(w.mem_bytes, 60.0);
    }
}
