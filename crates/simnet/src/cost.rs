//! CPU cost model.
//!
//! Computation inside a simulated process is *real* Rust code (so results
//! are correct), but the virtual time it is charged is derived from an
//! abstract work description — the amount of work the modeled platform
//! (a Comet node) would perform, at the modeled efficiency of the paradigm's
//! language runtime (native C/C++ vs JVM).

use crate::time::SimDuration;
use crate::topology::NodeSpec;

/// An abstract amount of CPU work: floating-point/integer operations plus
/// memory traffic. Duration is the sum of both components (no overlap), a
/// deliberately pessimistic roofline that suits the byte-crunching workloads
/// reproduced here.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Work {
    /// Scalar operations executed.
    pub flops: f64,
    /// Bytes moved through the memory hierarchy.
    pub mem_bytes: f64,
}

impl Work {
    /// No work.
    pub const NONE: Work = Work {
        flops: 0.0,
        mem_bytes: 0.0,
    };

    /// Pure compute work.
    #[inline]
    pub fn flops(n: f64) -> Work {
        Work {
            flops: n,
            mem_bytes: 0.0,
        }
    }

    /// Pure memory-streaming work.
    #[inline]
    pub fn mem_bytes(n: f64) -> Work {
        Work {
            flops: 0.0,
            mem_bytes: n,
        }
    }

    /// Both components.
    #[inline]
    pub fn new(flops: f64, mem_bytes: f64) -> Work {
        Work { flops, mem_bytes }
    }

    /// Sum of two work descriptions.
    #[inline]
    pub fn plus(self, other: Work) -> Work {
        Work {
            flops: self.flops + other.flops,
            mem_bytes: self.mem_bytes + other.mem_bytes,
        }
    }

    /// Work scaled by a factor (e.g. logical-to-sample scale of a dataset).
    #[inline]
    pub fn scaled(self, k: f64) -> Work {
        Work {
            flops: self.flops * k,
            mem_bytes: self.mem_bytes * k,
        }
    }

    /// Time to execute this work on one core of `node`, multiplied by the
    /// paradigm's `runtime_factor` ([`RuntimeClass`]).
    pub fn duration_on(&self, node: &NodeSpec, runtime_factor: f64) -> SimDuration {
        let secs = self.flops / node.flops_per_core + self.mem_bytes / node.mem_bw_per_core;
        SimDuration::from_secs_f64(secs * runtime_factor)
    }
}

/// The language-runtime efficiency class of a paradigm, expressed as a
/// multiplier over native single-core execution time.
///
/// The paper's stacks split exactly this way (Sec. IV, "Operating system"):
/// HPC frameworks compile to native code; Big Data frameworks run on the
/// JVM, with boxing, garbage collection and interpretation overheads on
/// record-at-a-time processing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuntimeClass {
    /// C/C++/Fortran compiled code (MPI, OpenMP, OpenSHMEM).
    Native,
    /// JVM bytecode operating on boxed records (Spark, Hadoop).
    Jvm,
}

impl RuntimeClass {
    /// Execution-time multiplier relative to native code.
    ///
    /// 2.8x for the JVM reflects measured gaps on text-parsing and
    /// pointer-chasing record workloads (not tight numeric loops, where the
    /// JIT narrows the gap — none of the reproduced benchmarks are such
    /// loops on the Big Data side).
    #[inline]
    pub fn factor(self) -> f64 {
        match self {
            RuntimeClass::Native => 1.0,
            RuntimeClass::Jvm => 2.8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_combines_flops_and_bytes() {
        let node = NodeSpec::comet();
        let w = Work::new(node.flops_per_core, node.mem_bw_per_core);
        // One second of flops + one second of memory = two seconds native.
        let d = w.duration_on(&node, RuntimeClass::Native.factor());
        assert_eq!(d.nanos(), 2_000_000_000);
    }

    #[test]
    fn jvm_factor_multiplies() {
        let node = NodeSpec::comet();
        let w = Work::flops(node.flops_per_core);
        let native = w.duration_on(&node, RuntimeClass::Native.factor());
        let jvm = w.duration_on(&node, RuntimeClass::Jvm.factor());
        let ratio = jvm.nanos() as f64 / native.nanos() as f64;
        assert!((ratio - RuntimeClass::Jvm.factor()).abs() < 1e-6);
    }

    #[test]
    fn zero_work_is_free_and_scaling_composes() {
        let node = NodeSpec::comet();
        assert_eq!(Work::NONE.duration_on(&node, 1.0).nanos(), 0);
        let w = Work::new(10.0, 20.0).scaled(3.0).plus(Work::flops(2.0));
        assert_eq!(w.flops, 32.0);
        assert_eq!(w.mem_bytes, 60.0);
    }
}
