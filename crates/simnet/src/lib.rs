//! `hpcbd-simnet` — a deterministic virtual-time cluster simulator.
//!
//! This crate is the substrate of the `hpcbd` study: a conservative
//! discrete-event engine on which mini implementations of MPI, OpenMP,
//! OpenSHMEM, HDFS, Hadoop MapReduce and Spark all execute. Simulated
//! processes are stackful coroutines running *real* Rust code on small
//! lazily-paged stacks (a full 48k-process Comet fits on a laptop); the
//! time they are charged comes from explicit cost models for computation
//! ([`Work`]/[`RuntimeClass`]), network transports ([`Transport`]), and
//! storage devices ([`topology::DiskSpec`]).
//!
//! Design (see `DESIGN.md` §2 at the repository root):
//!
//! * **Ordered commits.** Simulation-visible operations are totally
//!   ordered: the process performing one always holds the commit token and
//!   has the minimum virtual clock among runnable processes. This makes
//!   every schedule, and therefore every reported time, reproducible
//!   bit-for-bit. Under the default [`Execution::Sequential`] mode the
//!   token doubles as a baton — one process runs at a time; under
//!   [`Execution::Parallel`] the compute segments between commits overlap
//!   across real cores while the commit order (and every virtual-time
//!   result) stays bit-identical (see [`parallel`]).
//! * **Lazy conservatism.** Local computation (`compute`, `advance`)
//!   advances the private clock without synchronization. Any operation with
//!   global effect (message delivery, NIC/disk reservation) first yields
//!   until the process is globally minimal, so shared resources are always
//!   reserved in virtual-time order.
//! * **Logical sizes.** Messages and files carry a logical byte size that
//!   drives every cost, decoupled from the (optionally much smaller) real
//!   Rust payload used for correctness.
//!
//! # Example
//!
//! ```
//! use hpcbd_simnet::{MatchSpec, Payload, Sim, Topology, Transport};
//!
//! let mut sim = Sim::new(Topology::comet(2));
//! let ping = sim.spawn(hpcbd_simnet::NodeId(0), "ping", |ctx| {
//!     ctx.send(hpcbd_simnet::Pid(1), 7, 1024, Payload::Empty, &Transport::rdma_verbs());
//! });
//! let pong = sim.spawn(hpcbd_simnet::NodeId(1), "pong", |ctx| {
//!     let m = ctx.recv(MatchSpec::tag(7));
//!     (m.bytes, ctx.now())
//! });
//! let mut report = sim.run();
//! let (bytes, t) = report.result::<(u64, hpcbd_simnet::SimTime)>(pong);
//! assert_eq!(bytes, 1024);
//! assert!(t > hpcbd_simnet::SimTime::ZERO);
//! let _ = ping;
//! ```

#![warn(missing_docs)]

pub mod abort;
pub mod ckpt;
mod coro;
pub mod cost;
pub mod dataset;
pub mod engine;
pub mod error;
pub mod faults;
pub mod fs;
pub mod hash;
pub mod job;
pub mod message;
pub mod observe;
pub mod parallel;
pub mod perturb;
pub mod queue;
pub mod selfprof;
pub mod speculate;
pub mod stats;
pub mod telemetry;
pub mod time;
pub mod topology;
pub mod trace;
pub mod transport;

pub use abort::{StructuredAbort, STRUCTURED_ABORT_MARKER};
pub use ckpt::{CheckpointMode, Drain, DrainSchedule, FaultPolicy};
pub use cost::{
    allreduce_algo, collective_memo_stats, AllreduceAlgo, RuntimeClass, Work,
    ALLREDUCE_RING_THRESHOLD,
};
pub use dataset::InputFormat;
pub use engine::{Pid, ProcCtx, ProcReport, Sim, SimReport, World};
pub use error::{DeadlockNote, RecvTimeout};
pub use faults::{FaultAtom, FaultEvent, FaultPlan, LinkFault};
pub use fs::{FileEntry, Mount, SimFs};
pub use hash::{det_hash, partition_of, DetHasher};
pub use job::{JobChannel, LaunchEnv, TaskClosure, JOB_TAG_BASE};
pub use message::{MatchSpec, Message, Payload, Tag};
pub use observe::{begin_capture, capture_active, end_capture, RunCapture};
pub use parallel::{default_execution, set_default_execution, Execution};
pub use perturb::{current_perturbation, set_perturbation, Perturbation};
pub use queue::{CalendarQueue, OrderKey};
pub use selfprof::{
    selfprof_enabled, selfprof_from_env, selfprof_reset, selfprof_snapshot, set_selfprof, HostOp,
    HOST_OP_NAMES,
};
pub use speculate::{current_spec_bug, set_spec_bug, spec_counters_take, SpecBug};
pub use stats::ProcStats;
pub use telemetry::{
    parse_telemetry_interval, set_telemetry_interval, telemetry_from_env_value, telemetry_interval,
    MetricOp, MetricPoint, DEFAULT_TELEMETRY_INTERVAL_NS,
};
pub use time::{SimDuration, SimTime};
pub use topology::{DiskSpec, Node, NodeId, NodeSpec, Topology};
pub use trace::{json_escape, EventKind, Trace, TraceEvent};
pub use transport::Transport;

#[cfg(test)]
mod engine_tests {
    use super::*;

    fn two_node_sim() -> Sim {
        Sim::new(Topology::comet(2))
    }

    #[test]
    fn background_disk_write_overlaps_compute_and_serializes_on_device() {
        let mut sim = two_node_sim();
        let p = sim.spawn(NodeId(0), "drainer", |ctx| {
            let t0 = ctx.now();
            let done = ctx.disk_write_background(256 << 20);
            let t1 = ctx.now();
            // Issuing the drain costs the caller nothing: it overlaps.
            assert_eq!(t0, t1, "background write must not block the caller");
            assert!(done > t0, "the device still takes real time");
            // A foreground write issued while the drain is in flight
            // queues behind it on the same device.
            ctx.disk_write(1);
            assert!(
                ctx.now() > done,
                "foreground I/O must serialize after the in-flight drain: \
                 {} vs drain done {done}",
                ctx.now()
            );
            done
        });
        let mut report = sim.run();
        let done = report.result::<SimTime>(p);
        assert!(done > SimTime::ZERO);
    }

    #[test]
    fn single_process_compute_advances_clock() {
        let mut sim = two_node_sim();
        let p = sim.spawn(NodeId(0), "solo", |ctx| {
            ctx.compute(Work::flops(3.0e9), 1.0); // 1 second at 3 GFlop/s
            ctx.now()
        });
        let mut report = sim.run();
        let t = report.result::<SimTime>(p);
        assert_eq!(t.nanos(), 1_000_000_000);
        assert_eq!(report.makespan().nanos(), 1_000_000_000);
    }

    #[test]
    fn ping_pong_round_trip_time_is_symmetric() {
        let mut sim = two_node_sim();
        let tr = Transport::rdma_verbs();
        let _a = sim.spawn(NodeId(0), "a", move |ctx| {
            ctx.send(Pid(1), 1, 8, Payload::Empty, &tr);
            let m = ctx.recv(MatchSpec::tag(2));
            assert_eq!(m.src, Pid(1));
            ctx.now()
        });
        let _b = sim.spawn(NodeId(1), "b", move |ctx| {
            let m = ctx.recv(MatchSpec::tag(1));
            assert_eq!(m.src, Pid(0));
            ctx.send(Pid(0), 2, 8, Payload::Empty, &tr);
            ctx.now()
        });
        let report = sim.run();
        // One 8-byte RDMA message each way: makespan well under 100us.
        assert!(report.makespan() < SimTime(100_000));
        assert!(report.makespan() > SimTime::ZERO);
    }

    #[test]
    fn determinism_across_runs() {
        fn run_once() -> (u64, Vec<u64>) {
            let mut sim = Sim::new(Topology::comet(4));
            let tr = Transport::ipoib_socket();
            let n = 8u32;
            for i in 0..n {
                sim.spawn(NodeId(i % 4), format!("w{i}"), move |ctx| {
                    // Everyone chatters with everyone in a ring.
                    let next = Pid((i + 1) % n);
                    ctx.compute(Work::flops(1.0e6 * (i as f64 + 1.0)), 1.0);
                    ctx.send(next, 9, 1 << (10 + (i % 4)), Payload::Empty, &tr);
                    let m = ctx.recv(MatchSpec::tag(9));
                    ctx.disk_write(1 << 20);
                    m.bytes
                });
            }
            let report = sim.run();
            let finishes = report.procs.iter().map(|p| p.finish.nanos()).collect();
            (report.makespan().nanos(), finishes)
        }
        let first = run_once();
        for _ in 0..3 {
            assert_eq!(run_once(), first, "simulation must be deterministic");
        }
    }

    #[test]
    fn parallel_execution_is_bit_identical_to_sequential() {
        fn run_once(exec: Execution) -> (u64, Vec<u64>, Vec<ProcStats>) {
            let mut sim = Sim::new(Topology::comet(4));
            sim.set_execution(exec);
            let tr = Transport::ipoib_socket();
            let n = 8u32;
            for i in 0..n {
                sim.spawn(NodeId(i % 4), format!("w{i}"), move |ctx| {
                    let next = Pid((i + 1) % n);
                    for round in 0..4u64 {
                        ctx.compute(Work::flops(1.0e5 * (i as f64 + round as f64 + 1.0)), 1.0);
                        ctx.send(next, 9, 1 << (10 + (i % 4)), Payload::Empty, &tr);
                        let m = ctx.recv(MatchSpec::tag(9));
                        ctx.disk_write(m.bytes);
                    }
                    ctx.one_sided_transfer(NodeId((i + 1) % 4), 4096, &Transport::rdma_verbs(), 2);
                });
            }
            let report = sim.run();
            (
                report.makespan().nanos(),
                report.procs.iter().map(|p| p.finish.nanos()).collect(),
                report.procs.iter().map(|p| p.stats.clone()).collect(),
            )
        }
        let seq = run_once(Execution::Sequential);
        for threads in [1, 2, 8] {
            assert_eq!(
                run_once(Execution::Parallel { threads }),
                seq,
                "parallel({threads}) diverged from sequential"
            );
        }
        for threads in [1, 2, 8] {
            assert_eq!(
                run_once(Execution::Speculative { threads }),
                seq,
                "speculative({threads}) diverged from sequential"
            );
        }
    }

    /// A single process on an idle machine speculates its device
    /// reservations deterministically: the snapshot can never go stale,
    /// so every one commits clean and the counters prove the optimistic
    /// path actually ran (this is the workload the criterion overhead
    /// benches reuse).
    #[test]
    fn speculative_single_process_device_ops_commit_clean() {
        let mut sim = two_node_sim();
        sim.set_execution(Execution::Speculative { threads: 1 });
        sim.spawn(NodeId(0), "solo", |ctx| {
            for _ in 0..8 {
                ctx.disk_write(1 << 20);
                ctx.disk_read(1 << 20);
                ctx.nfs_write(1 << 16);
            }
        });
        let report = sim.run();
        assert!(
            report.spec_commits >= 24,
            "expected every device op to commit speculatively, got {}",
            report.spec_commits
        );
        assert_eq!(
            report.spec_rollbacks, 0,
            "uncontended cells cannot go stale"
        );
    }

    /// `SpecBug::ForceReplay` drives every validated-class speculation
    /// down the rollback-and-replay path; results must still be
    /// bit-identical because a replay recomputes from live state under
    /// the token. This is the soundness half of the planted-bug pair
    /// (the unsound half, `TrustStalePrediction`, is proven *caught* by
    /// the schedule-explorer self-test).
    #[test]
    fn speculative_forced_replay_is_bit_identical() {
        fn run_once(exec: Execution) -> (u64, Vec<u64>) {
            let mut sim = Sim::new(Topology::comet(2));
            sim.set_execution(exec);
            let tr = Transport::ipoib_socket();
            for i in 0..4u32 {
                sim.spawn(NodeId(i % 2), format!("w{i}"), move |ctx| {
                    let next = Pid((i + 1) % 4);
                    for _ in 0..3u64 {
                        ctx.compute(Work::flops(5.0e4 * (i as f64 + 1.0)), 1.0);
                        ctx.send(next, 3, 1 << 12, Payload::Empty, &tr);
                        let m = ctx.recv(MatchSpec::tag(3));
                        ctx.disk_write(m.bytes);
                        ctx.disk_write_background(1 << 18);
                    }
                });
            }
            let report = sim.run();
            (
                report.makespan().nanos(),
                report.procs.iter().map(|p| p.finish.nanos()).collect(),
            )
        }
        let seq = run_once(Execution::Sequential);
        set_spec_bug(Some(SpecBug::ForceReplay));
        let spec = run_once(Execution::Speculative { threads: 4 });
        set_spec_bug(None);
        assert_eq!(spec, seq, "forced replays changed a virtual-time result");
    }

    #[test]
    fn execution_mode_is_reported_by_builder() {
        let mut sim = two_node_sim();
        assert_eq!(sim.execution(), Execution::Sequential);
        sim.set_execution(Execution::Parallel { threads: 3 });
        assert_eq!(sim.execution(), Execution::Parallel { threads: 3 });
    }

    #[test]
    fn nic_serializes_concurrent_transfers() {
        // Two processes on node0 blast large messages to node1 at the same
        // virtual time: the shared sender NIC must serialize them, so the
        // second arrival is roughly one transfer later than the first.
        let mut sim = two_node_sim();
        let tr = Transport::rdma_verbs();
        let bytes = 64u64 << 20; // 64 MiB => ~10ms on 6.4 GB/s
        for i in 0..2 {
            sim.spawn(NodeId(0), format!("s{i}"), move |ctx| {
                ctx.send(Pid(2), 5, bytes, Payload::Empty, &tr);
            });
        }
        let sink = sim.spawn(NodeId(1), "sink", |ctx| {
            let m1 = ctx.recv(MatchSpec::tag(5));
            let m2 = ctx.recv(MatchSpec::tag(5));
            (m1.arrival, m2.arrival)
        });
        let mut report = sim.run();
        let (a1, a2) = report.result::<(SimTime, SimTime)>(sink);
        let xfer = Transport::rdma_verbs().wire_time(bytes).nanos() as i64;
        let gap = a2.nanos() as i64 - a1.nanos() as i64;
        assert!(
            (gap - xfer).abs() < xfer / 100,
            "gap {gap} should be ~one transfer {xfer}"
        );
    }

    #[test]
    fn intra_node_messages_skip_the_nic() {
        let mut sim = two_node_sim();
        let tr = Transport::shared_memory();
        let _s = sim.spawn(NodeId(0), "s", move |ctx| {
            ctx.send(Pid(1), 1, 4096, Payload::Empty, &tr);
        });
        let r = sim.spawn(NodeId(0), "r", move |ctx| {
            ctx.recv(MatchSpec::tag(1));
            ctx.now()
        });
        let mut report = sim.run();
        let t = report.result::<SimTime>(r);
        assert!(t < SimTime(10_000), "shm message took {t}");
    }

    #[test]
    fn disk_contention_serializes_readers() {
        let mut sim = two_node_sim();
        let gb = 1u64 << 30;
        for i in 0..4 {
            sim.spawn(NodeId(0), format!("r{i}"), move |ctx| {
                ctx.disk_read(gb);
                ctx.now()
            });
        }
        let report = sim.run();
        // 4 GiB at 900 MB/s is ~4.77s; with serialization the last reader
        // finishes at the full 4-GiB mark, not at the 1-GiB mark.
        let makespan = report.makespan().as_secs_f64();
        assert!(makespan > 4.5 && makespan < 5.2, "makespan {makespan}");
    }

    #[test]
    fn recv_timeout_fires_without_sender() {
        let mut sim = two_node_sim();
        let p = sim.spawn(NodeId(0), "waiter", |ctx| {
            let r = ctx.recv_timeout(MatchSpec::tag(1), SimDuration::from_millis(5));
            (r.is_err(), ctx.now())
        });
        // A second process keeps the sim alive past the deadline.
        sim.spawn(NodeId(1), "bystander", |ctx| {
            ctx.sleep(SimDuration::from_millis(10));
        });
        let mut report = sim.run();
        let (timed_out, t) = report.result::<(bool, SimTime)>(p);
        assert!(timed_out);
        assert_eq!(t.nanos(), 5_000_000);
    }

    #[test]
    fn recv_timeout_receives_when_message_beats_deadline() {
        let mut sim = two_node_sim();
        let tr = Transport::rdma_verbs();
        let _s = sim.spawn(NodeId(0), "s", move |ctx| {
            ctx.sleep(SimDuration::from_millis(1));
            ctx.send(Pid(1), 3, 64, Payload::Empty, &tr);
        });
        let r = sim.spawn(NodeId(1), "r", |ctx| {
            ctx.recv_timeout(MatchSpec::tag(3), SimDuration::from_millis(100))
                .map(|m| m.bytes)
                .ok()
        });
        let mut report = sim.run();
        assert_eq!(report.result::<Option<u64>>(r), Some(64));
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected_and_reported() {
        let mut sim = two_node_sim();
        sim.spawn(NodeId(0), "a", |ctx| {
            ctx.recv(MatchSpec::tag(1));
        });
        sim.spawn(NodeId(1), "b", |ctx| {
            ctx.recv(MatchSpec::tag(2));
        });
        sim.run();
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn process_panic_propagates_with_message() {
        let mut sim = two_node_sim();
        sim.spawn(NodeId(0), "bad", |_ctx| panic!("boom"));
        sim.spawn(NodeId(1), "waits-forever", |ctx| {
            ctx.recv(MatchSpec::tag(1));
        });
        sim.run();
    }

    #[test]
    fn messages_to_finished_processes_are_dropped() {
        let mut sim = two_node_sim();
        let tr = Transport::rdma_verbs();
        sim.spawn(NodeId(0), "quits", |_ctx| {});
        sim.spawn(NodeId(1), "talker", move |ctx| {
            ctx.sleep(SimDuration::from_millis(1));
            ctx.send(Pid(0), 1, 8, Payload::Empty, &tr);
        });
        let report = sim.run();
        assert_eq!(report.dropped_msgs, 1);
    }

    #[test]
    fn value_payloads_share_without_copy() {
        let mut sim = two_node_sim();
        let tr = Transport::rdma_verbs();
        let big = std::sync::Arc::new((0..1000u64).collect::<Vec<_>>());
        let big2 = big.clone();
        sim.spawn(NodeId(0), "s", move |ctx| {
            ctx.send(Pid(1), 1, 8000, Payload::Value(big2), &tr);
        });
        let r = sim.spawn(NodeId(1), "r", |ctx| {
            let m = ctx.recv(MatchSpec::tag(1));
            let v = m.expect_value::<Vec<u64>>();
            v.iter().sum::<u64>()
        });
        let mut report = sim.run();
        assert_eq!(report.result::<u64>(r), 999 * 1000 / 2);
    }

    #[test]
    fn wait_time_accounts_blocking() {
        let mut sim = two_node_sim();
        let tr = Transport::rdma_verbs();
        sim.spawn(NodeId(0), "slow-sender", move |ctx| {
            ctx.sleep(SimDuration::from_millis(50));
            ctx.send(Pid(1), 1, 8, Payload::Empty, &tr);
        });
        sim.spawn(NodeId(1), "receiver", |ctx| {
            ctx.recv(MatchSpec::tag(1));
        });
        let report = sim.run();
        let wait = report.procs[1].stats.wait_time;
        assert!(
            wait >= SimDuration::from_millis(50),
            "receiver should wait ~50ms, waited {wait}"
        );
    }

    #[test]
    fn tracing_captures_the_timeline() {
        let mut sim = two_node_sim();
        let trace = sim.enable_tracing();
        let tr = Transport::rdma_verbs();
        sim.spawn(NodeId(0), "producer", move |ctx| {
            ctx.compute(Work::flops(3.0e6), 1.0);
            ctx.disk_read(1 << 20);
            ctx.send(Pid(1), 1, 4096, Payload::Empty, &tr);
        });
        sim.spawn(NodeId(1), "consumer", |ctx| {
            ctx.recv(MatchSpec::tag(1));
            ctx.disk_write(2 << 20);
        });
        let report = sim.run();
        let events = trace.sorted_events();
        let kinds: Vec<&str> = events.iter().map(|e| e.kind.label()).collect();
        assert!(kinds.contains(&"compute"));
        assert!(kinds.contains(&"disk_read"));
        assert!(kinds.contains(&"send"));
        assert!(kinds.contains(&"recv"));
        assert!(kinds.contains(&"disk_write"));
        // Spans are well-formed and within the run.
        for e in &events {
            assert!(e.start <= e.end);
            assert!(e.end <= report.makespan());
        }
        // The report carries the same trace.
        assert_eq!(report.trace.as_ref().unwrap().len(), events.len());
        // Export shapes.
        let names: Vec<String> = report.procs.iter().map(|p| p.name.clone()).collect();
        let json = trace.to_chrome_json(&names);
        assert!(json.contains("producer"));
        let txt = trace.render_text(&names);
        assert!(txt.contains("consumer"));
    }

    #[test]
    fn spans_record_nested_phase_events() {
        let mut sim = two_node_sim();
        let trace = sim.enable_tracing();
        sim.spawn(NodeId(0), "worker", |ctx| {
            ctx.span_open("job");
            for i in 0..2 {
                ctx.span_open_with(|| format!("job/iter/{i}"));
                ctx.compute(Work::flops(1.0e6), 1.0);
                ctx.span_close();
            }
            ctx.span_close();
            // Left open deliberately: must auto-close at process finish.
            ctx.span_open("dangling");
            ctx.compute(Work::flops(1.0e6), 1.0);
        });
        sim.spawn(NodeId(1), "other", |_| {});
        let report = sim.run();
        let phases: Vec<(String, u32, SimTime, SimTime)> = trace
            .sorted_events()
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Phase { label, depth } => {
                    Some((label.to_string(), *depth, e.start, e.end))
                }
                _ => None,
            })
            .collect();
        let mut labels: Vec<&str> = phases.iter().map(|p| p.0.as_str()).collect();
        labels.sort_unstable();
        assert_eq!(labels, vec!["dangling", "job", "job/iter/0", "job/iter/1"]);
        let job = phases.iter().find(|p| p.0 == "job").unwrap();
        assert_eq!(job.1, 0, "outermost span has depth 0");
        for it in phases.iter().filter(|p| p.0.starts_with("job/iter")) {
            assert_eq!(it.1, 1, "nested span has depth 1");
            assert!(job.2 <= it.2 && it.3 <= job.3, "iter inside job");
        }
        let dangling = phases.iter().find(|p| p.0 == "dangling").unwrap();
        assert_eq!(
            dangling.3, report.procs[0].finish,
            "auto-closed at process finish"
        );
    }

    #[test]
    fn spans_are_noops_without_tracing() {
        let mut sim = two_node_sim();
        sim.spawn(NodeId(0), "w", |ctx| {
            assert!(!ctx.tracing_enabled());
            ctx.span_open("never");
            ctx.span_open_with(|| unreachable!("label must not be built"));
            ctx.compute(Work::flops(1.0e6), 1.0);
            ctx.span_close();
            ctx.span_close();
            ctx.span("alsonever", |c| c.now())
        });
        sim.spawn(NodeId(1), "q", |_| {});
        let report = sim.run();
        assert!(report.trace.is_none());
    }

    #[test]
    fn tracing_off_by_default() {
        let mut sim = two_node_sim();
        sim.spawn(NodeId(0), "p", |ctx| {
            ctx.compute(Work::flops(1.0e6), 1.0);
        });
        sim.spawn(NodeId(1), "q", |_| {});
        let report = sim.run();
        assert!(report.trace.is_none());
    }

    #[test]
    fn send_to_self_is_received_later() {
        let mut sim = two_node_sim();
        let tr = Transport::shared_memory();
        let p = sim.spawn(NodeId(0), "selfie", move |ctx| {
            let me = ctx.pid();
            ctx.send(me, 5, 64, Payload::value(123u64), &tr);
            let m = ctx.recv(MatchSpec::tag(5));
            *m.expect_value::<u64>()
        });
        sim.spawn(NodeId(1), "other", |_| {});
        let mut report = sim.run();
        assert_eq!(report.result::<u64>(p), 123);
    }

    #[test]
    fn zero_byte_messages_and_zero_sleep() {
        let mut sim = two_node_sim();
        let tr = Transport::rdma_verbs();
        sim.spawn(NodeId(0), "a", move |ctx| {
            ctx.sleep(SimDuration::ZERO);
            ctx.send(Pid(1), 1, 0, Payload::Empty, &tr);
            ctx.disk_read(0);
        });
        let r = sim.spawn(NodeId(1), "b", |ctx| {
            let m = ctx.recv(MatchSpec::tag(1));
            m.bytes
        });
        let mut report = sim.run();
        assert_eq!(report.result::<u64>(r), 0);
    }

    #[test]
    fn zero_timeout_recv_expires_immediately_without_sender() {
        let mut sim = two_node_sim();
        let p = sim.spawn(NodeId(0), "w", |ctx| {
            ctx.recv_timeout(MatchSpec::tag(9), SimDuration::ZERO)
                .is_err()
        });
        sim.spawn(NodeId(1), "keepalive", |ctx| {
            ctx.sleep(SimDuration::from_millis(1));
        });
        let mut report = sim.run();
        assert!(report.result::<bool>(p));
    }

    #[test]
    fn nfs_is_a_single_shared_server() {
        // Readers on DIFFERENT nodes still serialize through NFS.
        let mut sim = two_node_sim();
        let gb = 1u64 << 30;
        for i in 0..2 {
            sim.spawn(NodeId(i), format!("nfs{i}"), move |ctx| {
                ctx.nfs_read(gb);
                ctx.now()
            });
        }
        let report = sim.run();
        // 2 GiB at 250 MB/s is ~8.6s serialized; parallel would be ~4.3s.
        let makespan = report.makespan().as_secs_f64();
        assert!(makespan > 8.0, "NFS must serialize: {makespan}");
    }

    #[test]
    fn stats_track_messages_and_disk() {
        let mut sim = two_node_sim();
        let tr = Transport::rdma_verbs();
        sim.spawn(NodeId(0), "s", move |ctx| {
            ctx.send(Pid(1), 1, 1000, Payload::Empty, &tr);
            ctx.disk_write(4096);
        });
        sim.spawn(NodeId(1), "r", |ctx| {
            ctx.recv(MatchSpec::tag(1));
            ctx.disk_read(2048);
        });
        let report = sim.run();
        assert_eq!(report.procs[0].stats.msgs_sent, 1);
        assert_eq!(report.procs[0].stats.bytes_sent, 1000);
        assert_eq!(report.procs[0].stats.disk_write_bytes, 4096);
        assert_eq!(report.procs[1].stats.msgs_recvd, 1);
        assert_eq!(report.procs[1].stats.disk_read_bytes, 2048);
        let total = report.total_stats();
        assert_eq!(total.msgs_sent, 1);
        assert_eq!(total.msgs_recvd, 1);
    }

    #[test]
    fn try_recv_only_sees_arrived_messages() {
        let mut sim = two_node_sim();
        let tr = Transport::rdma_verbs();
        let _s = sim.spawn(NodeId(0), "s", move |ctx| {
            ctx.send(Pid(1), 1, 8, Payload::Empty, &tr);
        });
        let r = sim.spawn(NodeId(1), "r", |ctx| {
            let early = ctx.try_recv(MatchSpec::tag(1)).is_some();
            ctx.sleep(SimDuration::from_millis(1));
            let late = ctx.try_recv(MatchSpec::tag(1)).is_some();
            (early, late)
        });
        let mut report = sim.run();
        let (early, late) = report.result::<(bool, bool)>(r);
        assert!(!early, "message cannot have arrived at t=0");
        assert!(late, "message must be visible after 1ms");
    }
}
