//! Virtual-time telemetry instrumentation: metric points and the
//! process-wide sampling-interval knob (`HPCBD_TELEMETRY=interval_ns`).
//!
//! The observability layer (`hpcbd-obs::metrics`) builds continuous
//! time-series — queue depth, device utilization, windowed latency
//! quantiles, SLO attainment — out of two inputs:
//!
//! 1. the deterministic event stream every capture already carries
//!    (engine- and device-level series are *derived* from it), and
//! 2. explicit [`MetricPoint`]s recorded by runtime code through
//!    [`crate::ProcCtx::metric_counter`] /
//!    [`crate::ProcCtx::metric_gauge`] /
//!    [`crate::ProcCtx::metric_observe`] for state the trace does not
//!    show (e.g. checkpoint drain-watermark lag).
//!
//! Determinism contract: a metric point is stamped with the recording
//! process's *virtual* clock and buffered per process (same discipline
//! as the trace buffer), then merged and sorted by
//! `(time, name, labels, pid, seq)` at run end. Everything about the
//! stream is a pure function of the virtual-time schedule, so telemetry
//! serializes byte-identically across
//! [`crate::Execution::Sequential`] / [`crate::Execution::Parallel`] /
//! [`crate::Execution::Speculative`]. Like `spec_commits`, metric
//! points are deliberately excluded from conformance digests
//! (`hpcbd-check` hashes capture fields explicitly).
//!
//! Cost when off: one `bool` test per `metric_*` call (the flag is
//! resolved once at spawn), nothing on any other path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::engine::Pid;
use crate::time::SimTime;

/// Default sampling interval (100 ms of virtual time) used when
/// telemetry is requested (`--telemetry`) without an explicit
/// `HPCBD_TELEMETRY=interval_ns` override.
pub const DEFAULT_TELEMETRY_INTERVAL_NS: u64 = 100_000_000;

/// How a [`MetricPoint`] mutates its `(name, labels)` series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricOp {
    /// Add to a monotone (saturating) counter.
    CounterAdd(u64),
    /// Set a gauge to an instantaneous value.
    GaugeSet(u64),
    /// Record one observation into a fixed-bucket histogram.
    Observe(u64),
}

/// One metric update, recorded by a process at a virtual-time instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricPoint {
    /// Virtual time of the update (the recording process's clock).
    pub time: SimTime,
    /// Recording process.
    pub pid: Pid,
    /// Position in the recording process's buffer — preserves program
    /// order between same-time updates from one process.
    pub seq: u32,
    /// Metric name (e.g. `ckpt.drain_lag_ns`).
    pub name: Arc<str>,
    /// Canonical label string (`key=value`, comma-separated, or empty).
    pub labels: Arc<str>,
    /// The update itself.
    pub op: MetricOp,
}

/// Sort a merged metric-point stream into its canonical export order:
/// `(time, name, labels, pid, seq)`. Per-process buffers preserve
/// program order; the sort makes the merge order across processes (a
/// wall-clock artifact) irrelevant, exactly like
/// [`crate::Trace::sorted_events`].
pub(crate) fn sort_points(points: &mut [MetricPoint]) {
    points.sort_by(|a, b| {
        (a.time, a.name.as_ref(), a.labels.as_ref(), a.pid.0, a.seq).cmp(&(
            b.time,
            b.name.as_ref(),
            b.labels.as_ref(),
            b.pid.0,
            b.seq,
        ))
    });
}

/// Encoded process-wide telemetry interval; `u64::MAX` means "not yet
/// initialized, consult the environment", `0` means "off".
static TELEMETRY: AtomicU64 = AtomicU64::new(u64::MAX);

/// Set the process-wide telemetry sampling interval (`None` disables).
/// Overrides `HPCBD_TELEMETRY`. Intervals collide with neither sentinel:
/// `u64::MAX` is not a meaningful tick, and `0` is rejected by
/// [`parse_telemetry_interval`] anyway.
pub fn set_telemetry_interval(interval_ns: Option<u64>) {
    let v = match interval_ns {
        Some(0) | None => 0,
        Some(u64::MAX) => u64::MAX - 1,
        Some(i) => i,
    };
    TELEMETRY.store(v, Ordering::SeqCst);
}

/// The process-wide telemetry sampling interval: whatever
/// [`set_telemetry_interval`] last stored, else `HPCBD_TELEMETRY`, else
/// off. A malformed environment value falls back to off, but not
/// silently: a one-time stderr warning names the rejected value
/// (mirroring [`crate::Execution::from_env`]).
pub fn telemetry_interval() -> Option<u64> {
    let v = TELEMETRY.load(Ordering::SeqCst);
    if v != u64::MAX {
        return (v != 0).then_some(v);
    }
    let (interval, rejected) = telemetry_from_env_value(std::env::var("HPCBD_TELEMETRY").ok());
    if let Some(bad) = rejected {
        static WARN_ONCE: std::sync::Once = std::sync::Once::new();
        WARN_ONCE.call_once(|| {
            eprintln!(
                "warning: unrecognized HPCBD_TELEMETRY value {bad:?} \
                 (expected a positive sampling interval in nanoseconds, \
                 e.g. HPCBD_TELEMETRY=100000000); telemetry stays off"
            );
        });
    }
    // Racing initializers agree (the env doesn't change underneath us).
    TELEMETRY.store(interval.unwrap_or(0), Ordering::SeqCst);
    interval
}

/// Resolve an `HPCBD_TELEMETRY` value (or its absence) to an interval
/// plus, when the value was malformed, the value to warn about. Split
/// from [`telemetry_interval`] so the fallback is testable without
/// touching the process environment or capturing stderr.
pub fn telemetry_from_env_value(v: Option<String>) -> (Option<u64>, Option<String>) {
    match v {
        Some(v) => match parse_telemetry_interval(&v) {
            Some(i) => (Some(i), None),
            None => (None, Some(v)),
        },
        None => (None, None),
    }
}

/// Parse a sampling interval: a positive integer nanosecond count
/// (whitespace tolerated). Zero is meaningless (an empty window) and
/// rejected, as is anything non-numeric.
pub fn parse_telemetry_interval(s: &str) -> Option<u64> {
    let n = s.trim().parse::<u64>().ok()?;
    (n > 0).then_some(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_positive_intervals() {
        assert_eq!(parse_telemetry_interval("100000000"), Some(100_000_000));
        assert_eq!(parse_telemetry_interval(" 42\n"), Some(42));
        assert_eq!(
            parse_telemetry_interval(&u64::MAX.to_string()),
            Some(u64::MAX)
        );
    }

    #[test]
    fn parse_rejects_zero_and_garbage() {
        assert_eq!(parse_telemetry_interval("0"), None);
        assert_eq!(parse_telemetry_interval(""), None);
        assert_eq!(parse_telemetry_interval("100ms"), None);
        assert_eq!(parse_telemetry_interval("-5"), None);
        assert_eq!(parse_telemetry_interval("1e9"), None);
        // One past u64::MAX overflows the parse and is rejected, not
        // wrapped or clamped to something surprising.
        assert_eq!(parse_telemetry_interval("18446744073709551616"), None);
    }

    #[test]
    fn env_fallback_reports_the_malformed_value() {
        // Well-formed values pass through without a warning.
        assert_eq!(
            telemetry_from_env_value(Some("5000".into())),
            (Some(5000), None)
        );
        // Absent variable: off, nothing to warn about.
        assert_eq!(telemetry_from_env_value(None), (None, None));
        // A malformed value falls back to off but surfaces the
        // offending string for the one-time warning.
        let (i, warn) = telemetry_from_env_value(Some("100ms".into()));
        assert_eq!(i, None);
        assert_eq!(warn.as_deref(), Some("100ms"));
        // So does a zero interval.
        let (i, warn) = telemetry_from_env_value(Some("0".into()));
        assert_eq!(i, None);
        assert_eq!(warn.as_deref(), Some("0"));
    }

    #[test]
    fn sort_points_orders_by_time_key_pid_seq() {
        let p = |t: u64, pid: u32, seq: u32, name: &str| MetricPoint {
            time: SimTime(t),
            pid: Pid(pid),
            seq,
            name: name.into(),
            labels: "".into(),
            op: MetricOp::CounterAdd(1),
        };
        let mut pts = vec![
            p(10, 1, 0, "b"),
            p(10, 0, 1, "a"),
            p(10, 0, 0, "a"),
            p(5, 7, 0, "z"),
        ];
        sort_points(&mut pts);
        let order: Vec<(u64, u32, u32)> = pts.iter().map(|p| (p.time.0, p.pid.0, p.seq)).collect();
        assert_eq!(order, vec![(5, 7, 0), (10, 0, 0), (10, 0, 1), (10, 1, 0)]);
        assert_eq!(pts[1].name.as_ref(), "a");
        assert_eq!(pts[3].name.as_ref(), "b");
    }
}
