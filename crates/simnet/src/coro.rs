//! Stackful user-space coroutines for simulated processes.
//!
//! The engine used to burn one OS thread (2 MiB of committed stack plus
//! a kernel context switch per commit-token handoff) per simulated
//! process, capping realistic cluster sizes at a few thousand
//! processes. This module replaces that with hand-rolled coroutines:
//! each process runs its real Rust closure on a small private stack,
//! and the scheduler's park/wake pair becomes an in-process context
//! switch — a few dozen instructions, no syscall. A full SDSC Comet
//! (1984 nodes x 24 processes ≈ 48k processes) fits on a laptop-class
//! host; the design has headroom to 1M+ processes at smaller stack
//! sizes.
//!
//! # Backends
//!
//! * **asm** (default on unix x86_64/aarch64): a `global_asm!` context
//!   switch saving exactly the callee-saved register set of the native
//!   ABI. Stacks are carved out of large lazily-paged slabs
//!   ([`StackPool`]), so 48k x 256 KiB costs virtual address space, not
//!   RAM — only pages a process actually touches are committed.
//! * **thread** (fallback, and `HPCBD_COROUTINE=threads`): each
//!   coroutine lazily owns an OS thread and resume/suspend is a
//!   mutex+condvar handshake. Semantically identical, scales like the
//!   old engine; exists for non-unix / exotic targets and as a
//!   debugging escape hatch (native stacks, full backtraces).
//!
//! Both backends expose the same contract, so the engine — and with it
//! every virtual-time result — is bit-identical across them.
//!
//! # Safety protocol
//!
//! A [`Coroutine`] is `Sync` but its `resume` is only sound under the
//! engine's ownership protocol: **at most one worker resumes a given
//! coroutine at any moment**. The engine guarantees this by routing
//! every wake through the per-process slot (`parked` flag) and the
//! resume queue — a pid enters the queue exactly once per suspension,
//! and only the worker that popped it touches the coroutine. Worker
//! migration (pid parked on worker A, resumed on worker B) is ordered
//! by the resume-queue mutex, which makes A's writes to the saved
//! context happen-before B's resume.
//!
//! Stack safety: coroutine stacks have no guard pages (48k stacks would
//! need ~96k VMAs, past the default `vm.max_map_count`). Instead the
//! low word of every stack holds a canary that is checked on each
//! switch-out; an overflow aborts the process with a message naming the
//! knob (`HPCBD_STACK_KIB`) that raises the stack size. Panics never
//! unwind across the switch boundary: the engine catches them inside
//! the coroutine, and a panic that escapes anyway aborts.

use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};

use parking_lot::{Condvar, Mutex};

/// Why a resumed coroutine handed control back to its worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SwitchOut {
    /// Suspended waiting for a wake; the worker must publish the parked
    /// state (or requeue if a value raced in).
    Parked,
    /// The process closure ran to completion; never resumed again.
    Done,
}

/// Default stack size per simulated process, in KiB.
const DEFAULT_STACK_KIB: usize = 256;
/// Hard floor: below this even entering the closure is unsafe.
const MIN_STACK_KIB: usize = 32;
/// Hard ceiling, to keep a typo from exhausting address space.
const MAX_STACK_KIB: usize = 64 * 1024;
/// Stacks are carved from slabs of at most this many bytes, so a huge
/// process count never needs one huge allocation (heuristic overcommit
/// refuses single reservations near physical RAM) while a small one
/// stays a single mmap.
const MAX_SLAB_BYTES: usize = 256 << 20;
/// Low-word stack canary, checked at every switch-out.
const CANARY: usize = 0x5AFE_57AC_CA11_ED00_u64 as usize;

/// Per-process stack size: `HPCBD_STACK_KIB` (clamped to 32..=65536),
/// default 256 KiB. Resolved once per process; the value is virtual —
/// only touched pages are ever committed.
pub fn stack_bytes() -> usize {
    static SZ: OnceLock<usize> = OnceLock::new();
    *SZ.get_or_init(|| {
        let kib = std::env::var("HPCBD_STACK_KIB")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(DEFAULT_STACK_KIB);
        kib.clamp(MIN_STACK_KIB, MAX_STACK_KIB) * 1024
    })
}

#[cfg(all(unix, any(target_arch = "x86_64", target_arch = "aarch64")))]
const ASM_BACKEND: bool = true;
#[cfg(not(all(unix, any(target_arch = "x86_64", target_arch = "aarch64"))))]
const ASM_BACKEND: bool = false;

/// Which coroutine backend this process uses (resolved once).
fn use_asm_backend() -> bool {
    static B: OnceLock<bool> = OnceLock::new();
    *B.get_or_init(|| match std::env::var("HPCBD_COROUTINE") {
        Ok(v) => match v.trim() {
            "threads" | "thread" => false,
            "asm" | "" => ASM_BACKEND,
            other => {
                eprintln!(
                    "warning: unrecognized HPCBD_COROUTINE value {other:?} \
                     (expected `asm` or `threads`); using the default backend"
                );
                ASM_BACKEND
            }
        },
        Err(_) => ASM_BACKEND,
    })
}

/// The coroutine (if any) running on the current OS thread — the target
/// [`suspend`] switches away from.
#[derive(Clone, Copy)]
enum CurrentCoro {
    None,
    #[cfg(all(unix, any(target_arch = "x86_64", target_arch = "aarch64")))]
    Asm(*const CoroCell),
    Thread(*const ThreadShared),
}

thread_local! {
    static CURRENT: Cell<CurrentCoro> = const { Cell::new(CurrentCoro::None) };
}

/// Suspend the currently running coroutine with [`SwitchOut::Parked`],
/// returning control to its worker. Returns when some worker resumes
/// it — possibly a different OS thread than the one that suspended.
///
/// Must be called from inside a coroutine body; anywhere else is an
/// engine bug and panics.
pub(crate) fn suspend() {
    match CURRENT.with(|c| c.get()) {
        CurrentCoro::None => {
            panic!("coroutine suspend outside a simulated process (engine bug)")
        }
        #[cfg(all(unix, any(target_arch = "x86_64", target_arch = "aarch64")))]
        CurrentCoro::Asm(cell) => unsafe {
            (*cell).out.set(SwitchOut::Parked);
            hpcbd_ctx_switch((*cell).coro_sp.as_ptr(), (*cell).worker_sp.as_ptr());
        },
        CurrentCoro::Thread(shared) => unsafe { (*shared).suspend() },
    }
}

// ---------------------------------------------------------------------
// Stack slabs (asm backend)
// ---------------------------------------------------------------------

/// Owns the stack memory of every coroutine in one simulation: a few
/// large lazily-paged slabs instead of one `mmap` per process (which
/// would trip `vm.max_map_count` near 64k processes). Empty under the
/// thread backend.
pub(crate) struct StackPool {
    slabs: Vec<(*mut u8, std::alloc::Layout)>,
    stacks: Vec<*mut u8>,
    stack_size: usize,
}

// Safety: the pool is plain owned memory; the raw pointers are unique
// to it and the coroutines borrowing stacks are dropped first (field
// order in `Coroutines`).
unsafe impl Send for StackPool {}
unsafe impl Sync for StackPool {}

impl StackPool {
    /// Reserve `n` stacks of the configured size (virtual reservation;
    /// pages commit lazily on first touch).
    fn new(n: usize) -> StackPool {
        let stack_size = stack_bytes();
        let per_slab = (MAX_SLAB_BYTES / stack_size).max(1);
        let mut slabs = Vec::new();
        let mut stacks = Vec::with_capacity(n);
        let mut remaining = n;
        while remaining > 0 {
            let count = remaining.min(per_slab);
            let layout = std::alloc::Layout::from_size_align(count * stack_size, 16)
                .expect("stack slab layout");
            // Safety: layout is non-zero (count >= 1, stack_size >= 32 KiB).
            let base = unsafe { std::alloc::alloc(layout) };
            assert!(
                !base.is_null(),
                "failed to reserve {} KiB of coroutine stacks for {} simulated \
                 processes; lower HPCBD_STACK_KIB (currently {} KiB per process)",
                layout.size() >> 10,
                n,
                stack_size >> 10,
            );
            for i in 0..count {
                let lo = unsafe { base.add(i * stack_size) };
                // Safety: lo is the start of an owned stack_size region.
                unsafe { (lo as *mut usize).write(CANARY) };
                stacks.push(lo);
            }
            slabs.push((base, layout));
            remaining -= count;
        }
        StackPool {
            slabs,
            stacks,
            stack_size,
        }
    }

    fn empty() -> StackPool {
        StackPool {
            slabs: Vec::new(),
            stacks: Vec::new(),
            stack_size: stack_bytes(),
        }
    }
}

impl Drop for StackPool {
    fn drop(&mut self) {
        for &(base, layout) in &self.slabs {
            // Safety: allocated by us with this exact layout.
            unsafe { std::alloc::dealloc(base, layout) };
        }
    }
}

// ---------------------------------------------------------------------
// asm backend: global_asm context switch + crafted stacks
// ---------------------------------------------------------------------

#[cfg(all(unix, any(target_arch = "x86_64", target_arch = "aarch64")))]
mod asm_backend {
    use super::*;

    /// The switch cell of one coroutine: stable (boxed) storage for the
    /// two saved stack pointers and the switch-out reason. `worker_sp`
    /// is rewritten by whichever worker performs the current resume.
    #[repr(C)]
    pub(super) struct CoroCell {
        pub(super) coro_sp: Cell<usize>,
        pub(super) worker_sp: Cell<usize>,
        pub(super) out: Cell<SwitchOut>,
    }

    extern "C" {
        /// Save the callee-saved context on the current stack, store the
        /// resulting stack pointer to `*save`, load `*restore` and pop
        /// the context found there. Defined in `global_asm!` below.
        pub(super) fn hpcbd_ctx_switch(save: *mut usize, restore: *const usize);
        /// First-entry trampoline a fresh coroutine stack returns into.
        fn hpcbd_coro_tramp();
    }

    // x86_64 System V: callee-saved rbp, rbx, r12-r15. The trampoline
    // receives the entry environment in r12 and the entry function in
    // r13 (crafted into the register slots of a fresh stack), realigns,
    // and calls into Rust. Both plain and underscored labels are
    // emitted so the same asm links on ELF and Mach-O.
    #[cfg(target_arch = "x86_64")]
    std::arch::global_asm!(
        ".text",
        ".p2align 4",
        ".globl hpcbd_ctx_switch",
        ".globl _hpcbd_ctx_switch",
        "hpcbd_ctx_switch:",
        "_hpcbd_ctx_switch:",
        "push rbp",
        "push rbx",
        "push r12",
        "push r13",
        "push r14",
        "push r15",
        "mov qword ptr [rdi], rsp",
        "mov rsp, qword ptr [rsi]",
        "pop r15",
        "pop r14",
        "pop r13",
        "pop r12",
        "pop rbx",
        "pop rbp",
        "ret",
        ".p2align 4",
        ".globl hpcbd_coro_tramp",
        ".globl _hpcbd_coro_tramp",
        "hpcbd_coro_tramp:",
        "_hpcbd_coro_tramp:",
        "mov rdi, r12",
        "and rsp, -16",
        "call r13",
        "ud2",
    );

    // aarch64 AAPCS64: callee-saved x19-x28, fp (x29), lr (x30) and
    // d8-d15. The trampoline receives the entry environment in x19 and
    // the entry function in x20.
    #[cfg(target_arch = "aarch64")]
    std::arch::global_asm!(
        ".text",
        ".p2align 2",
        ".globl hpcbd_ctx_switch",
        ".globl _hpcbd_ctx_switch",
        "hpcbd_ctx_switch:",
        "_hpcbd_ctx_switch:",
        "sub sp, sp, #160",
        "stp x19, x20, [sp, #0]",
        "stp x21, x22, [sp, #16]",
        "stp x23, x24, [sp, #32]",
        "stp x25, x26, [sp, #48]",
        "stp x27, x28, [sp, #64]",
        "stp x29, x30, [sp, #80]",
        "stp d8, d9, [sp, #96]",
        "stp d10, d11, [sp, #112]",
        "stp d12, d13, [sp, #128]",
        "stp d14, d15, [sp, #144]",
        "mov x9, sp",
        "str x9, [x0]",
        "ldr x9, [x1]",
        "mov sp, x9",
        "ldp x19, x20, [sp, #0]",
        "ldp x21, x22, [sp, #16]",
        "ldp x23, x24, [sp, #32]",
        "ldp x25, x26, [sp, #48]",
        "ldp x27, x28, [sp, #64]",
        "ldp x29, x30, [sp, #80]",
        "ldp d8, d9, [sp, #96]",
        "ldp d10, d11, [sp, #112]",
        "ldp d12, d13, [sp, #128]",
        "ldp d14, d15, [sp, #144]",
        "add sp, sp, #160",
        "ret",
        ".p2align 2",
        ".globl hpcbd_coro_tramp",
        ".globl _hpcbd_coro_tramp",
        "hpcbd_coro_tramp:",
        "_hpcbd_coro_tramp:",
        "mov x0, x19",
        "br x20",
    );

    /// Heap box handed to a fresh coroutine: the closure to run and the
    /// cell to switch through when it finishes.
    struct EntryEnv {
        f: Box<dyn FnOnce() + Send>,
        cell: *const CoroCell,
    }

    /// Rust-side first frame of every coroutine. Never returns: a return
    /// would fall off the crafted stack base.
    unsafe extern "C" fn coro_entry(env: *mut EntryEnv) -> ! {
        let env = Box::from_raw(env);
        let cell = env.cell;
        let f = env.f;
        // The engine's process body catches every panic (including the
        // deadlock-teardown unwind) itself; one reaching this frame is
        // an engine bug, and unwinding past it would walk off the
        // crafted stack — abort instead.
        if panic::catch_unwind(AssertUnwindSafe(f)).is_err() {
            eprintln!("fatal: panic escaped a simulated-process coroutine (engine bug)");
            std::process::abort();
        }
        (*cell).out.set(SwitchOut::Done);
        loop {
            hpcbd_ctx_switch((*cell).coro_sp.as_ptr(), (*cell).worker_sp.as_ptr());
            // Resumed after Done: an engine protocol violation, but keep
            // reporting Done rather than running off the stack.
            (*cell).out.set(SwitchOut::Done);
        }
    }

    pub(super) struct AsmCoro {
        cell: Box<CoroCell>,
        stack_lo: *mut u8,
        started: Cell<bool>,
        done: Cell<bool>,
        /// Entry environment, owned until the first resume consumes it
        /// (kept so a never-started coroutine can free it on drop).
        env: Cell<*mut EntryEnv>,
    }

    impl AsmCoro {
        /// Craft a suspended coroutine on `stack_lo` whose first resume
        /// enters `f` via the trampoline.
        pub(super) fn new(
            stack_lo: *mut u8,
            stack_size: usize,
            f: Box<dyn FnOnce() + Send>,
        ) -> AsmCoro {
            let cell = Box::new(CoroCell {
                coro_sp: Cell::new(0),
                worker_sp: Cell::new(0),
                out: Cell::new(SwitchOut::Parked),
            });
            let env = Box::into_raw(Box::new(EntryEnv {
                f,
                cell: &*cell as *const CoroCell,
            }));
            // Craft the initial frame hpcbd_ctx_switch will pop.
            let top = (stack_lo as usize + stack_size) & !15;
            let sp;
            // Safety: the slots written all lie inside [stack_lo,
            // stack_lo + stack_size), above the canary word.
            unsafe {
                #[cfg(target_arch = "x86_64")]
                {
                    // Pop order r15,r14,r13,r12,rbx,rbp then ret.
                    sp = top - 7 * 8;
                    let w = sp as *mut usize;
                    std::ptr::write_bytes(w, 0, 7);
                    w.add(2).write(coro_entry as *const () as usize); // r13
                    w.add(3).write(env as usize); // r12
                    w.add(6).write(hpcbd_coro_tramp as *const () as usize); // ret
                }
                #[cfg(target_arch = "aarch64")]
                {
                    // One 160-byte register frame; ret jumps to x30.
                    sp = top - 160;
                    let w = sp as *mut usize;
                    std::ptr::write_bytes(w, 0, 20);
                    w.write(env as usize); // x19
                    w.add(1).write(coro_entry as *const () as usize); // x20
                    w.add(11).write(hpcbd_coro_tramp as *const () as usize); // x30
                }
            }
            cell.coro_sp.set(sp);
            AsmCoro {
                cell,
                stack_lo,
                started: Cell::new(false),
                done: Cell::new(false),
                env: Cell::new(env),
            }
        }

        /// Safety: caller is the unique resumer (engine protocol), and
        /// the coroutine is not Done.
        pub(super) unsafe fn resume(&self) -> SwitchOut {
            debug_assert!(!self.done.get(), "resume of a finished coroutine");
            if !self.started.get() {
                self.started.set(true);
                self.env.set(std::ptr::null_mut()); // coro_entry owns it now
            }
            let cell: *const CoroCell = &*self.cell;
            let prev = CURRENT.with(|c| c.replace(CurrentCoro::Asm(cell)));
            hpcbd_ctx_switch((*cell).worker_sp.as_ptr(), (*cell).coro_sp.as_ptr());
            CURRENT.with(|c| c.set(prev));
            if (self.stack_lo as *const usize).read() != CANARY {
                eprintln!(
                    "fatal: simulated-process stack overflow detected (canary \
                     clobbered); raise HPCBD_STACK_KIB (currently {} KiB)",
                    stack_bytes() >> 10
                );
                std::process::abort();
            }
            let out = self.cell.out.get();
            if out == SwitchOut::Done {
                self.done.set(true);
            }
            out
        }
    }

    impl Drop for AsmCoro {
        fn drop(&mut self) {
            let env = self.env.get();
            if !env.is_null() {
                // Never started: reclaim the entry environment. (A
                // started-but-unfinished coroutine leaks whatever its
                // suspended frames own; the engine only drops coroutines
                // after every process finished, so this is a safety net,
                // not a steady-state path.)
                drop(unsafe { Box::from_raw(env) });
            }
        }
    }
}

#[cfg(all(unix, any(target_arch = "x86_64", target_arch = "aarch64")))]
use asm_backend::{hpcbd_ctx_switch, AsmCoro, CoroCell};

// ---------------------------------------------------------------------
// thread backend: one lazily-spawned OS thread per coroutine
// ---------------------------------------------------------------------

/// Handshake state of a thread-backed coroutine.
struct ThreadShared {
    m: Mutex<ThreadState>,
    cv: Condvar,
}

struct ThreadState {
    /// True while the coroutine side owns the baton.
    coro_turn: bool,
    out: SwitchOut,
    finished: bool,
}

impl ThreadShared {
    /// Safety: called from the coroutine's own thread while it holds
    /// the baton.
    unsafe fn suspend(&self) {
        let mut g = self.m.lock();
        g.out = SwitchOut::Parked;
        g.coro_turn = false;
        self.cv.notify_all();
        while !g.coro_turn {
            self.cv.wait(&mut g);
        }
    }
}

struct ThreadCoro {
    shared: Arc<ThreadShared>,
    /// Closure until the first resume spawns the thread.
    f: Cell<Option<Box<dyn FnOnce() + Send>>>,
    name: String,
    index: usize,
    total: usize,
    handle: Cell<Option<std::thread::JoinHandle<()>>>,
}

impl ThreadCoro {
    fn new(index: usize, total: usize, name: &str, f: Box<dyn FnOnce() + Send>) -> ThreadCoro {
        ThreadCoro {
            shared: Arc::new(ThreadShared {
                m: Mutex::new(ThreadState {
                    coro_turn: false,
                    out: SwitchOut::Parked,
                    finished: false,
                }),
                cv: Condvar::new(),
            }),
            f: Cell::new(Some(f)),
            name: name.to_string(),
            index,
            total,
            handle: Cell::new(None),
        }
    }

    fn resume(&self) -> SwitchOut {
        if let Some(f) = self.f.take() {
            let shared = self.shared.clone();
            let handle = std::thread::Builder::new()
                .name(format!("sim-{}", self.name))
                .stack_size(stack_bytes().max(1 << 20))
                .spawn(move || thread_coro_main(shared, f))
                .unwrap_or_else(|e| {
                    panic!(
                        "failed to spawn the coroutine-fallback thread for simulated \
                         process {} of {} ({:?}): {e}",
                        self.index, self.total, self.name
                    )
                });
            self.handle.set(Some(handle));
        }
        let mut g = self.shared.m.lock();
        debug_assert!(!g.finished, "resume of a finished coroutine");
        g.coro_turn = true;
        self.shared.cv.notify_all();
        while g.coro_turn {
            self.shared.cv.wait(&mut g);
        }
        g.out
    }
}

fn thread_coro_main(shared: Arc<ThreadShared>, f: Box<dyn FnOnce() + Send>) {
    {
        let mut g = shared.m.lock();
        while !g.coro_turn {
            shared.cv.wait(&mut g);
        }
    }
    CURRENT.with(|c| c.set(CurrentCoro::Thread(Arc::as_ptr(&shared))));
    if panic::catch_unwind(AssertUnwindSafe(f)).is_err() {
        eprintln!("fatal: panic escaped a simulated-process coroutine (engine bug)");
        std::process::abort();
    }
    let mut g = shared.m.lock();
    g.out = SwitchOut::Done;
    g.finished = true;
    g.coro_turn = false;
    shared.cv.notify_all();
}

impl Drop for ThreadCoro {
    fn drop(&mut self) {
        if let Some(h) = self.handle.take() {
            if self.shared.m.lock().finished {
                let _ = h.join();
            }
            // A still-suspended coroutine thread is parked on its own
            // Arc of the handshake state; detaching leaks it, matching
            // the asm backend's suspended-drop semantics.
        }
    }
}

// ---------------------------------------------------------------------
// Backend-erased coroutine + per-simulation set
// ---------------------------------------------------------------------

enum CoroImpl {
    #[cfg(all(unix, any(target_arch = "x86_64", target_arch = "aarch64")))]
    Asm(AsmCoro),
    Thread(ThreadCoro),
}

/// One suspended-or-running simulated process.
pub(crate) struct Coroutine {
    inner: CoroImpl,
}

// Safety: resume/suspend mutate only through the switch cell, and the
// engine protocol guarantees a unique resumer per coroutine at any
// moment, with cross-worker migration ordered by the resume-queue
// mutex (see module docs).
unsafe impl Send for Coroutine {}
unsafe impl Sync for Coroutine {}

impl Coroutine {
    /// Resume until the next suspension (or completion).
    ///
    /// Safety contract (not enforceable here): the caller is the unique
    /// resumer of this coroutine right now, and the coroutine has not
    /// returned [`SwitchOut::Done`] before.
    pub(crate) fn resume(&self) -> SwitchOut {
        match &self.inner {
            #[cfg(all(unix, any(target_arch = "x86_64", target_arch = "aarch64")))]
            CoroImpl::Asm(c) => unsafe { c.resume() },
            CoroImpl::Thread(c) => c.resume(),
        }
    }
}

/// All coroutines of one simulation plus the stack memory backing them.
/// Field order matters: coroutines drop before their stacks.
pub(crate) struct Coroutines {
    list: Vec<Coroutine>,
    #[allow(dead_code)] // owns the stack memory the coroutines run on
    pool: StackPool,
}

impl Coroutines {
    /// Build one suspended coroutine per `(name, body)` spec, on the
    /// process-wide backend.
    pub(crate) fn build(specs: Vec<(String, Box<dyn FnOnce() + Send>)>) -> Coroutines {
        let n = specs.len();
        if use_asm_backend() {
            #[cfg(all(unix, any(target_arch = "x86_64", target_arch = "aarch64")))]
            {
                let pool = StackPool::new(n);
                let list = specs
                    .into_iter()
                    .enumerate()
                    .map(|(i, (_, f))| Coroutine {
                        inner: CoroImpl::Asm(AsmCoro::new(pool.stacks[i], pool.stack_size, f)),
                    })
                    .collect();
                return Coroutines { list, pool };
            }
        }
        let list = specs
            .into_iter()
            .enumerate()
            .map(|(i, (name, f))| Coroutine {
                inner: CoroImpl::Thread(ThreadCoro::new(i, n, &name, f)),
            })
            .collect();
        Coroutines {
            list,
            pool: StackPool::empty(),
        }
    }

    /// Resume coroutine `idx` (engine protocol: unique resumer).
    pub(crate) fn resume(&self, idx: usize) -> SwitchOut {
        self.list[idx].resume()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn run_to_done(cs: &Coroutines, idx: usize) -> usize {
        let mut switches = 0;
        loop {
            switches += 1;
            match cs.resume(idx) {
                SwitchOut::Done => return switches,
                SwitchOut::Parked => {}
            }
        }
    }

    #[test]
    fn runs_a_plain_closure_to_completion() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        let cs = Coroutines::build(vec![(
            "t".into(),
            Box::new(move || {
                h.fetch_add(1, Ordering::SeqCst);
            }),
        )]);
        assert_eq!(run_to_done(&cs, 0), 1);
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn suspend_resumes_where_it_left_off() {
        let trail = Arc::new(Mutex::new(Vec::new()));
        let t = trail.clone();
        let cs = Coroutines::build(vec![(
            "t".into(),
            Box::new(move || {
                t.lock().push(1);
                suspend();
                t.lock().push(2);
                suspend();
                t.lock().push(3);
            }),
        )]);
        assert_eq!(cs.resume(0), SwitchOut::Parked);
        trail.lock().push(10);
        assert_eq!(cs.resume(0), SwitchOut::Parked);
        trail.lock().push(20);
        assert_eq!(cs.resume(0), SwitchOut::Done);
        assert_eq!(*trail.lock(), vec![1, 10, 2, 20, 3]);
    }

    #[test]
    fn many_interleaved_coroutines_keep_private_state() {
        let n = 64;
        let sum = Arc::new(AtomicUsize::new(0));
        let specs = (0..n)
            .map(|i| {
                let sum = sum.clone();
                let f: Box<dyn FnOnce() + Send> = Box::new(move || {
                    let mut local = i;
                    suspend();
                    local += 1000;
                    suspend();
                    sum.fetch_add(local, Ordering::SeqCst);
                });
                (format!("c{i}"), f)
            })
            .collect();
        let cs = Coroutines::build(specs);
        // Interleave: round-robin all coroutines through each stage.
        for _ in 0..2 {
            for i in 0..n {
                assert_eq!(cs.resume(i), SwitchOut::Parked);
            }
        }
        for i in 0..n {
            assert_eq!(cs.resume(i), SwitchOut::Done);
        }
        let expect: usize = (0..n).map(|i| i + 1000).sum();
        assert_eq!(sum.load(Ordering::SeqCst), expect);
    }

    #[test]
    fn resume_can_migrate_across_os_threads() {
        let cs = Arc::new(Coroutines::build(vec![(
            "m".into(),
            Box::new(move || {
                suspend();
                suspend();
            }),
        )]));
        assert_eq!(cs.resume(0), SwitchOut::Parked);
        let cs2 = cs.clone();
        std::thread::spawn(move || {
            assert_eq!(cs2.resume(0), SwitchOut::Parked);
        })
        .join()
        .unwrap();
        assert_eq!(cs.resume(0), SwitchOut::Done);
    }

    #[test]
    fn dropping_a_never_started_coroutine_frees_its_closure() {
        struct Flag(Arc<AtomicUsize>);
        impl Drop for Flag {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let flag = Flag(drops.clone());
        let cs = Coroutines::build(vec![(
            "never".into(),
            Box::new(move || {
                let _keep = &flag;
            }),
        )]);
        drop(cs);
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn deep_stack_use_within_budget_is_fine() {
        // Touch a few KiB of frames recursively; far below the default
        // stack but enough to catch a broken stack layout immediately.
        fn burn(depth: usize) -> u64 {
            let pad = [depth as u64; 32];
            if depth == 0 {
                pad.iter().sum()
            } else {
                burn(depth - 1) + pad[0]
            }
        }
        let cs = Coroutines::build(vec![(
            "deep".into(),
            Box::new(move || {
                assert!(burn(64) > 0);
                suspend();
                assert!(burn(64) > 0);
            }),
        )]);
        assert_eq!(cs.resume(0), SwitchOut::Parked);
        assert_eq!(cs.resume(0), SwitchOut::Done);
    }

    #[test]
    fn stack_size_env_is_clamped() {
        // Can't re-read the env (OnceLock), but the clamp logic bounds
        // whatever was resolved.
        let sz = stack_bytes();
        assert!(sz >= MIN_STACK_KIB * 1024);
        assert!(sz <= MAX_STACK_KIB * 1024);
    }
}
