//! Hardware topology: nodes, NICs, disks and the fabric connecting them.
//!
//! The topology is deliberately simple — a set of homogeneous (or
//! heterogeneous) nodes on a non-blocking fabric. Congestion effects that
//! matter for the reproduced experiments (NIC serialization at endpoints,
//! disk contention between co-located processes) are modeled; full fat-tree
//! congestion is not, matching the paper's use of Comet's oversubscription-
//! free islands.

use crate::time::SimDuration;

/// Identifies a node in the simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index into the topology's node table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Performance characteristics of one node's local storage device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskSpec {
    /// Sequential read bandwidth, bytes per second.
    pub read_bw: f64,
    /// Sequential write bandwidth, bytes per second.
    pub write_bw: f64,
    /// Fixed per-request overhead (seek / queueing / syscall).
    pub request_overhead: SimDuration,
    /// Capacity in bytes (Comet scratch: 320 GB SSD).
    pub capacity: u64,
}

impl DiskSpec {
    /// A local SSD resembling Comet's 320 GB scratch device.
    pub fn comet_scratch_ssd() -> DiskSpec {
        DiskSpec {
            read_bw: 900.0e6,
            write_bw: 450.0e6,
            request_overhead: SimDuration::from_micros(80),
            capacity: 320 * 1000 * 1000 * 1000,
        }
    }

    /// An NFS-backed shared mount (project storage); far slower and shared.
    pub fn nfs_share() -> DiskSpec {
        DiskSpec {
            read_bw: 250.0e6,
            write_bw: 120.0e6,
            request_overhead: SimDuration::from_millis(1),
            capacity: u64::MAX,
        }
    }
}

/// Performance characteristics of one compute node.
///
/// Defaults mirror Table I of the paper (one Comet node): 2 sockets x 12
/// cores of Xeon E5-2680v3 at 2.5 GHz, 960 GFlop/s peak, 128 GB DDR4,
/// FDR InfiniBand, 320 GB local SSD.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// Human-readable model name, reported by Table I.
    pub model: String,
    /// Number of sockets.
    pub sockets: u32,
    /// Physical cores per socket.
    pub cores_per_socket: u32,
    /// Core clock in GHz (reporting only; compute costs use `flops_per_core`).
    pub clock_ghz: f64,
    /// *Effective* scalar flop rate per core, flops/second. Peak is
    /// 40 GFlop/s/core on Comet; real scalar codes see a small fraction.
    pub flops_per_core: f64,
    /// Memory capacity in bytes.
    pub mem_capacity: u64,
    /// Per-core achievable memory bandwidth, bytes/second.
    pub mem_bw_per_core: f64,
    /// Local scratch storage.
    pub disk: DiskSpec,
}

impl NodeSpec {
    /// The Comet node of Table I.
    pub fn comet() -> NodeSpec {
        NodeSpec {
            model: "Intel Xeon E5-2680v3".to_string(),
            sockets: 2,
            cores_per_socket: 12,
            clock_ghz: 2.5,
            // 2.5 GHz scalar pipeline; ~1.2 sustained flops/cycle for the
            // mixed integer/float record processing in these benchmarks.
            flops_per_core: 3.0e9,
            mem_capacity: 128 * 1024 * 1024 * 1024,
            mem_bw_per_core: 5.0e9,
            disk: DiskSpec::comet_scratch_ssd(),
        }
    }

    /// Total physical cores on the node.
    #[inline]
    pub fn cores(&self) -> u32 {
        self.sockets * self.cores_per_socket
    }

    /// Peak node flop rate (reporting only), flops/second.
    #[inline]
    pub fn peak_flops(&self) -> f64 {
        // Table I reports 960 GFlop/s: 24 cores x 2.5 GHz x 16 flops/cycle.
        self.cores() as f64 * self.clock_ghz * 1e9 * 16.0
    }
}

/// One node instance inside a topology.
#[derive(Debug, Clone)]
pub struct Node {
    /// This node's id.
    pub id: NodeId,
    /// Hardware description.
    pub spec: NodeSpec,
}

/// A cluster of nodes on a shared fabric.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: Vec<Node>,
}

impl Topology {
    /// A homogeneous cluster of `n` nodes with the given spec.
    pub fn homogeneous(n: u32, spec: NodeSpec) -> Topology {
        assert!(n > 0, "topology needs at least one node");
        Topology {
            nodes: (0..n)
                .map(|i| Node {
                    id: NodeId(i),
                    spec: spec.clone(),
                })
                .collect(),
        }
    }

    /// A cluster of `n` Comet nodes (the paper's platform).
    pub fn comet(n: u32) -> Topology {
        Topology::homogeneous(n, NodeSpec::comet())
    }

    /// Build from an explicit node list (heterogeneous clusters).
    pub fn from_specs(specs: Vec<NodeSpec>) -> Topology {
        assert!(!specs.is_empty(), "topology needs at least one node");
        Topology {
            nodes: specs
                .into_iter()
                .enumerate()
                .map(|(i, spec)| Node {
                    id: NodeId(i as u32),
                    spec,
                })
                .collect(),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the cluster has no nodes (never true after construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Look up a node.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Iterate over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    /// All node ids, in order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().map(|n| n.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comet_matches_table_1() {
        let spec = NodeSpec::comet();
        assert_eq!(spec.cores(), 24);
        assert_eq!(spec.sockets, 2);
        assert!((spec.peak_flops() - 960.0e9).abs() < 1.0);
        assert_eq!(spec.mem_capacity, 128 * 1024 * 1024 * 1024);
    }

    #[test]
    fn homogeneous_builder_assigns_sequential_ids() {
        let topo = Topology::comet(4);
        assert_eq!(topo.len(), 4);
        let ids: Vec<u32> = topo.node_ids().map(|n| n.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert_eq!(topo.node(NodeId(2)).id, NodeId(2));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_topology_rejected() {
        let _ = Topology::comet(0);
    }
}
