//! Schedule perturbation: seeded, legality-preserving stress knobs for
//! the engine's parallel scheduler.
//!
//! The engine's determinism contract says every simulation-visible
//! operation commits in `(virtual time, pid, generation)` order, and
//! that nothing else — token hand-off timing, which processes are
//! in flight, wall-clock interleavings, the self-grant fast path —
//! can influence a virtual-time result. The conformance harness
//! (`hpcbd-check`) tests that contract *adversarially*: it installs a
//! [`Perturbation`] and re-runs a workload many times, each time
//! driving the scheduler through a different **legal** schedule, then
//! asserts every run is bit-identical to the sequential oracle.
//!
//! A schedule is *legal* when the commit (grant) order is exactly the
//! total `(time, pid, gen)` order the sequential engine produces; the
//! conservative in-flight frontier rule admits arbitrary wall-clock
//! reorderings around it. The knobs below only ever perturb inside that
//! admitted set:
//!
//! * **Grant holds** (`hold_one_in`): `try_dispatch` defers a grantable
//!   candidate while other processes are still in flight, so the queue
//!   fills with more (later-keyed) entries before the decision is
//!   retaken. The candidate stays minimal, so the grant *order* is
//!   untouched — only its wall-clock moment moves.
//! * **Token keeps** (`keep_one_in`): `release_turn` keeps the commit
//!   token through the next compute segment (exactly the behaviour the
//!   engine already has when the in-flight cap is reached), shifting
//!   which processes ever become concurrently in-flight.
//! * **Fast-path defeats** (`defeat_fast_path_one_in`): `align_quiet`
//!   skips the self-grant fast path and goes through the queue + condvar
//!   round-trip, exercising the equivalence of the two grant paths.
//! * **Wall-clock jitter** (`spin_max`): seeded spin/yield before an
//!   alignment randomizes which racing process reaches the scheduler
//!   lock first — the tie the frontier rule must absorb.
//! * **Speculation defeats** (`defeat_speculation_one_in`): a
//!   speculation-eligible operation takes the conservative path
//!   instead, interleaving classic and speculative commits under
//!   [`crate::Execution::Speculative`]. Both paths commit the same
//!   effects at the same order key, so only the schedule moves.
//! * **Forced replays** (`force_replay_one_in`): a clean speculation
//!   validation is treated as stale, driving the rollback-and-replay
//!   path. A replay recomputes the identical outcome from live state
//!   under the token — result-equivalent by construction.
//!
//! Every decision is a pure function of the perturbation seed and
//! deterministic per-process state (pid, visible-op counter), so a
//! divergence found under a seed can be replayed with that seed.
//! Perturbations have no effect in sequential mode (there is no token
//! release and no in-flight set to perturb).

use std::sync::Arc;

use parking_lot::Mutex;

use crate::hash::det_hash;

/// Seeded scheduler-perturbation knobs. Install process-wide with
/// [`set_perturbation`]; the engine resolves the installed value once
/// per [`crate::Sim::run`].
#[derive(Debug, Clone)]
pub struct Perturbation {
    /// Seed feeding every decision hash.
    pub seed: u64,
    /// Defer a grant 1-in-N times while other processes are in flight
    /// (0 disables).
    pub hold_one_in: u32,
    /// Keep the token at a release point 1-in-N times (0 disables).
    pub keep_one_in: u32,
    /// Skip the self-grant fast path 1-in-N times (0 disables).
    pub defeat_fast_path_one_in: u32,
    /// Upper bound on seeded spin iterations injected before alignments
    /// (0 disables jitter).
    pub spin_max: u32,
    /// Send a speculation-eligible operation down the conservative path
    /// 1-in-N times (0 disables; only observable in speculative mode).
    pub defeat_speculation_one_in: u32,
    /// Treat a clean speculation validation as stale 1-in-N times,
    /// forcing rollback + replay (0 disables; speculative mode only).
    pub force_replay_one_in: u32,
}

impl Perturbation {
    /// Derive a full knob mix from one seed: every knob active, with
    /// seed-dependent intensities so different seeds explore different
    /// regions of the legal-schedule space.
    pub fn from_seed(seed: u64) -> Perturbation {
        let h = det_hash(&(seed, 0x6d69u64));
        Perturbation {
            seed,
            hold_one_in: 2 + (h % 5) as u32,        // 2..=6
            keep_one_in: 2 + ((h >> 8) % 5) as u32, // 2..=6
            defeat_fast_path_one_in: 1 + ((h >> 16) % 3) as u32, // 1..=3
            spin_max: 16 + ((h >> 24) % 241) as u32, // 16..=256
            defeat_speculation_one_in: 2 + ((h >> 32) % 5) as u32, // 2..=6
            force_replay_one_in: 2 + ((h >> 40) % 7) as u32, // 2..=8
        }
    }

    #[inline]
    fn decide(&self, salt: u64, a: u64, b: u64, one_in: u32) -> bool {
        one_in != 0 && det_hash(&(self.seed, salt, a, b)).is_multiple_of(one_in as u64)
    }

    /// Whether `try_dispatch` should defer granting the candidate keyed
    /// `(time, pid, gen)` for now. Only consulted while the in-flight
    /// set is non-empty, so progress is never at risk: holds stop the
    /// moment the in-flight set drains.
    #[inline]
    pub(crate) fn hold_grant(&self, time_ns: u64, pid: u32, gen: u64) -> bool {
        self.decide(0xA1, time_ns ^ gen, pid as u64, self.hold_one_in)
    }

    /// Whether a release point should keep the token instead.
    #[inline]
    pub(crate) fn keep_token(&self, pid: u32, op: u64) -> bool {
        self.decide(0xB2, pid as u64, op, self.keep_one_in)
    }

    /// Whether an alignment should skip the self-grant fast path.
    #[inline]
    pub(crate) fn defeat_fast_path(&self, pid: u32, op: u64) -> bool {
        self.decide(0xC3, pid as u64, op, self.defeat_fast_path_one_in)
    }

    /// Whether a speculation-eligible operation should take the
    /// conservative path this time.
    #[inline]
    pub(crate) fn defeat_speculation(&self, pid: u32, op: u64) -> bool {
        self.decide(0xE5, pid as u64, op, self.defeat_speculation_one_in)
    }

    /// Whether a clean speculation validation should be treated as
    /// stale (rollback + replay) this time.
    #[inline]
    pub(crate) fn force_replay(&self, pid: u32, gen: u64) -> bool {
        self.decide(0xF6, pid as u64, gen, self.force_replay_one_in)
    }

    /// Burn a seeded, bounded amount of wall-clock before an alignment
    /// (and occasionally yield the OS thread) so racing processes reach
    /// the scheduler lock in shuffled orders.
    #[inline]
    pub(crate) fn jitter(&self, pid: u32, op: u64) {
        if self.spin_max == 0 {
            return;
        }
        let h = det_hash(&(self.seed, 0xD4u64, pid as u64, op));
        for _ in 0..(h % self.spin_max as u64) {
            std::hint::spin_loop();
        }
        if h.is_multiple_of(7) {
            std::thread::yield_now();
        }
    }
}

static PERTURB: Mutex<Option<Arc<Perturbation>>> = Mutex::new(None);

/// Install (or clear, with `None`) the process-wide perturbation. Like
/// [`crate::set_default_execution`], this is global state intended for
/// the conformance harness; concurrent harness runs must serialize
/// externally. Takes effect for simulations whose `run` starts after the
/// call.
pub fn set_perturbation(p: Option<Perturbation>) {
    *PERTURB.lock() = p.map(Arc::new);
}

/// The currently installed perturbation, if any.
pub fn current_perturbation() -> Option<Arc<Perturbation>> {
    PERTURB.lock().clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_in_the_seed() {
        let a = Perturbation::from_seed(42);
        let b = Perturbation::from_seed(42);
        for op in 0..200u64 {
            assert_eq!(a.hold_grant(op * 3, 1, op), b.hold_grant(op * 3, 1, op));
            assert_eq!(a.keep_token(2, op), b.keep_token(2, op));
            assert_eq!(a.defeat_fast_path(3, op), b.defeat_fast_path(3, op));
        }
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let a = Perturbation::from_seed(1);
        let b = Perturbation::from_seed(2);
        let differs = (0..500u64).any(|op| {
            a.hold_grant(op, 0, op) != b.hold_grant(op, 0, op)
                || a.keep_token(0, op) != b.keep_token(0, op)
        });
        assert!(differs, "seeds 1 and 2 explore identical schedules");
    }

    #[test]
    fn from_seed_knobs_are_all_active_and_bounded() {
        for seed in 0..64u64 {
            let p = Perturbation::from_seed(seed);
            assert!((2..=6).contains(&p.hold_one_in));
            assert!((2..=6).contains(&p.keep_one_in));
            assert!((1..=3).contains(&p.defeat_fast_path_one_in));
            assert!((16..=256).contains(&p.spin_max));
            assert!((2..=6).contains(&p.defeat_speculation_one_in));
            assert!((2..=8).contains(&p.force_replay_one_in));
        }
    }

    #[test]
    fn install_and_clear_roundtrip() {
        set_perturbation(Some(Perturbation::from_seed(7)));
        assert_eq!(current_perturbation().unwrap().seed, 7);
        set_perturbation(None);
        assert!(current_perturbation().is_none());
    }
}
