//! Host-side self-profiler: cheap wall-clock accounting of the
//! simulator's own subsystems, so a BENCH row that moved can be
//! explained by the *mix of engine work* that produced it (queue ops,
//! coroutine switches, token protocol, speculation validate/replay)
//! rather than guessed at.
//!
//! This is the one deliberately *non*-deterministic corner of the
//! telemetry subsystem: the counters tally what the host actually did,
//! which depends on the wall-clock schedule (a parallel run parks and
//! wakes where a sequential run self-grants; a speculative run
//! validates and replays). They are therefore emitted only inside the
//! report's `host_profile` section — gated behind `HPCBD_SELFPROF` —
//! and never compared across execution modes or folded into digests,
//! exactly like `spec_commits`.
//!
//! Cost contract: **zero-cost when off** up to one relaxed atomic load
//! per counted operation (the same budget `observe::capture_active`
//! already spends per run). When on, each count is one relaxed
//! `fetch_add` — no locks, no allocation, no wall-clock reads on the
//! hot path (run wall time is measured once per `Sim::run`).
//! `bench_hotpath`'s `telemetry_overhead` group prices both states.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A counted simulator-subsystem operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum HostOp {
    /// Ready-queue insertions (calendar queue pushes).
    QueuePush,
    /// Ready-queue removals (grants and stale-entry discards).
    QueuePop,
    /// Coroutine resumptions by a worker.
    CoroResume,
    /// Coroutine parks published to the slot protocol.
    Park,
    /// Wake values handed to parked (or racing) processes.
    Wake,
    /// Commit-token grants through the dispatcher.
    TokenGrant,
    /// Token releases into parallel in-flight execution.
    TokenRelease,
    /// Speculative device reservations validated at their order key.
    SpecValidate,
    /// Speculations that validated stale and were rolled back/replayed.
    SpecReplay,
    /// Buffered speculative sends committed by the dispatcher.
    SendCommit,
}

/// Display names, indexed by `HostOp as usize` — also the key order of
/// the `host_profile` JSON section.
pub const HOST_OP_NAMES: [&str; 10] = [
    "queue_push",
    "queue_pop",
    "coro_resume",
    "park",
    "wake",
    "token_grant",
    "token_release",
    "spec_validate",
    "spec_replay",
    "send_commit",
];

const N_OPS: usize = HOST_OP_NAMES.len();

static ENABLED: AtomicBool = AtomicBool::new(false);
#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
static COUNTS: [AtomicU64; N_OPS] = [ZERO; N_OPS];
/// Accumulated `Sim::run` wall time while the profiler was on.
static WALL_NS: AtomicU64 = AtomicU64::new(0);
/// Number of `Sim::run` calls the wall time covers.
static RUNS: AtomicU64 = AtomicU64::new(0);

/// Count one host-side operation. Inlined to a single relaxed load (and
/// a predictable untaken branch) when the profiler is off.
#[inline(always)]
pub fn host_count(op: HostOp) {
    if ENABLED.load(Ordering::Relaxed) {
        COUNTS[op as usize].fetch_add(1, Ordering::Relaxed);
    }
}

/// Whether the self-profiler is currently on.
#[inline]
pub fn selfprof_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn the self-profiler on or off. Turning it on also consults
/// nothing and clears nothing — pair with [`selfprof_reset`] to start a
/// fresh measurement window.
pub fn set_selfprof(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Resolve `HPCBD_SELFPROF` (`1` / `true` / `on`, case-insensitive) and
/// switch the profiler accordingly. Returns the resulting state.
pub fn selfprof_from_env() -> bool {
    let on = std::env::var("HPCBD_SELFPROF")
        .map(|v| {
            let v = v.trim().to_ascii_lowercase();
            v == "1" || v == "true" || v == "on"
        })
        .unwrap_or(false);
    set_selfprof(on);
    on
}

/// Zero every counter and the wall-time accumulator.
pub fn selfprof_reset() {
    for c in &COUNTS {
        c.store(0, Ordering::Relaxed);
    }
    WALL_NS.store(0, Ordering::Relaxed);
    RUNS.store(0, Ordering::Relaxed);
}

/// Snapshot the counters as `(name, count)` rows in `HOST_OP_NAMES`
/// order, followed by `run_wall_ns` and `runs`.
pub fn selfprof_snapshot() -> Vec<(&'static str, u64)> {
    let mut out: Vec<(&'static str, u64)> = HOST_OP_NAMES
        .iter()
        .zip(&COUNTS)
        .map(|(&name, c)| (name, c.load(Ordering::Relaxed)))
        .collect();
    out.push(("run_wall_ns", WALL_NS.load(Ordering::Relaxed)));
    out.push(("runs", RUNS.load(Ordering::Relaxed)));
    out
}

/// Credit one completed `Sim::run`'s wall time (called by the engine
/// when the profiler is on).
pub(crate) fn add_run_wall_ns(ns: u64) {
    WALL_NS.fetch_add(ns, Ordering::Relaxed);
    RUNS.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    // Profiler state is process-global; serialize the tests that use it.
    static GUARD: Mutex<()> = Mutex::new(());

    #[test]
    fn counts_only_while_enabled() {
        let _g = GUARD.lock();
        set_selfprof(false);
        selfprof_reset();
        host_count(HostOp::QueuePush);
        assert_eq!(selfprof_snapshot()[HostOp::QueuePush as usize].1, 0);
        set_selfprof(true);
        host_count(HostOp::QueuePush);
        host_count(HostOp::QueuePush);
        host_count(HostOp::SpecReplay);
        set_selfprof(false);
        let snap = selfprof_snapshot();
        assert_eq!(snap[HostOp::QueuePush as usize], ("queue_push", 2));
        assert_eq!(snap[HostOp::SpecReplay as usize], ("spec_replay", 1));
        selfprof_reset();
        assert!(selfprof_snapshot().iter().all(|&(_, v)| v == 0));
    }

    #[test]
    fn snapshot_rows_follow_name_table() {
        let _g = GUARD.lock();
        let snap = selfprof_snapshot();
        assert_eq!(snap.len(), HOST_OP_NAMES.len() + 2);
        for (row, &name) in snap.iter().zip(HOST_OP_NAMES.iter()) {
            assert_eq!(row.0, name);
        }
        assert_eq!(snap[HOST_OP_NAMES.len()].0, "run_wall_ns");
        assert_eq!(snap[HOST_OP_NAMES.len() + 1].0, "runs");
    }
}
