//! The runnable queue: a calendar-style bucket queue over the engine's
//! `(virtual time, pid, generation)` order key.
//!
//! The engine grants the commit token strictly in order-key order, and a
//! conservative discrete-event simulation has the *monotone frontier*
//! property: the minimum key never moves backwards (every new entry is
//! derived from the current token holder's clock or later). A calendar
//! queue (Brown, CACM 1988) exploits exactly that access pattern: keys
//! hash into time buckets of width `w`, the dequeue cursor sweeps the
//! buckets like the pages of a desk calendar, and both `push` and
//! `pop_min` are O(1) amortized — against O(log n) for the binary heap
//! this module replaces.
//!
//! Two deviations from the textbook structure matter here:
//!
//! * **Total order, not just time order.** Entries are ordered by the
//!   full `(time, pid, gen)` key, and ties in `time` are common (ring
//!   exchanges synchronize whole communicators to one instant). Buckets
//!   are kept sorted by the full key, so `pop_min` yields *exactly* the
//!   sequence the reference heap would — the property the cross-mode
//!   bit-determinism argument needs, and the one the proptest suite at
//!   the bottom of this file checks against a `BinaryHeap` model.
//! * **Defensive non-monotonicity.** Correctness does not assume the
//!   frontier property: a push earlier than the last popped key simply
//!   rewinds the cursor. Only performance relies on monotone use.
//!
//! The bucket count doubles/halves when the population leaves the
//! `[nbuckets/2, 2*nbuckets]` band, and the bucket width is re-estimated
//! from the average gap between adjacent queued keys — all deterministic
//! (no sampling randomness), so the queue itself can never perturb a
//! simulation schedule.

use crate::engine::Pid;
use crate::time::SimTime;

/// The engine's dispatch order key. Ordered by `(time, pid, gen)` — a key
/// that does NOT depend on push order, so the pop sequence is identical
/// whether entries arrive in sequential baton order or out of order from
/// concurrently released processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderKey {
    /// Virtual time the process becomes runnable.
    pub time: SimTime,
    /// Process id (first tie-break).
    pub pid: Pid,
    /// Entry generation (second tie-break; invalidates stale entries).
    pub gen: u64,
}

impl Ord for OrderKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.pid, self.gen).cmp(&(other.time, other.pid, other.gen))
    }
}

impl PartialOrd for OrderKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Smallest bucket count; also the population below which shrinking stops.
const MIN_BUCKETS: usize = 16;

/// A calendar (bucket) priority queue popping [`OrderKey`]s in ascending
/// order. Amortized O(1) `push`/`pop_min` under the engine's monotone
/// access pattern; never worse than O(n) on a degenerate distribution.
pub struct CalendarQueue {
    /// Ring of buckets; each bucket is sorted *descending* by key so its
    /// minimum is `bucket.last()` and removal of the minimum is `pop()`.
    buckets: Vec<Vec<OrderKey>>,
    /// Bucket width in nanoseconds of virtual time (>= 1).
    width: u64,
    /// Lower bound on the next key to pop (the last popped key's time).
    last: u64,
    /// Total queued entries.
    count: usize,
    /// Cached position of the current minimum: `(bucket index, key)`.
    /// `None` means "unknown, scan on next peek/pop".
    cached_min: Option<(usize, OrderKey)>,
}

impl Default for CalendarQueue {
    fn default() -> Self {
        CalendarQueue::new()
    }
}

impl CalendarQueue {
    /// Fresh empty queue. The initial width is a placeholder; the first
    /// resize replaces it with an estimate from the observed key gaps.
    pub fn new() -> CalendarQueue {
        CalendarQueue {
            buckets: vec![Vec::new(); MIN_BUCKETS],
            width: 1 << 10,
            last: 0,
            count: 0,
            cached_min: None,
        }
    }

    /// Number of queued entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the queue is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    #[inline]
    fn bucket_of(&self, time: SimTime) -> usize {
        // nbuckets is a power of two.
        ((time.nanos() / self.width) as usize) & (self.buckets.len() - 1)
    }

    /// Insert a key. O(1) amortized; O(bucket len) worst case for the
    /// in-bucket ordered insertion.
    pub fn push(&mut self, k: OrderKey) {
        let idx = self.bucket_of(k.time);
        let b = &mut self.buckets[idx];
        // Keep the bucket sorted descending: find the first position
        // whose key is NOT greater than `k` and insert before it.
        let pos = b.partition_point(|e| *e > k);
        b.insert(pos, k);
        self.count += 1;
        // A key earlier than the cursor rewinds it (defensive; the
        // engine's monotone frontier never does this).
        if k.time.nanos() < self.last {
            self.last = k.time.nanos();
        }
        match self.cached_min {
            // The cache only improves: a valid cached minimum stays valid
            // unless the new key orders before it; an unknown minimum
            // (None) stays unknown unless the queue was empty.
            Some((_, m)) if m < k => {}
            Some(_) => self.cached_min = Some((idx, k)),
            None if self.count == 1 => self.cached_min = Some((idx, k)),
            None => {}
        }
        if self.count > self.buckets.len() * 2 {
            self.resize(self.buckets.len() * 2);
        }
    }

    /// The minimum key, without removing it.
    pub fn peek_min(&mut self) -> Option<OrderKey> {
        if self.count == 0 {
            return None;
        }
        if self.cached_min.is_none() {
            self.locate_min();
        }
        self.cached_min.map(|(_, k)| k)
    }

    /// Remove and return the minimum key.
    pub fn pop_min(&mut self) -> Option<OrderKey> {
        if self.count == 0 {
            return None;
        }
        if self.cached_min.is_none() {
            self.locate_min();
        }
        let (idx, k) = self.cached_min.take().expect("non-empty queue has a min");
        let popped = self.buckets[idx].pop().expect("cached bucket non-empty");
        debug_assert_eq!(popped, k);
        self.count -= 1;
        self.last = k.time.nanos();
        if self.count < self.buckets.len() / 2 && self.buckets.len() > MIN_BUCKETS {
            self.resize(self.buckets.len() / 2);
        }
        Some(k)
    }

    /// Find the minimum and cache its position. Classic calendar dequeue:
    /// sweep at most one "year" of buckets starting at the cursor, taking
    /// the first entry that falls inside its bucket's current-year window;
    /// fall back to a direct full scan when the sweep comes up empty
    /// (sparse queue whose next event is more than a year ahead).
    fn locate_min(&mut self) {
        debug_assert!(self.count > 0);
        let nb = self.buckets.len();
        let mut idx = ((self.last / self.width) as usize) & (nb - 1);
        // Upper time bound (exclusive) of `idx`'s window in this year.
        // u128: `last / width + 1` can overflow u64 when deadlines sit at
        // the far end of the clock (e.g. recv deadlines near u64::MAX).
        let mut top: u128 = (self.last as u128 / self.width as u128 + 1) * self.width as u128;
        for _ in 0..nb {
            if let Some(&k) = self.buckets[idx].last() {
                if (k.time.nanos() as u128) < top {
                    self.cached_min = Some((idx, k));
                    return;
                }
            }
            idx = (idx + 1) & (nb - 1);
            top += self.width as u128;
        }
        // Direct search: global minimum across all buckets.
        let (best_idx, best) = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.last().map(|&k| (i, k)))
            .min_by_key(|&(_, k)| k)
            .expect("non-empty queue has a minimum");
        // Jump the cursor to the found key so the next sweep starts there.
        self.last = best.time.nanos();
        self.cached_min = Some((best_idx, best));
    }

    /// Rebuild with `nbuckets` buckets and a width re-estimated from the
    /// average gap between adjacent queued keys. Deterministic: uses the
    /// full queued population, no sampling.
    fn resize(&mut self, nbuckets: usize) {
        let mut all: Vec<OrderKey> = self.buckets.iter().flatten().copied().collect();
        all.sort_unstable();
        // Mean inter-key time gap; 3x it so a bucket holds a few entries.
        let width = if all.len() >= 2 {
            let span = all[all.len() - 1]
                .time
                .nanos()
                .saturating_sub(all[0].time.nanos());
            ((span / (all.len() as u64 - 1)).saturating_mul(3)).max(1)
        } else {
            self.width
        };
        self.width = width;
        self.buckets = vec![Vec::new(); nbuckets.max(MIN_BUCKETS)];
        self.cached_min = None;
        // Re-insert in descending order so each bucket ends up sorted
        // descending with a single push per key.
        let count = all.len();
        for k in all.into_iter().rev() {
            let idx = self.bucket_of(k.time);
            self.buckets[idx].push(k);
        }
        self.count = count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    fn k(time: u64, pid: u32, gen: u64) -> OrderKey {
        OrderKey {
            time: SimTime(time),
            pid: Pid(pid),
            gen,
        }
    }

    #[test]
    fn pops_in_full_key_order() {
        let mut q = CalendarQueue::new();
        for key in [
            k(50, 1, 3),
            k(50, 0, 9),
            k(10, 7, 1),
            k(50, 1, 2),
            k(10, 7, 0),
            k(0, 0, 0),
        ] {
            q.push(key);
        }
        let mut out = Vec::new();
        while let Some(x) = q.pop_min() {
            out.push(x);
        }
        let mut expect = [
            k(50, 1, 3),
            k(50, 0, 9),
            k(10, 7, 1),
            k(50, 1, 2),
            k(10, 7, 0),
            k(0, 0, 0),
        ];
        expect.sort();
        assert_eq!(out, expect);
        assert!(q.is_empty());
    }

    #[test]
    fn peek_matches_pop_and_interleaves_with_push() {
        let mut q = CalendarQueue::new();
        q.push(k(100, 0, 0));
        assert_eq!(q.peek_min(), Some(k(100, 0, 0)));
        q.push(k(5, 2, 0));
        assert_eq!(q.peek_min(), Some(k(5, 2, 0)));
        assert_eq!(q.pop_min(), Some(k(5, 2, 0)));
        q.push(k(7, 1, 0));
        assert_eq!(q.pop_min(), Some(k(7, 1, 0)));
        assert_eq!(q.pop_min(), Some(k(100, 0, 0)));
        assert_eq!(q.pop_min(), None);
        assert_eq!(q.peek_min(), None);
    }

    #[test]
    fn survives_far_future_deadlines() {
        // Deadline entries can sit near the end of the clock; the year
        // arithmetic must not overflow.
        let mut q = CalendarQueue::new();
        q.push(k(u64::MAX, 0, 0));
        q.push(k(u64::MAX - 1, 1, 0));
        q.push(k(3, 2, 0));
        assert_eq!(q.pop_min(), Some(k(3, 2, 0)));
        assert_eq!(q.pop_min(), Some(k(u64::MAX - 1, 1, 0)));
        assert_eq!(q.pop_min(), Some(k(u64::MAX, 0, 0)));
    }

    #[test]
    fn resize_preserves_order_across_growth_and_shrink() {
        let mut q = CalendarQueue::new();
        // Push far more than 2*MIN_BUCKETS to force several doublings,
        // with clustered ties to stress in-bucket ordering.
        let mut keys = Vec::new();
        for i in 0..500u64 {
            let key = k((i * 37) % 90, (i % 11) as u32, i);
            keys.push(key);
            q.push(key);
        }
        keys.sort();
        for expect in keys {
            assert_eq!(q.pop_min(), Some(expect)); // shrinks on the way down
        }
    }

    #[test]
    fn defensive_rewind_on_earlier_push() {
        let mut q = CalendarQueue::new();
        q.push(k(1000, 0, 0));
        assert_eq!(q.pop_min(), Some(k(1000, 0, 0)));
        // Earlier than the last pop: the engine never does this, but the
        // queue must still return it.
        q.push(k(10, 1, 0));
        q.push(k(2000, 2, 0));
        assert_eq!(q.pop_min(), Some(k(10, 1, 0)));
        assert_eq!(q.pop_min(), Some(k(2000, 2, 0)));
    }

    /// The ISSUE-mandated equivalence suite: under randomized insert/pop
    /// interleavings the calendar queue pops in exactly the reference
    /// heap's `(time, pid, gen)` order.
    mod equivalence {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            #[test]
            fn matches_binary_heap_reference(
                // Op encoding: sel 0..3 = push (3:2 push:pop ratio),
                // sel 3..5 = pop; (time, pid, gen) feed the pushed key.
                ops in collection::vec((0u8..5, 0u64..5000, 0u32..16, 0u64..64), 1..400),
                // A monotone time offset stream mimicking the engine's
                // advancing frontier (mixed with the raw times above to
                // also cover non-monotone pushes).
                drift in 0u64..1000,
            ) {
                let mut cal = CalendarQueue::new();
                let mut heap: BinaryHeap<Reverse<OrderKey>> = BinaryHeap::new();
                let mut base = 0u64;
                for &(sel, time, pid, gen) in &ops {
                    if sel < 3 {
                        base += drift;
                        let key = OrderKey {
                            time: SimTime(base.saturating_add(time)),
                            pid: Pid(pid),
                            gen,
                        };
                        cal.push(key);
                        heap.push(Reverse(key));
                    } else {
                        prop_assert_eq!(cal.peek_min(), heap.peek().map(|r| r.0));
                        prop_assert_eq!(cal.pop_min(), heap.pop().map(|r| r.0));
                        prop_assert_eq!(cal.len(), heap.len());
                    }
                }
                // Drain: the tail must agree too.
                while let Some(expect) = heap.pop() {
                    prop_assert_eq!(cal.pop_min(), Some(expect.0));
                }
                prop_assert!(cal.is_empty());
            }

            /// Bucket-index and year-window arithmetic near the end of
            /// the clock. Recv deadlines sit at `u64::MAX - delta`, so
            /// `locate_min`'s `last / width + 1` year bound is one step
            /// from overflowing u64 (hence the u128 there) and
            /// `bucket_of`'s division lands in the last "year" of the
            /// calendar. Mix far-end keys with small ones and check the
            /// pop order against the heap oracle — including pops taken
            /// *between* pushes, which move the cursor (`last`) to the
            /// far end and exercise the overflow-prone sweep directly.
            #[test]
            fn survives_deadlines_near_u64_max(
                // sel < 4: push near u64::MAX; sel == 4: push small;
                // sel > 4: pop. Heavier far-end weighting on purpose.
                ops in collection::vec((0u8..7, 0u64..5000, 0u32..16, 0u64..8), 1..200),
            ) {
                let mut cal = CalendarQueue::new();
                let mut heap: BinaryHeap<Reverse<OrderKey>> = BinaryHeap::new();
                for &(sel, delta, pid, gen) in &ops {
                    if sel < 5 {
                        let time = if sel < 4 { u64::MAX - delta } else { delta };
                        let key = OrderKey {
                            time: SimTime(time),
                            pid: Pid(pid),
                            gen,
                        };
                        cal.push(key);
                        heap.push(Reverse(key));
                    } else {
                        prop_assert_eq!(cal.peek_min(), heap.peek().map(|r| r.0));
                        prop_assert_eq!(cal.pop_min(), heap.pop().map(|r| r.0));
                    }
                }
                while let Some(expect) = heap.pop() {
                    prop_assert_eq!(cal.pop_min(), Some(expect.0));
                }
                prop_assert!(cal.is_empty());
            }
        }
    }
}
