//! Messages exchanged between simulated processes.

use std::any::Any;
use std::fmt;
use std::sync::Arc;

use bytes::Bytes;

use crate::engine::Pid;
use crate::time::SimTime;

/// Message tag used for matching (an application-defined channel id).
pub type Tag = u64;

/// Payload carried by a message.
///
/// Simulated cost is always driven by [`Message::bytes`] — the *logical*
/// payload size on the modeled platform — so large transfers can be
/// simulated without materializing their content. When content matters
/// (reduction operands, shuffle blocks, task closures) it travels as real
/// Rust data in `Bytes` or `Value`.
pub enum Payload {
    /// No content beyond the logical size (pure timing).
    Empty,
    /// Raw bytes.
    Bytes(Bytes),
    /// An arbitrary Rust value, shared by `Arc` so broadcast-style fan-out
    /// does not copy.
    Value(Arc<dyn Any + Send + Sync>),
}

impl Payload {
    /// Wrap a value.
    pub fn value<T: Any + Send + Sync>(v: T) -> Payload {
        Payload::Value(Arc::new(v))
    }

    /// Downcast a `Value` payload; `None` for other variants or a type
    /// mismatch.
    pub fn downcast<T: Any + Send + Sync>(&self) -> Option<Arc<T>> {
        match self {
            Payload::Value(v) => v.clone().downcast::<T>().ok(),
            _ => None,
        }
    }

    /// The raw bytes, if this is a `Bytes` payload.
    pub fn as_bytes(&self) -> Option<&Bytes> {
        match self {
            Payload::Bytes(b) => Some(b),
            _ => None,
        }
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Payload::Empty => write!(f, "Empty"),
            Payload::Bytes(b) => write!(f, "Bytes({} B)", b.len()),
            Payload::Value(_) => write!(f, "Value(..)"),
        }
    }
}

/// A delivered message.
#[derive(Debug)]
pub struct Message {
    /// Sending process.
    pub src: Pid,
    /// Destination process (carried for diagnostics: a mis-typed payload
    /// panic must identify the exact edge it traveled).
    pub dst: Pid,
    /// Matching tag.
    pub tag: Tag,
    /// Logical payload size in bytes (drives all costs).
    pub bytes: u64,
    /// Content.
    pub payload: Payload,
    /// Virtual time the message was handed to the transport.
    pub sent_at: SimTime,
    /// Virtual time the last byte reached the receiver's NIC.
    pub arrival: SimTime,
    /// Receiver-side CPU cost (transport overhead + per-byte), charged when
    /// the message is consumed.
    pub recv_cost: crate::time::SimDuration,
}

impl Message {
    /// Downcast the payload value. Panics with a descriptive message on
    /// mismatch — in the frameworks built on simnet a type mismatch is a
    /// protocol bug, never data-dependent.
    pub fn expect_value<T: Any + Send + Sync>(&self) -> Arc<T> {
        self.payload.downcast::<T>().unwrap_or_else(|| {
            panic!(
                "message {} -> {} tag {} ({} B, payload {:?}) did not carry a {}",
                self.src,
                self.dst,
                self.tag,
                self.bytes,
                self.payload,
                std::any::type_name::<T>()
            )
        })
    }
}

/// Receive-side matching filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchSpec {
    /// Match only messages from this sender (`None` = any source).
    pub src: Option<Pid>,
    /// Match only this tag (`None` = any tag).
    pub tag: Option<Tag>,
}

impl MatchSpec {
    /// Match anything.
    pub const ANY: MatchSpec = MatchSpec {
        src: None,
        tag: None,
    };

    /// Match a specific tag from any source.
    pub fn tag(tag: Tag) -> MatchSpec {
        MatchSpec {
            src: None,
            tag: Some(tag),
        }
    }

    /// Match a specific source and tag.
    pub fn src_tag(src: Pid, tag: Tag) -> MatchSpec {
        MatchSpec {
            src: Some(src),
            tag: Some(tag),
        }
    }

    /// Does `msg` satisfy this filter?
    #[inline]
    pub fn matches(&self, msg: &Message) -> bool {
        self.src.is_none_or(|s| s == msg.src) && self.tag.is_none_or(|t| t == msg.tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(src: u32, tag: Tag) -> Message {
        Message {
            src: Pid(src),
            dst: Pid(0),
            tag,
            bytes: 0,
            payload: Payload::Empty,
            sent_at: SimTime::ZERO,
            arrival: SimTime::ZERO,
            recv_cost: crate::time::SimDuration::ZERO,
        }
    }

    #[test]
    fn match_spec_filters() {
        let m = msg(3, 7);
        assert!(MatchSpec::ANY.matches(&m));
        assert!(MatchSpec::tag(7).matches(&m));
        assert!(!MatchSpec::tag(8).matches(&m));
        assert!(MatchSpec::src_tag(Pid(3), 7).matches(&m));
        assert!(!MatchSpec::src_tag(Pid(4), 7).matches(&m));
    }

    #[test]
    fn payload_downcast() {
        let p = Payload::value(vec![1u64, 2, 3]);
        let v = p.downcast::<Vec<u64>>().unwrap();
        assert_eq!(*v, vec![1, 2, 3]);
        assert!(p.downcast::<String>().is_none());
        assert!(Payload::Empty.downcast::<String>().is_none());
    }

    #[test]
    #[should_panic(expected = "did not carry")]
    fn expect_value_panics_on_mismatch() {
        let m = msg(0, 0);
        let _ = m.expect_value::<String>();
    }
}
