//! Virtual time primitives.
//!
//! All simulation timing is expressed in integer **nanoseconds** of virtual
//! time. Integer arithmetic keeps the engine deterministic: two runs of the
//! same simulation produce bit-identical schedules and report identical
//! times, which the test suite relies on.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the virtual clock, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; used as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Nanoseconds since simulation start.
    #[inline]
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Virtual seconds since simulation start, as a float (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`. Saturates at zero.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// Negative and non-finite inputs clamp to zero — cost formulas on
    /// degenerate workloads (zero bytes, zero rate) must never panic.
    #[inline]
    pub fn from_secs_f64(s: f64) -> SimDuration {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Nanoseconds in this span.
    #[inline]
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// This span in seconds, as a float (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating sum of two spans.
    #[inline]
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::ZERO + SimDuration::from_micros(3) + SimDuration::from_nanos(42);
        assert_eq!(t.nanos(), 3_042);
        assert_eq!(t.since(SimTime::ZERO).nanos(), 3_042);
        assert_eq!((t - SimTime(42)).nanos(), 3_000);
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!((SimTime(5) - SimTime(10)).nanos(), 0);
        assert_eq!((SimTime::MAX + SimDuration::from_secs(1)), SimTime::MAX);
    }

    #[test]
    fn from_secs_f64_clamps_degenerate_inputs() {
        assert_eq!(SimDuration::from_secs_f64(-1.0).nanos(), 0);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN).nanos(), 0);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY).nanos(), 0);
        assert_eq!(SimDuration::from_secs_f64(1.5e-9).nanos(), 2);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(17).to_string(), "17ns");
        assert_eq!(SimDuration::from_micros(2).to_string(), "2.000us");
        assert_eq!(SimDuration::from_millis(2).to_string(), "2.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }
}
