//! Run capture: a process-global hook that snapshots every completed
//! [`crate::Sim`] run for the observability layer (`hpcbd-obs`).
//!
//! Bench binaries build one simulation per data point deep inside the
//! runtime crates; threading a collector handle through every call chain
//! would touch every API for a purely diagnostic concern. Instead, a
//! bin that wants a run report brackets its work with
//! [`begin_capture`]/[`end_capture`]; while active, every `Sim::run`
//! forces tracing on and appends a [`RunCapture`] — process metadata,
//! final statistics and the deterministically sorted event stream — to
//! the global capture buffer.
//!
//! Determinism: everything in a capture derives from virtual-time state
//! ([`crate::Trace::sorted_events`] order, per-process stats, finish
//! times), all of which are bit-identical across
//! [`crate::Execution::Sequential`] and [`crate::Execution::Parallel`].
//! Captures therefore compare byte-equal across modes once serialized.
//!
//! Cost: one relaxed atomic load per `Sim::run` when inactive — nothing
//! on the engine's per-operation hot path.

use std::sync::atomic::{AtomicBool, Ordering};

use parking_lot::Mutex;

use crate::engine::SimReport;
use crate::stats::ProcStats;
use crate::time::SimTime;
use crate::topology::NodeId;
use crate::trace::TraceEvent;

/// Snapshot of one completed simulation run.
#[derive(Debug, Clone)]
pub struct RunCapture {
    /// Process names, indexed by pid.
    pub proc_names: Vec<String>,
    /// Node each process ran on, indexed by pid.
    pub proc_nodes: Vec<NodeId>,
    /// Per-process finish times, indexed by pid.
    pub finishes: Vec<SimTime>,
    /// Per-process final statistics, indexed by pid.
    pub stats: Vec<ProcStats>,
    /// Virtual time the last process finished.
    pub makespan: SimTime,
    /// Number of nodes in the run's topology.
    pub cluster_nodes: usize,
    /// Messages sent to already-finished processes.
    pub dropped_msgs: u64,
    /// The full event stream in the deterministic export order.
    pub events: Vec<TraceEvent>,
    /// Telemetry sampling interval the run used (`None` off; see
    /// [`crate::telemetry`]). Like the fields below, excluded from
    /// conformance digests — `hpcbd-check` hashes capture fields
    /// explicitly.
    pub telemetry_interval: Option<u64>,
    /// Metric points recorded by processes, in the canonical
    /// `(time, name, labels, pid, seq)` order. Deterministic (virtual-
    /// time state only) but digest-excluded alongside the interval: a
    /// telemetry-on run must digest identically to a telemetry-off run.
    pub metric_points: Vec<crate::telemetry::MetricPoint>,
    /// Speculations committed clean. Wall-clock-schedule-dependent —
    /// surfaced only in the report's `host_profile` section, never
    /// digested or compared across modes.
    pub spec_commits: u64,
    /// Speculations rolled back and replayed. Same caveats.
    pub spec_rollbacks: u64,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static CAPTURES: Mutex<Vec<RunCapture>> = Mutex::new(Vec::new());

/// Whether a capture window is open ([`begin_capture`] without a
/// matching [`end_capture`] yet).
#[inline]
pub fn capture_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Open a capture window: discard any stale captures and record every
/// subsequent `Sim::run` until [`end_capture`]. Capture state is
/// process-global — concurrent capture windows (e.g. parallel tests)
/// must be externally serialized.
pub fn begin_capture() {
    CAPTURES.lock().clear();
    ACTIVE.store(true, Ordering::SeqCst);
}

/// Close the capture window and take every run recorded since
/// [`begin_capture`], in completion order (deterministic: bench sweeps
/// run their simulations one after another).
pub fn end_capture() -> Vec<RunCapture> {
    ACTIVE.store(false, Ordering::SeqCst);
    std::mem::take(&mut CAPTURES.lock())
}

/// Record one finished run. Called by `Sim::run` when a capture window
/// is open.
pub(crate) fn record_run(report: &SimReport, cluster_nodes: usize) {
    let events = report
        .trace
        .as_ref()
        .map(|t| t.sorted_events())
        .unwrap_or_default();
    let cap = RunCapture {
        proc_names: report.procs.iter().map(|p| p.name.clone()).collect(),
        proc_nodes: report.procs.iter().map(|p| p.node).collect(),
        finishes: report.procs.iter().map(|p| p.finish).collect(),
        stats: report.procs.iter().map(|p| p.stats.clone()).collect(),
        makespan: report.makespan(),
        cluster_nodes,
        dropped_msgs: report.dropped_msgs,
        events,
        telemetry_interval: report.telemetry_interval,
        metric_points: report.metric_points.clone(),
        spec_commits: report.spec_commits,
        spec_rollbacks: report.spec_rollbacks,
    };
    CAPTURES.lock().push(cap);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NodeId, Payload, Pid, Sim, Topology, Transport, Work};

    // Capture state is process-global; serialize the tests that use it.
    static GUARD: Mutex<()> = Mutex::new(());

    #[test]
    fn capture_records_runs_with_events() {
        let _g = GUARD.lock();
        begin_capture();
        let tr = Transport::rdma_verbs();
        let mut sim = Sim::new(Topology::comet(2));
        sim.spawn(NodeId(0), "s", move |ctx| {
            ctx.span_open("phase/a");
            ctx.compute(Work::flops(1.0e6), 1.0);
            ctx.send(Pid(1), 1, 128, Payload::Empty, &tr);
            ctx.span_close();
        });
        sim.spawn(NodeId(1), "r", |ctx| {
            ctx.recv(crate::MatchSpec::tag(1));
        });
        let report = sim.run();
        assert!(report.trace.is_some(), "capture must force tracing on");
        let caps = end_capture();
        assert_eq!(caps.len(), 1);
        let cap = &caps[0];
        assert_eq!(cap.proc_names, vec!["s".to_string(), "r".to_string()]);
        assert_eq!(cap.cluster_nodes, 2);
        assert_eq!(cap.makespan, report.makespan());
        assert!(cap
            .events
            .iter()
            .any(|e| matches!(e.kind, crate::trace::EventKind::Phase { .. })));
        assert!(!capture_active());
    }

    #[test]
    fn runs_outside_a_window_are_not_captured() {
        let _g = GUARD.lock();
        let mut sim = Sim::new(Topology::comet(1));
        sim.spawn(NodeId(0), "w", |ctx| {
            ctx.compute(Work::flops(1.0e6), 1.0);
        });
        let report = sim.run();
        assert!(report.trace.is_none(), "no capture, no forced tracing");
        begin_capture();
        assert_eq!(end_capture().len(), 0);
    }
}
