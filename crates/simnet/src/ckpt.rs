//! Asynchronous checkpoint drain bookkeeping.
//!
//! Asynchronous checkpointing (per the mixed MPI/GPI-2
//! algorithm-based checkpoint-restart study, see `PAPERS.md`)
//! decouples *snapshot* from *persistence*: at the interval boundary a
//! rank copies its state into a double buffer (cheap, memory-bandwidth
//! cost) and immediately resumes compute, while the buffer drains to
//! scratch in background I/O. A restart may therefore only fall back
//! to the last checkpoint whose drain had **completed by the crash
//! time** — a snapshot whose drain was still in flight when the node
//! died is a torn file, not a checkpoint.
//!
//! [`DrainSchedule`] is the per-rank ledger of that distinction. The
//! runtime registers every snapshot with the virtual time its
//! background write will complete (from
//! [`crate::ProcCtx::disk_write_background`]) and asks
//! [`DrainSchedule::drained_through`] at recovery time which iteration
//! is actually on disk. Both `minimpi` and `minshmem` checkpointers
//! share this ledger, and the fault-campaign generator reads
//! [`DrainSchedule::windows`] from an oracle run to aim crashes
//! *inside* drain intervals — the adversarial case that distinguishes
//! a correct restart (fall back to the last drained checkpoint) from
//! the classic watermark-confusion bug (trust the snapshot counter).

use crate::time::{SimDuration, SimTime};

/// Which checkpoint protocol a checkpointing driver runs. Shared by the
/// runtime-specific drivers (`hpcbd-minimpi`'s `Checkpointer`,
/// `hpcbd-minshmem`'s `ShmemCheckpointer`) so the fault-campaign
/// explorer can sweep both runtimes over the same protocol axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointMode {
    /// Stop-the-world: barrier + synchronous write + barrier. The write
    /// sits on the critical path every interval.
    Coordinated,
    /// Snapshot at the barrier (memory-bandwidth copy into a double
    /// buffer), drain in background I/O overlapped with compute;
    /// restart falls back to the last fully drained checkpoint.
    Async,
}

/// What an SPMD job does when a node it occupies fails (the paper's
/// Sec. VI-D fault-tolerance contrast).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultPolicy {
    /// Default HPC semantics: the whole job aborts (`MPI_Abort` /
    /// `shmem_global_exit`) — the runtime itself does not recover from
    /// faults. Raised as a [`crate::StructuredAbort`] so harnesses can
    /// tell the deliberate abort from a runtime bug.
    Abort,
    /// Checkpoint/restart: the job relaunches from the last restartable
    /// checkpoint after a scheduler stall.
    Restart {
        /// Scheduler/relaunch stall charged before ranks reload state.
        relaunch_stall: SimDuration,
    },
}

/// One registered snapshot drain: issued at `issue`, durable at `done`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Drain {
    /// Iteration the snapshot covers (0-based; state *after* it ran).
    pub iter: u32,
    /// Virtual time the background write was issued (snapshot taken).
    pub issue: SimTime,
    /// Virtual time the write completes on the device; the checkpoint
    /// is restartable only at or after this instant.
    pub done: SimTime,
}

/// Per-rank ledger of asynchronous checkpoint drains, in issue order.
#[derive(Debug, Clone, Default)]
pub struct DrainSchedule {
    drains: Vec<Drain>,
}

impl DrainSchedule {
    /// Empty ledger.
    pub fn new() -> DrainSchedule {
        DrainSchedule::default()
    }

    /// Record a snapshot of iteration `iter` issued at `issue` whose
    /// background write completes at `done`. Iterations must be
    /// registered in increasing order (re-registering an iteration
    /// after a restart replaces the stale entry and everything after
    /// it).
    pub fn register(&mut self, iter: u32, issue: SimTime, done: SimTime) {
        assert!(done >= issue, "drain completes before it was issued");
        // A restart rewinds the iteration counter; drop ledger entries
        // the rewind invalidated so the ledger stays sorted by iter.
        self.drains.retain(|d| d.iter < iter);
        self.drains.push(Drain { iter, issue, done });
    }

    /// Latest iteration whose drain had completed by `at`, if any —
    /// the only legal restart point after a crash at `at`.
    pub fn drained_through(&self, at: SimTime) -> Option<u32> {
        self.drains
            .iter()
            .filter(|d| d.done <= at)
            .map(|d| d.iter)
            .max()
    }

    /// Latest snapshot taken (drained or not) — what a *buggy* restart
    /// trusts when it confuses the snapshot counter with the drain
    /// watermark.
    pub fn latest_snapshot(&self) -> Option<u32> {
        self.drains.last().map(|d| d.iter)
    }

    /// The drain registered for `iter`, if any.
    pub fn drain_of(&self, iter: u32) -> Option<Drain> {
        self.drains.iter().find(|d| d.iter == iter).copied()
    }

    /// Number of drains still in flight at `at`.
    pub fn in_flight_at(&self, at: SimTime) -> usize {
        self.drains
            .iter()
            .filter(|d| d.issue <= at && at < d.done)
            .count()
    }

    /// All `(issue, done)` drain windows, in issue order. The campaign
    /// generator samples crash times inside these from an oracle run.
    pub fn windows(&self) -> Vec<(SimTime, SimTime)> {
        self.drains.iter().map(|d| (d.issue, d.done)).collect()
    }

    /// Number of registered drains.
    pub fn len(&self) -> usize {
        self.drains.len()
    }

    /// Whether no drain was registered.
    pub fn is_empty(&self) -> bool {
        self.drains.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drained_watermark_respects_completion_times() {
        let mut d = DrainSchedule::new();
        d.register(1, SimTime(100), SimTime(500));
        d.register(3, SimTime(600), SimTime(1_200));
        assert_eq!(d.drained_through(SimTime(99)), None);
        assert_eq!(d.drained_through(SimTime(499)), None);
        assert_eq!(d.drained_through(SimTime(500)), Some(1));
        assert_eq!(d.drained_through(SimTime(1_199)), Some(1));
        assert_eq!(d.drained_through(SimTime(1_200)), Some(3));
        assert_eq!(d.latest_snapshot(), Some(3));
        assert_eq!(d.in_flight_at(SimTime(700)), 1);
        assert_eq!(d.in_flight_at(SimTime(1_300)), 0);
        assert_eq!(d.windows().len(), 2);
    }

    #[test]
    fn restart_rewind_replaces_stale_entries() {
        let mut d = DrainSchedule::new();
        d.register(1, SimTime(100), SimTime(200));
        d.register(3, SimTime(300), SimTime(400));
        // Restart rewound to iteration 2; the retaken checkpoint at
        // iteration 3 must replace the pre-crash entry.
        d.register(3, SimTime(900), SimTime(1_000));
        assert_eq!(d.len(), 2);
        assert_eq!(d.drained_through(SimTime(450)), Some(1));
        assert_eq!(d.drained_through(SimTime(1_000)), Some(3));
    }

    #[test]
    fn empty_schedule_has_no_watermark() {
        let d = DrainSchedule::new();
        assert_eq!(d.drained_through(SimTime(u64::MAX)), None);
        assert_eq!(d.latest_snapshot(), None);
        assert!(d.is_empty());
    }
}
