//! Network transport cost models.
//!
//! A transport is a LogGP-flavoured parameterization of one way of moving a
//! message between two processes: fixed wire latency, endpoint software
//! overheads (charged to the sender's / receiver's CPU clock), streaming
//! bandwidth (serialized at the sender's NIC), and a per-byte CPU cost for
//! stacks that copy or (de)serialize payloads in software.
//!
//! The three named transports mirror the communication paths in the paper:
//!
//! * [`Transport::rdma_verbs`] — native InfiniBand FDR verbs. MPI and
//!   OpenSHMEM use this for everything; the Spark-RDMA shuffle engine uses
//!   it for shuffle data only.
//! * [`Transport::ipoib_socket`] — TCP sockets over IP-over-InfiniBand, the
//!   default Spark/Hadoop data path on Comet.
//! * [`Transport::java_socket_control`] — the JVM socket RPC path used for
//!   orchestration (driver<->executor control, Hadoop heartbeats). Same wire
//!   as IPoIB but with JVM serialization and RPC dispatch overheads; the
//!   paper stresses that even Spark-RDMA keeps using this path for control.

use crate::time::SimDuration;

/// Cost parameters for one message transport.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transport {
    /// Wire propagation + switching latency per message.
    pub latency: SimDuration,
    /// CPU time charged to the sender before the payload hits the NIC.
    pub send_overhead: SimDuration,
    /// CPU time charged to the receiver when it consumes the message.
    pub recv_overhead: SimDuration,
    /// Streaming bandwidth through one endpoint NIC, bytes/second.
    pub bandwidth: f64,
    /// Per-byte CPU cost (copies, (de)serialization), seconds/byte, applied
    /// at both endpoints.
    pub cpu_per_byte: f64,
    /// Short name used in reports.
    pub name: &'static str,
}

impl Transport {
    /// Native RDMA over FDR InfiniBand (56 Gb/s signalling, ~6.4 GB/s
    /// effective): microsecond latency, negligible per-byte CPU.
    pub fn rdma_verbs() -> Transport {
        Transport {
            latency: SimDuration::from_nanos(1_900),
            send_overhead: SimDuration::from_nanos(300),
            recv_overhead: SimDuration::from_nanos(300),
            bandwidth: 6.4e9,
            cpu_per_byte: 0.0,
            name: "rdma-verbs",
        }
    }

    /// TCP over IPoIB: kernel stack latency and roughly a fifth of the
    /// verbs bandwidth (observed on Comet-class FDR fabrics).
    pub fn ipoib_socket() -> Transport {
        Transport {
            latency: SimDuration::from_micros(18),
            send_overhead: SimDuration::from_micros(12),
            recv_overhead: SimDuration::from_micros(12),
            bandwidth: 1.3e9,
            cpu_per_byte: 0.25e-9,
            name: "ipoib-socket",
        }
    }

    /// JVM socket RPC used for cluster orchestration: IPoIB wire plus
    /// serialization and dispatch costs of the JVM RPC layers.
    pub fn java_socket_control() -> Transport {
        Transport {
            latency: SimDuration::from_micros(18),
            send_overhead: SimDuration::from_micros(110),
            recv_overhead: SimDuration::from_micros(90),
            bandwidth: 1.1e9,
            cpu_per_byte: 1.2e-9,
            name: "java-socket",
        }
    }

    /// Loopback TCP on one node: what a local HDFS block read costs when
    /// short-circuit reads are off (the Hadoop 2.x default) — kernel
    /// socket hops and stream copies, no wire.
    pub fn loopback_socket() -> Transport {
        Transport {
            latency: SimDuration::from_micros(15),
            send_overhead: SimDuration::from_micros(8),
            recv_overhead: SimDuration::from_micros(8),
            bandwidth: 2.5e9,
            cpu_per_byte: 0.3e-9,
            name: "loopback-socket",
        }
    }

    /// Intra-node transfer through shared memory.
    pub fn shared_memory() -> Transport {
        Transport {
            latency: SimDuration::from_nanos(400),
            send_overhead: SimDuration::from_nanos(150),
            recv_overhead: SimDuration::from_nanos(150),
            bandwidth: 8.0e9,
            cpu_per_byte: 0.0,
            name: "shm",
        }
    }

    /// Time the payload occupies the sender NIC.
    #[inline]
    pub fn wire_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.bandwidth)
    }

    /// CPU time charged at one endpoint for `bytes` of payload.
    #[inline]
    pub fn endpoint_cpu(&self, overhead: SimDuration, bytes: u64) -> SimDuration {
        overhead + SimDuration::from_secs_f64(bytes as f64 * self.cpu_per_byte)
    }

    /// End-to-end latency of an uncontended message of `bytes`, excluding
    /// endpoint CPU overheads. Useful for analytical sanity checks.
    #[inline]
    pub fn uncontended_transfer(&self, bytes: u64) -> SimDuration {
        self.latency + self.wire_time(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbs_beats_sockets_on_both_axes() {
        let v = Transport::rdma_verbs();
        let s = Transport::ipoib_socket();
        let j = Transport::java_socket_control();
        assert!(v.latency < s.latency && s.latency <= j.latency);
        assert!(v.bandwidth > s.bandwidth && s.bandwidth >= j.bandwidth);
        assert!(v.send_overhead < s.send_overhead && s.send_overhead < j.send_overhead);
    }

    #[test]
    fn wire_time_scales_linearly() {
        let v = Transport::rdma_verbs();
        let t1 = v.wire_time(1 << 20).nanos();
        let t2 = v.wire_time(2 << 20).nanos();
        // Within rounding of a nanosecond per call.
        assert!((t2 as i64 - 2 * t1 as i64).abs() <= 2);
    }

    #[test]
    fn large_rdma_message_dominated_by_bandwidth() {
        let v = Transport::rdma_verbs();
        let xfer = v.uncontended_transfer(64 << 20); // 64 MiB
        let pure_bw = v.wire_time(64 << 20);
        let ratio = xfer.nanos() as f64 / pure_bw.nanos() as f64;
        assert!(ratio < 1.01, "latency should be negligible, ratio={ratio}");
    }
}
