//! Parallel lookahead execution mode for the virtual-time engine.
//!
//! The engine's determinism story (see `engine.rs` and DESIGN.md) rests
//! on totally ordering *simulation-visible* operations. The compute
//! segments between those operations have no simulation-visible effect —
//! they only advance a process's private clock and run private Rust
//! code — so they may overlap in wall-clock time without changing any
//! virtual-time outcome. This module holds the public knobs that select
//! between the two schedules:
//!
//! * [`Execution::Sequential`] — classic baton passing, one process at a
//!   time (the default, and the reference schedule).
//! * [`Execution::Parallel`] — the commit token is released right after
//!   each visible operation's shared-state mutation; the process then
//!   runs its next compute segment concurrently with others. A
//!   conservative frontier rule in the scheduler guarantees the grant
//!   sequence — and therefore every virtual time, result and statistic —
//!   is bit-identical to the sequential schedule.
//!
//! * [`Execution::Speculative`] — everything parallel mode does, plus
//!   optimistic execution past the conservative frontier: sends are
//!   buffered and committed by the scheduler at their order key, and
//!   device reservations are speculated against a snapshot, validated
//!   at the commit point, and rolled back + replayed when stale (see
//!   [`crate::speculate`] and DESIGN.md §14). Still bit-identical.
//!
//! The mode can be set per run ([`crate::Sim::set_execution`]),
//! process-wide ([`set_default_execution`]), or from the environment via
//! `HPCBD_EXECUTION=sequential|parallel[:N]|speculative[:N]`.

use std::sync::atomic::{AtomicU64, Ordering};

/// How the engine schedules the real Rust compute between visible
/// operations. All modes produce bit-identical virtual-time results;
/// parallel mode trades scheduler overhead for wall-clock overlap of
/// compute segments, and speculative mode additionally overlaps the
/// visible operations themselves on multi-core hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Execution {
    /// Classic baton passing: one process at a time (default).
    Sequential,
    /// Release the commit token after each visible operation so up to
    /// `threads` processes run their compute segments concurrently
    /// (in addition to the current token holder). `threads = 0` degrades
    /// to sequential behaviour.
    Parallel {
        /// Concurrency cap for released compute segments.
        threads: usize,
    },
    /// Parallel mode plus optimistic (Time Warp-style) speculation past
    /// the conservative frontier: buffered sends, snapshot-validated
    /// device reservations, rollback + replay of stale speculations.
    Speculative {
        /// Concurrency cap for released compute segments.
        threads: usize,
    },
}

/// Encoded process-wide default execution mode; `u64::MAX` means "not
/// yet initialized, consult the environment".
static DEFAULT_EXEC: AtomicU64 = AtomicU64::new(u64::MAX);

/// High bit of the encoding marks speculative mode; thread counts live
/// in the low 62 bits so no encoding can collide with the `u64::MAX`
/// "uninitialized" sentinel (which has every bit set).
const SPEC_BIT: u64 = 1 << 63;
const THREADS_MASK: u64 = (1 << 62) - 1;

impl Execution {
    fn encode(self) -> u64 {
        match self {
            Execution::Sequential => 0,
            Execution::Parallel { threads } => (threads.max(1) as u64) & THREADS_MASK,
            Execution::Speculative { threads } => {
                SPEC_BIT | ((threads.max(1) as u64) & THREADS_MASK)
            }
        }
    }

    fn decode(v: u64) -> Execution {
        if v == 0 {
            Execution::Sequential
        } else if v & SPEC_BIT != 0 {
            Execution::Speculative {
                threads: (v & THREADS_MASK) as usize,
            }
        } else {
            Execution::Parallel {
                threads: v as usize,
            }
        }
    }

    fn auto_threads() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Parallel mode sized to the host's available cores.
    pub fn parallel_auto() -> Execution {
        Execution::Parallel {
            threads: Execution::auto_threads(),
        }
    }

    /// Speculative mode sized to the host's available cores.
    pub fn speculative_auto() -> Execution {
        Execution::Speculative {
            threads: Execution::auto_threads(),
        }
    }

    /// Parse the `HPCBD_EXECUTION` environment variable: `sequential`
    /// (default), `parallel` / `speculative` (auto-sized), or
    /// `parallel:N` / `speculative:N`.
    ///
    /// A malformed value falls back to [`Execution::Sequential`], but not
    /// silently: a one-time stderr warning names the rejected value, so a
    /// typo like `paralell:4` cannot quietly benchmark the wrong mode.
    pub fn from_env() -> Execution {
        let (exec, rejected) = Execution::from_env_value(std::env::var("HPCBD_EXECUTION").ok());
        if let Some(bad) = rejected {
            static WARN_ONCE: std::sync::Once = std::sync::Once::new();
            WARN_ONCE.call_once(|| {
                eprintln!(
                    "warning: unrecognized HPCBD_EXECUTION value {bad:?} \
                     (expected `sequential`, `parallel[:N]`, or `speculative[:N]`); \
                     falling back to sequential execution"
                );
            });
        }
        exec
    }

    /// Resolve an `HPCBD_EXECUTION` value (or its absence) to a mode plus,
    /// when the value was malformed, the value to warn about. Split from
    /// [`Execution::from_env`] so the fallback is testable without
    /// touching the process environment or capturing stderr.
    fn from_env_value(v: Option<String>) -> (Execution, Option<String>) {
        match v {
            Some(v) => match Execution::parse(&v) {
                Some(e) => (e, None),
                None => (Execution::Sequential, Some(v)),
            },
            None => (Execution::Sequential, None),
        }
    }

    /// Parse `sequential` / `seq`, `parallel` / `par`,
    /// `speculative` / `spec`, or the `:N`-suffixed forms with `N >= 1`
    /// (a zero-thread pool is meaningless and rejected, as is any
    /// non-numeric suffix; whitespace around the mode or the thread
    /// count is tolerated).
    pub fn parse(s: &str) -> Option<Execution> {
        let s = s.trim();
        match s {
            "sequential" | "seq" => Some(Execution::Sequential),
            "parallel" | "par" => Some(Execution::parallel_auto()),
            "speculative" | "spec" => Some(Execution::speculative_auto()),
            _ => {
                let (rest, speculative) = if let Some(r) = s.strip_prefix("parallel:") {
                    (r, false)
                } else if let Some(r) = s.strip_prefix("par:") {
                    (r, false)
                } else if let Some(r) = s.strip_prefix("speculative:") {
                    (r, true)
                } else if let Some(r) = s.strip_prefix("spec:") {
                    (r, true)
                } else {
                    return None;
                };
                let threads = rest.trim().parse::<usize>().ok()?;
                if threads == 0 {
                    return None;
                }
                Some(if speculative {
                    Execution::Speculative { threads }
                } else {
                    Execution::Parallel { threads }
                })
            }
        }
    }
}

/// Set the process-wide default execution mode used by
/// [`crate::Sim::new`] (overridable per simulation with
/// [`crate::Sim::set_execution`]).
pub fn set_default_execution(exec: Execution) {
    DEFAULT_EXEC.store(exec.encode(), Ordering::SeqCst);
}

/// The process-wide default execution mode: whatever
/// [`set_default_execution`] last stored, else `HPCBD_EXECUTION`, else
/// sequential.
pub fn default_execution() -> Execution {
    let v = DEFAULT_EXEC.load(Ordering::SeqCst);
    if v != u64::MAX {
        return Execution::decode(v);
    }
    let e = Execution::from_env();
    // Racing initializers agree (the env doesn't change underneath us).
    DEFAULT_EXEC.store(e.encode(), Ordering::SeqCst);
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_modes() {
        assert_eq!(Execution::parse("sequential"), Some(Execution::Sequential));
        assert_eq!(Execution::parse("seq"), Some(Execution::Sequential));
        assert_eq!(
            Execution::parse("parallel:4"),
            Some(Execution::Parallel { threads: 4 })
        );
        assert!(matches!(
            Execution::parse("parallel"),
            Some(Execution::Parallel { .. })
        ));
        assert_eq!(
            Execution::parse("speculative:4"),
            Some(Execution::Speculative { threads: 4 })
        );
        assert_eq!(
            Execution::parse("spec:2"),
            Some(Execution::Speculative { threads: 2 })
        );
        assert!(matches!(
            Execution::parse("speculative"),
            Some(Execution::Speculative { .. })
        ));
        assert!(matches!(
            Execution::parse("spec"),
            Some(Execution::Speculative { .. })
        ));
        assert_eq!(Execution::parse("bogus"), None);
    }

    #[test]
    fn parse_rejects_zero_threads() {
        assert_eq!(Execution::parse("parallel:0"), None);
        assert_eq!(Execution::parse("par:0"), None);
        assert_eq!(Execution::parse(" parallel:0 "), None);
        assert_eq!(Execution::parse("speculative:0"), None);
        assert_eq!(Execution::parse("spec:0"), None);
        assert_eq!(Execution::parse(" speculative:0 "), None);
    }

    #[test]
    fn parse_tolerates_whitespace() {
        assert_eq!(
            Execution::parse("  parallel:8\n"),
            Some(Execution::Parallel { threads: 8 })
        );
        assert_eq!(
            Execution::parse("parallel: 8"),
            Some(Execution::Parallel { threads: 8 })
        );
        assert_eq!(Execution::parse("\tseq "), Some(Execution::Sequential));
    }

    #[test]
    fn parse_bounds_thread_counts() {
        assert_eq!(
            Execution::parse(&format!("parallel:{}", usize::MAX)),
            Some(Execution::Parallel {
                threads: usize::MAX
            })
        );
        // One past usize::MAX overflows the parse and is rejected, not
        // wrapped or clamped to something surprising.
        assert_eq!(Execution::parse("parallel:18446744073709551616"), None);
        assert_eq!(Execution::parse("parallel:-1"), None);
        assert_eq!(Execution::parse("parallel:"), None);
        assert_eq!(Execution::parse("parallel:4x"), None);
        assert_eq!(Execution::parse("speculative:18446744073709551616"), None);
        assert_eq!(Execution::parse("speculative:-1"), None);
        assert_eq!(Execution::parse("speculative:"), None);
        assert_eq!(Execution::parse("speculative:4x"), None);
        assert_eq!(Execution::parse("spec:2 4"), None);
    }

    #[test]
    fn speculative_whitespace_tolerated_like_parallel() {
        assert_eq!(
            Execution::parse("  speculative:8\n"),
            Some(Execution::Speculative { threads: 8 })
        );
        assert_eq!(
            Execution::parse("speculative: 8"),
            Some(Execution::Speculative { threads: 8 })
        );
        assert_eq!(
            Execution::parse("\tspec "),
            Some(Execution::speculative_auto())
        );
    }

    #[test]
    fn env_fallback_reports_the_malformed_value() {
        // Well-formed values pass through without a warning.
        let (e, warn) = Execution::from_env_value(Some("parallel:4".into()));
        assert_eq!(e, Execution::Parallel { threads: 4 });
        assert_eq!(warn, None);
        // Absent variable: sequential, nothing to warn about.
        assert_eq!(
            Execution::from_env_value(None),
            (Execution::Sequential, None)
        );
        // The classic typo falls back to sequential but surfaces the
        // offending value for the one-time warning.
        let (e, warn) = Execution::from_env_value(Some("paralell:4".into()));
        assert_eq!(e, Execution::Sequential);
        assert_eq!(warn.as_deref(), Some("paralell:4"));
        // So does a zero thread count.
        let (e, warn) = Execution::from_env_value(Some("parallel:0".into()));
        assert_eq!(e, Execution::Sequential);
        assert_eq!(warn.as_deref(), Some("parallel:0"));
        // Speculative values resolve too.
        let (e, warn) = Execution::from_env_value(Some("speculative:4".into()));
        assert_eq!(e, Execution::Speculative { threads: 4 });
        assert_eq!(warn, None);
        // Malformed speculative values take the same warn-and-fall-back
        // path as malformed parallel ones: zero threads...
        let (e, warn) = Execution::from_env_value(Some("speculative:0".into()));
        assert_eq!(e, Execution::Sequential);
        assert_eq!(warn.as_deref(), Some("speculative:0"));
        // ...and garbage suffixes.
        let (e, warn) = Execution::from_env_value(Some("speculative:4x".into()));
        assert_eq!(e, Execution::Sequential);
        assert_eq!(warn.as_deref(), Some("speculative:4x"));
        let (e, warn) = Execution::from_env_value(Some("spec ulative:4".into()));
        assert_eq!(e, Execution::Sequential);
        assert_eq!(warn.as_deref(), Some("spec ulative:4"));
    }

    #[test]
    fn encode_decode_roundtrip() {
        for e in [
            Execution::Sequential,
            Execution::Parallel { threads: 1 },
            Execution::Parallel { threads: 7 },
            Execution::Speculative { threads: 1 },
            Execution::Speculative { threads: 4 },
            Execution::Speculative { threads: 509 },
        ] {
            assert_eq!(Execution::decode(e.encode()), e);
        }
        // The speculative encoding never collides with the
        // "uninitialized" sentinel.
        assert_ne!(
            Execution::Speculative {
                threads: usize::MAX
            }
            .encode(),
            u64::MAX
        );
    }
}
