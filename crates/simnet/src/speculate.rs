//! Optimistic speculation past the conservative frontier (Time Warp).
//!
//! Under [`crate::Execution::Parallel`] the engine is conservative:
//! every simulation-visible operation waits until its process is the
//! globally minimal runnable one, so the serial chain of visible
//! operations — token grant, coroutine wake, operation body, token
//! release — bounds wall-clock speedup no matter how many cores exist.
//! `BENCH_simnet.json` showed that chain eating nearly the whole fig6
//! run. [`crate::Execution::Speculative`] attacks it with an
//! anti-message-free variant of Jefferson's Time Warp, specialized to
//! the fact that simulated processes are stackful coroutines running
//! arbitrary Rust: a coroutine's stack cannot be rewound, so *user code
//! never observes a speculative value*. Speculation is confined to the
//! engine's own operations, in three classes:
//!
//! 1. **Buffer-and-go** (sends): a send's shared effects — NIC
//!    reservation, fault decisions, delivery — depend only on state *at
//!    its order key*, never on the sender's continuation. The sender
//!    records a [`SpecSend`] keyed `(virtual time, pid, generation)`
//!    and keeps computing; the scheduler executes the effect when that
//!    key becomes globally minimal. No validation, no rollback, no
//!    park: the sender's wake round-trip simply vanishes from the
//!    serial chain.
//! 2. **Speculate-validate-replay** (device reservations: disk, NFS,
//!    one-sided NIC transfers): the process captures a
//!    [`SpecCheckpoint`] of its mutable state (clock, stats, trace
//!    cursor), snapshots the device cell's next-free time, computes the
//!    op's outcome from the snapshot, applies it optimistically, and
//!    parks with a [`SpecIo`] record. At the order key the scheduler
//!    *validates*: if the cell still holds the snapshot value, the
//!    prediction is committed in place (next-free times are monotone,
//!    so value equality implies the same outcome) and the process is
//!    woken straight into its continuation — without ever taking the
//!    commit token. If the cell moved, the speculation lost: the
//!    process is woken with the token, rolls its checkpoint back, and
//!    replays the op against live state. Replay always succeeds (the
//!    token holder is the frontier), so livelock is impossible by
//!    construction; the per-process throttle below only caps *wasted*
//!    work, it is not needed for progress.
//! 3. **Conservative fallback** (blocking receives, `ordered` effect
//!    closures, one-sided transfers with non-trivial data-plane
//!    effects): operations whose outcome feeds user code before their
//!    order key commits still align conservatively. Correct-by-
//!    construction beats fast-and-subtle here.
//!
//! Why no anti-messages: Time Warp needs them because optimistic
//! effects escape into other processes before validation. Here every
//! shared effect is either buffered until its order key (class 1) or
//! validated at its order key before anything downstream can read it
//! (class 2), so a lost speculation is repaired entirely locally —
//! nothing to un-send.
//!
//! Every commit still happens in exact `(virtual time, pid, generation)`
//! order with state identical to the sequential engine's at that point,
//! which is why all goldens, the determinism lint, and the schedule
//! explorer hold bit-identical digests under this mode.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::engine::Pid;
use crate::message::{Payload, Tag};
use crate::queue::OrderKey;
use crate::stats::ProcStats;
use crate::time::{SimDuration, SimTime};
use crate::topology::NodeId;

/// Maximum sends a process may buffer before falling back to a
/// conservative (aligning) send, which drains the buffer. Bounds both
/// queue growth and how far a process's virtual time can run ahead of
/// the frontier.
pub const SPEC_WINDOW: usize = 8;

/// Consecutive lost speculations after which a process enters cooldown.
pub const SPEC_THROTTLE_AFTER: u32 = 4;

/// Validated-class operations that take the conservative path during a
/// cooldown. Purely a waste cap — see the module docs on livelock.
pub const SPEC_COOLDOWN_OPS: u32 = 16;

/// A buffered send: everything the scheduler needs to execute the
/// send's shared effects at its order key. Pure-precomputable pieces
/// (wire time, endpoint costs) are resolved at buffer time; the
/// order-dependent pieces (NIC queueing, the fault plan's drop-hash
/// sequence number) are resolved at commit.
pub(crate) struct SpecSend {
    /// Commit point in the global visible-operation order.
    pub key: OrderKey,
    pub dst: Pid,
    pub dst_node: NodeId,
    pub same_node: bool,
    pub tag: Tag,
    pub bytes: u64,
    pub payload: Payload,
    pub sent_at: SimTime,
    pub recv_cost: SimDuration,
    pub wire: SimDuration,
    pub latency: SimDuration,
}

/// Which shared cell a validated speculation read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SpecCell {
    /// A node's NIC next-free time.
    Nic(NodeId),
    /// A node's scratch-disk next-free time.
    Disk(NodeId),
    /// The shared NFS server's next-free time.
    Nfs,
}

/// A parked validated-class speculation: the read-set snapshot and the
/// predicted reservation, checked by the scheduler at the order key.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SpecIo {
    pub cell: SpecCell,
    /// The cell value the prediction was computed from.
    pub snap: SimTime,
    /// Predicted reservation start (`max(op time, snap)`).
    pub predicted_start: SimTime,
    /// How far the reservation advances the cell past its start.
    pub reserve: SimDuration,
    /// The process clock to resume with on a clean commit (the process
    /// already applied it optimistically).
    pub resume_clock: SimTime,
}

/// Checkpoint of the per-process mutable state a validated speculation
/// may dirty: clock, statistics, and the trace-buffer cursor. Captured
/// before the optimistic apply, restored on rollback. (RNG/fault
/// counters need no entry: the drop-hash sequence advances only at
/// commit, which speculation never reaches on the losing path.)
pub(crate) struct SpecCheckpoint {
    pub clock: SimTime,
    pub stats: ProcStats,
    pub trace_len: usize,
}

/// Planted speculation bugs for harness self-tests, mirroring
/// [`crate::ckpt::RecoveryBug`]'s role for checkpoint-restart: prove
/// the safety net actually catches an unsound engine, and give the
/// criterion suite a deterministic rollback workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecBug {
    /// **Unsound**: the commit step trusts the speculated reservation —
    /// it neither validates the read-set nor publishes the reservation
    /// to the device cell. A later request can start before the
    /// speculated transfer finished, so virtual times diverge from the
    /// sequential oracle the moment a device is used twice. The
    /// schedule explorer must catch this.
    TrustStalePrediction,
    /// **Sound but wasteful**: every validation is treated as stale, so
    /// every validated-class speculation rolls back and replays. Results
    /// stay bit-identical (replay recomputes from live state); used to
    /// benchmark rollback-replay cost and to exercise the rollback path
    /// deterministically.
    ForceReplay,
}

static SPEC_BUG: Mutex<Option<SpecBug>> = Mutex::new(None);

/// Plant (or clear, with `None`) a process-wide speculation bug. Like
/// [`crate::set_perturbation`], harness-only global state, resolved once
/// per [`crate::Sim::run`].
pub fn set_spec_bug(bug: Option<SpecBug>) {
    *SPEC_BUG.lock() = bug;
}

/// The currently planted speculation bug, if any.
pub fn current_spec_bug() -> Option<SpecBug> {
    *SPEC_BUG.lock()
}

/// Process-global commit/rollback accumulators, summed over every
/// completed `Sim::run`. Wall-clock-schedule-dependent (a rollback
/// happens only when real threads race), so they are deliberately kept
/// out of every digest, capture and report table — they exist for
/// attribution in `BENCH_simnet.json` and engine diagnostics.
static SPEC_COMMITS: AtomicU64 = AtomicU64::new(0);
static SPEC_ROLLBACKS: AtomicU64 = AtomicU64::new(0);

pub(crate) fn spec_counters_add(commits: u64, rollbacks: u64) {
    if commits != 0 {
        SPEC_COMMITS.fetch_add(commits, Ordering::Relaxed);
    }
    if rollbacks != 0 {
        SPEC_ROLLBACKS.fetch_add(rollbacks, Ordering::Relaxed);
    }
}

/// Take (read and reset) the process-global `(commits, rollbacks)`
/// speculation counters accumulated since the last take.
pub fn spec_counters_take() -> (u64, u64) {
    (
        SPEC_COMMITS.swap(0, Ordering::Relaxed),
        SPEC_ROLLBACKS.swap(0, Ordering::Relaxed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_bug_install_and_clear_roundtrip() {
        set_spec_bug(Some(SpecBug::ForceReplay));
        assert_eq!(current_spec_bug(), Some(SpecBug::ForceReplay));
        set_spec_bug(None);
        assert_eq!(current_spec_bug(), None);
    }

    #[test]
    fn counters_accumulate_and_reset_on_take() {
        let _ = spec_counters_take();
        spec_counters_add(3, 1);
        spec_counters_add(2, 0);
        assert_eq!(spec_counters_take(), (5, 1));
        assert_eq!(spec_counters_take(), (0, 0));
    }
}
