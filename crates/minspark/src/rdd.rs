//! Typed, lazy RDD handles (the user-facing API of Sec. II-E).
//!
//! Transformations (`map`, `flat_map`, `filter`, `map_values`,
//! `reduce_by_key`, `join`, ...) only append nodes to the shared
//! [`Plan`]; nothing materializes until an action runs on the driver
//! ([`crate::driver::SparkDriver`]) — Spark's lazy evaluation. RDDs track
//! their partitioner so that a join of two co-partitioned RDDs stays
//! narrow, which is the mechanism behind the tuned BigDataBench PageRank
//! (Fig. 5/6 of the paper).

use std::hash::Hash;
use std::marker::PhantomData;
use std::sync::Arc;

use hpcbd_minhdfs::Hdfs;
use hpcbd_simnet::{partition_of, Work};

use crate::config::StorageLevel;
use crate::plan::{Compute, PartValue, Plan, RddNode};

/// Element bound for RDD contents.
pub trait Data: Clone + Send + Sync + 'static {}
impl<T: Clone + Send + Sync + 'static> Data for T {}

/// Key bound for pair-RDD operations.
pub trait Key: Data + Eq + Ord + Hash {}
impl<T: Data + Eq + Ord + Hash> Key for T {}

/// A typed handle to one plan node.
pub struct Rdd<T> {
    pub(crate) plan: Arc<Plan>,
    pub(crate) id: usize,
    pub(crate) _t: PhantomData<fn() -> T>,
}

impl<T> Clone for Rdd<T> {
    fn clone(&self) -> Self {
        Rdd {
            plan: self.plan.clone(),
            id: self.id,
            _t: PhantomData,
        }
    }
}

impl<T: Data> Rdd<T> {
    pub(crate) fn from_node(plan: Arc<Plan>, node: Arc<RddNode>) -> Rdd<T> {
        Rdd {
            plan,
            id: node.id,
            _t: PhantomData,
        }
    }

    fn node(&self) -> Arc<RddNode> {
        self.plan.node(self.id)
    }

    /// Partition count.
    pub fn num_partitions(&self) -> u32 {
        self.node().partitions
    }

    /// Plan-node id (diagnostics).
    pub fn id(&self) -> usize {
        self.id
    }

    pub(crate) fn narrow<U: Data>(
        &self,
        op_name: &'static str,
        work_per_item: Work,
        item_bytes: u64,
        keep_partitioner: bool,
        f: impl Fn(&Vec<T>) -> Vec<U> + Send + Sync + 'static,
    ) -> Rdd<U> {
        let parent = self.node();
        let node = self.plan.add_node(RddNode {
            id: 0,
            op_name,
            partitions: parent.partitions,
            compute: Compute::Narrow {
                parent: parent.id,
                f: Arc::new(move |pv| PartValue::of(f(pv.as_vec::<T>()))),
            },
            work_per_item,
            scale: parent.scale,
            item_bytes,
            storage: parking_lot::RwLock::new(None),
            source_dispatch_bytes: std::sync::atomic::AtomicU64::new(0),
            partitioner: if keep_partitioner {
                parent.partitioner
            } else {
                None
            },
            prefs: Vec::new(),
        });
        Rdd::from_node(self.plan.clone(), node)
    }

    /// `map`: one output element per input element.
    pub fn map<U: Data>(&self, f: impl Fn(&T) -> U + Send + Sync + 'static) -> Rdd<U> {
        self.narrow(
            "map",
            Work::new(4.0, 32.0),
            self.node().item_bytes,
            false,
            move |v| v.iter().map(&f).collect(),
        )
    }

    /// `map` with an explicit per-logical-item CPU cost (for benchmarks
    /// whose map body does real work, e.g. record parsing).
    pub fn map_with_cost<U: Data>(
        &self,
        work_per_item: Work,
        item_bytes: u64,
        f: impl Fn(&T) -> U + Send + Sync + 'static,
    ) -> Rdd<U> {
        self.narrow("map", work_per_item, item_bytes, false, move |v| {
            v.iter().map(&f).collect()
        })
    }

    /// `flatMap`.
    pub fn flat_map<U: Data>(&self, f: impl Fn(&T) -> Vec<U> + Send + Sync + 'static) -> Rdd<U> {
        self.flat_map_with_cost(Work::new(8.0, 48.0), self.node().item_bytes, f)
    }

    /// `flatMap` with explicit per-logical-item CPU work and output item
    /// wire size (flat maps often change the record shape drastically —
    /// e.g. adjacency lists exploding into slim contribution pairs).
    pub fn flat_map_with_cost<U: Data>(
        &self,
        work_per_item: Work,
        item_bytes: u64,
        f: impl Fn(&T) -> Vec<U> + Send + Sync + 'static,
    ) -> Rdd<U> {
        self.narrow("flatMap", work_per_item, item_bytes, false, move |v| {
            v.iter().flat_map(&f).collect()
        })
    }

    /// `filter`.
    pub fn filter(&self, f: impl Fn(&T) -> bool + Send + Sync + 'static) -> Rdd<T> {
        self.narrow(
            "filter",
            Work::new(2.0, 16.0),
            self.node().item_bytes,
            true,
            move |v| v.iter().filter(|x| f(x)).cloned().collect(),
        )
    }

    /// `persist(level)`: mark this RDD for caching at first
    /// materialization. Mutates the plan node (like Spark, persistence is
    /// a property of the RDD, not a new RDD) and returns `self` for
    /// chaining.
    pub fn persist(&self, level: StorageLevel) -> Rdd<T> {
        *self.node().storage.write() = Some(level);
        self.clone()
    }

    /// Remove the persistence mark (`unpersist`).
    pub fn unpersist(&self) -> Rdd<T> {
        *self.node().storage.write() = None;
        self.clone()
    }
}

impl<K: Key, V: Data> Rdd<(K, V)> {
    /// `mapValues` (keeps the partitioner — key layout is unchanged).
    pub fn map_values<W: Data>(&self, f: impl Fn(&V) -> W + Send + Sync + 'static) -> Rdd<(K, W)> {
        self.narrow(
            "mapValues",
            Work::new(4.0, 32.0),
            self.node().item_bytes,
            true,
            move |v| v.iter().map(|(k, val)| (k.clone(), f(val))).collect(),
        )
    }

    /// Drop keys (`values`).
    pub fn values(&self) -> Rdd<V> {
        self.narrow(
            "values",
            Work::new(1.0, 16.0),
            self.node().item_bytes,
            false,
            move |v| v.iter().map(|(_, val)| val.clone()).collect(),
        )
    }

    /// `reduceByKey(f, numPartitions)`: map-side combine, hash shuffle,
    /// reduce-side merge. The result is hash-partitioned by key into
    /// `parts` partitions (recorded, enabling narrow joins downstream).
    pub fn reduce_by_key(
        &self,
        parts: u32,
        f: impl Fn(&V, &V) -> V + Send + Sync + 'static,
    ) -> Rdd<(K, V)> {
        let parent = self.node();
        let f = Arc::new(f);
        let f_split = f.clone();
        // Map-side combine + hash split.
        let split = Arc::new(move |pv: &PartValue, n: u32| {
            let mut buckets: Vec<std::collections::HashMap<K, V>> =
                (0..n).map(|_| std::collections::HashMap::new()).collect();
            for (k, v) in pv.as_vec::<(K, V)>() {
                let b = partition_of(k, n) as usize;
                match buckets[b].get_mut(k) {
                    Some(acc) => *acc = f_split(acc, v),
                    None => {
                        buckets[b].insert(k.clone(), v.clone());
                    }
                }
            }
            buckets
                .into_iter()
                .map(|m| {
                    let mut v: Vec<(K, V)> = m.into_iter().collect();
                    v.sort_by(|a, b| a.0.cmp(&b.0));
                    PartValue::of(v)
                })
                .collect::<Vec<_>>()
        });
        let shuffle = self.plan.add_shuffle(crate::plan::ShuffleDep {
            parent: parent.id,
            partitions: parts,
            split,
        });
        let f_combine = f.clone();
        let combine = Arc::new(move |buckets: Vec<PartValue>| {
            let mut acc: std::collections::HashMap<K, V> = std::collections::HashMap::new();
            for b in &buckets {
                for (k, v) in b.as_vec::<(K, V)>() {
                    match acc.get_mut(k) {
                        Some(a) => *a = f_combine(a, v),
                        None => {
                            acc.insert(k.clone(), v.clone());
                        }
                    }
                }
            }
            let mut out: Vec<(K, V)> = acc.into_iter().collect();
            out.sort_by(|a, b| a.0.cmp(&b.0));
            PartValue::of(out)
        });
        let node = self.plan.add_node(RddNode {
            id: 0,
            op_name: "reduceByKey",
            partitions: parts,
            compute: Compute::ShuffleRead { shuffle, combine },
            work_per_item: Work::new(12.0, 64.0),
            scale: parent.scale,
            item_bytes: parent.item_bytes,
            storage: parking_lot::RwLock::new(None),
            source_dispatch_bytes: std::sync::atomic::AtomicU64::new(0),
            partitioner: Some(parts as u64),
            prefs: Vec::new(),
        });
        Rdd::from_node(self.plan.clone(), node)
    }

    /// `groupByKey(numPartitions)`: full shuffle without map-side
    /// combine (the shuffle-heavy pattern of the HiBench PageRank).
    pub fn group_by_key(&self, parts: u32) -> Rdd<(K, Vec<V>)> {
        let parent = self.node();
        let split = Arc::new(move |pv: &PartValue, n: u32| {
            let mut buckets: Vec<Vec<(K, V)>> = (0..n).map(|_| Vec::new()).collect();
            for (k, v) in pv.as_vec::<(K, V)>() {
                buckets[partition_of(k, n) as usize].push((k.clone(), v.clone()));
            }
            buckets.into_iter().map(PartValue::of).collect::<Vec<_>>()
        });
        let shuffle = self.plan.add_shuffle(crate::plan::ShuffleDep {
            parent: parent.id,
            partitions: parts,
            split,
        });
        let combine = Arc::new(move |buckets: Vec<PartValue>| {
            let mut acc: std::collections::HashMap<K, Vec<V>> = std::collections::HashMap::new();
            for b in &buckets {
                for (k, v) in b.as_vec::<(K, V)>() {
                    acc.entry(k.clone()).or_default().push(v.clone());
                }
            }
            let mut out: Vec<(K, Vec<V>)> = acc.into_iter().collect();
            out.sort_by(|a, b| a.0.cmp(&b.0));
            PartValue::of(out)
        });
        let node = self.plan.add_node(RddNode {
            id: 0,
            op_name: "groupByKey",
            partitions: parts,
            compute: Compute::ShuffleRead { shuffle, combine },
            work_per_item: Work::new(10.0, 64.0),
            scale: parent.scale,
            item_bytes: parent.item_bytes,
            storage: parking_lot::RwLock::new(None),
            source_dispatch_bytes: std::sync::atomic::AtomicU64::new(0),
            partitioner: Some(parts as u64),
            prefs: Vec::new(),
        });
        Rdd::from_node(self.plan.clone(), node)
    }

    /// `partitionBy(parts)`: hash-repartition by key.
    pub fn partition_by(&self, parts: u32) -> Rdd<(K, V)> {
        let parent = self.node();
        let split = Arc::new(move |pv: &PartValue, n: u32| {
            let mut buckets: Vec<Vec<(K, V)>> = (0..n).map(|_| Vec::new()).collect();
            for (k, v) in pv.as_vec::<(K, V)>() {
                buckets[partition_of(k, n) as usize].push((k.clone(), v.clone()));
            }
            buckets.into_iter().map(PartValue::of).collect::<Vec<_>>()
        });
        let shuffle = self.plan.add_shuffle(crate::plan::ShuffleDep {
            parent: parent.id,
            partitions: parts,
            split,
        });
        let combine = Arc::new(move |buckets: Vec<PartValue>| {
            let mut out: Vec<(K, V)> = Vec::new();
            for b in &buckets {
                out.extend(b.as_vec::<(K, V)>().iter().cloned());
            }
            out.sort_by(|a, b| a.0.cmp(&b.0));
            PartValue::of(out)
        });
        let node = self.plan.add_node(RddNode {
            id: 0,
            op_name: "partitionBy",
            partitions: parts,
            compute: Compute::ShuffleRead { shuffle, combine },
            work_per_item: Work::new(6.0, 48.0),
            scale: parent.scale,
            item_bytes: parent.item_bytes,
            storage: parking_lot::RwLock::new(None),
            source_dispatch_bytes: std::sync::atomic::AtomicU64::new(0),
            partitioner: Some(parts as u64),
            prefs: Vec::new(),
        });
        Rdd::from_node(self.plan.clone(), node)
    }

    /// `join(other, parts)`: inner join. When both sides already carry
    /// the same hash partitioner with `parts` partitions the join is
    /// **narrow** — each output partition zips the two aligned parent
    /// partitions locally with no shuffle. Otherwise both sides shuffle.
    pub fn join<W: Data>(&self, other: &Rdd<(K, W)>, parts: u32) -> Rdd<(K, (V, W))> {
        let left = self.node();
        let right = other.plan.node(other.id);
        let co_partitioned = left.partitioner.is_some()
            && left.partitioner == right.partitioner
            && left.partitions == parts
            && right.partitions == parts;
        if co_partitioned {
            let f = Arc::new(|l: &PartValue, r: &PartValue| {
                PartValue::of(hash_join::<K, V, W>(
                    l.as_vec::<(K, V)>(),
                    r.as_vec::<(K, W)>(),
                ))
            });
            let node = self.plan.add_node(RddNode {
                id: 0,
                op_name: "join(narrow)",
                partitions: parts,
                compute: Compute::CoPartitioned {
                    left: left.id,
                    right: right.id,
                    f,
                },
                work_per_item: Work::new(14.0, 96.0),
                scale: left.scale,
                item_bytes: left.item_bytes + right.item_bytes,
                storage: parking_lot::RwLock::new(None),
                source_dispatch_bytes: std::sync::atomic::AtomicU64::new(0),
                partitioner: left.partitioner,
                prefs: Vec::new(),
            });
            return Rdd::from_node(self.plan.clone(), node);
        }
        // Wide join: shuffle both parents.
        let lsplit = Arc::new(move |pv: &PartValue, n: u32| {
            let mut buckets: Vec<Vec<(K, V)>> = (0..n).map(|_| Vec::new()).collect();
            for (k, v) in pv.as_vec::<(K, V)>() {
                buckets[partition_of(k, n) as usize].push((k.clone(), v.clone()));
            }
            buckets.into_iter().map(PartValue::of).collect::<Vec<_>>()
        });
        let rsplit = Arc::new(move |pv: &PartValue, n: u32| {
            let mut buckets: Vec<Vec<(K, W)>> = (0..n).map(|_| Vec::new()).collect();
            for (k, v) in pv.as_vec::<(K, W)>() {
                buckets[partition_of(k, n) as usize].push((k.clone(), v.clone()));
            }
            buckets.into_iter().map(PartValue::of).collect::<Vec<_>>()
        });
        let ls = self.plan.add_shuffle(crate::plan::ShuffleDep {
            parent: left.id,
            partitions: parts,
            split: lsplit,
        });
        let rs = self.plan.add_shuffle(crate::plan::ShuffleDep {
            parent: right.id,
            partitions: parts,
            split: rsplit,
        });
        let combine = Arc::new(|lbuckets: Vec<PartValue>, rbuckets: Vec<PartValue>| {
            let mut l: Vec<(K, V)> = Vec::new();
            for b in &lbuckets {
                l.extend(b.as_vec::<(K, V)>().iter().cloned());
            }
            let mut r: Vec<(K, W)> = Vec::new();
            for b in &rbuckets {
                r.extend(b.as_vec::<(K, W)>().iter().cloned());
            }
            PartValue::of(hash_join::<K, V, W>(&l, &r))
        });
        let node = self.plan.add_node(RddNode {
            id: 0,
            op_name: "join(wide)",
            partitions: parts,
            compute: Compute::ShuffleJoin {
                left: ls,
                right: rs,
                combine,
            },
            work_per_item: Work::new(16.0, 112.0),
            scale: left.scale,
            item_bytes: left.item_bytes + right.item_bytes,
            storage: parking_lot::RwLock::new(None),
            source_dispatch_bytes: std::sync::atomic::AtomicU64::new(0),
            partitioner: Some(parts as u64),
            prefs: Vec::new(),
        });
        Rdd::from_node(self.plan.clone(), node)
    }
}

/// Deterministic inner hash join (sorted output).
fn hash_join<K: Key, V: Data, W: Data>(l: &[(K, V)], r: &[(K, W)]) -> Vec<(K, (V, W))> {
    let mut rmap: std::collections::HashMap<&K, Vec<&W>> = std::collections::HashMap::new();
    for (k, w) in r {
        rmap.entry(k).or_default().push(w);
    }
    let mut out: Vec<(K, (V, W))> = Vec::new();
    for (k, v) in l {
        if let Some(ws) = rmap.get(k) {
            for w in ws {
                out.push((k.clone(), (v.clone(), (*w).clone())));
            }
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Source constructors, callable with just a plan handle (the driver
/// exposes them as `sc.parallelize` / `sc.hadoop_file`).
pub(crate) mod sources {
    use super::*;
    use hpcbd_simnet::InputFormat;

    /// `sc.parallelize(data, parts)`: slice a driver-side collection.
    /// The slices ship with the tasks (dispatch cost ∝ slice bytes).
    pub fn parallelize<T: Data>(
        plan: &Arc<Plan>,
        data: Vec<T>,
        parts: u32,
        item_bytes: u64,
    ) -> Rdd<T> {
        let data = Arc::new(data);
        let n = data.len();
        let parts = parts.max(1);
        let per_part_bytes = (n as u64 * item_bytes) / parts as u64;
        let data2 = data.clone();
        let node = plan.add_node(RddNode {
            id: 0,
            op_name: "parallelize",
            partitions: parts,
            compute: Compute::Source(Arc::new(move |_ctx, p| {
                let start = p as usize * n / parts as usize;
                let end = (p as usize + 1) * n / parts as usize;
                PartValue::of(data2[start..end].to_vec())
            })),
            work_per_item: Work::new(2.0, 16.0),
            scale: 1.0,
            item_bytes,
            storage: parking_lot::RwLock::new(None),
            source_dispatch_bytes: std::sync::atomic::AtomicU64::new(0),
            partitioner: None,
            prefs: Vec::new(),
        });
        // Record dispatch weight on the node via prefs-free channel:
        // the driver reads `source_dispatch_bytes`.
        node.source_dispatch_bytes
            .store(per_part_bytes, std::sync::atomic::Ordering::Relaxed);
        Rdd::from_node(plan.clone(), node)
    }

    /// `sc.textFile`-style source over an HDFS file: one partition per
    /// block, preferring the block's replica nodes, parsing the file's
    /// sample records via `format`.
    pub fn hadoop_file<I: InputFormat>(
        plan: &Arc<Plan>,
        hdfs: &Hdfs,
        path: &str,
        format: Arc<I>,
    ) -> Rdd<I::Rec> {
        let file = hdfs
            .stat(path)
            .unwrap_or_else(|| panic!("hdfs file {path} not loaded"));
        let blocks = file.blocks.clone();
        let prefs: Vec<Vec<hpcbd_simnet::NodeId>> =
            blocks.iter().map(|b| b.replicas.clone()).collect();
        let hdfs = hdfs.clone();
        let scale = format.logical_scale();
        let record_work = format.record_work();
        let bytes_per_record = {
            // Average logical record size: derived from one sample block.
            let sample = format.sample_records(blocks[0].offset, blocks[0].len);
            if sample.is_empty() {
                64
            } else {
                (blocks[0].len as f64 / (sample.len() as f64 * scale)).max(1.0) as u64
            }
        };
        let node = plan.add_node(RddNode {
            id: 0,
            op_name: "hadoopFile",
            partitions: blocks.len() as u32,
            compute: Compute::Source(Arc::new(move |ctx, p| {
                let block = &blocks[p as usize];
                hdfs.read_block(ctx, block);
                PartValue::of(format.sample_records(block.offset, block.len))
            })),
            work_per_item: record_work,
            scale,
            item_bytes: bytes_per_record,
            storage: parking_lot::RwLock::new(None),
            source_dispatch_bytes: std::sync::atomic::AtomicU64::new(0),
            partitioner: None,
            prefs,
        });
        Rdd::from_node(plan.clone(), node)
    }

    /// Source over a file replicated on every node's local scratch (the
    /// paper's "Spark on local filesystem" configuration in Table II):
    /// `parts` even byte-range partitions, no locality constraint (every
    /// node has the file), no HDFS overheads.
    pub fn local_file<I: InputFormat>(
        plan: &Arc<Plan>,
        path: &str,
        size: u64,
        parts: u32,
        format: Arc<I>,
    ) -> Rdd<I::Rec> {
        let path = path.to_string();
        let scale = format.logical_scale();
        let record_work = format.record_work();
        let node = plan.add_node(RddNode {
            id: 0,
            op_name: "localFile",
            partitions: parts,
            compute: Compute::Source(Arc::new(move |ctx, p| {
                let chunk = size.div_ceil(parts as u64);
                let offset = (p as u64 * chunk).min(size);
                let len = chunk.min(size - offset);
                // The file must exist on this node's scratch.
                let entry = ctx
                    .fs()
                    .expect(hpcbd_simnet::Mount::Scratch(ctx.node()), &path);
                debug_assert!(entry.logical_size >= size);
                ctx.disk_read(len);
                PartValue::of(format.sample_records(offset, len))
            })),
            work_per_item: record_work,
            scale,
            item_bytes: 64,
            storage: parking_lot::RwLock::new(None),
            source_dispatch_bytes: std::sync::atomic::AtomicU64::new(0),
            partitioner: None,
            prefs: Vec::new(),
        });
        Rdd::from_node(plan.clone(), node)
    }
}
