//! `hpcbd-minspark` — a Spark-like RDD engine on `simnet`.
//!
//! Reproduces every Spark mechanism the paper's analysis rests on
//! (Sec. II-E, V, VI):
//!
//! * **RDDs with lazy evaluation** — transformations build a DAG; actions
//!   trigger the driver's stage scheduler ([`driver::SparkDriver`]).
//! * **Stages at shuffle boundaries** with narrow-dependency pipelining,
//!   locality-aware task placement (HDFS replicas, cached blocks) and
//!   per-task driver dispatch overhead — the cause of Spark's loss in the
//!   reduce microbenchmark (Fig. 3).
//! * **`persist`/StorageLevels** with per-executor memory accounting,
//!   disk spill (MEMORY_AND_DISK) and eviction (MEMORY_ONLY) — the
//!   one-line change worth ~3x in the BigDataBench PageRank (Fig. 5/6).
//! * **Partitioner tracking** — `join` after `reduceByKey` with the same
//!   hash partitioner is narrow, keeping the tuned PageRank's per-
//!   iteration shuffle volume low.
//! * **Pluggable shuffle engine** — socket (default) vs RDMA data plane
//!   with the control plane always on Java sockets, the exact split of
//!   the Spark-RDMA plugin evaluated in Figs. 3/6/7.
//! * **Lineage fault tolerance** — executor loss invalidates its cached
//!   partitions and map outputs; the driver re-executes exactly the lost
//!   work (stage retry on fetch failure), while the driver itself remains
//!   a single point of failure, as the paper notes.
//!
//! # Example
//!
//! ```
//! use hpcbd_minspark::{SparkCluster, SparkConfig};
//!
//! let result = SparkCluster::new(2, SparkConfig::default()).run(|sc| {
//!     let nums = sc.parallelize((1..=100u64).collect(), 8);
//!     let evens = nums.filter(|x| x % 2 == 0);
//!     sc.reduce(&evens, |a, b| a + b)
//! });
//! assert_eq!(result.value, Some((2..=100).step_by(2).sum()));
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod driver;
pub mod executor;
pub mod metrics;
pub mod ops_extra;
pub mod plan;
pub mod rdd;
pub mod scheduled;
pub mod session;
pub mod shared;
pub mod stores;

pub use config::{ShuffleEngine, SparkConfig, StorageLevel};
pub use driver::SparkDriver;
pub use metrics::MetricsSnapshot;
pub use plan::Plan;
pub use rdd::{Data, Key, Rdd};
pub use scheduled::{scheduled_answers, scheduled_pagerank};
pub use session::{SparkCluster, SparkResult};
pub use shared::{Accumulator, Broadcast};

#[cfg(test)]
mod tests {
    use super::*;
    use hpcbd_simnet::{SimDuration, SimTime, Work};
    use std::sync::Arc;

    #[test]
    fn reduce_action_matches_sequential() {
        let r = SparkCluster::new(2, SparkConfig::default()).run(|sc| {
            let xs = sc.parallelize((0..1000u64).collect(), 16);
            sc.reduce(&xs, |a, b| a + b)
        });
        assert_eq!(r.value, Some(499_500));
        assert!(r.elapsed > SimTime::ZERO);
    }

    #[test]
    fn empty_rdd_reduce_is_none() {
        let r = SparkCluster::new(1, SparkConfig::default()).run(|sc| {
            let xs = sc.parallelize(Vec::<u64>::new(), 4);
            sc.reduce(&xs, |a, b| a + b)
        });
        assert_eq!(r.value, None);
    }

    #[test]
    fn map_filter_count_pipeline() {
        let r = SparkCluster::new(2, SparkConfig::default()).run(|sc| {
            let xs = sc.parallelize((0..500u32).collect(), 8);
            let ys = xs.map(|x| x * 2).filter(|x| x % 3 == 0);
            sc.count(&ys)
        });
        let oracle = (0..500u32).map(|x| x * 2).filter(|x| x % 3 == 0).count() as u64;
        assert_eq!(r.value, oracle);
    }

    #[test]
    fn reduce_by_key_matches_oracle() {
        let r = SparkCluster::new(2, SparkConfig::default()).run(|sc| {
            let pairs: Vec<(u32, u64)> = (0..300).map(|i| (i % 7, i as u64)).collect();
            let rdd = sc.parallelize(pairs, 6);
            let summed = rdd.reduce_by_key(4, |a, b| a + b);
            let mut out = sc.collect(&summed);
            out.sort();
            out
        });
        let mut oracle = std::collections::HashMap::new();
        for i in 0..300u32 {
            *oracle.entry(i % 7).or_insert(0u64) += i as u64;
        }
        let mut oracle: Vec<(u32, u64)> = oracle.into_iter().collect();
        oracle.sort();
        assert_eq!(r.value, oracle);
    }

    #[test]
    fn wide_join_matches_oracle() {
        let r = SparkCluster::new(2, SparkConfig::default()).run(|sc| {
            let a = sc.parallelize(vec![(1u32, "a"), (2, "b"), (3, "c")], 2);
            let b = sc.parallelize(vec![(2u32, 20u64), (3, 30), (3, 31), (4, 40)], 3);
            let j = a.join(&b, 4);
            let mut out = sc.collect(&j);
            out.sort();
            out
        });
        assert_eq!(
            r.value,
            vec![(2, ("b", 20)), (3, ("c", 30)), (3, ("c", 31))]
        );
    }

    #[test]
    fn co_partitioned_join_is_narrow_and_correct() {
        let r = SparkCluster::new(2, SparkConfig::default()).run(|sc| {
            let a = sc
                .parallelize((0..100u32).map(|i| (i, 1u64)).collect::<Vec<_>>(), 4)
                .reduce_by_key(4, |x, y| x + y);
            let b = sc
                .parallelize((0..100u32).map(|i| (i, 2u64)).collect::<Vec<_>>(), 4)
                .reduce_by_key(4, |x, y| x + y);
            let j = a.join(&b, 4);
            let node = sc.plan().node(j.id());
            let narrow = node.op_name == "join(narrow)";
            let cnt = sc.count(&j);
            (narrow, cnt)
        });
        assert!(r.value.0, "co-partitioned join must be narrow");
        assert_eq!(r.value.1, 100);
    }

    #[test]
    fn unaligned_join_is_wide() {
        let r = SparkCluster::new(1, SparkConfig::default()).run(|sc| {
            let a = sc
                .parallelize((0..10u32).map(|i| (i, 1u64)).collect::<Vec<_>>(), 4)
                .reduce_by_key(4, |x, y| x + y);
            let b = sc.parallelize((0..10u32).map(|i| (i, 2u64)).collect::<Vec<_>>(), 4);
            let j = a.join(&b, 4);
            sc.plan().node(j.id()).op_name
        });
        assert_eq!(r.value, "join(wide)");
    }

    #[test]
    fn persist_speeds_up_reuse() {
        fn run(persist: bool) -> SimDuration {
            let r = SparkCluster::new(2, SparkConfig::default()).run(move |sc| {
                let xs = sc.parallelize((0..2000u64).collect(), 8);
                // An expensive map stage.
                let heavy = xs.map_with_cost(Work::new(2.0e5, 1.0e5), 8, |x| x * 3);
                if persist {
                    heavy.persist(StorageLevel::MemoryAndDisk);
                }
                let c1 = sc.count(&heavy);
                let t1 = sc.now();
                let c2 = sc.count(&heavy);
                let t2 = sc.now();
                assert_eq!(c1, c2);
                t2 - t1
            });
            r.value
        }
        let second_cached = run(true);
        let second_uncached = run(false);
        assert!(
            second_cached < second_uncached,
            "cached re-count {second_cached} must beat uncached {second_uncached}"
        );
    }

    #[test]
    fn rdma_shuffle_beats_socket_on_shuffle_heavy_job() {
        fn run(engine: ShuffleEngine) -> SimTime {
            // Shuffle-bound: ~1 GB of logical shuffle data, so task time
            // (network + disk) dwarfs driver dispatch. At small volumes
            // the driver is the bottleneck and the engines tie — which is
            // itself the paper's Fig. 3 observation.
            let config = SparkConfig::with_shuffle(engine);
            let r = SparkCluster::new(4, config).run(|sc| {
                let pairs: Vec<(u32, u64)> = (0..20_000).map(|i| (i % 1000, i as u64)).collect();
                let rdd = sc.parallelize_with_bytes(pairs, 16, 50_000);
                let red = rdd.group_by_key(16);
                sc.count(&red)
            });
            r.elapsed
        }
        let socket = run(ShuffleEngine::Socket);
        let rdma = run(ShuffleEngine::Rdma);
        assert!(
            rdma < socket,
            "rdma {rdma} must beat socket {socket} when shuffling"
        );
    }

    #[test]
    fn executor_failure_recovers_via_lineage() {
        let config = SparkConfig {
            executors_per_node: 2,
            task_timeout: SimDuration::from_secs(8),
            // Executor 1 dies 1.5 seconds in — after app startup,
            // typically holding cached/shuffle state.
            fail_executor: Some((1, SimTime(1_500_000_000))),
            ..Default::default()
        };
        let r = SparkCluster::new(2, config).run(|sc| {
            let pairs: Vec<(u32, u64)> = (0..400).map(|i| (i % 13, 1u64)).collect();
            let rdd = sc.parallelize(pairs, 8);
            let summed = rdd
                .reduce_by_key(4, |a, b| a + b)
                .persist(StorageLevel::MemoryAndDisk);
            let c1 = sc.count(&summed);
            // Survive the failure across a second pass over the same data.
            let mut out = sc.collect(&summed);
            out.sort();
            (c1, out)
        });
        assert_eq!(r.value.0, 13);
        let sums: u64 = r.value.1.iter().map(|(_, v)| v).sum();
        assert_eq!(sums, 400, "all 400 contributions survive the failure");
    }

    #[test]
    fn fault_plan_node_crash_recovers_via_lineage() {
        use hpcbd_simnet::{FaultPlan, NodeId};
        let config = SparkConfig {
            executors_per_node: 2,
            task_timeout: SimDuration::from_secs(8),
            ..Default::default()
        };
        // Node 1 (both of its executors plus its shuffle service) dies
        // right after app startup, while the first waves are in flight;
        // the driver on node 0 recovers from lineage.
        let plan = FaultPlan::new(7).crash_node(NodeId(1), SimTime(1_000_000_000));
        let r = SparkCluster::new(3, config).faults(plan).run(|sc| {
            let pairs: Vec<(u32, u64)> = (0..400).map(|i| (i % 13, 1u64)).collect();
            let rdd = sc.parallelize(pairs, 8);
            let summed = rdd
                .reduce_by_key(4, |a, b| a + b)
                .persist(StorageLevel::MemoryAndDisk);
            let c1 = sc.count(&summed);
            let mut out = sc.collect(&summed);
            out.sort();
            (c1, out)
        });
        assert_eq!(r.value.0, 13);
        let sums: u64 = r.value.1.iter().map(|(_, v)| v).sum();
        assert_eq!(sums, 400, "all 400 contributions survive the node loss");
        assert_eq!(
            r.metrics.executors_lost, 2,
            "both executors on the crashed node must be declared lost"
        );
    }

    #[test]
    fn permanently_crashed_majority_aborts_with_structured_error() {
        use hpcbd_simnet::{FaultPlan, NodeId};
        let config = SparkConfig {
            executors_per_node: 2,
            task_timeout: SimDuration::from_secs(8),
            max_task_retries: 0,
            ..Default::default()
        };
        // Both non-driver nodes die permanently while waves are in
        // flight. With no retry budget the first requeued task must
        // abort the job as a structured error — not hang, not retry
        // forever against executors that will never come back.
        let plan = FaultPlan::new(7)
            .crash_node(NodeId(1), SimTime(1_000_000_000))
            .crash_node(NodeId(2), SimTime(1_000_000_000));
        let err = SparkCluster::new(3, config)
            .faults(plan)
            .try_run(|sc| {
                let xs = sc.parallelize((0..4_000u64).collect(), 12);
                // Long tasks keep waves in flight across the crash.
                let heavy = xs.map_with_cost(Work::new(2_000_000.0, 64.0), 8, |x| x * 2);
                sc.count(&heavy)
            })
            .map(|r| r.value)
            .expect_err("zero retry budget under a crashed majority must abort");
        assert_eq!(err.runtime, "spark");
        assert!(err.reason.contains("job aborted"), "reason: {}", err.reason);
    }

    #[test]
    fn speculation_sidesteps_a_straggler() {
        use hpcbd_simnet::{FaultPlan, NodeId};
        fn run(speculation: bool) -> (u64, crate::metrics::MetricsSnapshot) {
            let config = SparkConfig {
                executors_per_node: 2,
                speculation,
                ..Default::default()
            };
            // Node 1 computes 25x slower for the whole run.
            let plan = FaultPlan::new(3).slow_node(NodeId(1), SimTime(0), SimTime(u64::MAX), 25.0);
            let r = SparkCluster::new(2, config).faults(plan).run(|sc| {
                let xs = sc.parallelize((0..4_000u64).collect(), 8);
                let heavy = xs.map_with_cost(Work::new(120_000.0, 64.0), 8, |x| x * 2);
                sc.count(&heavy)
            });
            assert_eq!(r.value, 4_000);
            (r.elapsed.nanos(), r.metrics)
        }
        let (slow, m0) = run(false);
        let (fast, m1) = run(true);
        assert_eq!(m0.speculative_tasks, 0);
        assert!(m1.speculative_tasks > 0, "idle executors must speculate");
        assert!(
            fast < slow,
            "backup copies ({fast} ns) must beat waiting on the straggler ({slow} ns)"
        );
    }

    #[test]
    fn determinism_of_elapsed_time() {
        fn once() -> u64 {
            SparkCluster::new(2, SparkConfig::default())
                .run(|sc| {
                    let xs = sc.parallelize((0..500u64).collect(), 8);
                    let p = xs.map(|x| (x % 5, *x)).reduce_by_key(4, |a, b| a + b);
                    sc.count(&p)
                })
                .elapsed
                .nanos()
        }
        assert_eq!(once(), once());
    }

    #[test]
    fn memory_only_eviction_recomputes() {
        let config = SparkConfig {
            executors_per_node: 1,
            executor_mem: 4_000, // tiny: forces eviction
            ..Default::default()
        };
        let r = SparkCluster::new(1, config).run(|sc| {
            let xs = sc.parallelize((0..1000u64).collect(), 4);
            let a = xs.map(|x| x + 1);
            a.persist(StorageLevel::MemoryOnly);
            let c1 = sc.count(&a);
            let c2 = sc.count(&a); // some partitions recompute
            (c1, c2)
        });
        assert_eq!(r.value.0, 1000);
        assert_eq!(r.value.1, 1000);
    }

    #[test]
    fn driver_dispatch_overhead_scales_with_partitions() {
        fn run(parts: u32) -> SimTime {
            SparkCluster::new(1, SparkConfig::default())
                .run(move |sc| {
                    let xs = sc.parallelize(vec![1u64; 64], parts);
                    sc.count(&xs)
                })
                .elapsed
        }
        let few = run(2);
        let many = run(64);
        assert!(
            many > few,
            "64 tasks ({many}) must cost more driver time than 2 ({few})"
        );
    }

    #[test]
    fn collect_preserves_partition_order() {
        let r = SparkCluster::new(1, SparkConfig::default()).run(|sc| {
            let xs = sc.parallelize((0..100u32).collect(), 5);
            sc.collect(&xs)
        });
        assert_eq!(r.value, (0..100u32).collect::<Vec<_>>());
    }

    #[test]
    fn fold_take_first_actions() {
        let r = SparkCluster::new(1, SparkConfig::default()).run(|sc| {
            let xs = sc.parallelize((10..110u64).collect(), 4);
            let folded = sc.fold(&xs, 0, |a, b| a + b);
            let empty = sc.parallelize(Vec::<u64>::new(), 2);
            let zero = sc.fold(&empty, 42, |a, b| a + b);
            let head = sc.take(&xs, 3);
            let first = sc.first(&xs);
            let none = sc.first(&empty);
            (folded, zero, head, first, none)
        });
        assert_eq!(r.value.0, (10..110u64).sum());
        assert_eq!(r.value.1, 42);
        assert_eq!(r.value.2, vec![10, 11, 12]);
        assert_eq!(r.value.3, Some(10));
        assert_eq!(r.value.4, None);
    }

    #[test]
    fn metrics_expose_cache_and_shuffle_mechanisms() {
        let r = SparkCluster::new(2, SparkConfig::default()).run(|sc| {
            let pairs: Vec<(u32, u64)> = (0..2000).map(|i| (i % 50, 1)).collect();
            let rdd = sc.parallelize_with_bytes(pairs, 8, 1000);
            let red = rdd
                .reduce_by_key(4, |a, b| a + b)
                .persist(StorageLevel::MemoryAndDisk);
            let c1 = sc.count(&red); // misses: first materialization
            let c2 = sc.count(&red); // hits: cached
            (c1, c2)
        });
        assert_eq!(r.value.0, r.value.1);
        let m = r.metrics;
        assert_eq!(m.cache_misses, 4, "4 partitions computed once");
        assert!(m.cache_hits >= 4, "second count served from cache: {m:?}");
        assert!(m.shuffle_bytes_total() > 0);
        assert!(m.tasks_launched >= 16, "8 map + 4 reduce + 4 cached reads");
        assert_eq!(m.fetch_failures, 0);
        assert_eq!(m.executors_lost, 0);
    }

    #[test]
    fn metrics_record_executor_loss() {
        let config = SparkConfig {
            executors_per_node: 2,
            task_timeout: SimDuration::from_secs(6),
            // Die mid-job: a deliberately slow map keeps tasks in
            // flight past the injection time.
            fail_executor: Some((1, SimTime(1_200_000_000))),
            ..Default::default()
        };
        let r = SparkCluster::new(2, config).run(|sc| {
            let pairs: Vec<(u32, u64)> = (0..400).map(|i| (i % 13, 1)).collect();
            let rdd = sc.parallelize(pairs, 8);
            let slow = rdd.map_with_cost(Work::new(4.0e6, 1.0e6), 16, |kv| *kv);
            let red = slow.reduce_by_key(4, |a, b| a + b);
            let c1 = sc.count(&red);
            let c2 = sc.count(&red);
            (c1, c2)
        });
        assert_eq!(r.value.0, 13);
        assert_eq!(r.value.1, 13);
        assert_eq!(r.metrics.executors_lost, 1);
    }

    #[test]
    fn hdfs_sourced_rdd_counts_logical_records() {
        struct Fmt;
        impl hpcbd_simnet::InputFormat for Fmt {
            type Rec = u64;
            fn sample_records(&self, offset: u64, _len: u64) -> Vec<u64> {
                vec![offset; 10] // 10 sample records per block
            }
            fn logical_scale(&self) -> f64 {
                1000.0
            }
            fn record_work(&self) -> Work {
                Work::new(20.0, 80.0)
            }
        }
        let r = SparkCluster::new(2, SparkConfig::default())
            .with_hdfs(hpcbd_minhdfs::HdfsConfig::default())
            .hdfs_file("/data", 4 * (128 << 20), None)
            .run(|sc| {
                let xs = sc.hadoop_file("/data", Arc::new(Fmt));
                sc.count(&xs)
            });
        // 4 blocks x 10 sample records x 1000 scale.
        assert_eq!(r.value, 40_000);
    }
}
