//! Additional RDD operators beyond the core set the paper's benchmarks
//! use: `union`, `distinct`, `sortByKey`, `cogroup`, `keys`, `sample`,
//! and the `saveAsHadoopFile` output action. These round the API out to
//! what a downstream user of the engine expects from Sec. II-E's
//! description of "coarse-grained transformations (e.g., map, filter
//! and join)".

use std::sync::Arc;

use hpcbd_simnet::{partition_of, Work};

use crate::driver::SparkDriver;
use crate::plan::{Compute, PartValue, RddNode};
use crate::rdd::{Data, Key, Rdd};

/// Result element of [`Rdd::cogroup`]: the two sides' value groups.
pub type CoGrouped<K, V, W> = (K, (Vec<V>, Vec<W>));

impl<T: Data> Rdd<T> {
    /// `union(other)`: concatenation of the two RDDs' partitions (narrow
    /// in Spark; here the result has `self.parts + other.parts`
    /// partitions, each passing one parent partition through).
    pub fn union(&self, other: &Rdd<T>) -> Rdd<T> {
        let left = self.plan.node(self.id);
        let right = self.plan.node(other.id);
        let lparts = left.partitions;
        let (lid, rid) = (left.id, right.id);
        // Route partition p to the matching parent partition. Implemented
        // as a co-partitioned combine over a widened index space is not
        // possible with differing counts, so union materializes through a
        // dedicated narrow node that selects its parent by partition id.
        let node = self.plan.add_node(RddNode {
            id: 0,
            op_name: "union",
            partitions: left.partitions + right.partitions,
            compute: Compute::UnionSelect {
                left: lid,
                right: rid,
                left_parts: lparts,
            },
            work_per_item: Work::new(1.0, 8.0),
            scale: left.scale.max(right.scale),
            item_bytes: left.item_bytes.max(right.item_bytes),
            storage: parking_lot::RwLock::new(None),
            source_dispatch_bytes: std::sync::atomic::AtomicU64::new(0),
            partitioner: None,
            prefs: Vec::new(),
        });
        Rdd::from_node(self.plan.clone(), node)
    }

    /// `distinct(numPartitions)`: shuffle by value hash, deduplicate.
    pub fn distinct(&self, parts: u32) -> Rdd<T>
    where
        T: Eq + Ord + std::hash::Hash,
    {
        let parent = self.plan.node(self.id);
        let split = Arc::new(move |pv: &PartValue, n: u32| {
            let mut buckets: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
            for x in pv.as_vec::<T>() {
                buckets[partition_of(x, n) as usize].push(x.clone());
            }
            // Pre-deduplicate map-side (like a combiner).
            buckets
                .into_iter()
                .map(|mut b| {
                    b.sort();
                    b.dedup();
                    PartValue::of(b)
                })
                .collect::<Vec<_>>()
        });
        let shuffle = self.plan.add_shuffle(crate::plan::ShuffleDep {
            parent: parent.id,
            partitions: parts,
            split,
        });
        let combine = Arc::new(|buckets: Vec<PartValue>| {
            let mut all: Vec<T> = Vec::new();
            for b in &buckets {
                all.extend(b.as_vec::<T>().iter().cloned());
            }
            all.sort();
            all.dedup();
            PartValue::of(all)
        });
        let node = self.plan.add_node(RddNode {
            id: 0,
            op_name: "distinct",
            partitions: parts,
            compute: Compute::ShuffleRead { shuffle, combine },
            work_per_item: Work::new(10.0, 48.0),
            scale: parent.scale,
            item_bytes: parent.item_bytes,
            storage: parking_lot::RwLock::new(None),
            source_dispatch_bytes: std::sync::atomic::AtomicU64::new(0),
            partitioner: None,
            prefs: Vec::new(),
        });
        Rdd::from_node(self.plan.clone(), node)
    }

    /// `sample(fraction)`: deterministic pseudo-random subset (seeded by
    /// the RDD id, like passing a seed to Spark's `sample`).
    pub fn sample(&self, fraction: f64) -> Rdd<T>
    where
        T: std::hash::Hash,
    {
        assert!((0.0..=1.0).contains(&fraction), "fraction in [0,1]");
        let threshold = (fraction * u32::MAX as f64) as u32;
        let seed = self.id as u64;
        self.narrow(
            "sample",
            Work::new(2.0, 16.0),
            self.plan.node(self.id).item_bytes,
            true,
            move |v: &Vec<T>| {
                v.iter()
                    .filter(|x| (hpcbd_simnet::det_hash(&(seed, *x)) >> 32) as u32 <= threshold)
                    .cloned()
                    .collect()
            },
        )
    }
}

impl<K: Key, V: Data> Rdd<(K, V)> {
    /// `keys()`.
    pub fn keys(&self) -> Rdd<K> {
        self.narrow("keys", Work::new(1.0, 16.0), 8, false, |v: &Vec<(K, V)>| {
            v.iter().map(|(k, _)| k.clone()).collect()
        })
    }

    /// `sortByKey(numPartitions)`: range-free simplification — hash
    /// shuffle then sort within partitions (total order within each
    /// partition, like Spark's per-partition ordering guarantee after
    /// `repartitionAndSortWithinPartitions`).
    pub fn sort_by_key(&self, parts: u32) -> Rdd<(K, V)> {
        let repart = self.partition_by(parts);
        repart.narrow(
            "sortByKey",
            Work::new(20.0, 96.0),
            self.plan.node(self.id).item_bytes,
            true,
            |v: &Vec<(K, V)>| {
                let mut out = v.clone();
                out.sort_by(|a, b| a.0.cmp(&b.0));
                out
            },
        )
    }

    /// `cogroup(other, numPartitions)`: full outer grouping of both
    /// sides by key.
    pub fn cogroup<W: Data>(&self, other: &Rdd<(K, W)>, parts: u32) -> Rdd<CoGrouped<K, V, W>> {
        let left = self.plan.node(self.id);
        let right = self.plan.node(other.id);
        let lsplit = Arc::new(move |pv: &PartValue, n: u32| {
            let mut buckets: Vec<Vec<(K, V)>> = (0..n).map(|_| Vec::new()).collect();
            for (k, v) in pv.as_vec::<(K, V)>() {
                buckets[partition_of(k, n) as usize].push((k.clone(), v.clone()));
            }
            buckets.into_iter().map(PartValue::of).collect::<Vec<_>>()
        });
        let rsplit = Arc::new(move |pv: &PartValue, n: u32| {
            let mut buckets: Vec<Vec<(K, W)>> = (0..n).map(|_| Vec::new()).collect();
            for (k, v) in pv.as_vec::<(K, W)>() {
                buckets[partition_of(k, n) as usize].push((k.clone(), v.clone()));
            }
            buckets.into_iter().map(PartValue::of).collect::<Vec<_>>()
        });
        let ls = self.plan.add_shuffle(crate::plan::ShuffleDep {
            parent: left.id,
            partitions: parts,
            split: lsplit,
        });
        let rs = self.plan.add_shuffle(crate::plan::ShuffleDep {
            parent: right.id,
            partitions: parts,
            split: rsplit,
        });
        let combine = Arc::new(|lb: Vec<PartValue>, rb: Vec<PartValue>| {
            let mut groups: std::collections::BTreeMap<K, (Vec<V>, Vec<W>)> =
                std::collections::BTreeMap::new();
            for b in &lb {
                for (k, v) in b.as_vec::<(K, V)>() {
                    groups.entry(k.clone()).or_default().0.push(v.clone());
                }
            }
            for b in &rb {
                for (k, w) in b.as_vec::<(K, W)>() {
                    groups.entry(k.clone()).or_default().1.push(w.clone());
                }
            }
            PartValue::of(groups.into_iter().collect::<Vec<_>>())
        });
        let node = self.plan.add_node(RddNode {
            id: 0,
            op_name: "cogroup",
            partitions: parts,
            compute: Compute::ShuffleJoin {
                left: ls,
                right: rs,
                combine,
            },
            work_per_item: Work::new(14.0, 96.0),
            scale: left.scale,
            item_bytes: left.item_bytes + right.item_bytes,
            storage: parking_lot::RwLock::new(None),
            source_dispatch_bytes: std::sync::atomic::AtomicU64::new(0),
            partitioner: Some(parts as u64),
            prefs: Vec::new(),
        });
        Rdd::from_node(self.plan.clone(), node)
    }
}

impl<T: Data> Rdd<T> {
    /// `mapPartitions`: transform each partition as a whole (amortize
    /// per-partition setup the way Spark users do with connection pools
    /// or per-split parsers).
    pub fn map_partitions<U: Data>(
        &self,
        f: impl Fn(&Vec<T>) -> Vec<U> + Send + Sync + 'static,
    ) -> Rdd<U> {
        self.narrow(
            "mapPartitions",
            Work::new(4.0, 32.0),
            self.plan.node(self.id).item_bytes,
            false,
            f,
        )
    }

    /// `coalesce(n)`: shrink to `n` partitions without a shuffle; output
    /// partition `p` concatenates an even share of parent partitions.
    pub fn coalesce(&self, n: u32) -> Rdd<T> {
        let parent = self.plan.node(self.id);
        let n = n.clamp(1, parent.partitions);
        let old = parent.partitions;
        let groups: Vec<Vec<u32>> = (0..n)
            .map(|p| {
                let start = (p as u64 * old as u64 / n as u64) as u32;
                let end = ((p as u64 + 1) * old as u64 / n as u64) as u32;
                (start..end).collect()
            })
            .collect();
        let merge = Arc::new(|parts: Vec<PartValue>| {
            let mut out: Vec<T> = Vec::new();
            for pv in &parts {
                out.extend(pv.as_vec::<T>().iter().cloned());
            }
            PartValue::of(out)
        });
        let node = self.plan.add_node(RddNode {
            id: 0,
            op_name: "coalesce",
            partitions: n,
            compute: Compute::Coalesce {
                parent: parent.id,
                groups,
                merge,
            },
            work_per_item: Work::new(2.0, 24.0),
            scale: parent.scale,
            item_bytes: parent.item_bytes,
            storage: parking_lot::RwLock::new(None),
            source_dispatch_bytes: std::sync::atomic::AtomicU64::new(0),
            partitioner: None,
            prefs: Vec::new(),
        });
        Rdd::from_node(self.plan.clone(), node)
    }

    /// `rdd.toDebugString()`: the lineage as an indented operator tree —
    /// the tool Spark users reach for to see where their shuffles and
    /// cache points are.
    pub fn to_debug_string(&self) -> String {
        fn walk(plan: &crate::plan::Plan, id: usize, depth: usize, out: &mut String) {
            let node = plan.node(id);
            let cached = match *node.storage.read() {
                Some(crate::config::StorageLevel::MemoryAndDisk) => " [MEMORY_AND_DISK]",
                Some(crate::config::StorageLevel::MemoryOnly) => " [MEMORY_ONLY]",
                Some(crate::config::StorageLevel::DiskOnly) => " [DISK_ONLY]",
                None => "",
            };
            out.push_str(&format!(
                "{}({}) {}[{} partitions]{}\n",
                "  ".repeat(depth),
                id,
                node.op_name,
                node.partitions,
                cached
            ));
            match &node.compute {
                Compute::Source(_) => {}
                Compute::Narrow { parent, .. } => walk(plan, *parent, depth + 1, out),
                Compute::ShuffleRead { shuffle, .. } => {
                    let dep = plan.shuffle(*shuffle);
                    out.push_str(&format!(
                        "{}+- shuffle #{shuffle}\n",
                        "  ".repeat(depth + 1)
                    ));
                    walk(plan, dep.parent, depth + 2, out);
                }
                Compute::ShuffleJoin { left, right, .. } => {
                    for (side, sid) in [("left", left), ("right", right)] {
                        let dep = plan.shuffle(*sid);
                        out.push_str(&format!(
                            "{}+- {side} shuffle #{sid}\n",
                            "  ".repeat(depth + 1)
                        ));
                        walk(plan, dep.parent, depth + 2, out);
                    }
                }
                Compute::Coalesce { parent, .. } => walk(plan, *parent, depth + 1, out),
                Compute::UnionSelect { left, right, .. }
                | Compute::CoPartitioned { left, right, .. } => {
                    walk(plan, *left, depth + 1, out);
                    walk(plan, *right, depth + 1, out);
                }
            }
        }
        let mut out = String::new();
        walk(&self.plan, self.id, 0, &mut out);
        out
    }
}

impl SparkDriver<'_> {
    /// `rdd.saveAsHadoopFile(path)`: write every partition to HDFS as
    /// `path/part-NNNNN`, with replicated block writes charged to the
    /// executors. Returns total logical bytes written.
    pub fn save_as_hadoop_file<T: Data>(&mut self, rdd: &Rdd<T>, path: &str) -> u64 {
        let hdfs = self.hdfs().clone();
        let node = self.plan().node(rdd.id());
        let item_bytes = node.item_bytes;
        let path = path.to_string();
        let action: crate::executor::ActionFn = Arc::new(move |ctx, scale, pv| {
            let bytes = (pv.items as f64 * scale * item_bytes as f64) as u64;
            // The executor writes its output partition through the HDFS
            // client path (pipelined replicas).
            hdfs.write_file(ctx, &format!("{path}/part-unsorted"), bytes, None);
            PartValue::of(vec![bytes])
        });
        let partials = self.run_action_public(rdd.id(), action);
        partials
            .into_iter()
            .filter_map(|(_, pv)| pv)
            .map(|pv| pv.as_vec::<u64>().iter().sum::<u64>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use crate::{SparkCluster, SparkConfig};

    #[test]
    fn union_concatenates() {
        let r = SparkCluster::new(2, SparkConfig::default()).run(|sc| {
            let a = sc.parallelize(vec![1u32, 2, 3], 2);
            let b = sc.parallelize(vec![10u32, 20], 2);
            let u = a.union(&b);
            let mut out = sc.collect(&u);
            out.sort();
            (out, u.num_partitions())
        });
        assert_eq!(r.value.0, vec![1, 2, 3, 10, 20]);
        assert_eq!(r.value.1, 4);
    }

    #[test]
    fn distinct_deduplicates() {
        let r = SparkCluster::new(2, SparkConfig::default()).run(|sc| {
            let xs = sc.parallelize(vec![3u32, 1, 3, 7, 1, 1, 9, 7], 3);
            let d = xs.distinct(2);
            let mut out = sc.collect(&d);
            out.sort();
            out
        });
        assert_eq!(r.value, vec![1, 3, 7, 9]);
    }

    #[test]
    fn sort_by_key_orders_within_partitions_and_counts_all() {
        let r = SparkCluster::new(2, SparkConfig::default()).run(|sc| {
            let pairs: Vec<(u32, u64)> = (0..100).rev().map(|i| (i, i as u64)).collect();
            let rdd = sc.parallelize(pairs, 4);
            let sorted = rdd.sort_by_key(4);
            let out = sc.collect(&sorted);
            (out.len(), out)
        });
        assert_eq!(r.value.0, 100);
        // Per-partition runs must each be sorted.
        // (collect preserves partition order; detect boundaries by drops.)
        let mut runs = 1;
        for w in r.value.1.windows(2) {
            if w[1].0 < w[0].0 {
                runs += 1;
            }
        }
        assert!(runs <= 4, "at most one run per partition, saw {runs}");
    }

    #[test]
    fn cogroup_groups_both_sides() {
        let r = SparkCluster::new(2, SparkConfig::default()).run(|sc| {
            let a = sc.parallelize(vec![(1u32, "x"), (2, "y"), (1, "z")], 2);
            let b = sc.parallelize(vec![(1u32, 10u64), (3, 30)], 2);
            let cg = a.cogroup(&b, 2);
            let mut out = sc.collect(&cg);
            out.sort_by_key(|(k, _)| *k);
            out
        });
        assert_eq!(r.value.len(), 3);
        assert_eq!(r.value[0].0, 1);
        assert_eq!(r.value[0].1 .0.len(), 2);
        assert_eq!(r.value[0].1 .1, vec![10]);
        assert_eq!(r.value[1], (2, (vec!["y"], vec![])));
        assert_eq!(r.value[2], (3, (vec![], vec![30])));
    }

    #[test]
    fn keys_and_sample() {
        let r = SparkCluster::new(1, SparkConfig::default()).run(|sc| {
            let pairs: Vec<(u32, u64)> = (0..1000).map(|i| (i, 0u64)).collect();
            let rdd = sc.parallelize(pairs, 4);
            let ks = rdd.keys();
            let sampled = ks.sample(0.1);
            let n_all = sc.count(&ks);
            let n_sampled = sc.count(&sampled);
            // Determinism: same sample twice.
            let s1 = sc.collect(&sampled);
            let s2 = sc.collect(&sampled);
            (n_all, n_sampled, s1 == s2)
        });
        assert_eq!(r.value.0, 1000);
        let frac = r.value.1 as f64 / 1000.0;
        assert!((0.05..0.2).contains(&frac), "sampled fraction {frac}");
        assert!(r.value.2);
    }

    #[test]
    fn map_partitions_transforms_whole_partitions() {
        let r = SparkCluster::new(1, SparkConfig::default()).run(|sc| {
            let xs = sc.parallelize((0..100u64).collect(), 4);
            // Per-partition running sum: only meaningful partition-wise.
            let sums = xs.map_partitions(|v: &Vec<u64>| vec![v.iter().sum::<u64>()]);
            sc.collect(&sums)
        });
        assert_eq!(r.value.len(), 4);
        assert_eq!(r.value.iter().sum::<u64>(), (0..100u64).sum());
    }

    #[test]
    fn coalesce_preserves_data_with_fewer_partitions() {
        let r = SparkCluster::new(2, SparkConfig::default()).run(|sc| {
            let xs = sc.parallelize((0..1000u32).collect(), 16);
            let c = xs.coalesce(3);
            assert_eq!(c.num_partitions(), 3);
            let mut out = sc.collect(&c);
            out.sort();
            out
        });
        assert_eq!(r.value, (0..1000u32).collect::<Vec<_>>());
    }

    #[test]
    fn coalesce_to_one_and_identity() {
        let r = SparkCluster::new(1, SparkConfig::default()).run(|sc| {
            let xs = sc.parallelize((0..50u32).collect(), 5);
            let one = xs.coalesce(1);
            let same = xs.coalesce(99); // clamps to parent count
            (sc.count(&one), same.num_partitions(), sc.count(&same))
        });
        assert_eq!(r.value, (50, 5, 50));
    }

    #[test]
    fn debug_string_shows_lineage_shuffles_and_cache_points() {
        use crate::StorageLevel;
        let r = SparkCluster::new(1, SparkConfig::default()).run(|sc| {
            let pairs: Vec<(u32, u64)> = (0..10).map(|i| (i, 1)).collect();
            let a = sc.parallelize(pairs, 2);
            let red = a
                .reduce_by_key(2, |x, y| x + y)
                .persist(StorageLevel::MemoryOnly);
            let out = red.map_values(|v| v * 2);
            out.to_debug_string()
        });
        let s = r.value;
        assert!(s.contains("mapValues"), "{s}");
        assert!(s.contains("reduceByKey"), "{s}");
        assert!(s.contains("[MEMORY_ONLY]"), "{s}");
        assert!(s.contains("shuffle #0"), "{s}");
        assert!(s.contains("parallelize"), "{s}");
    }

    #[test]
    fn save_as_hadoop_file_writes_and_charges() {
        let r = SparkCluster::new(2, SparkConfig::default())
            .with_hdfs(hpcbd_minhdfs::HdfsConfig::default())
            .run(|sc| {
                let xs = sc.parallelize_with_bytes((0..10_000u64).collect(), 8, 1000);
                let t0 = sc.now();
                let bytes = sc.save_as_hadoop_file(&xs, "/out");
                (bytes, (sc.now() - t0).nanos())
            });
        assert_eq!(r.value.0, 10_000 * 1000);
        assert!(r.value.1 > 0);
    }
}
