//! Executor processes, the shuffle service, and partition materialization
//! (lineage walking).

use std::sync::Arc;

use hpcbd_simnet::{
    MatchSpec, NodeId, Payload, Pid, ProcCtx, RuntimeClass, SimDuration, SimTime, Tag, Work,
};

use crate::config::SparkConfig;
use crate::plan::{Compute, PartValue, Plan, RddId, ShuffleId};
use crate::stores::{BlockStore, CacheOutcome, ExecId, ShuffleStore};

pub(crate) const EXEC_TAG: Tag = (1 << 46) + 1;
pub(crate) const DRIVER_TAG: Tag = (1 << 46) + 2;
pub(crate) const PONG_TAG: Tag = (1 << 46) + 3;
pub(crate) const SERVICE_TAG: Tag = (1 << 46) + 4;
// Fetch replies: SERVICE_REPLY | (shuffle << 20) | (map << 8) | reduce.
pub(crate) const SERVICE_REPLY: Tag = 1 << 47;

/// State shared by driver, executors and shuffle services.
pub(crate) struct AppShared {
    pub plan: Arc<Plan>,
    pub config: SparkConfig,
    pub blocks: BlockStore,
    pub shuffles: ShuffleStore,
    pub metrics: crate::metrics::SparkMetrics,
    pub exec_pids: parking_lot::RwLock<Vec<Pid>>,
    pub service_pids: parking_lot::RwLock<Vec<Pid>>,
    pub driver_pid: parking_lot::RwLock<Option<Pid>>,
    pub hdfs: Option<hpcbd_minhdfs::Hdfs>,
}

impl AppShared {
    pub(crate) fn node_of_exec(&self, e: ExecId) -> NodeId {
        NodeId(e / self.config.executors_per_node)
    }
}

/// Commands from driver to executor.
pub(crate) enum ExecCmd {
    Task(TaskSpec),
    Ping,
    Shutdown,
}

/// A schedulable task.
#[derive(Clone)]
pub(crate) struct TaskSpec {
    /// Wave-unique id for completion matching.
    pub seq: u64,
    /// RDD whose partition this task materializes.
    pub target: RddId,
    /// Partition index.
    pub part: u32,
    /// Failed attempts so far; the driver aborts past
    /// `SparkConfig::max_task_retries`.
    pub attempts: u32,
    pub kind: TaskKind,
}

#[derive(Clone)]
pub(crate) enum TaskKind {
    /// Materialize `target` partition `part` and register its buckets for
    /// `shuffle`.
    ShuffleMap { shuffle: ShuffleId },
    /// Materialize and apply the action's partial computation.
    Action(ActionFn),
}

pub(crate) type ActionFn = Arc<dyn Fn(&mut ProcCtx, f64, PartValue) -> PartValue + Send + Sync>;

/// Executor -> driver completion messages.
pub(crate) enum ExecMsg {
    TaskDone {
        seq: u64,
        exec: ExecId,
        part: u32,
        result: Option<PartValue>,
    },
    /// A shuffle input was missing (lost with a failed executor): the
    /// lineage event that triggers parent-stage re-execution.
    FetchFailed {
        seq: u64,
        exec: ExecId,
        shuffle: ShuffleId,
        map_part: u32,
    },
}

pub(crate) struct FetchFail {
    pub shuffle: ShuffleId,
    pub map_part: u32,
}

/// The executor main loop.
pub(crate) fn executor_loop(ctx: &mut ProcCtx, app: Arc<AppShared>, me: ExecId) {
    // Death time: the legacy per-executor knob, the FaultPlan's crash of
    // this node, whichever comes first.
    let legacy: Option<SimTime> = match app.config.fail_executor {
        Some((e, t)) if e == me => Some(t),
        _ => None,
    };
    let fail_at = match (legacy, ctx.node_crash_time()) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };
    let control = app.config.control_transport();
    loop {
        let msg = match fail_at {
            Some(t) => match ctx.recv_deadline(MatchSpec::tag(EXEC_TAG), Some(t)) {
                Ok(m) => m,
                Err(_) => {
                    if Some(t) == ctx.node_crash_time() {
                        ctx.record_fault(hpcbd_simnet::FaultEvent::NodeCrash { node: ctx.node() });
                    }
                    return; // executor dies silently
                }
            },
            None => ctx.recv(MatchSpec::tag(EXEC_TAG)),
        };
        let driver = app.driver_pid.read().expect("driver registered");
        let cmd = msg.expect_value::<ExecCmd>();
        match &*cmd {
            ExecCmd::Ping => {
                ctx.send(driver, PONG_TAG, 16, Payload::Empty, &control);
            }
            ExecCmd::Shutdown => return,
            ExecCmd::Task(task) => {
                crate::metrics::SparkMetrics::add(&app.metrics.tasks_launched, 1);
                ctx.metric_counter(
                    "spark.tasks",
                    match &task.kind {
                        TaskKind::ShuffleMap { .. } => "kind=shuffle_map",
                        TaskKind::Action(_) => "kind=action",
                    },
                    1,
                );
                ctx.advance(app.config.task_launch_overhead);
                ctx.span_open(match &task.kind {
                    TaskKind::ShuffleMap { .. } => "spark/task/shuffle_map",
                    TaskKind::Action(_) => "spark/task/action",
                });
                let outcome = run_task(ctx, &app, me, task);
                ctx.span_close();
                let reply = match outcome {
                    Ok((result, bytes)) => (
                        ExecMsg::TaskDone {
                            seq: task.seq,
                            exec: me,
                            part: task.part,
                            result,
                        },
                        bytes,
                    ),
                    Err(f) => (
                        ExecMsg::FetchFailed {
                            seq: task.seq,
                            exec: me,
                            shuffle: f.shuffle,
                            map_part: f.map_part,
                        },
                        64,
                    ),
                };
                ctx.send(
                    driver,
                    DRIVER_TAG,
                    reply.1,
                    Payload::value(reply.0),
                    &control,
                );
            }
        }
    }
}

fn run_task(
    ctx: &mut ProcCtx,
    app: &Arc<AppShared>,
    me: ExecId,
    task: &TaskSpec,
) -> Result<(Option<PartValue>, u64), FetchFail> {
    match &task.kind {
        TaskKind::ShuffleMap { shuffle } => {
            let dep = app.plan.shuffle(*shuffle);
            let parent = app.plan.node(dep.parent);
            let pv = materialize(ctx, app, me, dep.parent, task.part)?;
            // Split + serialize + write shuffle files to local disk.
            let jvm = RuntimeClass::Jvm.factor();
            ctx.compute(
                Work::new(8.0, 64.0).scaled(pv.items as f64 * parent.scale),
                jvm,
            );
            let buckets = (dep.split)(&pv, dep.partitions);
            let sized: Vec<(PartValue, u64)> = buckets
                .into_iter()
                .map(|b| {
                    let bytes = (b.items as f64 * parent.scale * parent.item_bytes as f64) as u64;
                    (b, bytes)
                })
                .collect();
            let total: u64 = sized.iter().map(|(_, b)| *b).sum();
            // Shuffle files land in the OS page cache (Spark never
            // syncs them; a Comet node has 128 GB of RAM): charge a
            // memory-bandwidth copy, not a device write. Hadoop's
            // spills, by contrast, are modeled as real disk I/O.
            ctx.compute(Work::mem_bytes(total as f64), 1.0);
            app.shuffles.put_map_output(*shuffle, task.part, me, sized);
            Ok((None, 96))
        }
        TaskKind::Action(f) => {
            let node = app.plan.node(task.target);
            let pv = materialize(ctx, app, me, task.target, task.part)?;
            let out = f(ctx, node.scale, pv);
            let bytes = ((out.items as u64) * node.item_bytes).max(128);
            Ok((Some(out), bytes))
        }
    }
}

/// Materialize one partition by walking the lineage, using cached blocks
/// when this executor holds them.
pub(crate) fn materialize(
    ctx: &mut ProcCtx,
    app: &Arc<AppShared>,
    me: ExecId,
    rdd: RddId,
    part: u32,
) -> Result<PartValue, FetchFail> {
    let node = app.plan.node(rdd);
    let jvm = RuntimeClass::Jvm.factor();
    let persisted = *node.storage.read();
    if persisted.is_some() {
        if let Some((pv, bytes, on_disk)) = app.blocks.get(rdd, part, me) {
            crate::metrics::SparkMetrics::add(&app.metrics.cache_hits, 1);
            if on_disk {
                ctx.disk_read(bytes);
            } else {
                ctx.compute(Work::mem_bytes(bytes as f64), 1.0);
            }
            return Ok(pv);
        }
        crate::metrics::SparkMetrics::add(&app.metrics.cache_misses, 1);
    }
    let value = match &node.compute {
        Compute::Source(f) => {
            let pv = f(ctx, part);
            ctx.compute(node.work_per_item.scaled(pv.items as f64 * node.scale), jvm);
            pv
        }
        Compute::Narrow { parent, f } => {
            let pv = materialize(ctx, app, me, *parent, part)?;
            ctx.compute(node.work_per_item.scaled(pv.items as f64 * node.scale), jvm);
            f(&pv)
        }
        Compute::ShuffleRead { shuffle, combine } => {
            let buckets = fetch_shuffle(ctx, app, me, *shuffle, part)?;
            let items: usize = buckets.iter().map(|b| b.items).sum();
            ctx.compute(node.work_per_item.scaled(items as f64 * node.scale), jvm);
            combine(buckets)
        }
        Compute::ShuffleJoin {
            left,
            right,
            combine,
        } => {
            let lb = fetch_shuffle(ctx, app, me, *left, part)?;
            let rb = fetch_shuffle(ctx, app, me, *right, part)?;
            let items: usize = lb.iter().map(|b| b.items).sum::<usize>()
                + rb.iter().map(|b| b.items).sum::<usize>();
            ctx.compute(node.work_per_item.scaled(items as f64 * node.scale), jvm);
            combine(lb, rb)
        }
        Compute::Coalesce {
            parent,
            groups,
            merge,
        } => {
            let mut items = 0usize;
            let mut parts = Vec::new();
            for src in &groups[part as usize] {
                let pv = materialize(ctx, app, me, *parent, *src)?;
                items += pv.items;
                parts.push(pv);
            }
            ctx.compute(node.work_per_item.scaled(items as f64 * node.scale), jvm);
            merge(parts)
        }
        Compute::UnionSelect {
            left,
            right,
            left_parts,
        } => {
            if part < *left_parts {
                materialize(ctx, app, me, *left, part)?
            } else {
                materialize(ctx, app, me, *right, part - *left_parts)?
            }
        }
        Compute::CoPartitioned { left, right, f } => {
            let lv = materialize(ctx, app, me, *left, part)?;
            let rv = materialize(ctx, app, me, *right, part)?;
            let items = lv.items + rv.items;
            ctx.compute(node.work_per_item.scaled(items as f64 * node.scale), jvm);
            f(&lv, &rv)
        }
    };
    if let Some(level) = persisted {
        let bytes = (value.items as f64 * node.scale * node.item_bytes as f64) as u64;
        let outcome = app.blocks.put(rdd, part, me, value.clone(), bytes, level);
        match outcome {
            CacheOutcome::Disk => ctx.disk_write(bytes),
            CacheOutcome::Memory | CacheOutcome::MemoryAfterEviction => {
                ctx.compute(Work::mem_bytes(bytes as f64), 1.0)
            }
        }
    }
    Ok(value)
}

/// Fetch every map-output bucket of `shuffle` for reduce partition
/// `part`. Local buckets are page-cache reads; remote ones are grouped
/// into **one streaming request per source node** through its shuffle
/// service — Spark's `OpenBlocks` batching, which makes bandwidth (the
/// socket-vs-RDMA axis) rather than per-block round trips the dominant
/// network term.
fn fetch_shuffle(
    ctx: &mut ProcCtx,
    app: &Arc<AppShared>,
    me: ExecId,
    shuffle: ShuffleId,
    part: u32,
) -> Result<Vec<PartValue>, FetchFail> {
    let dep = app.plan.shuffle(shuffle);
    let data_tr = app.config.shuffle.data_transport();
    let my_node = app.node_of_exec(me);
    let parent_parts = app.plan.node(dep.parent).partitions;
    let mut out = Vec::with_capacity(parent_parts as usize);
    // Bytes needed from each remote source node, plus one representative
    // map partition per node to report if that node's service never
    // answers (its node crashed or is unreachable).
    let mut remote: std::collections::BTreeMap<NodeId, (u64, u32)> =
        std::collections::BTreeMap::new();
    for map_part in 0..parent_parts {
        let Some((value, bytes, owner)) = app.shuffles.get_bucket(shuffle, map_part, part) else {
            return Err(FetchFail { shuffle, map_part });
        };
        let owner_node = app.node_of_exec(owner);
        if owner_node == my_node {
            if bytes > 0 {
                // Local shuffle block: page-cache read.
                crate::metrics::SparkMetrics::add(&app.metrics.shuffle_bytes_local, bytes);
                ctx.compute(Work::mem_bytes(bytes as f64), 1.0);
            }
        } else {
            let entry = remote.entry(owner_node).or_insert((0, map_part));
            entry.0 += bytes;
        }
        out.push(value);
    }
    // One streamed transfer per source node.
    for (node, (bytes, rep_map_part)) in remote {
        if bytes == 0 {
            continue;
        }
        crate::metrics::SparkMetrics::add(&app.metrics.shuffle_bytes_remote, bytes);
        let service = app.service_pids.read()[node.index()];
        ctx.send(
            service,
            SERVICE_TAG,
            256,
            Payload::value((shuffle as u64, part, bytes, ctx.pid())),
            &data_tr,
        );
        let tag = SERVICE_REPLY | ((shuffle as u64) << 24) | ((node.0 as u64) << 12) | part as u64;
        // A healthy service answers within the transfer time; a crashed
        // node never does. Give the stream generous slack, then surface
        // the silence as a fetch failure for the driver to resolve.
        let wire = data_tr.wire_time(bytes);
        let timeout = SimDuration::from_nanos(wire.nanos().saturating_mul(4)) + reply_slack();
        if ctx.recv_timeout(MatchSpec::tag(tag), timeout).is_err() {
            return Err(FetchFail {
                shuffle,
                map_part: rep_map_part,
            });
        }
    }
    Ok(out)
}

/// Per-node shuffle service: streams batched bucket sets on the
/// configured shuffle transport. Mirrors Spark's external shuffle
/// service (and the SEDA server of the RDMA plugin). Shuffle blocks
/// live in the page cache; the NIC and this service's serialization are
/// the bottleneck, not the storage device.
pub(crate) fn shuffle_service_loop(ctx: &mut ProcCtx, app: Arc<AppShared>) {
    let data_tr = app.config.shuffle.data_transport();
    let my_node = ctx.node();
    let crash_at = ctx.node_crash_time();
    loop {
        let msg = match ctx.recv_deadline(MatchSpec::tag(SERVICE_TAG), crash_at) {
            Ok(m) => m,
            Err(_) => {
                ctx.record_fault(hpcbd_simnet::FaultEvent::NodeCrash { node: my_node });
                return; // the node died with its executors
            }
        };
        let req = msg.expect_value::<(u64, u32, u64, Pid)>();
        let (shuffle, reduce_part, bytes, reply_to) = *req;
        if shuffle == u64::MAX {
            return; // shutdown sentinel
        }
        if shuffle == u64::MAX - 1 {
            continue; // broadcast replica landed; nothing to serve
        }
        if bytes > 0 {
            ctx.compute(Work::mem_bytes(bytes as f64), 1.0);
        }
        let tag = SERVICE_REPLY | (shuffle << 24) | ((my_node.0 as u64) << 12) | reduce_part as u64;
        ctx.send(reply_to, tag, bytes.max(1), Payload::Empty, &data_tr);
    }
}

/// Executor-side helper shared with the driver for sizing result waits.
pub(crate) fn reply_slack() -> SimDuration {
    SimDuration::from_secs(5)
}
