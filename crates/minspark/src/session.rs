//! Cluster assembly: deploy executors, shuffle services, optional HDFS,
//! and run a driver application.

use std::any::Any;
use std::sync::Arc;

use hpcbd_cluster::ClusterSpec;
use hpcbd_minhdfs::{Hdfs, HdfsConfig};
use hpcbd_simnet::{Execution, FaultPlan, NodeId, Sim, SimReport, SimTime, StructuredAbort};

use crate::config::SparkConfig;
use crate::driver::SparkDriver;
use crate::executor::{executor_loop, shuffle_service_loop, AppShared};
use crate::plan::Plan;
use crate::stores::{BlockStore, ShuffleStore};

type FileSeed = (String, u64, Option<Arc<dyn Any + Send + Sync>>);

/// Builder for one Spark application run on a fresh simulated cluster.
pub struct SparkCluster {
    nodes: u32,
    config: SparkConfig,
    hdfs_config: Option<HdfsConfig>,
    hdfs_files: Vec<FileSeed>,
    scratch_files: Vec<FileSeed>,
    execution: Option<Execution>,
    faults: Option<FaultPlan>,
}

/// What a finished application produced.
pub struct SparkResult<T> {
    /// The application closure's return value.
    pub value: T,
    /// Virtual time when the whole simulation finished.
    pub elapsed: SimTime,
    /// Full engine report (per-process stats).
    pub report: SimReport,
    /// Job-level execution metrics (tasks, cache, shuffle, failures).
    pub metrics: crate::metrics::MetricsSnapshot,
}

impl SparkCluster {
    /// An application on `nodes` Comet nodes.
    pub fn new(nodes: u32, config: SparkConfig) -> SparkCluster {
        SparkCluster {
            nodes,
            config,
            hdfs_config: None,
            hdfs_files: Vec::new(),
            scratch_files: Vec::new(),
            execution: None,
            faults: None,
        }
    }

    /// Install a deterministic fault plan for this run: node crashes
    /// kill whole executor groups (recovered through lineage), link and
    /// drop faults delay messages, stragglers stretch compute. Node 0
    /// hosts the driver — a real Spark SPOF — so crashing it is refused.
    pub fn faults(mut self, plan: FaultPlan) -> SparkCluster {
        assert!(
            plan.crash_time(NodeId(0)).is_none(),
            "node 0 hosts the driver; crashing it kills the application"
        );
        self.faults = Some(plan);
        self
    }

    /// Select the engine execution mode for this run (virtual-time
    /// results are bit-identical across modes; see
    /// [`hpcbd_simnet::parallel`]).
    pub fn execution(mut self, exec: Execution) -> SparkCluster {
        self.execution = Some(exec);
        self
    }

    /// Deploy HDFS with this configuration.
    pub fn with_hdfs(mut self, config: HdfsConfig) -> SparkCluster {
        self.hdfs_config = Some(config);
        self
    }

    /// Pre-load a file into HDFS (instant, untimed setup).
    pub fn hdfs_file(
        mut self,
        path: &str,
        size: u64,
        data: Option<Arc<dyn Any + Send + Sync>>,
    ) -> SparkCluster {
        self.hdfs_files.push((path.to_string(), size, data));
        self
    }

    /// Pre-replicate a file onto every node's local scratch (the
    /// "copied to local filesystems" configuration of Table II).
    pub fn scratch_file(
        mut self,
        path: &str,
        size: u64,
        data: Option<Arc<dyn Any + Send + Sync>>,
    ) -> SparkCluster {
        self.scratch_files.push((path.to_string(), size, data));
        self
    }

    /// [`SparkCluster::run`], but a deliberate job failure (retry budget
    /// exhausted, every executor dead — raised by the scheduler as a
    /// [`StructuredAbort`]) comes back as `Err` instead of unwinding.
    /// Genuine bugs (non-structured panics) still propagate: the
    /// fault-campaign harness relies on that distinction to separate
    /// "the runtime gave up, loudly" from "the runtime broke".
    pub fn try_run<T, F>(self, app: F) -> Result<SparkResult<T>, StructuredAbort>
    where
        T: Send + 'static,
        F: FnOnce(&mut SparkDriver) -> T + Send + 'static,
    {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.run(app))) {
            Ok(res) => Ok(res),
            Err(payload) => {
                match StructuredAbort::from_panic(payload.as_ref() as &(dyn Any + Send)) {
                    Some(sa) => Err(sa),
                    None => std::panic::resume_unwind(payload),
                }
            }
        }
    }

    /// Spawn everything and run `app` on the driver. Returns its value
    /// plus timing.
    pub fn run<T, F>(self, app: F) -> SparkResult<T>
    where
        T: Send + 'static,
        F: FnOnce(&mut SparkDriver) -> T + Send + 'static,
    {
        let cluster = ClusterSpec::comet(self.nodes);
        let mut sim = Sim::new(cluster.topology());
        if let Some(exec) = self.execution {
            sim.set_execution(exec);
        }
        if let Some(plan) = self.faults {
            sim.set_fault_plan(plan);
        }
        let hdfs = self
            .hdfs_config
            .map(|cfg| Hdfs::deploy(&mut sim, cfg, None));
        if let Some(h) = &hdfs {
            for (path, size, data) in &self.hdfs_files {
                h.load_file_instant(path, *size, data.clone());
            }
        } else {
            assert!(
                self.hdfs_files.is_empty(),
                "hdfs_file() requires with_hdfs()"
            );
        }
        for (path, size, data) in &self.scratch_files {
            sim.world().fs.replicate_to_scratch(
                (0..self.nodes).map(NodeId),
                path,
                *size,
                data.clone(),
            );
        }

        let app_shared = Arc::new(AppShared {
            plan: Plan::new(),
            config: self.config,
            metrics: crate::metrics::SparkMetrics::default(),
            blocks: BlockStore::new(self.config.executor_mem),
            shuffles: ShuffleStore::new(),
            exec_pids: parking_lot::RwLock::new(Vec::new()),
            service_pids: parking_lot::RwLock::new(Vec::new()),
            driver_pid: parking_lot::RwLock::new(None),
            hdfs,
        });

        // Shuffle service per node.
        for n in 0..self.nodes {
            let a = app_shared.clone();
            let pid = sim.spawn(NodeId(n), format!("shuffle-svc@{n}"), move |ctx| {
                shuffle_service_loop(ctx, a)
            });
            app_shared.service_pids.write().push(pid);
        }
        // Executors.
        let mut exec = 0u32;
        for n in 0..self.nodes {
            for s in 0..self.config.executors_per_node {
                let a = app_shared.clone();
                let e = exec;
                let pid = sim.spawn(NodeId(n), format!("exec{e}@n{n}s{s}"), move |ctx| {
                    executor_loop(ctx, a, e)
                });
                app_shared.exec_pids.write().push(pid);
                exec += 1;
            }
        }
        // Driver on node 0.
        let a = app_shared.clone();
        let driver_pid = sim.spawn(NodeId(0), "driver", move |ctx| {
            ctx.advance(a.config.app_startup);
            let mut driver = SparkDriver::new(ctx, a.clone());
            let value = app(&mut driver);
            driver.shutdown();
            value
        });
        *app_shared.driver_pid.write() = Some(driver_pid);

        let mut report = sim.run();
        let value = report.result::<T>(driver_pid);
        SparkResult {
            value,
            elapsed: report.makespan(),
            metrics: app_shared.metrics.snapshot(),
            report,
        }
    }
}
