//! The driver: DAG scheduling, task dispatch, actions, fault recovery.
//!
//! Mirrors Spark's architecture as the paper describes it (Sec. VI-B):
//! the driver parses the (lazy) plan, splits it into stages at shuffle
//! boundaries, and ships task closures to executors over the socket
//! control plane — the per-task driver overhead is precisely what makes
//! Spark lose the reduce microbenchmark (Fig. 3). On executor loss the
//! driver invalidates that executor's cached blocks and shuffle outputs
//! and re-runs exactly the lost work from lineage (Sec. VI-D).

use std::collections::VecDeque;
use std::sync::Arc;

use hpcbd_simnet::{
    FaultEvent, MatchSpec, NodeId, Payload, Pid, ProcCtx, SimDuration, SimTime, StructuredAbort,
    Work,
};

use crate::executor::{
    ActionFn, AppShared, ExecCmd, ExecMsg, TaskKind, TaskSpec, DRIVER_TAG, EXEC_TAG, PONG_TAG,
    SERVICE_TAG,
};
use crate::plan::{Compute, PartValue, Plan, RddId, ShuffleId};
use crate::rdd::{sources, Data, Rdd};
use crate::stores::ExecId;

/// The driver handle passed to the application closure by
/// [`crate::session::SparkCluster::run`]. Provides `SparkContext`-style
/// source constructors and actions.
pub struct SparkDriver<'a> {
    pub(crate) ctx: &'a mut ProcCtx,
    pub(crate) app: Arc<AppShared>,
    pub(crate) alive: Vec<bool>,
    /// Task failures charged to each executor while it was alive.
    pub(crate) fail_counts: Vec<u32>,
    /// Executors the scheduler refuses to use (repeated task failures).
    pub(crate) blacklisted: Vec<bool>,
    pub(crate) seq: u64,
}

struct WaveOutcome {
    done: Vec<(u32, Option<PartValue>)>,
    fetch_failures: Vec<(TaskSpec, ShuffleId, u32)>,
}

impl<'a> SparkDriver<'a> {
    pub(crate) fn new(ctx: &'a mut ProcCtx, app: Arc<AppShared>) -> SparkDriver<'a> {
        let n = app.exec_pids.read().len();
        SparkDriver {
            ctx,
            app,
            alive: vec![true; n],
            fail_counts: vec![0; n],
            blacklisted: vec![false; n],
            seq: 0,
        }
    }

    /// The logical plan registry.
    pub fn plan(&self) -> Arc<Plan> {
        self.app.plan.clone()
    }

    /// Deployed HDFS instance (when the cluster was built with one).
    pub fn hdfs(&self) -> &hpcbd_minhdfs::Hdfs {
        self.app.hdfs.as_ref().expect("cluster built without HDFS")
    }

    /// Current virtual time of the driver — used by benchmarks to time
    /// individual actions.
    pub fn now(&self) -> SimTime {
        self.ctx.now()
    }

    /// `sc.parallelize(data, numSlices)`.
    pub fn parallelize<T: Data>(&self, data: Vec<T>, parts: u32) -> Rdd<T> {
        sources::parallelize(&self.app.plan, data, parts, 8)
    }

    /// `sc.parallelize` with an explicit per-item wire size.
    pub fn parallelize_with_bytes<T: Data>(
        &self,
        data: Vec<T>,
        parts: u32,
        item_bytes: u64,
    ) -> Rdd<T> {
        sources::parallelize(&self.app.plan, data, parts, item_bytes)
    }

    /// `sc.textFile` over an HDFS path (one partition per block, with
    /// replica locality).
    pub fn hadoop_file<I: hpcbd_simnet::InputFormat>(
        &self,
        path: &str,
        format: Arc<I>,
    ) -> Rdd<I::Rec> {
        sources::hadoop_file(&self.app.plan, self.hdfs(), path, format)
    }

    /// `sc.textFile` over a file replicated on every node's local scratch
    /// (Table II's "Spark on local filesystem" configuration).
    pub fn local_file<I: hpcbd_simnet::InputFormat>(
        &self,
        path: &str,
        size: u64,
        parts: u32,
        format: Arc<I>,
    ) -> Rdd<I::Rec> {
        sources::local_file(&self.app.plan, path, size, parts, format)
    }

    /// `sc.broadcast(value)`: replicate a read-only value to every
    /// executor node. Charges one control-plane transfer per node (the
    /// torrent broadcast's aggregate cost) before returning.
    pub fn broadcast<T: Send + Sync + 'static>(
        &mut self,
        value: T,
        bytes: u64,
    ) -> crate::shared::Broadcast<T> {
        let control = self.app.config.control_transport();
        let services: Vec<Pid> = self.app.service_pids.read().clone();
        // One replica per node, shipped through that node's service
        // process (any resident process works — the charge is what
        // matters; the Rust value itself is shared by Arc).
        for pid in services {
            self.ctx.send(
                pid,
                crate::executor::SERVICE_TAG,
                bytes,
                Payload::value((u64::MAX - 1, 0u32, 0u64, self.ctx.pid())),
                &control,
            );
        }
        crate::shared::Broadcast::new(value, bytes)
    }

    // ---- Actions ----

    /// `rdd.reduce(f)`: returns `None` for an empty RDD.
    pub fn reduce<T: Data>(
        &mut self,
        rdd: &Rdd<T>,
        f: impl Fn(&T, &T) -> T + Send + Sync + 'static,
    ) -> Option<T> {
        let f = Arc::new(f);
        let f2 = f.clone();
        let action: ActionFn = Arc::new(move |ctx, scale, pv| {
            let v = pv.as_vec::<T>();
            // One combine per logical element.
            ctx.compute(
                Work::new(4.0, 32.0).scaled(v.len() as f64 * scale),
                hpcbd_simnet::RuntimeClass::Jvm.factor(),
            );
            let partial = v
                .iter()
                .skip(1)
                .fold(v.first().cloned(), |acc, x| acc.map(|a| f2(&a, x)));
            PartValue::of(partial.map(|p| vec![p]).unwrap_or_default())
        });
        let partials = self.run_action(rdd.id, action);
        let mut acc: Option<T> = None;
        for (_, pv) in partials {
            if let Some(pv) = pv {
                for x in pv.as_vec::<T>() {
                    acc = Some(match acc {
                        Some(a) => f(&a, x),
                        None => x.clone(),
                    });
                }
            }
        }
        acc
    }

    /// `rdd.count()`: the number of **logical** elements (sample count
    /// scaled by the source's content scale factor).
    pub fn count<T: Data>(&mut self, rdd: &Rdd<T>) -> u64 {
        let action: ActionFn = Arc::new(|ctx, scale, pv| {
            ctx.compute(
                Work::new(1.0, 8.0).scaled(pv.items as f64 * scale),
                hpcbd_simnet::RuntimeClass::Jvm.factor(),
            );
            PartValue::of(vec![(pv.items as f64 * scale) as u64])
        });
        let partials = self.run_action(rdd.id, action);
        partials
            .into_iter()
            .filter_map(|(_, pv)| pv)
            .map(|pv| pv.as_vec::<u64>().iter().sum::<u64>())
            .sum()
    }

    /// `rdd.collect()`: the **sample** elements, in partition order.
    pub fn collect<T: Data>(&mut self, rdd: &Rdd<T>) -> Vec<T> {
        let action: ActionFn = Arc::new(|_ctx, _scale, pv| pv);
        let partials = self.run_action(rdd.id, action);
        let mut out = Vec::new();
        for (_, pv) in partials {
            if let Some(pv) = pv {
                out.extend(pv.as_vec::<T>().iter().cloned());
            }
        }
        out
    }

    /// `rdd.fold(zero, f)`: like reduce but with an identity (so empty
    /// RDDs return `zero`).
    pub fn fold<T: Data>(
        &mut self,
        rdd: &Rdd<T>,
        zero: T,
        f: impl Fn(&T, &T) -> T + Send + Sync + 'static,
    ) -> T {
        self.reduce(rdd, f).unwrap_or(zero)
    }

    /// `rdd.take(n)`: the first `n` sample elements in partition order.
    /// Like Spark, scans partitions from the front and stops once enough
    /// rows arrived (we run the first stage's tasks; early partitions
    /// usually satisfy the request).
    pub fn take<T: Data>(&mut self, rdd: &Rdd<T>, n: usize) -> Vec<T> {
        let mut out = self.collect(rdd);
        out.truncate(n);
        out
    }

    /// `rdd.first()`: the first sample element, if any.
    pub fn first<T: Data>(&mut self, rdd: &Rdd<T>) -> Option<T> {
        self.take(rdd, 1).into_iter().next()
    }

    /// Force materialization (and caching) of every partition without
    /// returning data — `rdd.foreach(_ => ())`, used to warm caches.
    pub fn materialize_all<T: Data>(&mut self, rdd: &Rdd<T>) {
        let action: ActionFn = Arc::new(|_ctx, _scale, _pv| PartValue::of(Vec::<u8>::new()));
        self.run_action(rdd.id, action);
    }

    // ---- Scheduling core ----

    /// Crate-internal entry for extension actions (e.g.
    /// `saveAsHadoopFile` in `ops_extra`).
    pub(crate) fn run_action_public(
        &mut self,
        target: RddId,
        action: ActionFn,
    ) -> Vec<(u32, Option<PartValue>)> {
        self.run_action(target, action)
    }

    fn run_action(&mut self, target: RddId, action: ActionFn) -> Vec<(u32, Option<PartValue>)> {
        self.ctx.span_open_with(|| format!("spark/job/{target}"));
        self.ctx.advance(self.app.config.job_submit_overhead);
        for sid in self.app.plan.stage_shuffle_inputs(target) {
            self.ensure_shuffle(sid);
        }
        let parts = self.app.plan.node(target).partitions;
        let tasks: Vec<TaskSpec> = (0..parts)
            .map(|p| TaskSpec {
                seq: self.next_seq(),
                target,
                part: p,
                attempts: 0,
                kind: TaskKind::Action(action.clone()),
            })
            .collect();
        let mut out = self.run_tasks(tasks);
        out.sort_by_key(|(p, _)| *p);
        self.ctx.span_close();
        out
    }

    /// Make every map output of `sid` available, re-running missing map
    /// partitions (initial run and lineage-based stage retry).
    fn ensure_shuffle(&mut self, sid: ShuffleId) {
        let dep = self.app.plan.shuffle(sid);
        for parent_sid in self.app.plan.stage_shuffle_inputs(dep.parent) {
            self.ensure_shuffle(parent_sid);
        }
        let parent_parts = self.app.plan.node(dep.parent).partitions;
        let missing: Vec<u32> = (0..parent_parts)
            .filter(|p| !self.app.shuffles.has_map_output(sid, *p))
            .collect();
        if missing.is_empty() {
            return;
        }
        let tasks: Vec<TaskSpec> = missing
            .into_iter()
            .map(|p| TaskSpec {
                seq: self.next_seq(),
                target: dep.parent,
                part: p,
                attempts: 0,
                kind: TaskKind::ShuffleMap { shuffle: sid },
            })
            .collect();
        let _ = self.run_tasks(tasks);
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Run a set of tasks to completion, recovering from fetch failures
    /// (re-running lost parent map outputs) and executor deaths
    /// (invalidating their state and re-queueing their tasks).
    fn run_tasks(&mut self, tasks: Vec<TaskSpec>) -> Vec<(u32, Option<PartValue>)> {
        let mut results = Vec::new();
        let mut remaining = tasks;
        loop {
            let outcome = self.run_wave(std::mem::take(&mut remaining));
            results.extend(outcome.done);
            if outcome.fetch_failures.is_empty() {
                break;
            }
            let mut shuffles: Vec<ShuffleId> =
                outcome.fetch_failures.iter().map(|(_, s, _)| *s).collect();
            shuffles.sort();
            shuffles.dedup();
            for s in shuffles {
                self.ensure_shuffle(s);
            }
            remaining = Vec::new();
            for (mut t, _, _) in outcome.fetch_failures {
                t.seq = self.next_seq();
                self.bump_attempts(&mut t);
                remaining.push(t);
            }
        }
        results
    }

    /// Charge a failed attempt to a task; the job aborts (Spark's
    /// `spark.task.maxFailures` semantics) once the budget is spent.
    fn bump_attempts(&mut self, task: &mut TaskSpec) {
        task.attempts += 1;
        crate::metrics::SparkMetrics::add(&self.app.metrics.task_retries, 1);
        self.ctx.record_fault(FaultEvent::Recovery {
            runtime: "spark",
            action: "task_retry",
            detail: task.part as u64,
        });
        if task.attempts > self.app.config.max_task_retries {
            StructuredAbort::raise(
                "spark",
                format!(
                    "job aborted: task for partition {} failed {} times \
                     (spark.task.maxFailures = {})",
                    task.part, task.attempts, self.app.config.max_task_retries
                ),
            );
        }
    }

    /// Whether the scheduler may hand work to `e`.
    fn schedulable(&self, e: ExecId) -> bool {
        self.alive[e as usize] && !self.blacklisted[e as usize]
    }

    /// Record a task failure against an executor; repeated failures get
    /// it blacklisted (never the last schedulable one).
    fn note_task_failure(&mut self, e: ExecId) {
        self.fail_counts[e as usize] += 1;
        let schedulable = (0..self.alive.len() as u32)
            .filter(|x| self.schedulable(*x))
            .count();
        if self.schedulable(e)
            && self.fail_counts[e as usize] >= self.app.config.blacklist_after
            && schedulable > 1
        {
            self.blacklisted[e as usize] = true;
            crate::metrics::SparkMetrics::add(&self.app.metrics.executors_blacklisted, 1);
            self.ctx.record_fault(FaultEvent::Recovery {
                runtime: "spark",
                action: "blacklist",
                detail: e as u64,
            });
        }
    }

    /// A whole node stopped answering (FaultPlan crash): kill every
    /// executor on it, drop their cached blocks and shuffle outputs, and
    /// requeue the in-flight tasks that were running there.
    fn declare_node_dead(
        &mut self,
        node: NodeId,
        in_flight: &mut std::collections::HashMap<u64, (ExecId, TaskSpec)>,
        pending: &mut VecDeque<TaskSpec>,
        twin: &mut std::collections::HashMap<u64, u64>,
        free: &mut VecDeque<ExecId>,
    ) {
        self.ctx.record_fault(FaultEvent::Recovery {
            runtime: "spark",
            action: "node_lost",
            detail: node.0 as u64,
        });
        for e in 0..self.alive.len() as u32 {
            if self.alive[e as usize] && self.app.node_of_exec(e) == node {
                self.alive[e as usize] = false;
                crate::metrics::SparkMetrics::add(&self.app.metrics.executors_lost, 1);
                self.app.blocks.invalidate_executor(e);
                let _lost = self.app.shuffles.invalidate_executor(e);
            }
        }
        free.retain(|e| self.alive[*e as usize]);
        let mut lost: Vec<u64> = in_flight
            .iter()
            .filter(|(_, (e, _))| !self.alive[*e as usize])
            .map(|(s, _)| *s)
            .collect();
        lost.sort_unstable();
        for seq in lost {
            let Some((_, mut task)) = in_flight.remove(&seq) else {
                continue;
            };
            if let Some(t) = twin.remove(&seq) {
                // A live twin still covers the logical task.
                twin.remove(&t);
            } else {
                self.bump_attempts(&mut task);
                pending.push_back(task);
            }
        }
        if !self.alive.iter().any(|a| *a) {
            StructuredAbort::raise(
                "spark",
                "job aborted: every executor died; application cannot continue",
            );
        }
    }

    /// Locality preferences of a task: walk narrow edges to sources
    /// (HDFS replicas) and to persisted parents (cached-block owner).
    fn task_prefs(&self, rdd: RddId, part: u32) -> (Vec<NodeId>, Option<ExecId>) {
        let mut nodes = Vec::new();
        let mut exec = None;
        let mut stack = vec![rdd];
        while let Some(id) = stack.pop() {
            let node = self.app.plan.node(id);
            if node.storage.read().is_some() {
                if let Some(owner) = self.block_owner(id, part) {
                    exec = exec.or(Some(owner));
                    nodes.push(self.app.node_of_exec(owner));
                    continue; // cached: no need to look further up
                }
            }
            match &node.compute {
                Compute::Source(_) => {
                    if let Some(p) = node.prefs.get(part as usize) {
                        nodes.extend(p.iter().copied());
                    }
                }
                Compute::Narrow { parent, .. } | Compute::Coalesce { parent, .. } => {
                    stack.push(*parent)
                }
                Compute::UnionSelect { left, right, .. }
                | Compute::CoPartitioned { left, right, .. } => {
                    stack.push(*left);
                    stack.push(*right);
                }
                Compute::ShuffleRead { .. } | Compute::ShuffleJoin { .. } => {}
            }
        }
        (nodes, exec)
    }

    fn block_owner(&self, rdd: RddId, part: u32) -> Option<ExecId> {
        // The block store tracks one owner per (rdd, part).
        (0..self.alive.len() as u32)
            .find(|e| self.alive[*e as usize] && self.app.blocks.get(rdd, part, *e).is_some())
    }

    fn run_wave(&mut self, tasks: Vec<TaskSpec>) -> WaveOutcome {
        // Each recovery round of a stage is one wave; label it by what
        // the tasks produce (map outputs vs action results).
        let stage_kind = match tasks.first().map(|t| &t.kind) {
            Some(TaskKind::ShuffleMap { .. }) => "shuffle",
            _ => "result",
        };
        self.ctx
            .span_open_with(|| format!("spark/stage/{stage_kind}"));
        let exec_pids: Vec<Pid> = self.app.exec_pids.read().clone();
        let control = self.app.config.control_transport();
        let mut pending: VecDeque<TaskSpec> = tasks.into();
        // Slot-major order spreads unconstrained tasks across nodes
        // before doubling up on any one (Spark's round-robin executor
        // offers), so shuffle outputs and disk load distribute evenly.
        let epn = self.app.config.executors_per_node;
        let mut free_ids: Vec<ExecId> = (0..exec_pids.len() as u32)
            .filter(|e| self.schedulable(*e))
            .collect();
        free_ids.sort_by_key(|e| (e % epn, e / epn));
        let mut free: VecDeque<ExecId> = free_ids.into();
        let mut in_flight: std::collections::HashMap<u64, (ExecId, TaskSpec)> =
            std::collections::HashMap::new();
        // Speculation state: seq <-> backup-seq pairs running the same
        // logical task, and cancelled copies whose late completions only
        // free their executor.
        let mut twin: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        let mut zombie_execs: std::collections::HashMap<u64, ExecId> =
            std::collections::HashMap::new();
        let mut done = Vec::new();
        let mut fetch_failures = Vec::new();
        let total = pending.len();

        // Delay-scheduling state: how many scheduling rounds each pending
        // task has been passed over while waiting for a preferred slot.
        let mut skips: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
        while done.len() + fetch_failures.len() < total {
            // Assign with locality preference and delay scheduling: a task
            // whose preferred executor (cached parent) or node (HDFS
            // replica) is busy waits a few rounds before degrading to a
            // worse slot — Spark's spark.locality.wait, which is what
            // makes cached RDDs actually hit their cache under load.
            loop {
                if free.is_empty() || pending.is_empty() {
                    break;
                }
                let mut chosen: Option<(usize, usize)> = None; // (pending, free)
                for (ti, task) in pending.iter().enumerate() {
                    let (pref_nodes, pref_exec) = self.task_prefs(task.target, task.part);
                    let waited = *skips.get(&task.seq).unwrap_or(&0);
                    let pick = pref_exec
                        .and_then(|e| free.iter().position(|f| *f == e))
                        .or_else(|| {
                            if waited >= 2 || pref_exec.is_none() {
                                free.iter()
                                    .position(|f| pref_nodes.contains(&self.app.node_of_exec(*f)))
                            } else {
                                None
                            }
                        })
                        .or_else(|| {
                            if waited >= 5 || (pref_exec.is_none() && pref_nodes.is_empty()) {
                                Some(0)
                            } else {
                                None
                            }
                        });
                    match pick {
                        Some(fi) => {
                            chosen = Some((ti, fi));
                            break;
                        }
                        None => {
                            *skips.entry(task.seq).or_insert(0) += 1;
                        }
                    }
                }
                // Nothing preferred is schedulable and nothing is in
                // flight to free a better slot: force the first task.
                if chosen.is_none() && in_flight.is_empty() {
                    chosen = Some((0, 0));
                }
                let Some((ti, fi)) = chosen else { break };
                let task = pending.remove(ti).unwrap();
                let exec = free.remove(fi).unwrap();
                if task.attempts > 0 {
                    // Linear retry backoff before shipping the attempt.
                    self.ctx.advance(SimDuration::from_nanos(
                        self.app
                            .config
                            .task_retry_backoff
                            .nanos()
                            .saturating_mul(task.attempts as u64),
                    ));
                }
                self.ctx.advance(self.app.config.task_dispatch_overhead);
                let extra = match &self.app.plan.node(task.target).compute {
                    Compute::Source(_) => self
                        .app
                        .plan
                        .node(task.target)
                        .source_dispatch_bytes
                        .load(std::sync::atomic::Ordering::Relaxed),
                    _ => 0,
                };
                in_flight.insert(task.seq, (exec, task.clone()));
                self.ctx.send(
                    exec_pids[exec as usize],
                    EXEC_TAG,
                    self.app.config.task_bytes + extra,
                    Payload::value(ExecCmd::Task(task)),
                    &control,
                );
            }
            // Speculative execution: the queue drained but stragglers
            // hold the wave open — launch one backup copy of the oldest
            // running task on an idle executor; first copy home wins.
            if self.app.config.speculation && pending.is_empty() && !free.is_empty() {
                let candidate = in_flight
                    .keys()
                    .copied()
                    .filter(|s| !twin.contains_key(s))
                    .min();
                if let Some(orig) = candidate {
                    let mut copy = in_flight[&orig].1.clone();
                    copy.seq = self.next_seq();
                    twin.insert(orig, copy.seq);
                    twin.insert(copy.seq, orig);
                    crate::metrics::SparkMetrics::add(&self.app.metrics.speculative_tasks, 1);
                    self.ctx.record_fault(FaultEvent::Recovery {
                        runtime: "spark",
                        action: "speculative_task",
                        detail: copy.part as u64,
                    });
                    let exec = free.pop_front().unwrap();
                    self.ctx.advance(self.app.config.task_dispatch_overhead);
                    in_flight.insert(copy.seq, (exec, copy.clone()));
                    self.ctx.send(
                        exec_pids[exec as usize],
                        EXEC_TAG,
                        self.app.config.task_bytes,
                        Payload::value(ExecCmd::Task(copy)),
                        &control,
                    );
                }
            }
            if in_flight.is_empty() {
                StructuredAbort::raise(
                    "spark",
                    format!(
                        "job aborted: no executors alive with {} tasks outstanding",
                        pending.len()
                    ),
                );
            }
            match self
                .ctx
                .recv_timeout(MatchSpec::tag(DRIVER_TAG), self.app.config.task_timeout)
            {
                Ok(msg) => {
                    self.ctx.advance(self.app.config.result_handle_overhead);
                    let m = msg.expect_value::<ExecMsg>();
                    match &*m {
                        ExecMsg::TaskDone {
                            seq,
                            exec,
                            part,
                            result,
                        } => {
                            if in_flight.remove(seq).is_some() {
                                done.push((*part, result.clone()));
                                // Cancel a still-running speculative twin;
                                // its late completion only frees its slot.
                                if let Some(t) = twin.remove(seq) {
                                    twin.remove(&t);
                                    if let Some((ze, _)) = in_flight.remove(&t) {
                                        zombie_execs.insert(t, ze);
                                    }
                                }
                                if self.schedulable(*exec) {
                                    free.push_back(*exec);
                                }
                            } else if let Some(ze) = zombie_execs.remove(seq) {
                                if self.schedulable(ze) {
                                    free.push_back(ze);
                                }
                            }
                        }
                        ExecMsg::FetchFailed {
                            seq,
                            exec,
                            shuffle,
                            map_part,
                        } => {
                            if let Some((_, task)) = in_flight.remove(seq) {
                                crate::metrics::SparkMetrics::add(
                                    &self.app.metrics.fetch_failures,
                                    1,
                                );
                                if let Some(t) = twin.remove(seq) {
                                    twin.remove(&t);
                                    if let Some((ze, _)) = in_flight.remove(&t) {
                                        zombie_execs.insert(t, ze);
                                    }
                                }
                                // The bucket is still registered yet its
                                // service went silent: that owner's whole
                                // node is gone. Invalidate it so lineage
                                // actually re-runs the lost map outputs.
                                if let Some((_, _, owner)) =
                                    self.app.shuffles.get_bucket(*shuffle, *map_part, task.part)
                                {
                                    let node = self.app.node_of_exec(owner);
                                    self.declare_node_dead(
                                        node,
                                        &mut in_flight,
                                        &mut pending,
                                        &mut twin,
                                        &mut free,
                                    );
                                }
                                self.note_task_failure(*exec);
                                fetch_failures.push((task, *shuffle, *map_part));
                                if self.schedulable(*exec) {
                                    free.push_back(*exec);
                                }
                            } else if let Some(ze) = zombie_execs.remove(seq) {
                                if self.schedulable(ze) {
                                    free.push_back(ze);
                                }
                            }
                        }
                    }
                }
                Err(_) => {
                    // Liveness sweep: ping the executors with work in
                    // flight; the dead lose their state and their tasks.
                    // Seq-sorted so HashMap iteration order never leaks
                    // into the virtual-time schedule.
                    let mut stale: Vec<(u64, ExecId)> =
                        in_flight.iter().map(|(s, (e, _))| (*s, *e)).collect();
                    stale.sort_unstable();
                    for (seq, e) in stale {
                        if !in_flight.contains_key(&seq) {
                            continue; // already resolved earlier in this sweep
                        }
                        self.ctx.send(
                            exec_pids[e as usize],
                            EXEC_TAG,
                            32,
                            Payload::value(ExecCmd::Ping),
                            &control,
                        );
                        let ok = self
                            .ctx
                            .recv_timeout(
                                MatchSpec::src_tag(exec_pids[e as usize], PONG_TAG),
                                crate::executor::reply_slack(),
                            )
                            .is_ok();
                        if !ok {
                            self.alive[e as usize] = false;
                            crate::metrics::SparkMetrics::add(&self.app.metrics.executors_lost, 1);
                            self.app.blocks.invalidate_executor(e);
                            let _lost = self.app.shuffles.invalidate_executor(e);
                            free.retain(|f| *f != e);
                            if let Some((_, mut task)) = in_flight.remove(&seq) {
                                if let Some(t) = twin.remove(&task.seq) {
                                    // The surviving twin still covers the
                                    // logical task; don't requeue.
                                    twin.remove(&t);
                                } else {
                                    self.bump_attempts(&mut task);
                                    pending.push_back(task);
                                }
                            }
                        }
                    }
                    if !self.alive.iter().any(|a| *a) {
                        StructuredAbort::raise(
                            "spark",
                            "job aborted: every executor died; application cannot continue",
                        );
                    }
                }
            }
        }
        self.ctx.span_close();
        WaveOutcome {
            done,
            fetch_failures,
        }
    }

    /// Orderly teardown: stop executors, shuffle services, and HDFS.
    pub(crate) fn shutdown(&mut self) {
        let control = self.app.config.control_transport();
        let execs: Vec<Pid> = self.app.exec_pids.read().clone();
        for pid in execs {
            self.ctx.send(
                pid,
                EXEC_TAG,
                32,
                Payload::value(ExecCmd::Shutdown),
                &control,
            );
        }
        let services: Vec<Pid> = self.app.service_pids.read().clone();
        for pid in services {
            self.ctx.send(
                pid,
                SERVICE_TAG,
                32,
                Payload::value((u64::MAX, 0u32, 0u64, self.ctx.pid())),
                &control,
            );
        }
        if let Some(hdfs) = &self.app.hdfs.clone() {
            hdfs.shutdown(self.ctx);
        }
    }
}
