//! The logical plan: an untyped RDD DAG shared by driver and executors.
//!
//! Typed `Rdd<T>` handles (see [`crate::rdd`]) append nodes to this
//! registry; the driver walks it to build stages and the executors walk
//! it to materialize partitions (lineage). Closures are type-erased
//! around [`PartValue`] — a partition's worth of data plus its item
//! count, which drives all cost accounting.

use std::any::Any;
use std::sync::Arc;

use parking_lot::RwLock;

use hpcbd_simnet::{NodeId, ProcCtx, Work};

use crate::config::StorageLevel;

/// Id of an RDD node in the plan.
pub type RddId = usize;
/// Id of a shuffle dependency.
pub type ShuffleId = usize;
/// Identifies a partitioner, for co-partitioned narrow joins.
pub type PartitionerId = u64;

/// A type-erased partition transform.
pub type NarrowFn = Arc<dyn Fn(&PartValue) -> PartValue + Send + Sync>;
/// A type-erased partition producer (sources).
pub type SourceFn = Arc<dyn Fn(&mut ProcCtx, u32) -> PartValue + Send + Sync>;
/// A type-erased zip of two aligned partitions (narrow joins).
pub type ZipFn = Arc<dyn Fn(&PartValue, &PartValue) -> PartValue + Send + Sync>;
/// A type-erased map-side bucket splitter.
pub type SplitFn = Arc<dyn Fn(&PartValue, u32) -> Vec<PartValue> + Send + Sync>;
/// A type-erased merge of fetched shuffle buckets.
pub type CombineFn = Arc<dyn Fn(Vec<PartValue>) -> PartValue + Send + Sync>;
/// A type-erased merge of two shuffles' buckets (wide joins).
pub type JoinCombineFn = Arc<dyn Fn(Vec<PartValue>, Vec<PartValue>) -> PartValue + Send + Sync>;

/// One partition's materialized data: a `Vec<T>` behind `Any`, plus the
/// sample item count.
#[derive(Clone)]
pub struct PartValue {
    /// The data (always an `Arc<Vec<T>>` for the node's element type).
    pub data: Arc<dyn Any + Send + Sync>,
    /// Sample items in this partition.
    pub items: usize,
}

impl PartValue {
    /// Wrap a typed vector.
    pub fn of<T: Send + Sync + 'static>(v: Vec<T>) -> PartValue {
        PartValue {
            items: v.len(),
            data: Arc::new(v),
        }
    }

    /// Borrow the typed vector.
    pub fn as_vec<T: Send + Sync + 'static>(&self) -> &Vec<T> {
        self.data
            .downcast_ref::<Vec<T>>()
            .expect("partition element type mismatch")
    }
}

/// How a node computes one of its partitions.
pub enum Compute {
    /// Leaf: produce partition `p` directly (parallelize slice, HDFS
    /// block read). The closure charges its own I/O via `ProcCtx`.
    Source(SourceFn),
    /// One-to-one on the same partition of `parent` (map/filter/flatMap/
    /// mapValues — pipelined within a stage).
    Narrow {
        /// Parent RDD.
        parent: RddId,
        /// Transform of the parent partition.
        f: NarrowFn,
    },
    /// Reader side of a shuffle: combine the fetched map-output buckets
    /// for this reduce partition.
    ShuffleRead {
        /// The shuffle this node reads.
        shuffle: ShuffleId,
        /// Merge buckets (already filtered to this partition).
        combine: CombineFn,
    },
    /// Reader side of a wide join: combine fetched buckets from two
    /// shuffles.
    ShuffleJoin {
        /// Left-side shuffle.
        left: ShuffleId,
        /// Right-side shuffle.
        right: ShuffleId,
        /// Merge the two bucket sets for this partition.
        combine: JoinCombineFn,
    },
    /// Coalesce: output partition `p` concatenates the parent partitions
    /// listed in `groups[p]` (narrow, no shuffle).
    Coalesce {
        /// Parent RDD.
        parent: RddId,
        /// Parent partitions feeding each output partition.
        groups: Vec<Vec<u32>>,
        /// Typed concatenation of the gathered parent partitions.
        merge: CombineFn,
    },
    /// Union: partition `p` passes through parent `left` partition `p`
    /// when `p < left_parts`, else parent `right` partition
    /// `p - left_parts`.
    UnionSelect {
        /// First parent.
        left: RddId,
        /// Second parent.
        right: RddId,
        /// Partition count of the first parent.
        left_parts: u32,
    },
    /// Partition-wise zip of two co-partitioned parents (narrow join).
    CoPartitioned {
        /// Left parent.
        left: RddId,
        /// Right parent.
        right: RddId,
        /// Combine the two aligned partitions.
        f: ZipFn,
    },
}

/// Map side of a shuffle dependency.
pub struct ShuffleDep {
    /// RDD whose partitions get re-bucketed.
    pub parent: RddId,
    /// Number of reduce-side partitions.
    pub partitions: u32,
    /// Split one parent partition into `partitions` buckets.
    pub split: SplitFn,
}

/// One node of the logical plan.
pub struct RddNode {
    /// Node id (index in the plan).
    pub id: RddId,
    /// Human-readable operator name ("map", "reduceByKey", ...).
    pub op_name: &'static str,
    /// Partition count.
    pub partitions: u32,
    /// How partitions materialize.
    pub compute: Compute,
    /// CPU work per *logical* item processed by this node.
    pub work_per_item: Work,
    /// Logical-records-per-sample-record multiplier, inherited from the
    /// source.
    pub scale: f64,
    /// Serialized bytes per logical item (shuffle/cache sizing).
    pub item_bytes: u64,
    /// Persistence requested via `.persist(...)`. Interior-mutable:
    /// like Spark, `persist` marks an existing RDD.
    pub storage: RwLock<Option<StorageLevel>>,
    /// Extra control-plane bytes shipped with each task of this node
    /// (`parallelize` slices travel inside the task closure).
    pub source_dispatch_bytes: std::sync::atomic::AtomicU64,
    /// Hash partitioner identity, when this RDD's layout is known
    /// (output of reduceByKey / partitionBy). Joins of equal partitioners
    /// stay narrow.
    pub partitioner: Option<PartitionerId>,
    /// Preferred nodes per partition (HDFS locality for sources).
    pub prefs: Vec<Vec<NodeId>>,
}

/// The shared plan registry.
#[derive(Default)]
pub struct Plan {
    nodes: RwLock<Vec<Arc<RddNode>>>,
    shuffles: RwLock<Vec<Arc<ShuffleDep>>>,
}

impl Plan {
    /// Fresh empty plan.
    pub fn new() -> Arc<Plan> {
        Arc::new(Plan::default())
    }

    /// Register a node, assigning its id.
    pub fn add_node(&self, mut node: RddNode) -> Arc<RddNode> {
        let mut g = self.nodes.write();
        node.id = g.len();
        let node = Arc::new(node);
        g.push(node.clone());
        node
    }

    /// Register a shuffle dependency, returning its id.
    pub fn add_shuffle(&self, dep: ShuffleDep) -> ShuffleId {
        let mut g = self.shuffles.write();
        g.push(Arc::new(dep));
        g.len() - 1
    }

    /// Node by id.
    pub fn node(&self, id: RddId) -> Arc<RddNode> {
        self.nodes.read()[id].clone()
    }

    /// Shuffle dep by id.
    pub fn shuffle(&self, id: ShuffleId) -> Arc<ShuffleDep> {
        self.shuffles.read()[id].clone()
    }

    /// Number of registered nodes.
    pub fn len(&self) -> usize {
        self.nodes.read().len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.read().is_empty()
    }

    /// The shuffle dependencies a stage ending at `target` needs, i.e.
    /// every shuffle reachable from `target` through narrow /
    /// co-partitioned edges only.
    pub fn stage_shuffle_inputs(&self, target: RddId) -> Vec<ShuffleId> {
        let mut out = Vec::new();
        let mut stack = vec![target];
        let mut seen = std::collections::HashSet::new();
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            match &self.node(id).compute {
                Compute::Source(_) => {}
                Compute::Narrow { parent, .. } | Compute::Coalesce { parent, .. } => {
                    stack.push(*parent)
                }
                Compute::ShuffleRead { shuffle, .. } => out.push(*shuffle),
                Compute::ShuffleJoin { left, right, .. } => {
                    out.push(*left);
                    out.push(*right);
                }
                Compute::UnionSelect { left, right, .. }
                | Compute::CoPartitioned { left, right, .. } => {
                    stack.push(*left);
                    stack.push(*right);
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(plan: &Plan, parts: u32) -> Arc<RddNode> {
        plan.add_node(RddNode {
            id: 0,
            op_name: "source",
            partitions: parts,
            compute: Compute::Source(Arc::new(|_ctx, p| PartValue::of(vec![p as u64]))),
            work_per_item: Work::NONE,
            scale: 1.0,
            item_bytes: 8,
            storage: RwLock::new(None),
            source_dispatch_bytes: std::sync::atomic::AtomicU64::new(0),
            partitioner: None,
            prefs: vec![],
        })
    }

    #[test]
    fn ids_assigned_sequentially() {
        let plan = Plan::new();
        let a = leaf(&plan, 2);
        let b = leaf(&plan, 2);
        assert_eq!(a.id, 0);
        assert_eq!(b.id, 1);
        assert_eq!(plan.len(), 2);
    }

    #[test]
    fn part_value_roundtrip() {
        let pv = PartValue::of(vec![1u32, 2, 3]);
        assert_eq!(pv.items, 3);
        assert_eq!(pv.as_vec::<u32>(), &vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn part_value_type_mismatch_panics() {
        let pv = PartValue::of(vec![1u32]);
        pv.as_vec::<u64>();
    }

    #[test]
    fn stage_inputs_stop_at_shuffles() {
        let plan = Plan::new();
        let src = leaf(&plan, 4);
        let sid = plan.add_shuffle(ShuffleDep {
            parent: src.id,
            partitions: 4,
            split: Arc::new(|_pv, n| (0..n).map(|_| PartValue::of(Vec::<u64>::new())).collect()),
        });
        let red = plan.add_node(RddNode {
            id: 0,
            op_name: "reduceByKey",
            partitions: 4,
            compute: Compute::ShuffleRead {
                shuffle: sid,
                combine: Arc::new(|_| PartValue::of(Vec::<u64>::new())),
            },
            work_per_item: Work::NONE,
            scale: 1.0,
            item_bytes: 8,
            storage: RwLock::new(None),
            source_dispatch_bytes: std::sync::atomic::AtomicU64::new(0),
            partitioner: Some(7),
            prefs: vec![],
        });
        let mapped = plan.add_node(RddNode {
            id: 0,
            op_name: "map",
            partitions: 4,
            compute: Compute::Narrow {
                parent: red.id,
                f: Arc::new(|pv| pv.clone()),
            },
            work_per_item: Work::NONE,
            scale: 1.0,
            item_bytes: 8,
            storage: RwLock::new(None),
            source_dispatch_bytes: std::sync::atomic::AtomicU64::new(0),
            partitioner: Some(7),
            prefs: vec![],
        });
        assert_eq!(plan.stage_shuffle_inputs(mapped.id), vec![sid]);
        assert!(plan.stage_shuffle_inputs(src.id).is_empty());
    }
}
