//! Spark deployment and storage configuration.

use hpcbd_simnet::{SimDuration, SimTime, Transport};

/// Which engine moves shuffle blocks between executors — the axis of the
/// paper's Spark vs Spark-RDMA comparison (Lu et al.'s plugin replaced
/// only the data path; "orchestration messages use conventional Java
/// sockets" either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShuffleEngine {
    /// Default Spark: NIO sockets over IPoIB.
    Socket,
    /// The RDMA shuffle plugin: verbs for shuffle data, sockets for
    /// everything else.
    Rdma,
}

impl ShuffleEngine {
    /// Transport used for shuffle block payloads.
    pub fn data_transport(self) -> Transport {
        match self {
            ShuffleEngine::Socket => Transport::ipoib_socket(),
            ShuffleEngine::Rdma => Transport::rdma_verbs(),
        }
    }
}

/// RDD persistence levels (the subset the paper's codes use).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageLevel {
    /// Deserialized in executor memory; spills whole partitions to local
    /// disk under memory pressure (the BigDataBench PageRank choice).
    MemoryAndDisk,
    /// Memory only; partitions evicted under pressure are recomputed from
    /// lineage when needed again.
    MemoryOnly,
    /// Straight to local disk.
    DiskOnly,
}

/// Cluster and scheduler knobs.
#[derive(Debug, Clone, Copy)]
pub struct SparkConfig {
    /// Executor processes per node (the paper uses 8 or 16).
    pub executors_per_node: u32,
    /// Storage-memory budget per executor, logical bytes.
    pub executor_mem: u64,
    /// Shuffle data path.
    pub shuffle: ShuffleEngine,
    /// One-time application-master / context startup.
    pub app_startup: SimDuration,
    /// Driver-side overhead per action (job submission, DAG analysis).
    pub job_submit_overhead: SimDuration,
    /// Driver-side overhead to serialize + dispatch one task.
    pub task_dispatch_overhead: SimDuration,
    /// Serialized task closure size (control-plane bytes per task).
    pub task_bytes: u64,
    /// Executor-side overhead to deserialize + start one task.
    pub task_launch_overhead: SimDuration,
    /// Driver-side cost to process one task completion.
    pub result_handle_overhead: SimDuration,
    /// Average serialized bytes per intermediate record (JVM boxing).
    pub record_bytes: u64,
    /// Task liveness timeout before failure handling kicks in.
    pub task_timeout: SimDuration,
    /// Fault injection: executor index that dies at the given time.
    ///
    /// **Deprecated** in favor of installing a
    /// [`hpcbd_simnet::FaultPlan`] via
    /// [`crate::SparkCluster::faults`], which crashes whole nodes and is
    /// shared with every other runtime. Kept as a compat shim: when set,
    /// exactly that executor still dies at that time.
    pub fail_executor: Option<(u32, SimTime)>,
    /// Give up on a logical task after this many failed attempts
    /// (`spark.task.maxFailures`; the job aborts when exceeded).
    pub max_task_retries: u32,
    /// Driver-side pause before re-dispatching a failed task, scaled by
    /// the attempt count (retry backoff).
    pub task_retry_backoff: SimDuration,
    /// Stop scheduling on an executor after this many task failures
    /// while it is still alive (`spark.blacklist.*`).
    pub blacklist_after: u32,
    /// Speculative execution (`spark.speculation`): when the task queue
    /// drains and executors idle, launch backup copies of still-running
    /// tasks and take whichever copy finishes first. Off by default.
    pub speculation: bool,
    /// Also move driver<->executor control messages over verbs — the
    /// paper's "future direction" (Sec. VI-C); exercised by the
    /// `ablation_rdma_all` harness, never by the paper's measured modes.
    pub rdma_control_plane: bool,
}

impl Default for SparkConfig {
    fn default() -> SparkConfig {
        SparkConfig {
            executors_per_node: 8,
            executor_mem: 10 << 30,
            shuffle: ShuffleEngine::Socket,
            app_startup: SimDuration::from_millis(900),
            job_submit_overhead: SimDuration::from_millis(60),
            task_dispatch_overhead: SimDuration::from_micros(450),
            task_bytes: 6 * 1024,
            task_launch_overhead: SimDuration::from_millis(4),
            result_handle_overhead: SimDuration::from_micros(250),
            record_bytes: 24,
            task_timeout: SimDuration::from_secs(60),
            fail_executor: None,
            max_task_retries: 4,
            task_retry_backoff: SimDuration::from_millis(200),
            blacklist_after: 3,
            speculation: false,
            rdma_control_plane: false,
        }
    }
}

impl SparkConfig {
    /// Default config with a given shuffle engine.
    pub fn with_shuffle(shuffle: ShuffleEngine) -> SparkConfig {
        SparkConfig {
            shuffle,
            ..SparkConfig::default()
        }
    }

    /// Control-plane transport (java sockets, unless the RDMA-everywhere
    /// ablation is on).
    pub fn control_transport(&self) -> Transport {
        if self.rdma_control_plane {
            Transport::rdma_verbs()
        } else {
            Transport::java_socket_control()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_pick_transports() {
        assert_eq!(ShuffleEngine::Socket.data_transport().name, "ipoib-socket");
        assert_eq!(ShuffleEngine::Rdma.data_transport().name, "rdma-verbs");
    }

    #[test]
    fn control_plane_follows_ablation_flag() {
        let mut c = SparkConfig::default();
        assert_eq!(c.control_transport().name, "java-socket");
        c.rdma_control_plane = true;
        assert_eq!(c.control_transport().name, "rdma-verbs");
    }
}
