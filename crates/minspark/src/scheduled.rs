//! Scheduler adapter: compile the Spark benchmarks into elastic
//! multi-tenant [`hpcbd_sched::JobSpec`]s.
//!
//! Spark stages are *elastic*: tasks trickle onto slots as they free up
//! (no gang), each preferring the node that holds its HDFS block — the
//! adapter threads block placements through [`TaskSpec::preferred`] so
//! the scheduler's delay scheduling can chase locality exactly like
//! Spark's own `spark.locality.wait`. Costs mirror the standalone
//! driver: JVM-factored record work, socket-shuffle block transfers, a
//! barrier between stages (the scheduler's wave boundary).

use std::sync::Arc;

use hpcbd_sched::{JobSpec, Segment, TaskSpec, Wave};
use hpcbd_simnet::{NodeId, RuntimeClass, SimDuration, Transport, Work};
use hpcbd_workloads::stackexchange::RECORD_BYTES;

use crate::SparkConfig;

/// Per-record parse/count cost of the scala closure (the native scan
/// cost; the JVM multiplier is applied at charge time).
fn scan_work() -> Work {
    Work::new(60.0, 1600.0)
}

/// Per-logical-edge cost of one PageRank join+reduce step.
fn edge_work() -> Work {
    Work::new(12.0, 48.0)
}

/// The Spark AnswersCount job: a map stage of `partitions` tasks over
/// `bytes` of HDFS-resident posts (block `i` preferred on node
/// `i % nodes`), then a single-task reduce stage.
pub fn scheduled_answers(
    queue: &'static str,
    tenant: &'static str,
    bytes: u64,
    partitions: u32,
    nodes: u32,
) -> JobSpec {
    let cfg = SparkConfig::default();
    let jvm = RuntimeClass::Jvm.factor();
    let part = bytes / partitions.max(1) as u64;
    // The scan is cut into record-batch slices with a preemption
    // checkpoint between them — a YARN container kill lands at a batch
    // boundary, not after the whole partition.
    const SLICES: u64 = 4;
    let launch: Segment = Arc::new(move |ctx, _env| {
        ctx.sleep(cfg.task_launch_overhead);
    });
    let map: Segment = Arc::new(move |ctx, _env| {
        // HDFS block read from local disk (delay scheduling fought for
        // locality; a remote assignment still reads the replica the
        // simulated DataNode fetched to scratch).
        ctx.disk_read(part / SLICES);
        let records = (part / SLICES / RECORD_BYTES) as f64;
        ctx.compute(scan_work().scaled(records), jvm);
    });
    let map_segments: Vec<Segment> = std::iter::once(launch)
        .chain(std::iter::repeat_with(|| map.clone()).take(SLICES as usize))
        .collect();
    let reduce: Segment = Arc::new(move |ctx, _env| {
        ctx.sleep(cfg.result_handle_overhead);
        ctx.compute(Work::new(8.0, 48.0).scaled(partitions as f64), jvm);
    });
    JobSpec {
        template: "spark/answers",
        queue,
        tenant,
        waves: vec![
            Wave {
                tasks: (0..partitions)
                    .map(|i| TaskSpec {
                        segments: map_segments.clone(),
                        preferred: Some(NodeId(i % nodes.max(1))),
                        preemptable: true,
                    })
                    .collect(),
                gang: false,
            },
            Wave {
                tasks: vec![TaskSpec {
                    segments: vec![reduce],
                    preferred: None,
                    preemptable: true,
                }],
                gang: false,
            },
        ],
    }
}

/// The Spark PageRank job: `iters` shuffle stages of `partitions` tasks
/// each. Every task computes its partition's contributions then pushes
/// its shuffle blocks to peer nodes over NIO sockets (the paper's
/// default engine), so network cost lands on the shared fabric where it
/// contends with every other tenant.
pub fn scheduled_pagerank(
    queue: &'static str,
    tenant: &'static str,
    vertices: u64,
    edges: u64,
    iters: u32,
    partitions: u32,
    nodes: u32,
) -> JobSpec {
    let cfg = SparkConfig::default();
    let jvm = RuntimeClass::Jvm.factor();
    let p = partitions.max(1) as u64;
    let local_edges = edges / p;
    let shuffle_bytes = local_edges * cfg.record_bytes / p.max(1);
    // Three segments per stage task — contribute, shuffle, apply — so a
    // preemption kill lands at a stage-internal checkpoint instead of
    // waiting out the whole task.
    let contribute: Segment = Arc::new(move |ctx, _env| {
        ctx.sleep(cfg.task_launch_overhead);
        ctx.compute(edge_work().scaled(local_edges as f64), jvm);
    });
    let shuffle: Segment = Arc::new(move |ctx, env| {
        // Shuffle write: one block per reducer partition, pushed to the
        // node that will run it (round-robin like the map placement).
        let me = env.index as u64;
        for k in 1..p.min(nodes as u64) {
            let dst = NodeId(((me + k) % nodes.max(1) as u64) as u32);
            ctx.one_sided_transfer(dst, shuffle_bytes, &Transport::ipoib_socket(), 1);
        }
    });
    let apply: Segment = Arc::new(move |ctx, _env| {
        ctx.compute(Work::new(4.0, 24.0).scaled((vertices / p) as f64), jvm);
    });
    let waves = (0..iters)
        .map(|_| Wave {
            tasks: (0..partitions)
                .map(|i| TaskSpec {
                    segments: vec![contribute.clone(), shuffle.clone(), apply.clone()],
                    preferred: Some(NodeId(i % nodes.max(1))),
                    preemptable: true,
                })
                .collect(),
            gang: false,
        })
        .collect();
    JobSpec {
        template: "spark/pagerank",
        queue,
        tenant,
        waves,
    }
}

/// Startup cost shared by both jobs (context + app-master), charged by
/// callers that model cold submissions.
pub fn app_startup() -> SimDuration {
    SparkConfig::default().app_startup
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn answers_has_map_then_reduce_waves() {
        let job = scheduled_answers("queries", "web", 1 << 30, 8, 4);
        assert_eq!(job.waves.len(), 2);
        assert_eq!(job.waves[0].tasks.len(), 8);
        assert_eq!(job.waves[0].tasks[3].preferred, Some(NodeId(3)));
        assert_eq!(job.waves[1].tasks.len(), 1);
        assert!(job.waves.iter().all(|w| !w.gang));
    }

    #[test]
    fn pagerank_has_one_wave_per_iteration() {
        let job = scheduled_pagerank("batch", "science", 1 << 20, 8 << 20, 5, 4, 4);
        assert_eq!(job.waves.len(), 5);
        assert!(job.waves.iter().all(|w| w.tasks.len() == 4 && !w.gang));
    }
}
