//! Block manager and shuffle store.
//!
//! Data-plane state shared (via `Arc`) by every executor and the driver:
//! cached RDD partitions and shuffle map outputs. Entries remember which
//! executor produced them so an executor failure can invalidate exactly
//! its share — the event that triggers lineage recomputation and stage
//! retry in the driver.

use std::collections::HashMap;

use parking_lot::RwLock;

use crate::config::StorageLevel;
use crate::plan::{PartValue, RddId, ShuffleId};

/// Global executor index (node-major).
pub type ExecId = u32;

/// A cached partition.
pub struct CachedBlock {
    /// The partition data.
    pub value: PartValue,
    /// Logical size in bytes.
    pub bytes: u64,
    /// Executor holding it.
    pub owner: ExecId,
    /// Whether it resides on disk (spilled or DiskOnly).
    pub on_disk: bool,
}

/// Per-cluster block manager: cached RDD partitions keyed by
/// `(rdd, partition)`. Memory accounting is per executor; inserting past
/// the budget spills (MemoryAndDisk / DiskOnly) or evicts the
/// least-recently-cached memory block (MemoryOnly).
pub struct BlockStore {
    blocks: RwLock<HashMap<(RddId, u32), CachedBlock>>,
    mem_used: RwLock<HashMap<ExecId, u64>>,
    insert_order: RwLock<Vec<(RddId, u32)>>,
    mem_budget: u64,
}

/// Outcome of a cache insertion (what the executor must charge time for).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Stored in memory.
    Memory,
    /// Written to local disk (caller charges a disk write).
    Disk,
    /// Stored in memory after evicting older memory blocks (MemoryOnly
    /// pressure); evicted partitions will recompute from lineage.
    MemoryAfterEviction,
}

impl BlockStore {
    /// Store with a per-executor memory budget (logical bytes).
    pub fn new(mem_budget: u64) -> BlockStore {
        BlockStore {
            blocks: RwLock::new(HashMap::new()),
            mem_used: RwLock::new(HashMap::new()),
            insert_order: RwLock::new(Vec::new()),
            mem_budget,
        }
    }

    /// Look up a cached partition owned by `exec` (Spark reads its own
    /// block manager; remote cached blocks are recomputed instead —
    /// documented simplification). Returns `(value, bytes, on_disk)`.
    pub fn get(&self, rdd: RddId, part: u32, exec: ExecId) -> Option<(PartValue, u64, bool)> {
        let g = self.blocks.read();
        let b = g.get(&(rdd, part))?;
        if b.owner != exec {
            return None;
        }
        Some((b.value.clone(), b.bytes, b.on_disk))
    }

    /// Whether any live copy exists (driver-side planning).
    pub fn contains(&self, rdd: RddId, part: u32) -> bool {
        self.blocks.read().contains_key(&(rdd, part))
    }

    /// Insert a block under `level`, applying the memory budget.
    pub fn put(
        &self,
        rdd: RddId,
        part: u32,
        exec: ExecId,
        value: PartValue,
        bytes: u64,
        level: StorageLevel,
    ) -> CacheOutcome {
        let mut mem = self.mem_used.write();
        let used = mem.entry(exec).or_insert(0);
        let outcome = match level {
            StorageLevel::DiskOnly => CacheOutcome::Disk,
            StorageLevel::MemoryAndDisk => {
                if *used + bytes <= self.mem_budget {
                    *used += bytes;
                    CacheOutcome::Memory
                } else {
                    CacheOutcome::Disk
                }
            }
            StorageLevel::MemoryOnly => {
                if *used + bytes <= self.mem_budget {
                    *used += bytes;
                    CacheOutcome::Memory
                } else {
                    // Evict oldest memory-resident blocks of this executor.
                    let mut blocks = self.blocks.write();
                    let mut order = self.insert_order.write();
                    let mut i = 0;
                    while *used + bytes > self.mem_budget && i < order.len() {
                        let key = order[i];
                        let evictable = blocks
                            .get(&key)
                            .map(|b| b.owner == exec && !b.on_disk)
                            .unwrap_or(false);
                        if evictable {
                            let b = blocks.remove(&key).unwrap();
                            *used = used.saturating_sub(b.bytes);
                            order.remove(i);
                        } else {
                            i += 1;
                        }
                    }
                    *used += bytes;
                    CacheOutcome::MemoryAfterEviction
                }
            }
        };
        let on_disk = outcome == CacheOutcome::Disk;
        self.blocks.write().insert(
            (rdd, part),
            CachedBlock {
                value,
                bytes,
                owner: exec,
                on_disk,
            },
        );
        self.insert_order.write().push((rdd, part));
        outcome
    }

    /// Drop everything an executor held (executor loss).
    pub fn invalidate_executor(&self, exec: ExecId) -> usize {
        let mut blocks = self.blocks.write();
        let before = blocks.len();
        blocks.retain(|_, b| b.owner != exec);
        self.mem_used.write().remove(&exec);
        before - blocks.len()
    }
}

/// One registered shuffle map output bucket.
pub struct ShuffleBucket {
    /// The bucket's records.
    pub value: PartValue,
    /// Logical bytes.
    pub bytes: u64,
    /// Executor that produced it.
    pub owner: ExecId,
}

/// Shuffle map outputs keyed by `(shuffle, map partition, reduce
/// partition)`. Spark always writes shuffle files to the producer's local
/// disk; the executor charges that write when registering.
#[derive(Default)]
pub struct ShuffleStore {
    buckets: RwLock<HashMap<(ShuffleId, u32, u32), ShuffleBucket>>,
    /// Map partitions completed per shuffle.
    done: RwLock<HashMap<ShuffleId, std::collections::HashSet<u32>>>,
}

impl ShuffleStore {
    /// Empty store.
    pub fn new() -> ShuffleStore {
        ShuffleStore::default()
    }

    /// Register every bucket of one map partition.
    pub fn put_map_output(
        &self,
        shuffle: ShuffleId,
        map_part: u32,
        exec: ExecId,
        buckets: Vec<(PartValue, u64)>,
    ) {
        let mut g = self.buckets.write();
        for (r, (value, bytes)) in buckets.into_iter().enumerate() {
            g.insert(
                (shuffle, map_part, r as u32),
                ShuffleBucket {
                    value,
                    bytes,
                    owner: exec,
                },
            );
        }
        self.done
            .write()
            .entry(shuffle)
            .or_default()
            .insert(map_part);
    }

    /// Whether a map partition's output is available.
    pub fn has_map_output(&self, shuffle: ShuffleId, map_part: u32) -> bool {
        self.done
            .read()
            .get(&shuffle)
            .map(|s| s.contains(&map_part))
            .unwrap_or(false)
    }

    /// Fetch one bucket: `(value, bytes, owner)`.
    pub fn get_bucket(
        &self,
        shuffle: ShuffleId,
        map_part: u32,
        reduce_part: u32,
    ) -> Option<(PartValue, u64, ExecId)> {
        let g = self.buckets.read();
        g.get(&(shuffle, map_part, reduce_part))
            .map(|b| (b.value.clone(), b.bytes, b.owner))
    }

    /// Drop everything an executor produced; returns the map partitions
    /// lost per shuffle (these must be re-executed — stage retry).
    pub fn invalidate_executor(&self, exec: ExecId) -> Vec<(ShuffleId, u32)> {
        let mut lost = Vec::new();
        let mut g = self.buckets.write();
        g.retain(|(s, m, _), b| {
            if b.owner == exec {
                lost.push((*s, *m));
                false
            } else {
                true
            }
        });
        lost.sort();
        lost.dedup();
        let mut done = self.done.write();
        for (s, m) in &lost {
            if let Some(set) = done.get_mut(s) {
                set.remove(m);
            }
        }
        lost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pv(n: usize) -> PartValue {
        PartValue::of((0..n as u64).collect::<Vec<_>>())
    }

    #[test]
    fn block_store_respects_owner() {
        let bs = BlockStore::new(1 << 20);
        bs.put(1, 0, 3, pv(10), 100, StorageLevel::MemoryAndDisk);
        assert!(bs.get(1, 0, 3).is_some());
        assert!(bs.get(1, 0, 4).is_none(), "other executors miss");
        assert!(bs.contains(1, 0));
    }

    #[test]
    fn memory_and_disk_spills_past_budget() {
        let bs = BlockStore::new(150);
        assert_eq!(
            bs.put(1, 0, 0, pv(1), 100, StorageLevel::MemoryAndDisk),
            CacheOutcome::Memory
        );
        assert_eq!(
            bs.put(1, 1, 0, pv(1), 100, StorageLevel::MemoryAndDisk),
            CacheOutcome::Disk
        );
        let (_, _, on_disk) = bs.get(1, 1, 0).unwrap();
        assert!(on_disk);
    }

    #[test]
    fn memory_only_evicts_oldest() {
        let bs = BlockStore::new(150);
        bs.put(1, 0, 0, pv(1), 100, StorageLevel::MemoryOnly);
        let out = bs.put(1, 1, 0, pv(1), 100, StorageLevel::MemoryOnly);
        assert_eq!(out, CacheOutcome::MemoryAfterEviction);
        assert!(bs.get(1, 0, 0).is_none(), "older block evicted");
        assert!(bs.get(1, 1, 0).is_some());
    }

    #[test]
    fn invalidation_prunes_only_owner() {
        let bs = BlockStore::new(1 << 20);
        bs.put(1, 0, 0, pv(1), 10, StorageLevel::MemoryAndDisk);
        bs.put(1, 1, 1, pv(1), 10, StorageLevel::MemoryAndDisk);
        assert_eq!(bs.invalidate_executor(0), 1);
        assert!(bs.get(1, 1, 1).is_some());
    }

    #[test]
    fn shuffle_store_roundtrip_and_loss() {
        let ss = ShuffleStore::new();
        ss.put_map_output(0, 2, 5, vec![(pv(3), 30), (pv(1), 10)]);
        assert!(ss.has_map_output(0, 2));
        assert!(!ss.has_map_output(0, 0));
        let (v, bytes, owner) = ss.get_bucket(0, 2, 1).unwrap();
        assert_eq!(v.items, 1);
        assert_eq!(bytes, 10);
        assert_eq!(owner, 5);
        let lost = ss.invalidate_executor(5);
        assert_eq!(lost, vec![(0, 2)]);
        assert!(!ss.has_map_output(0, 2));
    }
}
