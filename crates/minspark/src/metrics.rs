//! Job-level execution metrics — the observability Spark's UI provides.
//!
//! Counters accumulate across one `SparkCluster::run`; tests and the
//! experiment write-ups use them to verify *mechanisms*, not just
//! timings: that the tuned PageRank really shuffles less than HiBench,
//! that delay scheduling really turns cache misses into hits, that
//! executor loss really triggers recomputation.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared atomic counters (one set per application).
#[derive(Debug, Default)]
pub struct SparkMetrics {
    /// Tasks launched (including re-executions).
    pub tasks_launched: AtomicU64,
    /// Cached-partition reads served from an executor's own store.
    pub cache_hits: AtomicU64,
    /// Persisted partitions that had to be (re)computed.
    pub cache_misses: AtomicU64,
    /// Shuffle bytes read from the reader's own node.
    pub shuffle_bytes_local: AtomicU64,
    /// Shuffle bytes streamed across the fabric.
    pub shuffle_bytes_remote: AtomicU64,
    /// Fetch failures observed (lineage/stage-retry events).
    pub fetch_failures: AtomicU64,
    /// Executors declared lost.
    pub executors_lost: AtomicU64,
    /// Failed task attempts re-queued (retry backoff applied to each).
    pub task_retries: AtomicU64,
    /// Speculative backup copies launched.
    pub speculative_tasks: AtomicU64,
    /// Live executors blacklisted for repeated task failures.
    pub executors_blacklisted: AtomicU64,
}

impl SparkMetrics {
    #[inline]
    pub(crate) fn add(counter: &AtomicU64, v: u64) {
        counter.fetch_add(v, Ordering::Relaxed);
    }

    /// An owned snapshot of the counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            tasks_launched: self.tasks_launched.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            shuffle_bytes_local: self.shuffle_bytes_local.load(Ordering::Relaxed),
            shuffle_bytes_remote: self.shuffle_bytes_remote.load(Ordering::Relaxed),
            fetch_failures: self.fetch_failures.load(Ordering::Relaxed),
            executors_lost: self.executors_lost.load(Ordering::Relaxed),
            task_retries: self.task_retries.load(Ordering::Relaxed),
            speculative_tasks: self.speculative_tasks.load(Ordering::Relaxed),
            executors_blacklisted: self.executors_blacklisted.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data snapshot of [`SparkMetrics`], carried in
/// [`crate::SparkResult`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Tasks launched (including re-executions).
    pub tasks_launched: u64,
    /// Cached-partition reads served from an executor's own store.
    pub cache_hits: u64,
    /// Persisted partitions that had to be (re)computed.
    pub cache_misses: u64,
    /// Shuffle bytes read from the reader's own node.
    pub shuffle_bytes_local: u64,
    /// Shuffle bytes streamed across the fabric.
    pub shuffle_bytes_remote: u64,
    /// Fetch failures observed.
    pub fetch_failures: u64,
    /// Executors declared lost.
    pub executors_lost: u64,
    /// Failed task attempts re-queued.
    pub task_retries: u64,
    /// Speculative backup copies launched.
    pub speculative_tasks: u64,
    /// Live executors blacklisted for repeated task failures.
    pub executors_blacklisted: u64,
}

impl MetricsSnapshot {
    /// Total shuffle bytes moved (local + remote).
    pub fn shuffle_bytes_total(&self) -> u64 {
        self.shuffle_bytes_local + self.shuffle_bytes_remote
    }

    /// Cache hit rate over persisted-partition accesses (0 when unused).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_counters() {
        let m = SparkMetrics::default();
        SparkMetrics::add(&m.cache_hits, 3);
        SparkMetrics::add(&m.cache_misses, 1);
        SparkMetrics::add(&m.shuffle_bytes_remote, 100);
        let s = m.snapshot();
        assert_eq!(s.cache_hits, 3);
        assert_eq!(s.cache_hit_rate(), 0.75);
        assert_eq!(s.shuffle_bytes_total(), 100);
    }

    #[test]
    fn empty_metrics_are_sane() {
        let s = SparkMetrics::default().snapshot();
        assert_eq!(s.cache_hit_rate(), 0.0);
        assert_eq!(s.shuffle_bytes_total(), 0);
    }
}
