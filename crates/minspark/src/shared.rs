//! Shared variables: broadcast variables and accumulators.
//!
//! Sec. VI-B of the paper: "there is no chance of intercommunication of
//! executors at run time, except for simple constructs such as
//! Accumulators and Broadcast variables" — this module is exactly those
//! two constructs.
//!
//! * A [`Broadcast`] ships one read-only value to every executor once
//!   (charged as a control-plane transfer per node at creation, like
//!   Spark's torrent broadcast), after which tasks read it for free.
//! * An [`Accumulator`] is a write-only (from tasks) commutative counter
//!   whose partial updates ride back to the driver inside task results.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A read-only value replicated to every executor.
///
/// Created with `SparkDriver::broadcast`; any task closure may capture
/// and read it. The broadcast cost (value bytes to each node over the
/// control plane) is charged once at creation.
pub struct Broadcast<T> {
    value: Arc<T>,
    /// Logical serialized size, for the one-time distribution charge.
    pub bytes: u64,
}

impl<T> Broadcast<T> {
    pub(crate) fn new(value: T, bytes: u64) -> Broadcast<T> {
        Broadcast {
            value: Arc::new(value),
            bytes,
        }
    }

    /// Read the broadcast value (free at use sites — the data is already
    /// on every node).
    pub fn value(&self) -> &T {
        &self.value
    }
}

impl<T> Clone for Broadcast<T> {
    fn clone(&self) -> Self {
        Broadcast {
            value: self.value.clone(),
            bytes: self.bytes,
        }
    }
}

/// A `u64` sum accumulator (`sc.longAccumulator`). Task-side `add`s are
/// lock-free; the driver reads the total after the action that ran the
/// tasks completes, mirroring Spark's "updates visible after the action"
/// semantics.
#[derive(Clone, Default)]
pub struct Accumulator {
    total: Arc<AtomicU64>,
}

impl Accumulator {
    /// Fresh zero-valued accumulator.
    pub fn new() -> Accumulator {
        Accumulator::default()
    }

    /// Add from inside a task closure.
    pub fn add(&self, v: u64) {
        self.total.fetch_add(v, Ordering::Relaxed);
    }

    /// Driver-side read. Only well-defined after the action that ran the
    /// contributing tasks has returned (tasks in this engine run to
    /// completion before their action returns, so this is exact — unlike
    /// real Spark, re-executed tasks are not double-counted because the
    /// engine re-runs lost *work*, and lost work never reported).
    pub fn value(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Reset to zero (between experiments).
    pub fn reset(&self) {
        self.total.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SparkCluster, SparkConfig};

    #[test]
    fn broadcast_value_readable_in_tasks() {
        let r = SparkCluster::new(2, SparkConfig::default()).run(|sc| {
            let lookup = sc.broadcast((0..100u64).map(|i| i * 3).collect::<Vec<_>>(), 800);
            let xs = sc.parallelize((0..100u64).collect(), 8);
            let mapped = xs.map(move |i| lookup.value()[*i as usize]);
            sc.reduce(&mapped, |a, b| a + b)
        });
        let expected: u64 = (0..100u64).map(|i| i * 3).sum();
        assert_eq!(r.value, Some(expected));
    }

    #[test]
    fn broadcast_charges_distribution_time() {
        fn run(bytes: u64) -> u64 {
            SparkCluster::new(4, SparkConfig::default())
                .run(move |sc| {
                    let t0 = sc.now();
                    let _b = sc.broadcast(vec![0u8; 8], bytes);
                    (sc.now() - t0).nanos()
                })
                .value
        }
        let small = run(1024);
        let big = run(512 << 20);
        assert!(big > small * 10, "512MB broadcast {big} vs 1KB {small}");
    }

    #[test]
    fn accumulator_counts_task_side_adds() {
        let r = SparkCluster::new(2, SparkConfig::default()).run(|sc| {
            let acc = Accumulator::new();
            let acc2 = acc.clone();
            let xs = sc.parallelize((0..500u64).collect(), 8);
            let evens = xs.filter(move |x| {
                if x % 2 == 0 {
                    acc2.add(1);
                    true
                } else {
                    false
                }
            });
            let n = sc.count(&evens);
            (n, acc.value())
        });
        assert_eq!(r.value.0, 250);
        assert_eq!(r.value.1, 250);
    }
}
