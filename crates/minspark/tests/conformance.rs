//! Schedule-exploration conformance: a Spark pipeline with a narrow
//! map/filter stage and a wide reduceByKey shuffle must be bit-identical
//! to the sequential oracle under perturbed legal schedules.

use hpcbd_check::Explorer;
use hpcbd_minspark::{SparkCluster, SparkConfig};

fn spark_workload() {
    let r = SparkCluster::new(2, SparkConfig::default()).run(|sc| {
        let nums = sc.parallelize((1..=200u64).collect(), 8);
        let evens = nums.filter(|x| x % 2 == 0);
        let pairs = evens.map(|x| (x % 5, *x));
        let reduced = pairs.reduce_by_key(4, |a, b| a + b);
        sc.collect(&reduced)
    });
    let mut pairs = r.value;
    pairs.sort();
    // Sum of evens in 1..=200 grouped by x mod 5.
    let mut oracle: Vec<(u64, u64)> = (0..5).map(|k| (k, 0)).collect();
    for x in (2..=200u64).step_by(2) {
        oracle[(x % 5) as usize].1 += x;
    }
    oracle.retain(|(_, v)| *v > 0);
    oracle.sort();
    assert_eq!(pairs, oracle);
}

#[test]
fn spark_shuffle_is_schedule_independent() {
    Explorer::new(0x5350)
        .schedules(6)
        .threads(4)
        .explore(spark_workload)
        .assert_deterministic();
}
