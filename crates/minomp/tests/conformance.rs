//! Schedule-exploration conformance: a simulated process that mixes the
//! *real* fork-join pool with the OpenMP timing model must stay
//! bit-identical to the sequential oracle under perturbed schedules —
//! even with genuine OS threads (the pool's workers) running inside the
//! simulated process's compute segments.

use hpcbd_check::Explorer;
use hpcbd_minomp::{OmpModel, OmpPool, Schedule};
use hpcbd_simnet::{NodeId, Sim, Topology, Work};

fn omp_region_workload() {
    let mut sim = Sim::new(Topology::comet(1));
    sim.spawn(NodeId(0), "omp", |ctx| {
        // Real pool execution: the reduction result (deterministic by
        // the pool's chunk-keyed fold) feeds the modeled region size, so
        // any pool nondeterminism would surface in virtual time.
        let pool = OmpPool::new(4);
        let sum = pool.parallel_reduce(
            0..10_000u64,
            Schedule::Dynamic { chunk: 64 },
            0u64,
            |i| i,
            |a, b| a + b,
        );
        assert_eq!(sum, 9_999 * 10_000 / 2);
        let model = OmpModel::default();
        for threads in [1u32, 4, 16] {
            model.charge_region(
                ctx,
                threads,
                Schedule::Static { chunk: None },
                (sum % 8_192) as usize + 1,
                Work::flops(2.0e8),
            );
            model.charge_region(
                ctx,
                threads,
                Schedule::Dynamic { chunk: 32 },
                4_096,
                Work::flops(1.0e8),
            );
        }
    });
    sim.run();
}

#[test]
fn omp_regions_are_schedule_independent() {
    Explorer::new(0x4F4D)
        .schedules(8)
        .threads(4)
        .explore(omp_region_workload)
        .assert_deterministic();
}
