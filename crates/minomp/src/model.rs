//! Virtual-time cost model for parallel regions on a modeled node.
//!
//! An OpenMP benchmark inside the simulation is a single `simnet` process
//! (the paper: "since it can only run on a single node, we only provide
//! results for 8- and 16-core configurations"). Region wall time is
//! modeled as
//!
//! ```text
//! fork_join + chunks * chunk_overhead / threads + work / threads * imbalance
//! ```
//!
//! where `imbalance` depends on the schedule: static splits can leave
//! threads waiting at the join barrier when per-iteration cost varies;
//! dynamic/guided rebalance at the cost of more scheduling events.

use hpcbd_simnet::{NodeSpec, ProcCtx, SimDuration, Work};

use crate::schedule::Schedule;

/// Cost parameters of the modeled OpenMP runtime (GCC libgomp-class).
#[derive(Debug, Clone, Copy)]
pub struct OmpModel {
    /// Team fork + join-barrier cost per region.
    pub fork_join: SimDuration,
    /// Cost of one scheduling event (chunk grab).
    pub chunk_overhead: SimDuration,
    /// Relative slack a static schedule leaves on irregular work
    /// (1.0 = perfectly balanced).
    pub static_imbalance: f64,
}

impl Default for OmpModel {
    fn default() -> OmpModel {
        OmpModel {
            fork_join: SimDuration::from_micros(12),
            chunk_overhead: SimDuration::from_nanos(120),
            static_imbalance: 1.08,
        }
    }
}

impl OmpModel {
    /// Virtual duration of one parallel region executing `total_work`
    /// split over `threads` as `n` iterations under `schedule` on `node`.
    pub fn region_time(
        &self,
        node: &NodeSpec,
        threads: u32,
        schedule: Schedule,
        n: usize,
        total_work: Work,
    ) -> SimDuration {
        assert!(threads >= 1, "region needs at least one thread");
        let threads = threads.min(node.cores());
        let per_thread = total_work.scaled(1.0 / threads as f64);
        let ideal = per_thread.duration_on(node, 1.0);
        let imbalance = match schedule {
            Schedule::Static { .. } if threads > 1 => self.static_imbalance,
            _ => 1.0,
        };
        let chunks = schedule.chunk_count(n, threads as usize) as u64;
        let sched_cost =
            SimDuration::from_nanos(self.chunk_overhead.nanos() * chunks / threads as u64);
        self.fork_join + sched_cost + SimDuration::from_secs_f64(ideal.as_secs_f64() * imbalance)
    }

    /// Charge a region to a simulated process's clock.
    pub fn charge_region(
        &self,
        ctx: &mut ProcCtx,
        threads: u32,
        schedule: Schedule,
        n: usize,
        total_work: Work,
    ) {
        let spec = ctx.world().topology.node(ctx.node()).spec.clone();
        let d = self.region_time(&spec, threads, schedule, n, total_work);
        ctx.metric_counter("omp.parallel_regions", "", 1);
        ctx.span_open("omp/parallel");
        ctx.advance(d);
        ctx.span_close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcbd_simnet::NodeSpec;

    fn node() -> NodeSpec {
        NodeSpec::comet()
    }

    #[test]
    fn more_threads_reduce_region_time() {
        let m = OmpModel::default();
        let w = Work::flops(24.0e9); // 8 seconds on one core
        let s = Schedule::Static { chunk: None };
        let t1 = m.region_time(&node(), 1, s, 1 << 20, w);
        let t8 = m.region_time(&node(), 8, s, 1 << 20, w);
        let t16 = m.region_time(&node(), 16, s, 1 << 20, w);
        assert!(t8 < t1 && t16 < t8);
        // Near-linear: 8 threads within 25% of ideal 8x.
        let speedup = t1.as_secs_f64() / t8.as_secs_f64();
        assert!(speedup > 6.0, "speedup {speedup}");
    }

    #[test]
    fn threads_clamp_to_node_cores() {
        let m = OmpModel::default();
        let w = Work::flops(1.0e9);
        let s = Schedule::Static { chunk: None };
        let t24 = m.region_time(&node(), 24, s, 1000, w);
        let t999 = m.region_time(&node(), 999, s, 1000, w);
        assert_eq!(t24, t999, "cannot use more threads than cores");
    }

    #[test]
    fn dynamic_pays_scheduling_but_avoids_imbalance() {
        let m = OmpModel::default();
        let w = Work::flops(6.0e9);
        let n = 1000;
        let stat = m.region_time(&node(), 8, Schedule::Static { chunk: None }, n, w);
        let dyn_big = m.region_time(&node(), 8, Schedule::Dynamic { chunk: 64 }, n, w);
        // With few chunks, dynamic's rebalancing wins over static slack.
        assert!(dyn_big < stat, "dynamic {dyn_big} vs static {stat}");
        // With pathological chunk=1 on a huge loop, scheduling overhead bites.
        let n_huge = 50_000_000;
        let dyn_tiny = m.region_time(&node(), 8, Schedule::Dynamic { chunk: 1 }, n_huge, w);
        assert!(dyn_tiny > stat, "chunk-1 dynamic should be slower");
    }

    #[test]
    fn fork_join_floor_for_empty_regions() {
        let m = OmpModel::default();
        let t = m.region_time(&node(), 8, Schedule::Static { chunk: None }, 0, Work::NONE);
        assert_eq!(t, m.fork_join);
    }
}
