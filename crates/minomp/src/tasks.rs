//! OpenMP tasks with dependencies (`#pragma omp task depend(...)`).
//!
//! Sec. II-A of the paper highlights exactly this feature trajectory:
//! OpenMP 3.0 made codes "a collection of tasks" and 4.0 added the
//! `depend` clause "for describing data flow execution". This module is
//! a real (actually parallel) task runtime with in/out dependences and
//! the standard's sequential-consistency rules:
//!
//! * a task with `in(x)` waits for the latest preceding `out(x)`;
//! * a task with `out(x)` waits for the latest preceding `out(x)` *and*
//!   every `in(x)` issued since (flow, anti and output dependences).
//!
//! Tasks are registered inside [`crate::OmpPool::task_scope`] and run by
//! the pool's team when the scope closes (one generating task + implicit
//! `taskwait`, a valid OpenMP execution).

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::pool::OmpPool;

/// A dependence variable (the address in `depend(in: x)` — callers use
/// any stable id, typically an array index or a block coordinate).
pub type DepVar = usize;

type TaskFn = Box<dyn FnOnce() + Send>;

struct TaskNode {
    body: Option<TaskFn>,
    /// Tasks that cannot start until this one finishes.
    successors: Vec<usize>,
    /// Outstanding predecessor count.
    pending: usize,
}

/// Collects tasks and their dependences within a scope.
pub struct TaskScope {
    tasks: Vec<TaskNode>,
    last_writer: HashMap<DepVar, usize>,
    readers_since_write: HashMap<DepVar, Vec<usize>>,
}

impl TaskScope {
    fn new() -> TaskScope {
        TaskScope {
            tasks: Vec::new(),
            last_writer: HashMap::new(),
            readers_since_write: HashMap::new(),
        }
    }

    /// `#pragma omp task depend(in: ins...) depend(out: outs...)`.
    /// Returns the task's id (useful only for diagnostics).
    pub fn task(
        &mut self,
        ins: &[DepVar],
        outs: &[DepVar],
        body: impl FnOnce() + Send + 'static,
    ) -> usize {
        let id = self.tasks.len();
        self.tasks.push(TaskNode {
            body: Some(Box::new(body)),
            successors: Vec::new(),
            pending: 0,
        });
        let mut preds: Vec<usize> = Vec::new();
        for v in ins {
            if let Some(w) = self.last_writer.get(v) {
                preds.push(*w);
            }
            self.readers_since_write.entry(*v).or_default().push(id);
        }
        for v in outs {
            if let Some(w) = self.last_writer.get(v) {
                preds.push(*w);
            }
            if let Some(readers) = self.readers_since_write.get_mut(v) {
                preds.extend(readers.iter().copied().filter(|r| *r != id));
                readers.clear();
            }
            self.last_writer.insert(*v, id);
        }
        preds.sort_unstable();
        preds.dedup();
        for p in preds {
            self.tasks[p].successors.push(id);
            self.tasks[id].pending += 1;
        }
        id
    }
}

struct RunState {
    nodes: Mutex<Vec<TaskNode>>,
    ready: Mutex<Vec<usize>>,
    remaining: AtomicUsize,
    done_cv: Condvar,
    done_lock: Mutex<bool>,
}

impl OmpPool {
    /// Open a task scope: `build` registers tasks with dependences; the
    /// team then executes the DAG in parallel, honoring every dependence,
    /// and returns when all tasks have finished (implicit `taskwait`).
    pub fn task_scope(&self, build: impl FnOnce(&mut TaskScope)) {
        let mut scope = TaskScope::new();
        build(&mut scope);
        let total = scope.tasks.len();
        if total == 0 {
            return;
        }
        let ready: Vec<usize> = scope
            .tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.pending == 0)
            .map(|(i, _)| i)
            .collect();
        let state = Arc::new(RunState {
            nodes: Mutex::new(scope.tasks),
            ready: Mutex::new(ready),
            remaining: AtomicUsize::new(total),
            done_cv: Condvar::new(),
            done_lock: Mutex::new(false),
        });
        std::thread::scope(|s| {
            for _ in 0..self.num_threads() {
                let state = state.clone();
                s.spawn(move || worker(&state));
            }
        });
        assert_eq!(
            state.remaining.load(Ordering::SeqCst),
            0,
            "task scope ended with unrunnable tasks (dependence cycle?)"
        );
    }
}

fn worker(state: &RunState) {
    loop {
        if state.remaining.load(Ordering::SeqCst) == 0 {
            return;
        }
        let next = state.ready.lock().pop();
        let Some(id) = next else {
            if state.remaining.load(Ordering::SeqCst) == 0 {
                return;
            }
            // Wait until more work appears or everything drains.
            let mut g = state.done_lock.lock();
            state
                .done_cv
                .wait_for(&mut g, std::time::Duration::from_millis(1));
            continue;
        };
        let body = state.nodes.lock()[id].body.take().expect("task runs once");
        body();
        // Release successors.
        let freed: Vec<usize> = {
            let mut nodes = state.nodes.lock();
            let succs = std::mem::take(&mut nodes[id].successors);
            succs
                .into_iter()
                .filter(|s| {
                    nodes[*s].pending -= 1;
                    nodes[*s].pending == 0
                })
                .collect()
        };
        if !freed.is_empty() {
            state.ready.lock().extend(freed);
        }
        state.remaining.fetch_sub(1, Ordering::SeqCst);
        state.done_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn chain_of_out_deps_runs_in_order() {
        let pool = OmpPool::new(4);
        let log = Arc::new(Mutex::new(Vec::new()));
        pool.task_scope(|s| {
            for i in 0..20u64 {
                let log = log.clone();
                // Every task writes x: a pure output-dependence chain.
                s.task(&[], &[0], move || log.lock().push(i));
            }
        });
        assert_eq!(*log.lock(), (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn readers_run_between_writers() {
        // w0 -> {r1, r2} -> w1 : both readers see w0's value, and w1
        // waits for both readers (anti-dependence).
        let pool = OmpPool::new(4);
        let cell = Arc::new(AtomicU64::new(0));
        let seen = Arc::new(Mutex::new(Vec::new()));
        pool.task_scope(|s| {
            let c = cell.clone();
            s.task(&[], &[7], move || c.store(42, Ordering::SeqCst));
            for _ in 0..2 {
                let c = cell.clone();
                let seen = seen.clone();
                s.task(&[7], &[], move || {
                    seen.lock().push(c.load(Ordering::SeqCst));
                });
            }
            let c = cell.clone();
            let seen = seen.clone();
            s.task(&[], &[7], move || {
                assert_eq!(seen.lock().len(), 2, "writer ran before readers");
                c.store(99, Ordering::SeqCst);
            });
        });
        assert_eq!(*seen.lock(), vec![42, 42]);
        assert_eq!(cell.load(Ordering::SeqCst), 99);
    }

    #[test]
    fn independent_tasks_all_execute() {
        let pool = OmpPool::new(8);
        let count = Arc::new(AtomicU64::new(0));
        pool.task_scope(|s| {
            for i in 0..200usize {
                let count = count.clone();
                s.task(&[i + 1000], &[], move || {
                    count.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(count.load(Ordering::SeqCst), 200);
    }

    #[test]
    fn wavefront_blocked_prefix_sums() {
        // A 2D wavefront: cell (i,j) depends on (i-1,j) and (i,j-1) —
        // the canonical depend-clause example. Compute pascal's triangle
        // values and compare to the closed form.
        const N: usize = 8;
        let pool = OmpPool::new(4);
        let grid: Arc<Vec<AtomicU64>> = Arc::new((0..N * N).map(|_| AtomicU64::new(0)).collect());
        pool.task_scope(|s| {
            for i in 0..N {
                for j in 0..N {
                    let grid = grid.clone();
                    let mut ins = Vec::new();
                    if i > 0 {
                        ins.push((i - 1) * N + j);
                    }
                    if j > 0 {
                        ins.push(i * N + (j - 1));
                    }
                    s.task(&ins, &[i * N + j], move || {
                        let v = if i == 0 || j == 0 {
                            1
                        } else {
                            grid[(i - 1) * N + j].load(Ordering::SeqCst)
                                + grid[i * N + (j - 1)].load(Ordering::SeqCst)
                        };
                        grid[i * N + j].store(v, Ordering::SeqCst);
                    });
                }
            }
        });
        // grid[i][j] = C(i+j, i).
        let binom = |n: u64, k: u64| -> u64 { (1..=k).fold(1u64, |acc, x| acc * (n - k + x) / x) };
        for i in 0..N {
            for j in 0..N {
                assert_eq!(
                    grid[i * N + j].load(Ordering::SeqCst),
                    binom((i + j) as u64, i as u64),
                    "cell ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn empty_scope_is_noop() {
        OmpPool::new(2).task_scope(|_| {});
    }
}
