//! `#pragma omp target` — accelerator offload.
//!
//! Sec. II-A of the paper: "the `target` construct creates tasks to be
//! executed on accelerators in an offload mode"; Sec. III-D: "Given the
//! very high cost of transferring data between host and device on
//! existing platforms, and the scarcity of device memory, both OpenACC
//! and OpenMP have developed relatively complex interfaces for managing
//! allocations, transfers, updates and synchronization of data."
//!
//! This module models exactly that trade-off: a [`Device`] with its own
//! (much higher) flop rate, limited memory, and a PCIe-class link, plus
//! `target data` regions ([`TargetData`]) that keep allocations resident
//! across multiple offloaded regions — the mechanism that decides
//! whether offloading wins. Two device generations are provided,
//! matching the paper's discrete-vs-unified discussion (KNC-style
//! discrete memory vs KNL-style unified memory).

use std::collections::HashMap;

use hpcbd_simnet::{ProcCtx, SimDuration, Work};

/// An attached accelerator's performance envelope.
#[derive(Debug, Clone, Copy)]
pub struct Device {
    /// Effective device flop rate (whole device), flops/second.
    pub flops: f64,
    /// Device memory bandwidth, bytes/second.
    pub mem_bw: f64,
    /// Device memory capacity, bytes.
    pub mem_capacity: u64,
    /// Host<->device link bandwidth, bytes/second (PCIe gen3 x16 ≈ 12 GB/s).
    pub link_bw: f64,
    /// Per-transfer latency (driver + DMA setup).
    pub link_latency: SimDuration,
    /// Kernel-launch overhead.
    pub launch_overhead: SimDuration,
    /// Unified memory with the host (KNL/AMD APU style): transfers are
    /// free, capacity is the host's.
    pub unified_memory: bool,
}

impl Device {
    /// A discrete accelerator of the paper's era (K80/KNC class):
    /// ~1.5 TFlop/s effective, 12 GB on-board, PCIe gen3.
    pub fn discrete_gpu() -> Device {
        Device {
            flops: 1.5e12,
            mem_bw: 240.0e9,
            mem_capacity: 12 << 30,
            link_bw: 12.0e9,
            link_latency: SimDuration::from_micros(20),
            launch_overhead: SimDuration::from_micros(8),
            unified_memory: false,
        }
    }

    /// A unified-memory many-core (KNL class): lower peak than the GPU
    /// but no transfer wall.
    pub fn unified_manycore() -> Device {
        Device {
            flops: 0.9e12,
            mem_bw: 400.0e9,
            mem_capacity: 96 << 30,
            link_bw: f64::INFINITY,
            link_latency: SimDuration::ZERO,
            launch_overhead: SimDuration::from_micros(3),
            unified_memory: true,
        }
    }

    /// Time for one host->device or device->host transfer of `bytes`.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        if self.unified_memory {
            return SimDuration::ZERO;
        }
        self.link_latency + SimDuration::from_secs_f64(bytes as f64 / self.link_bw)
    }

    /// Time to execute `work` on the device.
    pub fn kernel_time(&self, work: Work) -> SimDuration {
        self.launch_overhead
            + SimDuration::from_secs_f64(work.flops / self.flops + work.mem_bytes / self.mem_bw)
    }
}

/// A `target data` region: named buffers resident on the device between
/// kernels, so repeated offloads pay the transfer once.
pub struct TargetData {
    device: Device,
    resident: HashMap<String, u64>,
    used: u64,
}

impl TargetData {
    /// Open a region on `device`.
    pub fn new(device: Device) -> TargetData {
        TargetData {
            device,
            resident: HashMap::new(),
            used: 0,
        }
    }

    /// The device this region maps to.
    pub fn device(&self) -> Device {
        self.device
    }

    /// Device bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// `map(to: buf)`: allocate + copy host->device, charging the caller.
    /// Panics when the device memory is exhausted — the "scarcity of
    /// device memory" the paper flags (callers must tile).
    pub fn map_to(&mut self, ctx: &mut ProcCtx, name: &str, bytes: u64) {
        if self.resident.contains_key(name) {
            return;
        }
        assert!(
            self.used + bytes <= self.device.mem_capacity,
            "device memory exhausted: {} + {bytes} > {} (tile the data)",
            self.used,
            self.device.mem_capacity
        );
        self.resident.insert(name.to_string(), bytes);
        self.used += bytes;
        ctx.advance(self.device.transfer_time(bytes));
    }

    /// `map(from: buf)`: copy device->host (the buffer stays resident).
    pub fn map_from(&mut self, ctx: &mut ProcCtx, name: &str) {
        let bytes = *self
            .resident
            .get(name)
            .unwrap_or_else(|| panic!("buffer {name} not resident on device"));
        ctx.advance(self.device.transfer_time(bytes));
    }

    /// Release a buffer.
    pub fn unmap(&mut self, name: &str) {
        if let Some(b) = self.resident.remove(name) {
            self.used -= b;
        }
    }

    /// `#pragma omp target`: run `work` as a device kernel over the
    /// resident buffers, charging kernel time to the calling process.
    pub fn target_region(&self, ctx: &mut ProcCtx, work: Work) {
        ctx.advance(self.device.kernel_time(work));
    }
}

/// One-shot offload without a data region (`target map(tofrom: ...)`):
/// transfer in, kernel, transfer out. Returns the charged duration.
pub fn target_offload_once(
    ctx: &mut ProcCtx,
    device: &Device,
    bytes_in: u64,
    bytes_out: u64,
    work: Work,
) -> SimDuration {
    let d =
        device.transfer_time(bytes_in) + device.kernel_time(work) + device.transfer_time(bytes_out);
    ctx.advance(d);
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcbd_simnet::{NodeId, Sim, Topology};

    fn on_node<T: Send + 'static>(f: impl FnOnce(&mut ProcCtx) -> T + Send + 'static) -> T {
        let mut sim = Sim::new(Topology::comet(1));
        let p = sim.spawn(NodeId(0), "host", f);
        sim.run().result::<T>(p)
    }

    #[test]
    fn gpu_kernel_beats_host_on_big_compute() {
        let host = hpcbd_simnet::NodeSpec::comet();
        let w = Work::flops(1.0e12);
        let host_time = w.duration_on(&host, 1.0).as_secs_f64() * (1.0 / 24.0f64.recip()); // one core
        let gpu = Device::discrete_gpu();
        let gpu_time = gpu.kernel_time(w).as_secs_f64();
        assert!(
            gpu_time * 10.0 < host_time,
            "gpu {gpu_time} host {host_time}"
        );
    }

    #[test]
    fn resident_data_amortizes_transfers() {
        // K kernels over the same 4 GB buffer: one-shot pays K transfers,
        // a target-data region pays one.
        let bytes = 4u64 << 30;
        let w = Work::flops(5.0e10);
        let kernels = 10;
        let once: u64 = on_node(move |ctx| {
            let dev = Device::discrete_gpu();
            let t0 = ctx.now();
            for _ in 0..kernels {
                target_offload_once(ctx, &dev, bytes, 0, w);
            }
            (ctx.now() - t0).nanos()
        });
        let region: u64 = on_node(move |ctx| {
            let t0 = ctx.now();
            let mut td = TargetData::new(Device::discrete_gpu());
            td.map_to(ctx, "x", bytes);
            for _ in 0..kernels {
                td.target_region(ctx, w);
            }
            td.map_from(ctx, "x");
            (ctx.now() - t0).nanos()
        });
        assert!(
            region * 3 < once,
            "data region {region}ns must amortize vs one-shot {once}ns"
        );
    }

    #[test]
    fn unified_memory_has_no_transfer_wall() {
        let bytes = 8u64 << 30;
        let w = Work::flops(1.0e9); // tiny kernel: transfer-dominated
        let discrete: u64 = on_node(move |ctx| {
            target_offload_once(ctx, &Device::discrete_gpu(), bytes, bytes, w).nanos()
        });
        let unified: u64 = on_node(move |ctx| {
            target_offload_once(ctx, &Device::unified_manycore(), bytes, bytes, w).nanos()
        });
        assert!(
            unified * 20 < discrete,
            "unified {unified} vs discrete {discrete}"
        );
    }

    #[test]
    #[should_panic(expected = "device memory exhausted")]
    fn oversubscribing_device_memory_panics() {
        on_node(|ctx| {
            let mut td = TargetData::new(Device::discrete_gpu());
            td.map_to(ctx, "a", 8 << 30);
            td.map_to(ctx, "b", 8 << 30); // 16 GB > 12 GB
        });
    }

    #[test]
    fn unmap_frees_capacity() {
        on_node(|ctx| {
            let mut td = TargetData::new(Device::discrete_gpu());
            td.map_to(ctx, "a", 8 << 30);
            td.unmap("a");
            assert_eq!(td.used(), 0);
            td.map_to(ctx, "b", 10 << 30); // fits after the unmap
        });
    }
}
