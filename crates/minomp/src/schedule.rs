//! Loop schedules (`schedule(static|dynamic|guided)`).

/// How a `parallel for` divides its iteration space among threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Contiguous blocks decided before the loop runs. `chunk: None`
    /// gives each thread one ⌈n/T⌉ block; `Some(c)` deals blocks of `c`
    /// round-robin.
    Static {
        /// Optional fixed chunk size.
        chunk: Option<usize>,
    },
    /// Threads grab `chunk` iterations at a time from a shared counter.
    Dynamic {
        /// Chunk size grabbed per request.
        chunk: usize,
    },
    /// Like dynamic, but the grabbed chunk shrinks as the remaining work
    /// does (`remaining / threads`, floored at `min_chunk`).
    Guided {
        /// Lower bound on the shrinking chunk size.
        min_chunk: usize,
    },
}

impl Schedule {
    /// The chunks a *static* schedule assigns to thread `tid` of `nt`
    /// for an `n`-iteration loop, as `(start, end)` pairs.
    pub fn static_chunks(self, n: usize, tid: usize, nt: usize) -> Vec<(usize, usize)> {
        match self {
            Schedule::Static { chunk: None } => {
                let per = n.div_ceil(nt);
                let start = (tid * per).min(n);
                let end = ((tid + 1) * per).min(n);
                if start < end {
                    vec![(start, end)]
                } else {
                    vec![]
                }
            }
            Schedule::Static { chunk: Some(c) } => {
                let c = c.max(1);
                let mut out = vec![];
                let mut blk = tid;
                loop {
                    let start = blk * c;
                    if start >= n {
                        break;
                    }
                    out.push((start, (start + c).min(n)));
                    blk += nt;
                }
                out
            }
            _ => panic!("static_chunks on a non-static schedule"),
        }
    }

    /// Number of scheduling events (chunk grabs) a loop of `n` iterations
    /// on `nt` threads incurs — used by the timing model.
    pub fn chunk_count(self, n: usize, nt: usize) -> usize {
        if n == 0 {
            return 0;
        }
        match self {
            Schedule::Static { chunk: None } => nt.min(n),
            Schedule::Static { chunk: Some(c) } => n.div_ceil(c.max(1)),
            Schedule::Dynamic { chunk } => n.div_ceil(chunk.max(1)),
            Schedule::Guided { min_chunk } => {
                // Chunks shrink geometrically: ~nt * ln(n / (nt*min)) + extras.
                let mut remaining = n;
                let mut count = 0usize;
                while remaining > 0 {
                    let c = (remaining / nt).max(min_chunk.max(1)).min(remaining);
                    remaining -= c;
                    count += 1;
                }
                count
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_blocks_partition_range() {
        let s = Schedule::Static { chunk: None };
        let nt = 4;
        let n = 10;
        let mut seen = vec![false; n];
        for tid in 0..nt {
            for (a, b) in s.static_chunks(n, tid, nt) {
                for (x, flag) in seen.iter_mut().enumerate().take(b).skip(a) {
                    assert!(!*flag, "iteration {x} assigned twice");
                    *flag = true;
                }
            }
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn static_chunked_round_robin_partition() {
        let s = Schedule::Static { chunk: Some(3) };
        let nt = 3;
        let n = 20;
        let mut seen = vec![0u32; n];
        for tid in 0..nt {
            for (a, b) in s.static_chunks(n, tid, nt) {
                for c in seen.iter_mut().take(b).skip(a) {
                    *c += 1;
                }
            }
        }
        assert!(seen.iter().all(|c| *c == 1));
        // Thread 0 gets blocks [0,3) and [9,12).
        assert_eq!(s.static_chunks(n, 0, nt)[1], (9, 12));
    }

    #[test]
    fn chunk_counts() {
        assert_eq!(Schedule::Static { chunk: None }.chunk_count(100, 8), 8);
        assert_eq!(Schedule::Static { chunk: Some(10) }.chunk_count(100, 8), 10);
        assert_eq!(Schedule::Dynamic { chunk: 7 }.chunk_count(100, 8), 15);
        assert_eq!(Schedule::Dynamic { chunk: 7 }.chunk_count(0, 8), 0);
        let g = Schedule::Guided { min_chunk: 4 }.chunk_count(1000, 8);
        assert!(g > 8 && g < 1000 / 4, "guided chunk count {g}");
    }

    #[test]
    fn empty_and_tiny_loops() {
        let s = Schedule::Static { chunk: None };
        assert!(s.static_chunks(0, 0, 4).is_empty());
        // 2 iterations on 4 threads: threads 2,3 idle.
        assert_eq!(s.static_chunks(2, 0, 4), vec![(0, 1)]);
        assert!(s.static_chunks(2, 3, 4).is_empty());
    }
}
