//! The real fork-join worker pool.
//!
//! Scoped threads (crossbeam) execute each parallel region, so closures
//! may borrow from the caller's stack exactly like an OpenMP region
//! captures its enclosing scope. The pool guarantees data-race freedom
//! through the usual Rust rules: loop bodies are `Fn(usize) + Sync`,
//! mutable shared state goes through reductions, [`OmpPool::critical`],
//! or atomics.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

use crate::schedule::Schedule;

/// A shared-memory parallel runtime with a fixed thread count — one
/// OpenMP "team".
#[derive(Debug)]
pub struct OmpPool {
    nthreads: usize,
    critical: Mutex<()>,
}

impl OmpPool {
    /// A team of `nthreads` threads (`OMP_NUM_THREADS`).
    pub fn new(nthreads: usize) -> OmpPool {
        assert!(nthreads > 0, "team needs at least one thread");
        OmpPool {
            nthreads,
            critical: Mutex::new(()),
        }
    }

    /// Team size.
    #[inline]
    pub fn num_threads(&self) -> usize {
        self.nthreads
    }

    /// `#pragma omp parallel for schedule(...)`: run `body(i)` for every
    /// `i` in `range`, split among the team per `schedule`.
    pub fn parallel_for<F>(&self, range: std::ops::Range<u64>, schedule: Schedule, body: F)
    where
        F: Fn(u64) + Sync,
    {
        self.parallel_for_chunks(range, schedule, |chunk| {
            for i in chunk {
                body(i);
            }
        });
    }

    /// Chunk-granular `parallel for`: `body` receives whole index ranges,
    /// letting callers amortize per-iteration work (the form the
    /// AnswersCount benchmark uses to parse record blocks).
    pub fn parallel_for_chunks<F>(&self, range: std::ops::Range<u64>, schedule: Schedule, body: F)
    where
        F: Fn(std::ops::Range<u64>) + Sync,
    {
        let n = (range.end - range.start) as usize;
        if n == 0 {
            return;
        }
        let base = range.start;
        let nt = self.nthreads.min(n.max(1));
        match schedule {
            Schedule::Static { .. } => {
                std::thread::scope(|s| {
                    for tid in 0..nt {
                        let body = &body;
                        s.spawn(move || {
                            for (a, b) in schedule.static_chunks(n, tid, nt) {
                                body(base + a as u64..base + b as u64);
                            }
                        });
                    }
                });
            }
            Schedule::Dynamic { chunk } => {
                let next = AtomicUsize::new(0);
                let chunk = chunk.max(1);
                std::thread::scope(|s| {
                    for _ in 0..nt {
                        let body = &body;
                        let next = &next;
                        s.spawn(move || loop {
                            let start = next.fetch_add(chunk, Ordering::Relaxed);
                            if start >= n {
                                break;
                            }
                            let end = (start + chunk).min(n);
                            body(base + start as u64..base + end as u64);
                        });
                    }
                });
            }
            Schedule::Guided { min_chunk } => {
                let remaining = Mutex::new(0usize..n);
                let min_chunk = min_chunk.max(1);
                std::thread::scope(|s| {
                    for _ in 0..nt {
                        let body = &body;
                        let remaining = &remaining;
                        s.spawn(move || loop {
                            let (start, end) = {
                                let mut r = remaining.lock();
                                if r.start >= r.end {
                                    break;
                                }
                                let left = r.end - r.start;
                                let c = (left / nt).max(min_chunk).min(left);
                                let start = r.start;
                                r.start += c;
                                (start, start + c)
                            };
                            body(base + start as u64..base + end as u64);
                        });
                    }
                });
            }
        }
    }

    /// `parallel for` with a `reduction(op: acc)` clause: each thread
    /// folds its chunk privately; partials combine at the join.
    pub fn parallel_reduce<T, F, R>(
        &self,
        range: std::ops::Range<u64>,
        schedule: Schedule,
        identity: T,
        body: F,
        combine: R,
    ) -> T
    where
        T: Clone + Send + Sync,
        F: Fn(u64) -> T + Sync,
        R: Fn(T, T) -> T + Sync + Send,
    {
        // Partials are keyed by chunk start and folded in index order:
        // threads complete in arbitrary wall-clock order, and combining
        // in completion order would make non-commutative (e.g. float)
        // reductions vary run to run.
        let partials: Mutex<Vec<(u64, T)>> = Mutex::new(Vec::new());
        self.parallel_for_chunks(range, schedule, |chunk| {
            let key = chunk.start;
            let mut acc = identity.clone();
            for i in chunk {
                acc = combine(acc, body(i));
            }
            partials.lock().push((key, acc));
        });
        let mut partials = partials.into_inner();
        partials.sort_by_key(|&(start, _)| start);
        partials
            .into_iter()
            .fold(identity, |acc, (_, p)| combine(acc, p))
    }

    /// `#pragma omp critical`: run `f` under the team-wide mutex.
    pub fn critical<T>(&self, f: impl FnOnce() -> T) -> T {
        let _g = self.critical.lock();
        f()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn all_schedules() -> Vec<Schedule> {
        vec![
            Schedule::Static { chunk: None },
            Schedule::Static { chunk: Some(7) },
            Schedule::Dynamic { chunk: 5 },
            Schedule::Guided { min_chunk: 3 },
        ]
    }

    #[test]
    fn every_schedule_visits_each_index_once() {
        for sched in all_schedules() {
            let n = 501u64;
            let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            let pool = OmpPool::new(4);
            pool.parallel_for(0..n, sched, |i| {
                hits[i as usize].fetch_add(1, Ordering::Relaxed);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "index {i} under {sched:?}");
            }
        }
    }

    #[test]
    fn reduce_matches_sequential_fold() {
        for sched in all_schedules() {
            let pool = OmpPool::new(3);
            let sum = pool.parallel_reduce(0..10_000u64, sched, 0u64, |i| i * i, |a, b| a + b);
            let expect: u64 = (0..10_000u64).map(|i| i * i).sum();
            assert_eq!(sum, expect, "under {sched:?}");
        }
    }

    #[test]
    fn reduce_with_nonzero_range_start() {
        let pool = OmpPool::new(4);
        let sum = pool.parallel_reduce(
            100..200u64,
            Schedule::Dynamic { chunk: 9 },
            0u64,
            |i| i,
            |a, b| a + b,
        );
        assert_eq!(sum, (100..200u64).sum::<u64>());
    }

    #[test]
    fn critical_serializes() {
        let pool = OmpPool::new(8);
        let mut hits = 0u64;
        let cell = std::sync::Mutex::new(&mut hits);
        pool.parallel_for(0..1000, Schedule::Dynamic { chunk: 1 }, |_| {
            let mut g = cell.lock().unwrap();
            **g += 1;
        });
        assert_eq!(hits, 1000);
    }

    #[test]
    fn empty_range_is_noop() {
        let pool = OmpPool::new(4);
        pool.parallel_for(5..5, Schedule::Static { chunk: None }, |_| {
            panic!("must not run")
        });
    }

    #[test]
    fn single_thread_team_works() {
        let pool = OmpPool::new(1);
        let s = pool.parallel_reduce(
            0..100u64,
            Schedule::Guided { min_chunk: 1 },
            0,
            |i| i,
            |a, b| a + b,
        );
        assert_eq!(s, 4950);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        OmpPool::new(0);
    }
}
