//! Scheduler adapter: compile the OpenMP AnswersCount benchmark into a
//! multi-tenant [`hpcbd_sched::JobSpec`].
//!
//! OpenMP is the shared-memory paradigm: one job is one node-wide task
//! (the paper's single-node 8/16-thread runs). Under the scheduler it
//! becomes a single-task elastic wave whose body charges the same costs
//! as `hpcbd-core`'s standalone driver — a sequential scratch read
//! followed by a fork-join parse region priced by [`crate::OmpModel`] —
//! but split into segments so a contending tenant can preempt it at
//! region boundaries.

use std::sync::Arc;

use hpcbd_sched::{JobSpec, Segment, TaskSpec, Wave};
use hpcbd_simnet::Work;
use hpcbd_workloads::stackexchange::RECORD_BYTES;

use crate::{OmpModel, Schedule};

/// Native per-record cost of the C parse/count loop (mirrors the
/// standalone Fig. 4 driver).
fn scan_work() -> Work {
    Work::new(60.0, 1600.0)
}

/// The OpenMP AnswersCount job: scan `bytes` of the StackExchange dump
/// with a `threads`-wide team on one node.
///
/// The scan is cut into `segments` read+parse slices; the scheduler may
/// reclaim the slot between slices (restart-from-scratch semantics, like
/// killing and re-queueing the whole process).
pub fn scheduled_answers(
    queue: &'static str,
    tenant: &'static str,
    bytes: u64,
    threads: u32,
    segments: u32,
) -> JobSpec {
    let segments = segments.max(1);
    let slice = bytes / segments as u64;
    let body: Segment = Arc::new(move |ctx, _env| {
        // Sequential read of this slice from local scratch, then the
        // fork-join parse/count region over its records.
        ctx.disk_read(slice);
        let records = (slice / RECORD_BYTES) as usize;
        OmpModel::default().charge_region(
            ctx,
            threads,
            Schedule::Dynamic { chunk: 4096 },
            records,
            scan_work().scaled(records as f64),
        );
    });
    JobSpec {
        template: "omp/answers",
        queue,
        tenant,
        waves: vec![Wave {
            tasks: vec![TaskSpec {
                segments: vec![body; segments as usize],
                preferred: None,
                preemptable: true,
            }],
            gang: false,
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn answers_job_shape() {
        let job = scheduled_answers("batch", "hpc", 1 << 30, 16, 4);
        assert_eq!(job.waves.len(), 1);
        assert_eq!(job.waves[0].tasks.len(), 1);
        assert_eq!(job.waves[0].tasks[0].segments.len(), 4);
        assert!(!job.waves[0].gang);
        assert!(job.waves[0].tasks[0].preemptable);
    }
}
