//! `hpcbd-minomp` — an OpenMP-like shared-memory runtime.
//!
//! Two halves, mirroring how the paper uses OpenMP (Sec. II-A, Fig. 4):
//!
//! 1. A **real** fork-join runtime ([`OmpPool`]): worker threads,
//!    `parallel for` with `static` / `dynamic` / `guided` schedules,
//!    reductions, and critical sections. This executes actual Rust
//!    closures in parallel and is what the correctness tests and the
//!    benchmark *results* use.
//! 2. A **timing model** ([`model::OmpModel`]): the virtual-time cost of a
//!    parallel region on a modeled Comet node — fork/join overhead,
//!    per-chunk scheduling overhead, and the schedule-dependent load
//!    imbalance. Experiments run inside `simnet` charge region times
//!    through this model (OpenMP cannot leave one node, so an OpenMP
//!    benchmark is a single simulated process).
//!
//! # Example
//!
//! ```
//! use hpcbd_minomp::{OmpPool, Schedule};
//!
//! let pool = OmpPool::new(4);
//! let sum = pool.parallel_reduce(
//!     0..1000u64,
//!     Schedule::Static { chunk: None },
//!     0u64,
//!     |i| i,
//!     |a, b| a + b,
//! );
//! assert_eq!(sum, 999 * 1000 / 2);
//! ```

#![warn(missing_docs)]

pub mod model;
pub mod pool;
pub mod schedule;
pub mod scheduled;
pub mod target;
pub mod tasks;

pub use model::OmpModel;
pub use pool::OmpPool;
pub use schedule::Schedule;
pub use scheduled::scheduled_answers;
pub use target::{target_offload_once, Device, TargetData};
pub use tasks::{DepVar, TaskScope};
