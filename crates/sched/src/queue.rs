//! Queue and slot accounting: the pure bookkeeping under the scheduler.
//!
//! Everything here is plain state-machine arithmetic — no virtual time,
//! no messages — so the invariants the scheduler relies on (slots never
//! leak, preemption victims are chosen deterministically, fairness
//! integrals add up) are unit-testable in isolation.

use hpcbd_simnet::NodeId;

/// Static description of one named queue.
#[derive(Debug, Clone, Copy)]
pub struct QueueSpec {
    /// Queue name (report label).
    pub name: &'static str,
    /// Weight for max-min fair sharing; the queue's *fair share* is
    /// `total_slots * weight / sum(weights)`.
    pub weight: u32,
    /// Hard cap on concurrently held slots; `None` = no cap.
    pub cap_slots: Option<u32>,
    /// Job-completion latency target for SLO attainment reporting.
    pub slo_target_ns: Option<u64>,
}

impl QueueSpec {
    /// A weighted queue with no cap and no SLO target.
    pub fn new(name: &'static str, weight: u32) -> QueueSpec {
        QueueSpec {
            name,
            weight,
            cap_slots: None,
            slo_target_ns: None,
        }
    }

    /// Set the slot cap.
    pub fn cap(mut self, slots: u32) -> QueueSpec {
        self.cap_slots = Some(slots);
        self
    }

    /// Set the latency SLO target.
    pub fn slo_ns(mut self, target_ns: u64) -> QueueSpec {
        self.slo_target_ns = Some(target_ns);
        self
    }
}

/// This queue's fair share of `total` slots under max-min weighting.
pub fn fair_share(total: u32, weights: &[u32], qi: usize) -> f64 {
    let sum: u32 = weights.iter().sum();
    if sum == 0 {
        return 0.0;
    }
    total as f64 * weights[qi] as f64 / sum as f64
}

/// State of one slot in the ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotState {
    /// Idle; dispatchable.
    Free,
    /// Running a task for `queue`; `seq` is the global dispatch sequence
    /// number (newest-first victim ordering), `preemptable` whether the
    /// task accepts a mid-run kill.
    Busy {
        /// Holding queue index.
        queue: usize,
        /// Task accepts preemption.
        preemptable: bool,
        /// Global dispatch sequence number.
        seq: u64,
    },
    /// A kill is in flight; the slot still counts against `queue` until
    /// the worker acknowledges (done or preempted).
    Reclaiming {
        /// Holding queue index.
        queue: usize,
    },
}

/// Per-node slot ledger over the cluster topology. Slot `s` lives on
/// node `s / per_node`; racks are contiguous groups of `rack_size`
/// nodes (Comet-style racks on an oversubscription-free fabric — the
/// rack level matters for locality preferences, not bandwidth).
#[derive(Debug, Clone)]
pub struct SlotLedger {
    per_node: u32,
    rack_size: u32,
    state: Vec<SlotState>,
}

impl SlotLedger {
    /// A ledger of `nodes * per_node` free slots.
    pub fn new(nodes: u32, per_node: u32, rack_size: u32) -> SlotLedger {
        assert!(nodes > 0 && per_node > 0 && rack_size > 0);
        SlotLedger {
            per_node,
            rack_size,
            state: vec![SlotState::Free; (nodes * per_node) as usize],
        }
    }

    /// Total slots.
    pub fn total(&self) -> u32 {
        self.state.len() as u32
    }

    /// Slots per node.
    pub fn per_node(&self) -> u32 {
        self.per_node
    }

    /// The node hosting slot `s`.
    pub fn node_of(&self, s: u32) -> NodeId {
        NodeId(s / self.per_node)
    }

    /// The rack of `node`.
    pub fn rack_of(&self, node: NodeId) -> u32 {
        node.0 / self.rack_size
    }

    /// Current state of slot `s`.
    pub fn state(&self, s: u32) -> SlotState {
        self.state[s as usize]
    }

    /// Number of free slots.
    pub fn free_count(&self) -> u32 {
        self.state
            .iter()
            .filter(|s| matches!(s, SlotState::Free))
            .count() as u32
    }

    /// Slots currently charged to `queue` (busy + reclaiming).
    pub fn usage(&self, queue: usize) -> u32 {
        self.state
            .iter()
            .filter(|s| match s {
                SlotState::Busy { queue: q, .. } | SlotState::Reclaiming { queue: q } => {
                    *q == queue
                }
                SlotState::Free => false,
            })
            .count() as u32
    }

    /// Lowest-numbered free slot on `node`.
    pub fn free_on(&self, node: NodeId) -> Option<u32> {
        let start = node.0 * self.per_node;
        (start..start + self.per_node).find(|s| self.state[*s as usize] == SlotState::Free)
    }

    /// Lowest-numbered free slot in `node`'s rack (any node of the rack,
    /// including `node` itself).
    pub fn free_in_rack(&self, node: NodeId) -> Option<u32> {
        let rack = self.rack_of(node);
        (0..self.total()).find(|s| {
            self.rack_of(self.node_of(*s)) == rack && self.state[*s as usize] == SlotState::Free
        })
    }

    /// Lowest-numbered free slot anywhere.
    pub fn free_any(&self) -> Option<u32> {
        (0..self.total()).find(|s| self.state[*s as usize] == SlotState::Free)
    }

    /// Atomically pick `n` free slots for a gang, spreading over the
    /// nodes with the most free slots first (deterministic tie-break on
    /// node id). `None` if fewer than `n` slots are free.
    pub fn gang_pick(&self, n: u32) -> Option<Vec<u32>> {
        if self.free_count() < n {
            return None;
        }
        let nodes = self.total() / self.per_node;
        let mut order: Vec<u32> = (0..nodes).collect();
        order.sort_by_key(|nd| {
            let free = (0..self.per_node)
                .filter(|k| self.state[(nd * self.per_node + k) as usize] == SlotState::Free)
                .count() as u32;
            (std::cmp::Reverse(free), *nd)
        });
        let mut picked = Vec::with_capacity(n as usize);
        for nd in order {
            for k in 0..self.per_node {
                let s = nd * self.per_node + k;
                if self.state[s as usize] == SlotState::Free {
                    picked.push(s);
                    if picked.len() == n as usize {
                        return Some(picked);
                    }
                }
            }
        }
        None
    }

    /// Mark `slot` busy for `queue`.
    pub fn reserve(&mut self, slot: u32, queue: usize, preemptable: bool, seq: u64) {
        assert_eq!(
            self.state[slot as usize],
            SlotState::Free,
            "reserve of non-free slot {slot}"
        );
        self.state[slot as usize] = SlotState::Busy {
            queue,
            preemptable,
            seq,
        };
    }

    /// Free `slot` (task done or preemption acknowledged).
    pub fn release(&mut self, slot: u32) {
        assert_ne!(
            self.state[slot as usize],
            SlotState::Free,
            "double release of slot {slot}"
        );
        self.state[slot as usize] = SlotState::Free;
    }

    /// Transition a busy slot to reclaiming (kill sent, ack pending).
    pub fn mark_reclaiming(&mut self, slot: u32) {
        match self.state[slot as usize] {
            SlotState::Busy { queue, .. } => {
                self.state[slot as usize] = SlotState::Reclaiming { queue }
            }
            other => panic!("mark_reclaiming on {other:?}"),
        }
    }

    /// Choose a preemption victim to benefit `beneficiary`: among queues
    /// holding more than their fair share (and not the beneficiary),
    /// take the most-over-share queue (lowest index on ties), and within
    /// it the newest-dispatched preemptable busy slot. `None` when no
    /// queue is over share or the over-share queues hold nothing
    /// preemptable.
    pub fn pick_victim(&self, weights: &[u32], beneficiary: usize) -> Option<u32> {
        let total = self.total();
        // Every queue above its fair share, most-over first (queue index
        // breaks exact ties, deterministically). A queue whose busy
        // tasks are all non-preemptable (gangs) is skipped in favour of
        // the next most-over queue — otherwise one pinned gang could
        // shield every other over-share tenant from reclamation.
        let mut over_queues: Vec<(f64, usize)> = (0..weights.len())
            .filter(|qi| *qi != beneficiary)
            .filter_map(|qi| {
                let over = self.usage(qi) as f64 - fair_share(total, weights, qi);
                (over > 0.0).then_some((over, qi))
            })
            .collect();
        over_queues.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then_with(|| a.1.cmp(&b.1)));
        for (_, victim_q) in over_queues {
            let mut best: Option<(u64, u32)> = None;
            for (i, st) in self.state.iter().enumerate() {
                if let SlotState::Busy {
                    queue,
                    preemptable: true,
                    seq,
                } = st
                {
                    if *queue == victim_q && best.map(|(b, _)| *seq > b).unwrap_or(true) {
                        best = Some((*seq, i as u32));
                    }
                }
            }
            if let Some((_, s)) = best {
                return Some(s);
            }
        }
        None
    }
}

/// Integrates per-queue slot occupancy over virtual time, for fairness
/// and utilization reporting.
#[derive(Debug, Clone)]
pub struct ShareMeter {
    last_ns: u64,
    acc_slot_ns: Vec<u128>,
}

impl ShareMeter {
    /// A meter over `queues` queues starting at t = 0.
    pub fn new(queues: usize) -> ShareMeter {
        ShareMeter {
            last_ns: 0,
            acc_slot_ns: vec![0; queues],
        }
    }

    /// Account the interval since the last call at the given per-queue
    /// usages (call *before* applying a state change at `now_ns`).
    pub fn advance(&mut self, now_ns: u64, usages: &[u32]) {
        let dt = now_ns.saturating_sub(self.last_ns) as u128;
        self.last_ns = now_ns;
        for (acc, u) in self.acc_slot_ns.iter_mut().zip(usages) {
            *acc += dt * *u as u128;
        }
    }

    /// Accumulated slot-nanoseconds per queue.
    pub fn shares(&self) -> &[u128] {
        &self.acc_slot_ns
    }

    /// max/min ratio of weight-normalized shares, in thousandths, over
    /// queues with nonzero weight. 1000 = perfectly weighted-fair.
    /// `None` if any weighted queue received zero slot-time.
    pub fn maxmin_x1000(&self, weights: &[u32]) -> Option<u64> {
        let mut lo: Option<f64> = None;
        let mut hi: Option<f64> = None;
        for (acc, w) in self.acc_slot_ns.iter().zip(weights) {
            if *w == 0 {
                continue;
            }
            let norm = *acc as f64 / *w as f64;
            if norm == 0.0 {
                return None;
            }
            lo = Some(lo.map_or(norm, |v: f64| v.min(norm)));
            hi = Some(hi.map_or(norm, |v: f64| v.max(norm)));
        }
        match (lo, hi) {
            (Some(lo), Some(hi)) => Some((hi / lo * 1000.0).round() as u64),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_release_conserves_slots() {
        let mut l = SlotLedger::new(2, 3, 2);
        assert_eq!(l.total(), 6);
        assert_eq!(l.free_count(), 6);
        let a = l.free_on(NodeId(1)).unwrap();
        l.reserve(a, 0, true, 1);
        assert_eq!(l.free_count(), 5);
        assert_eq!(l.usage(0), 1);
        l.release(a);
        assert_eq!(l.free_count(), 6);
        assert_eq!(l.usage(0), 0);
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_is_a_bug() {
        let mut l = SlotLedger::new(1, 1, 1);
        l.reserve(0, 0, true, 1);
        l.release(0);
        l.release(0);
    }

    #[test]
    fn locality_search_escalates() {
        // 4 nodes, 1 slot each, racks of 2: {0,1} and {2,3}.
        let mut l = SlotLedger::new(4, 1, 2);
        l.reserve(0, 0, true, 1);
        assert_eq!(l.free_on(NodeId(0)), None);
        assert_eq!(l.free_in_rack(NodeId(0)), Some(1));
        l.reserve(1, 0, true, 2);
        assert_eq!(l.free_in_rack(NodeId(0)), None);
        assert_eq!(l.free_any(), Some(2));
    }

    #[test]
    fn gang_pick_prefers_emptiest_nodes() {
        let mut l = SlotLedger::new(3, 2, 4);
        l.reserve(0, 0, true, 1); // node 0 half busy
        let g = l.gang_pick(4).unwrap();
        // Nodes 1 and 2 (2 free slots each) fill before node 0's leftover.
        assert_eq!(g, vec![2, 3, 4, 5]);
        assert!(l.gang_pick(6).is_none(), "only 5 free");
    }

    #[test]
    fn victim_is_newest_preemptable_of_most_over_share_queue() {
        // 4 slots, two queues of equal weight: fair share 2 each.
        let mut l = SlotLedger::new(4, 1, 4);
        let w = [1, 1];
        l.reserve(0, 1, true, 10);
        l.reserve(1, 1, true, 20);
        l.reserve(2, 1, false, 30); // newest but pinned
        assert_eq!(l.usage(1), 3);
        // Queue 1 is one slot over fair share; newest preemptable is seq 20.
        assert_eq!(l.pick_victim(&w, 0), Some(1));
        // No preemption against yourself.
        assert_eq!(l.pick_victim(&w, 1), None);
        // At or under fair share: nothing to reclaim.
        l.release(1);
        l.release(2);
        assert_eq!(l.pick_victim(&w, 0), None);
    }

    #[test]
    fn reclaiming_still_charges_the_victim_queue() {
        let mut l = SlotLedger::new(2, 1, 2);
        l.reserve(0, 1, true, 1);
        l.mark_reclaiming(0);
        assert_eq!(l.usage(1), 1, "in-flight kill still counts");
        // A reclaiming slot is no longer a victim candidate.
        assert_eq!(l.pick_victim(&[0, 1], 0), None);
        l.release(0);
        assert_eq!(l.usage(1), 0);
    }

    #[test]
    fn share_meter_integrates_and_normalizes() {
        let mut m = ShareMeter::new(2);
        m.advance(1_000, &[2, 1]); // interval [0, 1000): usages applied retroactively
        m.advance(3_000, &[0, 1]);
        assert_eq!(m.shares(), &[2 * 1_000, 1_000 + 2_000]);
        // Equal weights: ratio 3000/2000 = 1.5.
        assert_eq!(m.maxmin_x1000(&[1, 1]), Some(1500));
        // Weight 2 on queue 1 halves its normalized share: 2000 vs 1500.
        assert_eq!(m.maxmin_x1000(&[1, 2]), Some(1333));
    }

    #[test]
    fn share_meter_empty_queue_yields_none() {
        let mut m = ShareMeter::new(2);
        m.advance(1_000, &[1, 0]);
        assert_eq!(m.maxmin_x1000(&[1, 1]), None);
        assert_eq!(m.maxmin_x1000(&[1, 0]), Some(1000));
    }

    #[test]
    fn fair_share_splits_by_weight() {
        assert_eq!(fair_share(32, &[6, 2], 0), 24.0);
        assert_eq!(fair_share(32, &[6, 2], 1), 8.0);
        assert_eq!(fair_share(32, &[], 0), 0.0);
    }
}
