//! The in-sim cluster scheduler and its slot workers.
//!
//! The engine's process table is fixed at run start, so the scheduler is
//! YARN-shaped: one scheduler process plus a pool of pre-spawned slot
//! workers (`per_node` per node). Jobs arrive as messages from the
//! open-loop submitter; tasks are shipped to workers as closures
//! ([`hpcbd_simnet::TaskClosure`]) and charge all their costs on the
//! worker's node, so tenants contend on real simulated devices.
//!
//! Scheduling policy, in dispatch order:
//!
//! 1. **Weighted max-min across queues** — each dispatch turn goes to
//!    the queue with the smallest `usage/weight` deficit ratio (ties by
//!    queue index); per-queue slot caps are respected.
//! 2. **FIFO within a queue**, except that *delay scheduling* lets a
//!    later job's task run when the head job is only waiting for
//!    locality: an elastic task waits up to `locality_delay` for a slot
//!    on its preferred node, another `locality_delay` for its rack, and
//!    then takes any slot. Gang waves (MPI/SHMEM) allocate all slots
//!    atomically and do *not* skip — a gang at the head blocks its
//!    queue until the cluster can host it.
//! 3. **Preemption** (optional): a queue holding less than its fair
//!    share while demand waits may reclaim slots from queues above
//!    their fair share — newest-dispatched preemptable task first, one
//!    kill per starved queue per dispatch round, and never below the
//!    victim's fair share. Preempted tasks are re-queued at the head of
//!    their job exactly once per kill; work done before the checkpoint
//!    is lost (restart-from-scratch semantics).
//!
//! Every decision happens in one process at virtual times fixed by the
//! engine's total order of message arrivals, so the schedule is
//! bit-identical under sequential, parallel and speculative execution.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

use hpcbd_simnet::{
    JobChannel, LaunchEnv, MatchSpec, Message, Payload, Pid, ProcCtx, SimDuration, SimTime, Tag,
    Transport,
};

use crate::job::{JobSpec, Segment};
use crate::queue::{fair_share, QueueSpec, SlotLedger, SlotState};

/// Control-plane tags (all far below `JOB_TAG_BASE`).
pub const TAG_SUBMIT: Tag = 101;
const TAG_TASK: Tag = 102;
const TAG_TASK_DONE: Tag = 103;
const TAG_TASK_PREEMPTED: Tag = 104;
const TAG_KILL: Tag = 105;
const TAG_SHUTDOWN: Tag = 106;

/// Identity of one task attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskKey {
    /// Job sequence number.
    pub job: u64,
    /// Wave index.
    pub wave: u32,
    /// Task index within the wave.
    pub index: u32,
    /// Attempt number (bumped by each preemption re-queue).
    pub attempt: u32,
}

/// A job submission (submitter to scheduler).
pub struct SubmitMsg {
    /// Scheduler-wide job sequence number (submit order).
    pub id: u64,
    /// The job.
    pub spec: JobSpec,
}

struct Dispatch {
    key: TaskKey,
    template: &'static str,
    preemptable: bool,
    segments: Vec<Segment>,
    env: LaunchEnv,
}

/// The long-lived slot-worker body: receive a task, run its segments
/// (checking for a preemption notice between segments), report back.
/// Stale kill notices — the task finished while the kill was in flight
/// — are consumed and ignored; the scheduler resolves that race on its
/// side by treating the completion as authoritative.
pub fn slot_worker(ctx: &mut ProcCtx, sched: Pid, control: Transport) {
    loop {
        let m = ctx.recv(MatchSpec::ANY);
        match m.tag {
            TAG_TASK => {
                let d: Arc<Dispatch> = m.expect_value();
                let mut preempted = false;
                ctx.span_open(d.template);
                for (i, seg) in d.segments.iter().enumerate() {
                    if i > 0 && d.preemptable {
                        if let Some(k) = ctx.try_recv(MatchSpec::tag(TAG_KILL)) {
                            let key: Arc<TaskKey> = k.expect_value();
                            if *key == d.key {
                                preempted = true;
                                break;
                            }
                        }
                    }
                    seg(ctx, &d.env);
                }
                ctx.span_close();
                let tag = if preempted {
                    TAG_TASK_PREEMPTED
                } else {
                    TAG_TASK_DONE
                };
                ctx.send(sched, tag, 128, Payload::value(d.key), &control);
            }
            TAG_KILL => {} // stale: the raced completion already reported
            TAG_SHUTDOWN => return,
            t => panic!("slot worker received unexpected tag {t}"),
        }
    }
}

/// Scheduler configuration.
pub struct SchedulerConfig {
    /// Queue table (index = queue id).
    pub queues: Vec<QueueSpec>,
    /// Worker pids in slot order (`node * per_node + k`).
    pub workers: Vec<Pid>,
    /// Slots per node.
    pub per_node: u32,
    /// Nodes per rack (locality middle tier).
    pub rack_size: u32,
    /// Total jobs the submitter will send; the scheduler exits when all
    /// have completed.
    pub expected_jobs: u64,
    /// Delay-scheduling wait per locality level.
    pub locality_delay: SimDuration,
    /// Enable preemption.
    pub preemption: bool,
    /// Control-plane transport (submit/dispatch/ack messages).
    pub control: Transport,
}

/// Per-queue outcome counters, returned by the scheduler process.
#[derive(Debug, Clone, Default)]
pub struct QueueStats {
    /// Queue name.
    pub name: &'static str,
    /// Jobs submitted.
    pub submitted: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Per-job completion latency (submit to last task done), in
    /// completion order.
    pub latency_ns: Vec<u64>,
    /// Per-job queueing delay (submit to first dispatch), in completion
    /// order.
    pub wait_ns: Vec<u64>,
    /// Task dispatches (including re-dispatch after preemption).
    pub tasks_dispatched: u64,
    /// Dispatches that hit the preferred node.
    pub local: u64,
    /// Dispatches that hit the preferred rack (not node).
    pub rack: u64,
    /// Dispatches elsewhere (or with no preference).
    pub remote: u64,
    /// Kill notices sent to reclaim slots from this queue.
    pub kills_sent: u64,
    /// Effective preemptions (task acknowledged the kill).
    pub preemptions: u64,
    /// Task re-queues caused by preemption.
    pub requeues: u64,
    /// Jobs that met the queue's SLO target.
    pub slo_met: u64,
    /// Integrated slot-nanoseconds held.
    pub share_slot_ns: u128,
}

/// Whole-run outcome, returned by the scheduler process.
#[derive(Debug, Clone)]
pub struct SchedStats {
    /// Per-queue counters.
    pub queues: Vec<QueueStats>,
    /// max/min weight-normalized share ratio, thousandths (1000 = fair);
    /// `None` if a weighted queue got no slot time.
    pub fairness_x1000: Option<u64>,
    /// Total slots in the ledger.
    pub total_slots: u32,
    /// Virtual time the last job completed.
    pub makespan_ns: u64,
}

struct JobRun {
    spec: JobSpec,
    queue: usize,
    submitted: SimTime,
    first_dispatch: Option<SimTime>,
    wave: usize,
    wave_started: SimTime,
    pending: VecDeque<u32>,
    attempts: Vec<u32>,
    running: u32,
}

impl JobRun {
    fn load_wave(&mut self, wave: usize, now: SimTime) {
        self.wave = wave;
        self.wave_started = now;
        self.pending = (0..self.spec.waves[wave].tasks.len() as u32).collect();
        self.attempts = vec![0; self.spec.waves[wave].tasks.len()];
        self.running = 0;
    }
}

struct State {
    cfg: SchedulerConfig,
    ledger: SlotLedger,
    jobs: BTreeMap<u64, JobRun>,
    queue_fifo: Vec<VecDeque<u64>>, // job ids with undispatched work
    slot_task: Vec<Option<(TaskKey, u64)>>,
    worker_slot: HashMap<Pid, u32>,
    stats: Vec<QueueStats>,
    meter: crate::queue::ShareMeter,
    dispatch_seq: u64,
    completed: u64,
    q_labels: Vec<String>,
}

impl State {
    fn usages(&self) -> Vec<u32> {
        (0..self.cfg.queues.len())
            .map(|qi| self.ledger.usage(qi))
            .collect()
    }

    fn weights(&self) -> Vec<u32> {
        self.cfg.queues.iter().map(|q| q.weight).collect()
    }

    /// Advance the share meter to `now` before mutating the ledger.
    fn tick(&mut self, now: SimTime) {
        let usages = self.usages();
        self.meter.advance(now.nanos(), &usages);
    }
}

/// The scheduler process body. Returns the run's [`SchedStats`]; read it
/// with `SimReport::result` after the run.
pub fn scheduler(ctx: &mut ProcCtx, cfg: SchedulerConfig) -> SchedStats {
    let nodes = cfg.workers.len() as u32 / cfg.per_node;
    let n_queues = cfg.queues.len();
    let mut st = State {
        ledger: SlotLedger::new(nodes, cfg.per_node, cfg.rack_size),
        jobs: BTreeMap::new(),
        queue_fifo: vec![VecDeque::new(); n_queues],
        slot_task: vec![None; cfg.workers.len()],
        worker_slot: cfg
            .workers
            .iter()
            .enumerate()
            .map(|(i, p)| (*p, i as u32))
            .collect(),
        stats: cfg
            .queues
            .iter()
            .map(|q| QueueStats {
                name: q.name,
                ..QueueStats::default()
            })
            .collect(),
        meter: crate::queue::ShareMeter::new(n_queues),
        dispatch_seq: 0,
        completed: 0,
        q_labels: cfg
            .queues
            .iter()
            .map(|q| format!("queue={}", q.name))
            .collect(),
        cfg,
    };

    while st.completed < st.cfg.expected_jobs {
        dispatch_round(ctx, &mut st);
        let deadline = next_escalation(ctx.now(), &st);
        let msg = match deadline {
            Some(d) => ctx.recv_deadline(MatchSpec::ANY, Some(d)).ok(),
            None => Some(ctx.recv(MatchSpec::ANY)),
        };
        if let Some(m) = msg {
            handle(ctx, &mut st, m);
            // Drain whatever else already arrived before re-planning.
            while let Some(m) = ctx.try_recv(MatchSpec::ANY) {
                handle(ctx, &mut st, m);
            }
        }
    }

    let control = st.cfg.control;
    for w in &st.cfg.workers {
        ctx.send(*w, TAG_SHUTDOWN, 32, Payload::Empty, &control);
    }
    let now = ctx.now();
    st.tick(now);
    for (qi, share) in st.meter.shares().iter().enumerate() {
        st.stats[qi].share_slot_ns = *share;
    }
    SchedStats {
        fairness_x1000: st.meter.maxmin_x1000(&st.weights()),
        total_slots: st.ledger.total(),
        makespan_ns: now.nanos(),
        queues: st.stats,
    }
}

/// Earliest future locality-escalation instant among waiting jobs.
fn next_escalation(now: SimTime, st: &State) -> Option<SimTime> {
    let d = st.cfg.locality_delay;
    let mut min: Option<SimTime> = None;
    for fifo in &st.queue_fifo {
        for id in fifo {
            let job = &st.jobs[id];
            if job.pending.is_empty() || st.cfg.queues[job.queue].weight == 0 {
                continue;
            }
            for t in [job.wave_started + d, job.wave_started + d + d] {
                if t > now && min.map(|m| t < m).unwrap_or(true) {
                    min = Some(t);
                }
            }
        }
    }
    min
}

fn handle(ctx: &mut ProcCtx, st: &mut State, m: Message) {
    match m.tag {
        TAG_SUBMIT => {
            let sub: Arc<SubmitMsg> = m.expect_value();
            let qi = st
                .cfg
                .queues
                .iter()
                .position(|q| q.name == sub.spec.queue)
                .unwrap_or_else(|| panic!("job for unknown queue {}", sub.spec.queue));
            let mut job = JobRun {
                spec: sub.spec.clone(),
                queue: qi,
                submitted: ctx.now(),
                first_dispatch: None,
                wave: 0,
                wave_started: ctx.now(),
                pending: VecDeque::new(),
                attempts: Vec::new(),
                running: 0,
            };
            job.load_wave(0, ctx.now());
            st.queue_fifo[qi].push_back(sub.id);
            st.jobs.insert(sub.id, job);
            st.stats[qi].submitted += 1;
            ctx.metric_counter("sched.arrivals", st.q_labels[qi].clone(), 1);
        }
        TAG_TASK_DONE | TAG_TASK_PREEMPTED => {
            let key: Arc<TaskKey> = m.expect_value();
            let slot = st.worker_slot[&m.src];
            let (held, job_id) = st.slot_task[slot as usize]
                .take()
                .expect("ack from idle slot");
            assert_eq!(held, *key, "slot/task accounting out of sync");
            let now = ctx.now();
            st.tick(now);
            let was_reclaiming = matches!(st.ledger.state(slot), SlotState::Reclaiming { .. });
            st.ledger.release(slot);
            let job = st.jobs.get_mut(&job_id).expect("ack for unknown job");
            let qi = job.queue;
            job.running -= 1;
            if m.tag == TAG_TASK_PREEMPTED {
                // Re-queue exactly once, at the head so the job does not
                // lose its place; the lost segments re-run from scratch.
                job.attempts[key.index as usize] += 1;
                job.pending.push_front(key.index);
                if !st.queue_fifo[qi].contains(&job_id) {
                    st.queue_fifo[qi].push_back(job_id);
                }
                st.stats[qi].preemptions += 1;
                st.stats[qi].requeues += 1;
                ctx.metric_counter("sched.preemptions", st.q_labels[qi].clone(), 1);
            } else if was_reclaiming {
                // The task beat the kill: completion is authoritative and
                // nothing is re-queued.
            }
            if m.tag == TAG_TASK_DONE && job.pending.is_empty() && job.running == 0 {
                let next = job.wave + 1;
                if next < job.spec.waves.len() {
                    job.load_wave(next, now);
                    if !st.queue_fifo[qi].contains(&job_id) {
                        st.queue_fifo[qi].push_back(job_id);
                    }
                } else {
                    complete_job(ctx, st, job_id, now);
                }
            }
            let usage = st.ledger.usage(qi) as u64;
            ctx.metric_gauge("sched.slots_busy", st.q_labels[qi].clone(), usage);
        }
        t => panic!("scheduler received unexpected tag {t}"),
    }
}

fn complete_job(ctx: &mut ProcCtx, st: &mut State, job_id: u64, now: SimTime) {
    let job = st.jobs.remove(&job_id).expect("completing unknown job");
    let qi = job.queue;
    st.queue_fifo[qi].retain(|j| *j != job_id);
    let latency = now.since(job.submitted).nanos();
    let wait = job
        .first_dispatch
        .map(|t| t.since(job.submitted).nanos())
        .unwrap_or(0);
    let s = &mut st.stats[qi];
    s.completed += 1;
    s.latency_ns.push(latency);
    s.wait_ns.push(wait);
    if let Some(target) = st.cfg.queues[qi].slo_target_ns {
        if latency <= target {
            s.slo_met += 1;
        }
    }
    st.completed += 1;
    let tenant_label = format!(
        "queue={},tenant={}",
        st.cfg.queues[qi].name, job.spec.tenant
    );
    ctx.metric_observe("sched.job_latency_ns", tenant_label, latency);
    ctx.metric_observe("sched.queue_wait_ns", st.q_labels[qi].clone(), wait);
    ctx.metric_counter("sched.jobs_completed", st.q_labels[qi].clone(), 1);
}

/// Locality level a job's tasks may use at `now`: 0 = node only,
/// 1 = rack, 2 = anywhere.
fn locality_level(now: SimTime, job: &JobRun, delay: SimDuration) -> u8 {
    if now >= job.wave_started + delay + delay {
        2
    } else if now >= job.wave_started + delay {
        1
    } else {
        0
    }
}

fn dispatch_round(ctx: &mut ProcCtx, st: &mut State) {
    loop {
        // Queue pick: smallest usage/weight among queues with pending
        // work and cap headroom.
        let mut order: Vec<(f64, usize)> = (0..st.cfg.queues.len())
            .filter(|qi| {
                let q = &st.cfg.queues[*qi];
                !st.queue_fifo[*qi].is_empty()
                    && q.weight > 0
                    && q.cap_slots
                        .map(|c| st.ledger.usage(*qi) < c)
                        .unwrap_or(true)
            })
            .map(|qi| {
                (
                    st.ledger.usage(qi) as f64 / st.cfg.queues[qi].weight as f64,
                    qi,
                )
            })
            .collect();
        order.sort_by(|a, b| a.partial_cmp(b).expect("deficit ratios are finite"));
        let mut dispatched = false;
        for (_, qi) in &order {
            if try_dispatch_queue(ctx, st, *qi) {
                dispatched = true;
                break;
            }
            // Gang reservation: if this (higher-priority, starved) queue
            // is blocked on an atomic gang allocation, hold the round so
            // freed slots accumulate for the gang instead of trickling
            // to lower-priority elastic tasks — otherwise a wide gang on
            // a busy cluster never sees enough simultaneous free slots.
            if starved_on_gang(st, *qi) {
                break;
            }
        }
        if dispatched {
            continue;
        }
        // Nothing moved: let starved queues reclaim their fair share.
        if st.cfg.preemption {
            for (_, qi) in &order {
                try_preempt(ctx, st, *qi);
            }
        }
        return;
    }
}

/// Try to dispatch one task (or one whole gang wave) from queue `qi`.
fn try_dispatch_queue(ctx: &mut ProcCtx, st: &mut State, qi: usize) -> bool {
    let fifo: Vec<u64> = st.queue_fifo[qi].iter().copied().collect();
    for job_id in fifo {
        let job = &st.jobs[&job_id];
        if job.pending.is_empty() {
            continue;
        }
        if job.spec.waves[job.wave].gang {
            // Gangs allocate atomically and never let later jobs skip
            // ahead in their own queue (no starvation by small jobs).
            return try_dispatch_gang(ctx, st, job_id);
        }
        if try_dispatch_elastic(ctx, st, job_id) {
            return true;
        }
        // Head job is locality-blocked; delay scheduling lets the next
        // job in the queue offer a task.
    }
    false
}

fn try_dispatch_elastic(ctx: &mut ProcCtx, st: &mut State, job_id: u64) -> bool {
    let job = &st.jobs[&job_id];
    let qi = job.queue;
    let level = locality_level(ctx.now(), job, st.cfg.locality_delay);
    let wave = job.wave;
    // First pending task that can get a slot at the current level.
    let mut choice: Option<(usize, u32, u8)> = None; // (pos in pending, slot, level hit)
    for (pos, idx) in job.pending.iter().enumerate() {
        let t = &job.spec.waves[wave].tasks[*idx as usize];
        let found = match t.preferred {
            None => st.ledger.free_any().map(|s| (s, 2u8)),
            Some(pref) => st
                .ledger
                .free_on(pref)
                .map(|s| (s, 0u8))
                .or_else(|| {
                    (level >= 1)
                        .then(|| st.ledger.free_in_rack(pref).map(|s| (s, 1u8)))
                        .flatten()
                })
                .or_else(|| {
                    (level >= 2)
                        .then(|| st.ledger.free_any().map(|s| (s, 2u8)))
                        .flatten()
                }),
        };
        if let Some((slot, hit)) = found {
            choice = Some((pos, slot, hit));
            break;
        }
    }
    let Some((pos, slot, hit)) = choice else {
        return false;
    };
    let job = st.jobs.get_mut(&job_id).expect("dispatching unknown job");
    let idx = job.pending.remove(pos).expect("pending position vanished");
    let attempt = job.attempts[idx as usize];
    job.running += 1;
    if job.first_dispatch.is_none() {
        job.first_dispatch = Some(ctx.now());
    }
    let task = job.spec.waves[wave].tasks[idx as usize].clone();
    let template = job.spec.template;
    if job.pending.is_empty() {
        st.queue_fifo[qi].retain(|j| *j != job_id);
    }
    let key = TaskKey {
        job: job_id,
        wave: wave as u32,
        index: idx,
        attempt,
    };
    let loc = match (task.preferred, hit) {
        (None, _) => "any",
        (Some(_), 0) => "local",
        (Some(_), 1) => "rack",
        (Some(_), _) => "any",
    };
    match loc {
        "local" => st.stats[qi].local += 1,
        "rack" => st.stats[qi].rack += 1,
        _ => st.stats[qi].remote += 1,
    }
    ctx.metric_counter("sched.locality", format!("level={loc}"), 1);
    // A task that has been preempted twice is exempt from further kills
    // — without a bound, a starved queue can kill the same task at
    // every checkpoint, livelocking the cluster into restart churn.
    launch(
        ctx,
        st,
        slot,
        qi,
        key,
        template,
        task.preemptable && attempt < 2,
        task.segments,
        LaunchEnv {
            job: job_id,
            wave: wave as u32,
            index: idx,
            gang: Vec::new(),
            gang_nodes: Vec::new(),
            channel: JobChannel {
                job: job_id,
                wave: wave as u32,
            },
        },
    );
    true
}

fn try_dispatch_gang(ctx: &mut ProcCtx, st: &mut State, job_id: u64) -> bool {
    let job = &st.jobs[&job_id];
    let qi = job.queue;
    let wave = job.wave;
    let n = job.spec.waves[wave].tasks.len() as u32;
    // Cap check: the whole gang must fit under the queue's cap.
    if let Some(cap) = st.cfg.queues[qi].cap_slots {
        if st.ledger.usage(qi) + n > cap {
            return false;
        }
    }
    let Some(slots) = st.ledger.gang_pick(n) else {
        return false;
    };
    let job = st.jobs.get_mut(&job_id).expect("dispatching unknown job");
    job.pending.clear();
    job.running = n;
    if job.first_dispatch.is_none() {
        job.first_dispatch = Some(ctx.now());
    }
    let template = job.spec.template;
    let tasks = job.spec.waves[wave].tasks.clone();
    let attempts = job.attempts.clone();
    st.queue_fifo[qi].retain(|j| *j != job_id);
    let gang: Vec<Pid> = slots.iter().map(|s| st.cfg.workers[*s as usize]).collect();
    let gang_nodes = slots
        .iter()
        .map(|s| st.ledger.node_of(*s))
        .collect::<Vec<_>>();
    for (i, slot) in slots.iter().enumerate() {
        let key = TaskKey {
            job: job_id,
            wave: wave as u32,
            index: i as u32,
            attempt: attempts[i],
        };
        st.stats[qi].remote += 1;
        launch(
            ctx,
            st,
            *slot,
            qi,
            key,
            template,
            false, // gang members are never preemptable
            tasks[i].segments.clone(),
            LaunchEnv {
                job: job_id,
                wave: wave as u32,
                index: i as u32,
                gang: gang.clone(),
                gang_nodes: gang_nodes.clone(),
                channel: JobChannel {
                    job: job_id,
                    wave: wave as u32,
                },
            },
        );
    }
    true
}

#[allow(clippy::too_many_arguments)]
fn launch(
    ctx: &mut ProcCtx,
    st: &mut State,
    slot: u32,
    qi: usize,
    key: TaskKey,
    template: &'static str,
    preemptable: bool,
    segments: Vec<Segment>,
    env: LaunchEnv,
) {
    let now = ctx.now();
    st.tick(now);
    st.dispatch_seq += 1;
    st.ledger.reserve(slot, qi, preemptable, st.dispatch_seq);
    st.slot_task[slot as usize] = Some((key, key.job));
    st.stats[qi].tasks_dispatched += 1;
    let control = st.cfg.control;
    ctx.send(
        st.cfg.workers[slot as usize],
        TAG_TASK,
        4096,
        Payload::value(Dispatch {
            key,
            template,
            preemptable,
            segments,
            env,
        }),
        &control,
    );
    ctx.metric_counter("sched.tasks_dispatched", st.q_labels[qi].clone(), 1);
    let usage = st.ledger.usage(qi) as u64;
    ctx.metric_gauge("sched.slots_busy", st.q_labels[qi].clone(), usage);
}

/// True when queue `qi` sits below its fair-share floor while its
/// head-of-line job is an unscheduled gang wave: the condition under
/// which the dispatch round reserves freed slots for the gang.
fn starved_on_gang(st: &State, qi: usize) -> bool {
    let weights = st.weights();
    let fs = fair_share(st.ledger.total(), &weights, qi).floor() as u32;
    if st.ledger.usage(qi) >= fs {
        return false;
    }
    st.queue_fifo[qi]
        .iter()
        .map(|id| &st.jobs[id])
        .find(|job| !job.pending.is_empty())
        .map(|job| job.spec.waves[job.wave].gang)
        .unwrap_or(false)
}

/// Demand of queue `qi`: undispatched tasks across its jobs.
fn pending_demand(st: &State, qi: usize) -> u32 {
    st.queue_fifo[qi]
        .iter()
        .map(|id| st.jobs[id].pending.len() as u32)
        .sum()
}

/// One paced preemption step for starved queue `qi`: send at most one
/// kill, and only while the queue sits below its fair share with demand
/// that free + already-reclaiming slots cannot cover.
fn try_preempt(ctx: &mut ProcCtx, st: &mut State, qi: usize) {
    let weights = st.weights();
    let fs = fair_share(st.ledger.total(), &weights, qi).floor() as u32;
    let usage = st.ledger.usage(qi);
    if usage >= fs {
        return;
    }
    let demand = pending_demand(st, qi);
    if demand == 0 {
        return;
    }
    let reclaiming = (0..st.ledger.total())
        .filter(|s| matches!(st.ledger.state(*s), SlotState::Reclaiming { .. }))
        .count() as u32;
    let want = demand.min(fs - usage);
    if st.ledger.free_count() + reclaiming >= want {
        return;
    }
    let Some(victim) = st.ledger.pick_victim(&weights, qi) else {
        return;
    };
    let (key, _) = st.slot_task[victim as usize].expect("victim slot has no task");
    let victim_q = match st.ledger.state(victim) {
        SlotState::Busy { queue, .. } => queue,
        other => panic!("victim in state {other:?}"),
    };
    let now = ctx.now();
    st.tick(now);
    st.ledger.mark_reclaiming(victim);
    st.stats[victim_q].kills_sent += 1;
    let control = st.cfg.control;
    ctx.send(
        st.cfg.workers[victim as usize],
        TAG_KILL,
        64,
        Payload::value(key),
        &control,
    );
    ctx.metric_counter("sched.kills_sent", st.q_labels[victim_q].clone(), 1);
}

/// The open-loop submitter body: sleep to each arrival instant, then
/// submit. The whole trace is computed before the run (see
/// [`crate::arrivals`]), so the offered load never reacts to the
/// system — the definition of open-loop.
pub fn submitter(ctx: &mut ProcCtx, sched: Pid, control: Transport, trace: Vec<(u64, JobSpec)>) {
    for (i, (at_ns, spec)) in trace.into_iter().enumerate() {
        let now = ctx.now().nanos();
        if at_ns > now {
            ctx.sleep(SimDuration::from_nanos(at_ns - now));
        }
        ctx.send(
            sched,
            TAG_SUBMIT,
            512,
            Payload::value(SubmitMsg { id: i as u64, spec }),
            &control,
        );
    }
}
