//! Scenario assembly: cluster + scheduler + workers + open-loop traffic,
//! in one simulation.
//!
//! A scenario pre-computes every traffic source's arrival trace (a pure
//! function of the seed — see [`crate::arrivals`]), pre-spawns the slot
//! workers and scheduler (the engine's process table is fixed at run
//! start), runs the simulation under whatever execution mode is the
//! process-wide default, and returns the scheduler's [`SchedStats`].

use std::sync::Arc;

use hpcbd_cluster::ClusterSpec;
use hpcbd_simnet::{NodeId, Pid, Sim, SimDuration};

use crate::arrivals::{arrivals, RateProcess};
use crate::job::JobFactory;
use crate::queue::QueueSpec;
use crate::scheduler::{scheduler, slot_worker, submitter, SchedStats, SchedulerConfig};

/// One open-loop traffic source.
pub struct SourceSpec {
    /// Source name (seed salt and diagnostics).
    pub name: &'static str,
    /// Offered-load shape.
    pub process: RateProcess,
    /// Builds the source's `k`-th job.
    pub factory: JobFactory,
}

/// A full "datacenter day" scenario.
pub struct ScenarioSpec {
    /// Scenario name (report label).
    pub name: &'static str,
    /// Comet nodes.
    pub nodes: u32,
    /// Slots (containers) per node.
    pub per_node: u32,
    /// Nodes per rack (locality middle tier).
    pub rack_size: u32,
    /// Traffic horizon, virtual seconds; sources stop submitting here
    /// (the run then drains).
    pub horizon_s: f64,
    /// Master seed; each source salts it with its index and name.
    pub seed: u64,
    /// Delay-scheduling wait per locality level.
    pub locality_delay: SimDuration,
    /// Enable preemption.
    pub preemption: bool,
    /// Queue table.
    pub queues: Vec<QueueSpec>,
    /// Traffic sources.
    pub sources: Vec<SourceSpec>,
}

/// What a scenario run produced.
pub struct ScenarioOutcome {
    /// The scheduler's per-queue counters and integrals.
    pub stats: SchedStats,
    /// Jobs offered by all sources.
    pub offered: u64,
    /// The simulation's makespan (drain included), nanoseconds.
    pub makespan_ns: u64,
}

/// Nearest-rank quantile of a latency sample (`q` in [0, 1]). Sorts a
/// copy; exact, deterministic, no interpolation.
pub fn quantile_ns(values: &[u64], q: f64) -> u64 {
    if values.is_empty() {
        return 0;
    }
    let mut v = values.to_vec();
    v.sort_unstable();
    let rank = ((q * v.len() as f64).ceil() as usize).clamp(1, v.len());
    v[rank - 1]
}

/// Run the scenario to completion and collect the scheduler's stats.
pub fn run(spec: &ScenarioSpec) -> ScenarioOutcome {
    // Pre-compute and merge the arrival traces: (instant, source, k),
    // ordered by time with (source, k) as the deterministic tie-break.
    let mut merged: Vec<(u64, usize, u64)> = Vec::new();
    for (si, src) in spec.sources.iter().enumerate() {
        let salt = hpcbd_simnet::det_hash(&(spec.seed, si as u64, src.name));
        for (k, at) in arrivals(salt, src.process, spec.horizon_s)
            .iter()
            .enumerate()
        {
            merged.push((*at, si, k as u64));
        }
    }
    merged.sort_unstable();
    let trace: Vec<(u64, crate::job::JobSpec)> = merged
        .iter()
        .map(|(at, si, k)| (*at, (spec.sources[*si].factory)(*k)))
        .collect();
    run_trace(spec, trace)
}

/// Run the scenario against an explicit arrival trace of
/// `(instant_ns, job)` pairs (must be time-sorted). `spec.sources` is
/// ignored; everything else applies. This is the layer tests use to
/// force specific contention patterns.
pub fn run_trace(spec: &ScenarioSpec, trace: Vec<(u64, crate::job::JobSpec)>) -> ScenarioOutcome {
    let offered = trace.len() as u64;

    let cluster = ClusterSpec::comet(spec.nodes);
    let control = cluster.control();
    let mut sim = Sim::new(cluster.topology());

    // Slot workers first: pids 0 .. nodes*per_node-1, in slot order.
    let sched_pid = Pid(spec.nodes * spec.per_node);
    let mut workers = Vec::with_capacity((spec.nodes * spec.per_node) as usize);
    for node in 0..spec.nodes {
        for k in 0..spec.per_node {
            let pid = sim.spawn(NodeId(node), format!("slot-{node}.{k}"), move |ctx| {
                slot_worker(ctx, sched_pid, control)
            });
            workers.push(pid);
        }
    }
    let cfg = SchedulerConfig {
        queues: spec.queues.clone(),
        workers: workers.clone(),
        per_node: spec.per_node,
        rack_size: spec.rack_size,
        expected_jobs: offered,
        locality_delay: spec.locality_delay,
        preemption: spec.preemption,
        control,
    };
    let got = sim.spawn(NodeId(0), "scheduler", move |ctx| scheduler(ctx, cfg));
    assert_eq!(
        got, sched_pid,
        "scheduler pid drifted from the worker count"
    );
    sim.spawn(NodeId(0), "submitter", move |ctx| {
        submitter(ctx, sched_pid, control, trace)
    });

    let mut report = sim.run();
    let stats: SchedStats = report.result(sched_pid);
    ScenarioOutcome {
        offered,
        makespan_ns: report.makespan().nanos(),
        stats,
    }
}

/// Convenience: a job factory from a plain function pointer or closure.
pub fn factory(f: impl Fn(u64) -> crate::job::JobSpec + Send + Sync + 'static) -> JobFactory {
    Arc::new(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_nearest_rank() {
        let v = vec![10, 20, 30, 40];
        assert_eq!(quantile_ns(&v, 0.5), 20);
        assert_eq!(quantile_ns(&v, 0.99), 40);
        assert_eq!(quantile_ns(&v, 0.0), 10);
        assert_eq!(quantile_ns(&[], 0.5), 0);
    }
}
