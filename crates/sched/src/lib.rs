//! `hpcbd-sched` — the multi-tenant cluster scheduler and open-loop
//! traffic generator (DESIGN.md §16).
//!
//! Every benchmark before this crate ran one job on an idle cluster. The
//! paper's HPC-vs-Big-Data comparison, though, is really about shared
//! clusters: queueing delay, locality loss and tail-latency inflation
//! when batch backbones and interactive query traffic contend for the
//! same nodes. This crate supplies the missing machinery:
//!
//! * [`queue`] — named queues with weights/caps, per-node slot ledger,
//!   deterministic preemption-victim selection, fairness integrals;
//! * [`arrivals`] — seeded open-loop Poisson and diurnal arrival
//!   processes, generated before the run so the offered load is a pure
//!   function of the seed;
//! * [`job`] — the wave/task/segment job model runtimes compile their
//!   workloads into;
//! * [`scheduler`] — the in-sim scheduler process, slot workers, delay
//!   scheduling and kill/re-queue preemption protocol;
//! * [`scenario`] — glue that assembles a cluster, a queue table and a
//!   set of traffic sources into one deterministic simulation.
//!
//! Determinism: arrival traces are computed before `Sim::run`; every
//! scheduling decision happens inside one scheduler process at virtual
//! times fixed by the engine's `(time, pid, generation)` total order; no
//! host state leaks in. Sequential, parallel and speculative execution
//! therefore produce bit-identical schedules, latencies and counters —
//! CI byte-compares the three.

#![warn(missing_docs)]

pub mod arrivals;
pub mod job;
pub mod queue;
pub mod scenario;
pub mod scheduler;

pub use arrivals::{arrivals, RateProcess, SplitMix64};
pub use job::{JobFactory, JobSpec, Segment, TaskSpec, Wave};
pub use queue::{fair_share, QueueSpec, ShareMeter, SlotLedger, SlotState};
pub use scenario::{
    factory, quantile_ns, run, run_trace, ScenarioOutcome, ScenarioSpec, SourceSpec,
};
pub use scheduler::{
    scheduler, slot_worker, submitter, QueueStats, SchedStats, SchedulerConfig, SubmitMsg, TaskKey,
};
