//! Job descriptions: what a tenant submits to the scheduler.
//!
//! A job is a sequence of *waves* (stages separated by a barrier at the
//! scheduler); a wave is a set of *tasks*; a task is a list of *segments*
//! — closures executed back-to-back on one slot worker, with a
//! preemption checkpoint between consecutive segments. Gang waves (MPI,
//! SHMEM) are dispatched all-at-once and may message their peers through
//! the wave's [`hpcbd_simnet::JobChannel`]; elastic waves (Spark,
//! MapReduce, OpenMP) trickle out as slots free up and must not message
//! peers.

use std::sync::Arc;

use hpcbd_simnet::{LaunchEnv, NodeId, ProcCtx};

/// One preemption-atomic unit of a task body.
pub type Segment = Arc<dyn Fn(&mut ProcCtx, &LaunchEnv) + Send + Sync>;

/// One task of a wave.
#[derive(Clone)]
pub struct TaskSpec {
    /// Body segments, run in order on the assigned slot worker. The
    /// worker checks for a preemption notice between segments.
    pub segments: Vec<Segment>,
    /// Preferred node (data locality); `None` = anywhere.
    pub preferred: Option<NodeId>,
    /// May the scheduler reclaim this task's slot mid-run? Gang members
    /// must be non-preemptable: killing one rank would strand its peers
    /// inside a collective.
    pub preemptable: bool,
}

impl std::fmt::Debug for TaskSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskSpec")
            .field("segments", &self.segments.len())
            .field("preferred", &self.preferred)
            .field("preemptable", &self.preemptable)
            .finish()
    }
}

impl TaskSpec {
    /// A single-segment task.
    pub fn new(body: Segment) -> TaskSpec {
        TaskSpec {
            segments: vec![body],
            preferred: None,
            preemptable: true,
        }
    }

    /// Set the preferred node.
    pub fn on(mut self, node: NodeId) -> TaskSpec {
        self.preferred = Some(node);
        self
    }

    /// Mark the task non-preemptable.
    pub fn pinned(mut self) -> TaskSpec {
        self.preemptable = false;
        self
    }
}

/// One barrier-separated stage of a job.
#[derive(Debug, Clone)]
pub struct Wave {
    /// The stage's tasks.
    pub tasks: Vec<TaskSpec>,
    /// Gang wave: all tasks start together on an atomically allocated
    /// slot set and may message each other; elastic waves may not.
    pub gang: bool,
}

/// A submitted job.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Workload template name — becomes the phase label on worker spans
    /// (bounded cardinality: one label per template, not per job).
    pub template: &'static str,
    /// Destination queue name.
    pub queue: &'static str,
    /// Owning tenant label (bounded cardinality: a handful of tenants).
    pub tenant: &'static str,
    /// Stages, executed in order.
    pub waves: Vec<Wave>,
}

impl JobSpec {
    /// Total task count across all waves.
    pub fn total_tasks(&self) -> usize {
        self.waves.iter().map(|w| w.tasks.len()).sum()
    }
}

/// Builds the `k`-th job of a traffic source (`k` is the source-local
/// arrival index, usable as a deterministic per-job seed).
pub type JobFactory = Arc<dyn Fn(u64) -> JobSpec + Send + Sync>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_spec_builders_compose() {
        let seg: Segment = Arc::new(|_ctx, _env| {});
        let t = TaskSpec::new(seg).on(NodeId(3)).pinned();
        assert_eq!(t.preferred, Some(NodeId(3)));
        assert!(!t.preemptable);
        assert_eq!(t.segments.len(), 1);
    }

    #[test]
    fn job_counts_tasks_across_waves() {
        let seg: Segment = Arc::new(|_ctx, _env| {});
        let job = JobSpec {
            template: "t",
            queue: "q",
            tenant: "a",
            waves: vec![
                Wave {
                    tasks: vec![TaskSpec::new(seg.clone()), TaskSpec::new(seg.clone())],
                    gang: false,
                },
                Wave {
                    tasks: vec![TaskSpec::new(seg)],
                    gang: true,
                },
            ],
        };
        assert_eq!(job.total_tasks(), 3);
    }
}
