//! Open-loop arrival generation: seeded Poisson and diurnal processes.
//!
//! The generator is a *pure function* of `(seed, process, horizon)` and is
//! evaluated before the simulation starts, so the arrival trace — and
//! therefore the whole schedule — is identical under every execution mode
//! by construction. Open-loop means arrivals do not react to the system:
//! a congested cluster keeps receiving jobs at the offered rate, which is
//! exactly what makes tail latency and SLO attainment interesting.
//!
//! Randomness comes from a SplitMix64 stream: a fixed, dependency-free
//! generator whose output is stable across platforms and toolchains (the
//! golden registry pins tables derived from these draws).

/// The offered-load shape of one traffic source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RateProcess {
    /// Homogeneous Poisson arrivals at `rate_per_s`.
    Poisson {
        /// Mean arrival rate, jobs per virtual second.
        rate_per_s: f64,
    },
    /// Non-homogeneous Poisson with a raised-cosine daily envelope:
    /// `rate(t) = base + (peak - base) * (1 - cos(2*pi*t/period)) / 2`,
    /// starting at the trough (t = 0 is "4 AM").
    Diurnal {
        /// Trough arrival rate, jobs per virtual second.
        base_per_s: f64,
        /// Peak arrival rate, jobs per virtual second.
        peak_per_s: f64,
        /// Length of one day, virtual seconds.
        period_s: f64,
    },
}

impl RateProcess {
    /// Instantaneous rate at virtual second `t`.
    pub fn rate_at(&self, t: f64) -> f64 {
        match *self {
            RateProcess::Poisson { rate_per_s } => rate_per_s,
            RateProcess::Diurnal {
                base_per_s,
                peak_per_s,
                period_s,
            } => {
                let phase = 2.0 * std::f64::consts::PI * t / period_s;
                base_per_s + (peak_per_s - base_per_s) * (1.0 - phase.cos()) / 2.0
            }
        }
    }

    /// An upper bound on the instantaneous rate (thinning envelope).
    fn rate_max(&self) -> f64 {
        match *self {
            RateProcess::Poisson { rate_per_s } => rate_per_s,
            RateProcess::Diurnal {
                base_per_s,
                peak_per_s,
                ..
            } => peak_per_s.max(base_per_s),
        }
    }
}

/// SplitMix64: deterministic 64-bit stream used for arrival draws.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seeded stream.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in the open interval (0, 1).
    pub fn next_unit(&mut self) -> f64 {
        // 53 significant bits; +1 keeps the draw strictly positive so
        // -ln(u) below is always finite.
        ((self.next_u64() >> 11) + 1) as f64 / (1u64 << 53) as f64
    }
}

/// Generate the arrival instants (virtual nanoseconds, strictly
/// increasing order of generation) of `process` over `[0, horizon_s)`.
///
/// Poisson arrivals use inverse-CDF exponential gaps; diurnal arrivals
/// use Lewis-Shedler thinning against the peak-rate envelope. Both
/// consume the SplitMix64 stream in a fixed order, so the trace is a
/// pure function of the seed.
pub fn arrivals(seed: u64, process: RateProcess, horizon_s: f64) -> Vec<u64> {
    let lambda_max = process.rate_max();
    // NaN rates/horizons fall through to the empty trace too.
    if lambda_max.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
        || horizon_s.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
    {
        return Vec::new();
    }
    let mut rng = SplitMix64::new(seed);
    let mut out = Vec::new();
    let mut t = 0.0_f64;
    loop {
        // Candidate gap at the envelope rate.
        let gap = -rng.next_unit().ln() / lambda_max;
        t += gap;
        if t >= horizon_s {
            return out;
        }
        let accept = match process {
            RateProcess::Poisson { .. } => true,
            RateProcess::Diurnal { .. } => rng.next_unit() < process.rate_at(t) / lambda_max,
        };
        if accept {
            out.push((t * 1e9).round() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_mean_rate_is_close() {
        let a = arrivals(42, RateProcess::Poisson { rate_per_s: 5.0 }, 2000.0);
        let rate = a.len() as f64 / 2000.0;
        assert!((rate - 5.0).abs() < 0.25, "observed rate {rate}");
    }

    #[test]
    fn diurnal_peak_outdraws_trough() {
        let p = RateProcess::Diurnal {
            base_per_s: 0.5,
            peak_per_s: 8.0,
            period_s: 1000.0,
        };
        let a = arrivals(7, p, 1000.0);
        // First quarter (trough side) vs middle half (peak).
        let q1 = a.iter().filter(|t| **t < 250_000_000_000).count();
        let mid = a
            .iter()
            .filter(|t| (250_000_000_000..750_000_000_000).contains(*t))
            .count();
        assert!(mid > 2 * q1, "trough {q1} vs peak {mid}");
    }

    #[test]
    fn zero_rate_or_horizon_is_empty() {
        assert!(arrivals(1, RateProcess::Poisson { rate_per_s: 0.0 }, 100.0).is_empty());
        assert!(arrivals(1, RateProcess::Poisson { rate_per_s: 1.0 }, 0.0).is_empty());
    }
}
