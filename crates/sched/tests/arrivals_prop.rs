//! Property tests for the open-loop arrival generator: determinism,
//! well-formed instants, and the diurnal envelope actually shaping load.

use hpcbd_sched::{arrivals, RateProcess};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same seed and process → byte-identical trace, every time. This is
    /// the property the cross-mode CI gate ultimately rests on.
    #[test]
    fn trace_is_a_pure_function_of_the_seed(
        seed in any::<u64>(),
        rate in 0.1f64..50.0,
        horizon in 1.0f64..120.0,
    ) {
        let p = RateProcess::Poisson { rate_per_s: rate };
        let a = arrivals(seed, p, horizon);
        let b = arrivals(seed, p, horizon);
        prop_assert_eq!(a, b);
    }

    /// Instants are strictly increasing (exponential gaps never round to
    /// zero) and inside the horizon.
    #[test]
    fn instants_are_increasing_and_bounded(
        seed in any::<u64>(),
        rate in 0.1f64..50.0,
        horizon in 1.0f64..60.0,
    ) {
        let p = RateProcess::Poisson { rate_per_s: rate };
        let trace = arrivals(seed, p, horizon);
        let horizon_ns = (horizon * 1e9) as u64;
        for w in trace.windows(2) {
            prop_assert!(w[0] < w[1], "non-increasing instants {} -> {}", w[0], w[1]);
        }
        if let Some(last) = trace.last() {
            prop_assert!(*last < horizon_ns);
        }
    }

    /// Poisson: the realized count is within a loose tolerance of
    /// rate x horizon (4 sigma plus slack — deterministic per seed, so a
    /// failure here is a generator bug, not flake).
    #[test]
    fn poisson_count_tracks_the_rate(
        seed in any::<u64>(),
        rate in 2.0f64..30.0,
        horizon in 20.0f64..60.0,
    ) {
        let p = RateProcess::Poisson { rate_per_s: rate };
        let n = arrivals(seed, p, horizon).len() as f64;
        let mean = rate * horizon;
        let tol = 4.0 * mean.sqrt() + 2.0;
        prop_assert!((n - mean).abs() < tol, "n={n} mean={mean} tol={tol}");
    }

    /// Diurnal: the half-period centered on the peak sees materially more
    /// arrivals than the half centered on the trough.
    #[test]
    fn diurnal_envelope_shapes_the_load(
        seed in any::<u64>(),
        base in 0.5f64..2.0,
        boost in 4.0f64..12.0,
    ) {
        let period = 40.0;
        let p = RateProcess::Diurnal {
            base_per_s: base,
            peak_per_s: base * boost,
            period_s: period,
        };
        // Two full periods so both halves get equal exposure.
        let trace = arrivals(seed, p, 2.0 * period);
        // rate(t) = base + (peak-base)(1-cos(2 pi t/period))/2: trough at
        // t = 0 mod period, peak at t = period/2 mod period.
        let (mut near_peak, mut near_trough) = (0u64, 0u64);
        for at in &trace {
            let phase = (*at as f64 / 1e9) % period / period; // [0,1)
            if (0.25..0.75).contains(&phase) {
                near_peak += 1;
            } else {
                near_trough += 1;
            }
        }
        prop_assert!(
            near_peak as f64 > 1.5 * near_trough as f64,
            "peak={near_peak} trough={near_trough} (boost {boost})"
        );
    }

    /// Traces from different seeds differ (no accidental seed collapse).
    #[test]
    fn different_seeds_differ(seed in any::<u64>()) {
        let p = RateProcess::Poisson { rate_per_s: 10.0 };
        let a = arrivals(seed, p, 30.0);
        let b = arrivals(seed.wrapping_add(1), p, 30.0);
        prop_assert_ne!(a, b);
    }
}
