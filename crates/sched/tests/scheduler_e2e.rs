//! End-to-end scheduler tests: the full submit/dispatch/ack protocol
//! through the simnet engine, including preemption accounting, delay
//! scheduling and cross-execution-mode determinism.

use std::sync::Arc;

use hpcbd_sched::{
    factory, quantile_ns, run, run_trace, JobSpec, QueueSpec, RateProcess, ScenarioOutcome,
    ScenarioSpec, Segment, SourceSpec, TaskSpec, Wave,
};
use hpcbd_simnet::{set_default_execution, Execution, NodeId, SimDuration, Work};

/// A task that charges `ms` of compute per segment, `segments` times.
fn compute_task(ms: u64, segments: usize, preferred: Option<NodeId>) -> TaskSpec {
    let seg: Segment = Arc::new(move |ctx, _env| {
        // Comet's effective scalar rate is 3 GFlop/s per core.
        ctx.compute(Work::flops(3.0e6 * ms as f64), 1.0);
    });
    TaskSpec {
        segments: vec![seg; segments],
        preferred,
        preemptable: true,
    }
}

fn one_queue_spec(preemption: bool) -> ScenarioSpec {
    ScenarioSpec {
        name: "test",
        nodes: 2,
        per_node: 2,
        rack_size: 2,
        horizon_s: 1.0,
        seed: 1,
        locality_delay: SimDuration::from_millis(50),
        preemption,
        queues: vec![QueueSpec::new("only", 1)],
        sources: vec![],
    }
}

fn job(queue: &'static str, waves: Vec<Wave>) -> JobSpec {
    JobSpec {
        template: "test/compute",
        queue,
        tenant: "t0",
        waves,
    }
}

#[test]
fn elastic_jobs_complete_with_wave_barriers() {
    let spec = one_queue_spec(false);
    let trace: Vec<(u64, JobSpec)> = (0..3)
        .map(|i| {
            (
                i * 1_000_000,
                job(
                    "only",
                    vec![
                        Wave {
                            tasks: vec![compute_task(10, 1, None), compute_task(10, 1, None)],
                            gang: false,
                        },
                        Wave {
                            tasks: vec![compute_task(5, 1, None), compute_task(5, 1, None)],
                            gang: false,
                        },
                    ],
                ),
            )
        })
        .collect();
    let out = run_trace(&spec, trace);
    let q = &out.stats.queues[0];
    assert_eq!(q.submitted, 3);
    assert_eq!(q.completed, 3);
    assert_eq!(q.tasks_dispatched, 12);
    assert_eq!(q.latency_ns.len(), 3);
    // Two barrier-separated waves of >= 10 + 5 ms of compute.
    assert!(q.latency_ns.iter().all(|l| *l >= 15_000_000));
    assert_eq!(q.preemptions, 0);
    assert_eq!(q.requeues, 0);
    assert!(out.stats.fairness_x1000.is_some());
}

#[test]
fn gang_wave_allocates_atomically() {
    let mut spec = one_queue_spec(false);
    spec.nodes = 2;
    spec.per_node = 2;
    // A 4-wide gang on a 4-slot cluster: must wait for all slots.
    let trace = vec![
        (
            0,
            job(
                "only",
                vec![Wave {
                    tasks: vec![compute_task(20, 1, None); 2],
                    gang: false,
                }],
            ),
        ),
        (
            1_000_000,
            job(
                "only",
                vec![Wave {
                    tasks: vec![compute_task(10, 1, None); 4],
                    gang: true,
                }],
            ),
        ),
    ];
    let out = run_trace(&spec, trace);
    let q = &out.stats.queues[0];
    assert_eq!(q.completed, 2);
    assert_eq!(q.tasks_dispatched, 6);
    // The gang could not start until the elastic job's ~20 ms tasks
    // finished, so its latency includes that queueing delay.
    assert!(
        q.latency_ns[1] >= 28_000_000,
        "gang latency {:?}",
        q.latency_ns
    );
}

/// Preemption accounting: preempted work is re-queued exactly once per
/// kill, no slot leaks, and every job still completes.
#[test]
fn preemption_requeues_exactly_once_and_leaks_no_slots() {
    let mut spec = one_queue_spec(true);
    spec.queues = vec![QueueSpec::new("batch", 1), QueueSpec::new("urgent", 1)];
    // Batch fills all 4 slots with long checkpointed tasks; urgent
    // arrives needing its fair share (2 slots).
    let trace = vec![
        (
            0,
            job(
                "batch",
                vec![Wave {
                    tasks: vec![compute_task(20, 10, None); 4],
                    gang: false,
                }],
            ),
        ),
        (
            50_000_000,
            job(
                "urgent",
                vec![Wave {
                    tasks: vec![compute_task(20, 1, None); 2],
                    gang: false,
                }],
            ),
        ),
    ];
    let out = run_trace(&spec, trace);
    let batch = &out.stats.queues[0];
    let urgent = &out.stats.queues[1];
    assert_eq!(batch.completed, 1);
    assert_eq!(urgent.completed, 1);
    assert!(urgent.wait_ns[0] > 0, "urgent had to wait for a kill");
    // Two slots were reclaimed: each kill produced exactly one re-queue
    // and one re-dispatch.
    assert_eq!(batch.preemptions, 2, "stats: {batch:?}");
    assert_eq!(batch.requeues, batch.preemptions);
    assert_eq!(batch.kills_sent, batch.preemptions);
    assert_eq!(batch.tasks_dispatched, 4 + batch.requeues);
    // Urgent jumped the line: its latency is far below the batch job's.
    assert!(urgent.latency_ns[0] < batch.latency_ns[0]);
}

#[test]
fn no_preemption_means_no_kills() {
    let mut spec = one_queue_spec(false);
    spec.queues = vec![QueueSpec::new("batch", 1), QueueSpec::new("urgent", 1)];
    let trace = vec![
        (
            0,
            job(
                "batch",
                vec![Wave {
                    tasks: vec![compute_task(20, 10, None); 4],
                    gang: false,
                }],
            ),
        ),
        (
            50_000_000,
            job(
                "urgent",
                vec![Wave {
                    tasks: vec![compute_task(20, 1, None); 2],
                    gang: false,
                }],
            ),
        ),
    ];
    let out = run_trace(&spec, trace);
    let batch = &out.stats.queues[0];
    let urgent = &out.stats.queues[1];
    assert_eq!(batch.kills_sent + batch.preemptions + batch.requeues, 0);
    assert_eq!(urgent.completed, 1);
    // Without preemption the urgent job waits out the batch tasks.
    assert!(
        urgent.wait_ns[0] >= 100_000_000,
        "wait {:?}",
        urgent.wait_ns
    );
}

#[test]
fn delay_scheduling_escalates_node_rack_any() {
    let mut spec = one_queue_spec(false);
    spec.nodes = 2;
    spec.per_node = 1;
    spec.rack_size = 1; // two single-node racks: rack level never helps
    spec.locality_delay = SimDuration::from_millis(50);
    let trace = vec![
        (
            0,
            job(
                "only",
                vec![Wave {
                    tasks: vec![compute_task(400, 1, Some(NodeId(0)))],
                    gang: false,
                }],
            ),
        ),
        // Prefers busy node 0; node 1 is free the whole time.
        (
            10_000_000,
            job(
                "only",
                vec![Wave {
                    tasks: vec![compute_task(10, 1, Some(NodeId(0)))],
                    gang: false,
                }],
            ),
        ),
    ];
    let out = run_trace(&spec, trace);
    let q = &out.stats.queues[0];
    assert_eq!(q.completed, 2);
    assert_eq!(q.local, 1, "first job ran on its preferred node");
    assert_eq!(q.remote, 1, "second job escalated to the free node");
    // The second job waited the full two delay levels (2 x 50 ms) before
    // giving up on locality — not the 400 ms the busy node would cost.
    // Waits are recorded in completion order: the short second job
    // finishes first, so its wait is at index 0.
    let wait = q.wait_ns[0];
    assert!(
        (100_000_000..200_000_000).contains(&wait),
        "wait {wait} outside the delay-scheduling window"
    );
}

fn mixed_scenario(preemption: bool) -> ScenarioSpec {
    ScenarioSpec {
        name: "mixed",
        nodes: 4,
        per_node: 2,
        rack_size: 2,
        horizon_s: 60.0,
        seed: 42,
        locality_delay: SimDuration::from_millis(100),
        preemption,
        queues: vec![
            QueueSpec::new("interactive", 3).slo_ns(2_000_000_000),
            QueueSpec::new("batch", 1),
        ],
        sources: vec![
            SourceSpec {
                name: "queries",
                process: RateProcess::Diurnal {
                    base_per_s: 0.05,
                    peak_per_s: 0.6,
                    period_s: 60.0,
                },
                factory: factory(|k| JobSpec {
                    template: "query",
                    queue: "interactive",
                    tenant: if k % 2 == 0 { "web" } else { "mobile" },
                    waves: vec![Wave {
                        tasks: (0..3)
                            .map(|i| compute_task(30, 2, Some(NodeId((k as u32 + i) % 4))))
                            .collect(),
                        gang: false,
                    }],
                }),
            },
            SourceSpec {
                name: "backbone",
                process: RateProcess::Poisson { rate_per_s: 0.05 },
                factory: factory(|_k| JobSpec {
                    template: "backbone",
                    queue: "batch",
                    tenant: "science",
                    waves: vec![Wave {
                        tasks: vec![compute_task(200, 1, None); 4],
                        gang: true,
                    }],
                }),
            },
        ],
    }
}

fn digest(out: &ScenarioOutcome) -> String {
    let mut s = format!(
        "offered={} makespan={} fairness={:?} slots={}",
        out.offered, out.makespan_ns, out.stats.fairness_x1000, out.stats.total_slots
    );
    for q in &out.stats.queues {
        s.push_str(&format!(
            "\n{} sub={} done={} disp={} loc={}/{}/{} kills={} pre={} req={} slo={} share={} lat={:?} wait={:?}",
            q.name,
            q.submitted,
            q.completed,
            q.tasks_dispatched,
            q.local,
            q.rack,
            q.remote,
            q.kills_sent,
            q.preemptions,
            q.requeues,
            q.slo_met,
            q.share_slot_ns,
            q.latency_ns,
            q.wait_ns,
        ));
    }
    s
}

/// The tentpole determinism claim: sequential, parallel and speculative
/// execution produce bit-identical schedules, latencies and counters.
#[test]
fn mixed_scenario_is_identical_across_execution_modes() {
    let spec = mixed_scenario(true);
    set_default_execution(Execution::Sequential);
    let base = digest(&run(&spec));
    assert!(base.contains("done="), "sanity: {base}");
    for exec in [
        Execution::Parallel { threads: 4 },
        Execution::Speculative { threads: 4 },
    ] {
        set_default_execution(exec);
        let got = digest(&run(&spec));
        assert_eq!(base, got, "divergence under {exec:?}");
    }
    set_default_execution(Execution::Sequential);
}

#[test]
fn mixed_scenario_latency_quantiles_are_ordered() {
    let spec = mixed_scenario(true);
    set_default_execution(Execution::Sequential);
    let out = run(&spec);
    let q = &out.stats.queues[0];
    assert!(q.completed > 5, "diurnal source offered too little");
    let p50 = quantile_ns(&q.latency_ns, 0.5);
    let p99 = quantile_ns(&q.latency_ns, 0.99);
    let p999 = quantile_ns(&q.latency_ns, 0.999);
    assert!(p50 > 0 && p50 <= p99 && p99 <= p999);
}
