//! The modeled platform: a named cluster built from node specs.

use hpcbd_simnet::{NodeSpec, Topology, Transport};

/// A cluster configuration: how many nodes, what hardware, and which
/// transports the fabric offers. Instances of this are the "single
/// platform" every experiment shares.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Human-readable name ("comet").
    pub name: String,
    /// Number of allocated nodes.
    pub nodes: u32,
    /// Per-node hardware.
    pub node_spec: NodeSpec,
}

impl ClusterSpec {
    /// An allocation of `nodes` Comet nodes.
    pub fn comet(nodes: u32) -> ClusterSpec {
        ClusterSpec {
            name: "comet".to_string(),
            nodes,
            node_spec: NodeSpec::comet(),
        }
    }

    /// Build the simnet topology for this allocation.
    pub fn topology(&self) -> Topology {
        Topology::homogeneous(self.nodes, self.node_spec.clone())
    }

    /// The native RDMA transport of the FDR InfiniBand fabric (used by
    /// MPI, OpenSHMEM and the Spark-RDMA shuffle engine).
    pub fn rdma(&self) -> Transport {
        Transport::rdma_verbs()
    }

    /// The TCP-over-IPoIB transport (default Spark/Hadoop data path).
    pub fn ipoib(&self) -> Transport {
        Transport::ipoib_socket()
    }

    /// The JVM socket RPC control path (always used for Big Data
    /// orchestration, even under Spark-RDMA).
    pub fn control(&self) -> Transport {
        Transport::java_socket_control()
    }

    /// Total cores in the allocation.
    pub fn total_cores(&self) -> u32 {
        self.nodes * self.node_spec.cores()
    }
}

/// Render Table I of the paper from the modeled node spec: the platform
/// description every experiment shares.
pub fn comet_summary() -> Vec<(String, String)> {
    let spec = NodeSpec::comet();
    vec![
        ("Processor type".into(), spec.model.clone()),
        ("Sockets #".into(), spec.sockets.to_string()),
        ("Cores/socket".into(), spec.cores_per_socket.to_string()),
        ("Clock speed".into(), format!("{} GHz", spec.clock_ghz)),
        (
            "Flop speed".into(),
            format!("{:.0} GFlop/s", spec.peak_flops() / 1e9),
        ),
        (
            "Memory capacity".into(),
            format!("{} GB DDR4 DRAM", spec.mem_capacity >> 30),
        ),
        (
            "Interconnect".into(),
            "Hybrid Fat-Tree, FDR InfiniBand".into(),
        ),
        (
            "Local scratch memory".into(),
            format!("{} GB SSD", spec.disk.capacity / 1_000_000_000),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comet_allocation_builds_matching_topology() {
        let spec = ClusterSpec::comet(8);
        let topo = spec.topology();
        assert_eq!(topo.len(), 8);
        assert_eq!(spec.total_cores(), 8 * 24);
    }

    #[test]
    fn table1_rows_match_paper() {
        let rows = comet_summary();
        let get = |k: &str| {
            rows.iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        assert_eq!(get("Processor type"), "Intel Xeon E5-2680v3");
        assert_eq!(get("Sockets #"), "2");
        assert_eq!(get("Cores/socket"), "12");
        assert_eq!(get("Clock speed"), "2.5 GHz");
        assert_eq!(get("Flop speed"), "960 GFlop/s");
        assert_eq!(get("Memory capacity"), "128 GB DDR4 DRAM");
        assert_eq!(get("Local scratch memory"), "320 GB SSD");
    }

    #[test]
    fn transports_are_ranked_rdma_fastest() {
        let c = ClusterSpec::comet(2);
        assert!(c.rdma().latency < c.ipoib().latency);
        assert!(c.ipoib().send_overhead < c.control().send_overhead);
    }
}
